//! End-to-end group lifecycle over the **threaded** backend: join, concurrent CBCAST and
//! ABCAST traffic under load, a member-site crash, the flush, the new view, and a state
//! transfer to a late joiner — the full sequence the simulator tests pin, now on real OS
//! threads with packets crossing lock-protected channels.
//!
//! The late join deliberately happens **while pre-join multicasts are still unstable**
//! (asserted: at least eight would be redistributed by a flush at the moment the join is
//! submitted).  This used to double-apply at the joiner — once inside the transferred
//! snapshot and once via the flush's unstable-message redelivery — and forced a
//! settle-until-stable workaround before every join.  The cut-coordinated state transfer
//! (snapshot at the view cut, covered-frontier suppression at the joining endpoint,
//! buffered application entries) makes the join exactly-once, and the partition is pinned
//! by application-side counters: `snapshot value + post-snapshot increments == total`.

use std::cell::RefCell;
use std::path::PathBuf;
use std::rc::Rc;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc};

use vsync::core::{Duration, EntryId, Message, ProcessId, ProtocolKind, SiteId};
use vsync::proto::ProtoConfig;
use vsync::rt::{FaultPlan, IsisHarness, IsisRuntime, ThreadedRuntime};
use vsync::tools::{FileStore, RecoveryManager, StateTransfer};

const APPLY: EntryId = EntryId(2);

fn threaded_harness(n: usize, faults: FaultPlan) -> IsisHarness<ThreadedRuntime> {
    IsisHarness::new(ThreadedRuntime::new(
        n,
        ThreadedRuntime::fast_local_config(),
        ProtoConfig::fast(),
        faults,
        99,
    ))
}

/// Mirrors of one member's application state, readable from the test thread.
struct CounterMirror {
    /// Current counter value (snapshot + applied increments).
    value: Arc<AtomicU64>,
    /// Number of APPLY handler executions (each increments by the message body).
    applies: Arc<AtomicU64>,
    /// The counter value carried by the received snapshot (joiners only).
    snapshot: Arc<AtomicU64>,
}

/// Spawns a member whose counter state is updated by multicast, transferred on join, and
/// observable from the test thread through atomic mirrors.  The APPLY entry goes through
/// the transfer tool's buffering, so a joiner holds post-cut messages until its snapshot
/// has landed.
fn spawn_counter_member(
    h: &mut IsisHarness<ThreadedRuntime>,
    site: SiteId,
    gid: vsync::core::GroupId,
    ready: bool,
) -> (ProcessId, CounterMirror) {
    let mirror = CounterMirror {
        value: Arc::new(AtomicU64::new(0)),
        applies: Arc::new(AtomicU64::new(0)),
        snapshot: Arc::new(AtomicU64::new(0)),
    };
    let m_value = mirror.value.clone();
    let m_applies = mirror.applies.clone();
    let m_snapshot = mirror.snapshot.clone();
    let pid = h.spawn(site, move |b| {
        // Thread-local state plus the transfer tool, all built on the node's own thread.
        let counter: Rc<RefCell<u64>> = Rc::new(RefCell::new(0));
        let c_encode = counter.clone();
        let c_apply = counter.clone();
        let m_apply = m_value.clone();
        let xfer = StateTransfer::new(
            gid,
            move || vec![Message::new().with("counter", *c_encode.borrow())],
            move |_ctx, block| {
                if let Some(v) = block.get_u64("counter") {
                    *c_apply.borrow_mut() = v;
                    m_apply.store(v, Ordering::Relaxed);
                    m_snapshot.store(v, Ordering::Relaxed);
                }
            },
        );
        xfer.attach(b);
        if ready {
            xfer.mark_ready();
        }
        let c_update = counter.clone();
        xfer.on_entry_buffered(b, APPLY, move |_ctx, msg| {
            let mut c = c_update.borrow_mut();
            *c += msg.get_u64("body").unwrap_or(0);
            m_value.store(*c, Ordering::Relaxed);
            m_applies.fetch_add(1, Ordering::Relaxed);
        });
    });
    (pid, mirror)
}

#[test]
fn full_lifecycle_over_real_threads() {
    let mut h = threaded_harness(
        4,
        // Real concurrency plus injected link delay, jitter and modelled loss.
        FaultPlan::none()
            .with_delay(Duration::from_micros(50))
            .with_jitter(Duration::from_micros(200))
            .with_drop(0.005),
    );
    let gid = h.allocate_group_id();

    // -- Join ---------------------------------------------------------------------------
    let (creator, c0) = spawn_counter_member(&mut h, SiteId(0), gid, true);
    h.create_group_with_id("lifecycle", gid, creator);
    let (m1, c1) = spawn_counter_member(&mut h, SiteId(1), gid, false);
    let (m2, _c2) = spawn_counter_member(&mut h, SiteId(2), gid, false);
    h.join_and_wait(gid, m1, None, Duration::from_secs(20))
        .expect("join m1");
    h.join_and_wait(gid, m2, None, Duration::from_secs(20))
        .expect("join m2");
    let ok = h.wait_until(Duration::from_secs(10), |h| {
        (0..3u16).all(|s| {
            h.view_of(SiteId(s), gid)
                .map(|v| v.len() == 3)
                .unwrap_or(false)
        })
    });
    assert!(ok, "three-member view installed everywhere");

    // -- Concurrent CBCAST and ABCAST traffic under load ---------------------------------
    // 30 increments of 1, interleaving both primitives and all three senders.
    let senders = [creator, m1, m2];
    for i in 0..30u64 {
        let protocol = if i % 2 == 0 {
            ProtocolKind::Cbcast
        } else {
            ProtocolKind::Abcast
        };
        h.client_send(
            senders[(i % 3) as usize],
            gid,
            APPLY,
            Message::with_body(1u64),
            protocol,
        );
    }
    let ok = h.wait_until(Duration::from_secs(20), |_| {
        c0.value.load(Ordering::Relaxed) == 30 && c1.value.load(Ordering::Relaxed) == 30
    });
    assert!(
        ok,
        "all 30 increments applied everywhere (c0={}, c1={})",
        c0.value.load(Ordering::Relaxed),
        c1.value.load(Ordering::Relaxed)
    );

    // -- Crash, flush, new view -----------------------------------------------------------
    h.rt.kill_site(SiteId(2));
    assert!(!h.rt.site_is_up(SiteId(2)));
    let ok = h.wait_until(Duration::from_secs(30), |h| {
        [0u16, 1].iter().all(|s| {
            h.view_of(SiteId(*s), gid)
                .map(|v| v.len() == 2 && !v.contains(m2))
                .unwrap_or(false)
        })
    });
    assert!(ok, "survivors flushed and installed the two-member view");

    // Traffic keeps flowing in the new view.
    for _ in 0..10u64 {
        h.client_send(
            creator,
            gid,
            APPLY,
            Message::with_body(1u64),
            ProtocolKind::Abcast,
        );
    }
    let ok = h.wait_until(Duration::from_secs(20), |_| {
        c0.value.load(Ordering::Relaxed) == 40 && c1.value.load(Ordering::Relaxed) == 40
    });
    assert!(ok, "post-crash traffic delivered to both survivors");

    // -- State transfer to a late joiner, mid-burst ---------------------------------------
    // No settling: burst fresh increments and submit the join while at least eight of them
    // are still *unstable* (a flush would redistribute them).  The snapshot is taken at the
    // view cut and the joining endpoint suppresses the covered redelivery, so the join is
    // exactly-once no matter how the OS schedules the race.
    let mut sent = 0u64;
    let mut unstable_at_join = 0usize;
    for _attempt in 0..4 {
        for i in 0..8u64 {
            let protocol = if i % 2 == 0 {
                ProtocolKind::Cbcast
            } else {
                ProtocolKind::Abcast
            };
            h.client_send(
                senders[(i % 2) as usize],
                gid,
                APPLY,
                Message::with_body(1u64),
                protocol,
            );
        }
        sent += 8;
        unstable_at_join = h.unstable_count(SiteId(0), gid);
        if unstable_at_join >= 8 {
            break;
        }
    }
    assert!(
        unstable_at_join >= 8,
        "join must race unstable traffic (saw only {unstable_at_join} unstable)"
    );
    let expected = 40 + sent;
    let (late, c3) = spawn_counter_member(&mut h, SiteId(3), gid, false);
    h.join_and_wait(gid, late, None, Duration::from_secs(20))
        .expect("late join under unstable traffic");
    let ok = h.wait_until(Duration::from_secs(20), |_| {
        c0.value.load(Ordering::Relaxed) == expected
            && c1.value.load(Ordering::Relaxed) == expected
            && c3.value.load(Ordering::Relaxed) == expected
    });
    assert!(
        ok,
        "every member converged to {expected} exactly once (c0={}, c1={}, c3={})",
        c0.value.load(Ordering::Relaxed),
        c1.value.load(Ordering::Relaxed),
        c3.value.load(Ordering::Relaxed)
    );
    // Let any straggler (a duplicate would be one) land, then re-check: nothing may move.
    h.settle(Duration::from_millis(100));
    assert_eq!(
        c3.value.load(Ordering::Relaxed),
        expected,
        "late duplicate application at the joiner"
    );
    // The exactly-once partition: the snapshot accounts for every pre-cut increment, the
    // buffered APPLY entry for every post-cut one, and together they cover each message
    // exactly once.
    assert_eq!(
        c3.snapshot.load(Ordering::Relaxed) + c3.applies.load(Ordering::Relaxed),
        expected,
        "snapshot + post-snapshot applies must partition the message history"
    );

    // Clean shutdown: every node thread joins, none leak.
    let reports = h.rt.shutdown();
    assert_eq!(reports.len(), 4);
    assert!(reports.iter().all(|r| r.events > 0));
}

/// Mirrors of a durably-logging member, readable from the test thread.
struct DurableMirror {
    /// Number of distinct bodies in the member's state.
    len: Arc<AtomicU64>,
    ready: Arc<AtomicBool>,
    replayed: Arc<AtomicU64>,
    snapshot_added: Arc<AtomicU64>,
    applies: Arc<AtomicU64>,
}

impl DurableMirror {
    fn new(ready: bool) -> Self {
        DurableMirror {
            len: Arc::new(AtomicU64::new(0)),
            ready: Arc::new(AtomicBool::new(ready)),
            replayed: Arc::new(AtomicU64::new(0)),
            snapshot_added: Arc::new(AtomicU64::new(0)),
            applies: Arc::new(AtomicU64::new(0)),
        }
    }
}

/// Spawns a member whose state is the set of delivered bodies, with every delivery and
/// view marker appended to an fsync'd on-disk recovery log when `root` is given.  When
/// `replay` is set the process first rebuilds its state from that log (the full-process-
/// death respawn path) before wiring the transfer tool and its handlers.
fn spawn_durable_counter_member(
    h: &mut IsisHarness<ThreadedRuntime>,
    site: SiteId,
    gid: vsync::core::GroupId,
    ready: bool,
    root: Option<PathBuf>,
    replay: bool,
) -> (ProcessId, DurableMirror) {
    let mirror = DurableMirror::new(ready);
    let m_len = mirror.len.clone();
    let m_ready = mirror.ready.clone();
    let m_replayed = mirror.replayed.clone();
    let m_snapshot = mirror.snapshot_added.clone();
    let m_applies = mirror.applies.clone();
    let pid = h.spawn(site, move |b| {
        let rm = root.map(|r| {
            RecoveryManager::new(
                Rc::new(FileStore::new(r).expect("store").with_fsync_interval(1)),
                "lifecycle",
            )
        });
        let state: Rc<RefCell<Vec<u64>>> = Rc::new(RefCell::new(Vec::new()));
        if replay {
            let rm = rm.as_ref().expect("replay needs a store");
            let s = state.clone();
            let summary = rm
                .replay(|entry, payload| {
                    if entry == APPLY {
                        s.borrow_mut()
                            .push(payload.get_u64("body").unwrap_or(u64::MAX));
                    }
                })
                .expect("replay");
            m_replayed.store(summary.messages as u64, Ordering::Relaxed);
            m_len.store(state.borrow().len() as u64, Ordering::Relaxed);
        }
        if let Some(rm) = &rm {
            rm.attach_logging(b, gid);
        }
        let s_encode = state.clone();
        let s_apply = state.clone();
        let l_apply = m_len.clone();
        let xfer = StateTransfer::new(
            gid,
            move || {
                s_encode
                    .borrow()
                    .iter()
                    .map(|v| Message::new().with("life-entry", *v))
                    .collect()
            },
            move |_ctx, block| {
                if let Some(v) = block.get_u64("life-entry") {
                    let mut s = s_apply.borrow_mut();
                    // The rejoin snapshot overlaps the replayed prefix; only new bodies
                    // count as snapshot-recovered.
                    if !s.contains(&v) {
                        s.push(v);
                        l_apply.store(s.len() as u64, Ordering::Relaxed);
                        m_snapshot.fetch_add(1, Ordering::Relaxed);
                    }
                }
                if block.get_bool("xfer-last").unwrap_or(false) {
                    m_ready.store(true, Ordering::Relaxed);
                }
            },
        );
        xfer.attach(b);
        if ready {
            xfer.mark_ready();
        }
        let s_update = state.clone();
        xfer.on_entry_buffered(b, APPLY, move |_ctx, msg| {
            if let Some(rm) = &rm {
                let _ = rm.log_delivery(APPLY, msg);
            }
            let mut s = s_update.borrow_mut();
            s.push(msg.get_u64("body").unwrap_or(u64::MAX));
            m_len.store(s.len() as u64, Ordering::Relaxed);
            m_applies.fetch_add(1, Ordering::Relaxed);
        });
    });
    (pid, mirror)
}

/// Full process death and log-based resurrection on real threads: a member's node thread
/// is killed outright, everything in memory is lost, and the respawned incarnation must
/// rebuild from its fsync'd on-disk log, rejoin **mid-burst** via state transfer, and end
/// exactly-once — `log-replayed + snapshot + post-snapshot applies == total`, every term
/// nonzero.
#[test]
fn full_process_death_replays_its_log_and_rejoins() {
    let root = std::env::temp_dir().join(format!("vsync-lifecycle-death-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let mut h = threaded_harness(3, FaultPlan::none());
    let gid = h.allocate_group_id();
    let (m0, c0) = spawn_durable_counter_member(&mut h, SiteId(0), gid, true, None, false);
    h.create_group_with_id("death", gid, m0);
    let (m1, c1) = spawn_durable_counter_member(&mut h, SiteId(1), gid, false, None, false);
    h.join_and_wait(gid, m1, None, Duration::from_secs(20))
        .expect("join m1");
    let (m2, c2) =
        spawn_durable_counter_member(&mut h, SiteId(2), gid, false, Some(root.clone()), false);
    h.join_and_wait(gid, m2, None, Duration::from_secs(20))
        .expect("join m2");
    let ok = h.wait_until(Duration::from_secs(20), |_| {
        c1.ready.load(Ordering::Relaxed) && c2.ready.load(Ordering::Relaxed)
    });
    assert!(ok, "initial transfers never completed");

    // Phase one: twelve messages, logged durably at site 2 before each mirrored apply.
    for i in 0..12u64 {
        h.client_send(
            [m0, m1, m2][(i % 3) as usize],
            gid,
            APPLY,
            Message::with_body(i),
            ProtocolKind::Abcast,
        );
    }
    let ok = h.wait_until(Duration::from_secs(20), |_| {
        [&c0, &c1, &c2]
            .iter()
            .all(|c| c.len.load(Ordering::Relaxed) == 12)
    });
    assert!(ok, "phase-one deliveries incomplete");

    // Full process death: the node thread is terminated; only the disk log survives.
    h.rt.kill_site(SiteId(2));
    assert!(!h.rt.site_is_up(SiteId(2)));
    let ok = h.wait_until(Duration::from_secs(30), |h| {
        [0u16, 1].iter().all(|s| {
            h.view_of(SiteId(*s), gid)
                .map(|v| v.len() == 2 && !v.contains(m2))
                .unwrap_or(false)
        })
    });
    assert!(ok, "survivors never installed the post-crash view");

    // Phase two: twelve messages the dead site misses entirely.
    for i in 12..24u64 {
        h.client_send(
            [m0, m1][(i % 2) as usize],
            gid,
            APPLY,
            Message::with_body(i),
            ProtocolKind::Abcast,
        );
    }
    let ok = h.wait_until(Duration::from_secs(20), |_| {
        c0.len.load(Ordering::Relaxed) == 24 && c1.len.load(Ordering::Relaxed) == 24
    });
    assert!(ok, "phase-two deliveries incomplete");

    // Resurrection: fresh thread, fresh stack, fresh process; state rebuilt by replaying
    // the on-disk log before the transfer tool is even wired.
    h.rt.recover_site(SiteId(2));
    assert!(h.rt.site_is_up(SiteId(2)));
    let (r2, c2b) =
        spawn_durable_counter_member(&mut h, SiteId(2), gid, false, Some(root.clone()), true);
    // The configure closure runs asynchronously on the respawned node's thread; wait for
    // the replay it performs before judging its result.
    let ok = h.wait_until(Duration::from_secs(10), |_| {
        c2b.replayed.load(Ordering::Relaxed) == 12
    });
    assert!(
        ok,
        "the log replay must rebuild exactly the pre-crash deliveries (replayed={})",
        c2b.replayed.load(Ordering::Relaxed)
    );
    h.query(SiteId(2), move |stack, _now, _out| {
        // The fresh stack lost its namespace cache; both survivor sites as contacts.
        stack.register_group("death", gid, vec![SiteId(0), SiteId(1)]);
    });

    // Phase three: burst fresh traffic and submit the rejoin while it is in flight, so
    // the join cut races unstable messages just like the late-join leg above.
    let mut sent = 0u64;
    for _attempt in 0..4 {
        for i in 0..8u64 {
            h.client_send(
                [m0, m1][(i % 2) as usize],
                gid,
                APPLY,
                Message::with_body(24 + sent + i),
                ProtocolKind::Abcast,
            );
        }
        sent += 8;
        if h.unstable_count(SiteId(0), gid) >= 4 {
            break;
        }
    }
    h.join_and_wait(gid, r2, None, Duration::from_secs(20))
        .expect("rejoin after replay");
    let ok = h.wait_until(Duration::from_secs(20), |_| {
        c2b.ready.load(Ordering::Relaxed)
    });
    assert!(ok, "rejoin transfer never completed");

    // Phase four: a post-rejoin tail the recovered member must apply live (not via the
    // snapshot), so every partition term is exercised.
    for i in 0..4u64 {
        h.client_send(
            r2,
            gid,
            APPLY,
            Message::with_body(24 + sent + i),
            ProtocolKind::Abcast,
        );
    }
    let total = 24 + sent + 4;
    let ok = h.wait_until(Duration::from_secs(20), |_| {
        [&c0, &c1, &c2b]
            .iter()
            .all(|c| c.len.load(Ordering::Relaxed) == total)
    });
    assert!(
        ok,
        "final convergence failed (c0={}, c1={}, recovered={}, want {total})",
        c0.len.load(Ordering::Relaxed),
        c1.len.load(Ordering::Relaxed),
        c2b.len.load(Ordering::Relaxed),
    );
    // Nothing may move once settled: a late duplicate would.
    h.settle(Duration::from_millis(100));
    assert_eq!(c2b.len.load(Ordering::Relaxed), total);

    // The exactly-once partition across the member's three lives: pre-crash history via
    // the replayed log, missed history via the rejoin snapshot, live history via
    // post-snapshot applies.  Each term nonzero, together covering every message once.
    let replayed = c2b.replayed.load(Ordering::Relaxed);
    let snapshot = c2b.snapshot_added.load(Ordering::Relaxed);
    let applies = c2b.applies.load(Ordering::Relaxed);
    assert_eq!(replayed, 12);
    assert!(
        snapshot >= 12,
        "the snapshot must cover at least the missed phase-two traffic (saw {snapshot})"
    );
    assert!(
        applies >= 4,
        "post-snapshot tail must apply live (saw {applies})"
    );
    assert_eq!(
        replayed + snapshot + applies,
        total,
        "log-replayed + snapshot + post-snapshot applies must equal the total"
    );
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn site_recovery_rejoins_the_cluster() {
    let mut h = threaded_harness(3, FaultPlan::none());
    let (tx, rx) = mpsc::channel::<u64>();
    let creator = h.spawn(SiteId(0), move |b| {
        b.on_entry(APPLY, move |_ctx, msg| {
            let _ = tx.send(msg.get_u64("body").unwrap_or(0));
        });
    });
    let gid = h.create_group("recover", creator);
    h.rt.kill_site(SiteId(1));
    assert!(!h.rt.site_is_up(SiteId(1)));
    h.rt.recover_site(SiteId(1));
    assert!(h.rt.site_is_up(SiteId(1)));
    // The recovered site hosts a fresh process that can join the existing group.
    let (jtx, jrx) = mpsc::channel::<u64>();
    let joiner = h.spawn(SiteId(1), move |b| {
        b.on_entry(APPLY, move |_ctx, msg| {
            let _ = jtx.send(msg.get_u64("body").unwrap_or(0));
        });
    });
    // The fresh stack lost its namespace cache; repopulate the contact entry (the
    // recovery-manager tool does this from stable storage in the full system).
    h.query(SiteId(1), move |stack, _now, _out| {
        stack.register_group("recover", gid, vec![SiteId(0)]);
    });
    h.join_and_wait(gid, joiner, None, Duration::from_secs(20))
        .expect("join after recovery");
    h.client_send(
        creator,
        gid,
        APPLY,
        Message::with_body(5u64),
        ProtocolKind::Cbcast,
    );
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    let mut got = (None, None);
    while (got.0.is_none() || got.1.is_none()) && std::time::Instant::now() < deadline {
        if let Ok(v) = rx.try_recv() {
            got.0 = Some(v);
        }
        if let Ok(v) = jrx.try_recv() {
            got.1 = Some(v);
        }
        std::thread::sleep(std::time::Duration::from_millis(1));
    }
    assert_eq!(
        got,
        (Some(5), Some(5)),
        "both members deliver after recovery"
    );
}
