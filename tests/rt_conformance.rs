//! Cross-backend conformance: the same seeded group scenario runs on the deterministic
//! simulation backend and on the multi-threaded backend, and both must satisfy the
//! virtual-synchrony invariants the simulator tests pin — identical per-group delivery
//! orders relative to views (paper Section 2.4).
//!
//! What "the same" can mean differs by backend: the simulation replays one exact schedule;
//! the threaded run is scheduled by the OS (with seeded delay/jitter injection on top), so
//! its interleaving is not reproducible.  The conformance contract is therefore the
//! *invariant*, not the schedule:
//!
//! * every member observes the same sequence of views;
//! * between any two consecutive views, every member delivers exactly the same messages in
//!   exactly the same order (the traffic is ABCAST, so the order must be total);
//! * messages sent by survivors are delivered exactly once, atomically, at every survivor;
//! * across backends, survivors deliver the same *set* of messages (the order may differ
//!   between backends — both are valid total orders).

use std::cell::RefCell;
use std::path::PathBuf;
use std::rc::Rc;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};

use vsync::core::{
    Duration, EntryId, GroupId, Message, ProcessId, ProtocolKind, SiteId, StackConfig,
};
use vsync::proto::ProtoConfig;
use vsync::rt::{
    FaultPlan, IsisHarness, IsisRuntime, NemesisEvent, NemesisSchedule, SimRuntime, ThreadedRuntime,
};
use vsync::tools::{FileStore, RecoveryManager, StateTransfer};
use vsync::util::NetParams;

const APPLY: EntryId = EntryId(5);

/// One observation from a member process, tagged with the member's site.  Observations
/// from one member arrive in its local order (handlers run sequentially on the member's
/// node), so filtering the shared stream by member reconstructs each member's event log.
#[derive(Clone, Debug, PartialEq, Eq)]
enum Obs {
    Delivered { member: u16, body: u64 },
    ViewInstalled { member: u16, seq: u64, len: usize },
}

/// Per-member event log: deliveries partitioned by the views they happened in.
#[derive(Debug, Default, PartialEq, Eq)]
struct MemberLog {
    /// `(view_seq_at_delivery_time, body)` in local delivery order.
    deliveries: Vec<(u64, u64)>,
    /// View sequence numbers in installation order.
    views: Vec<u64>,
}

fn member_logs(observations: &[Obs], members: &[u16]) -> Vec<MemberLog> {
    members
        .iter()
        .map(|m| {
            let mut log = MemberLog::default();
            let mut current_view = 0;
            for obs in observations {
                match obs {
                    Obs::ViewInstalled { member, seq, .. } if member == m => {
                        current_view = *seq;
                        log.views.push(*seq);
                    }
                    Obs::Delivered { member, body } if member == m => {
                        log.deliveries.push((current_view, *body));
                    }
                    _ => {}
                }
            }
            log
        })
        .collect()
}

/// Runs the scenario: a three-member group over sites 0-2, a first ABCAST burst from every
/// member, a crash of site 2 once the burst is fully delivered, a second burst from the
/// survivors, and a drain.  Returns the collected observations.
fn run_scenario<R: IsisRuntime>(mut h: IsisHarness<R>) -> Vec<Obs> {
    let (tx, rx) = mpsc::channel::<Obs>();
    let gid_slot = h.allocate_group_id();
    let members: Vec<ProcessId> = (0..3u16)
        .map(|site| {
            let tx = tx.clone();
            h.spawn(SiteId(site), move |b| {
                let tx2 = tx.clone();
                b.on_entry(APPLY, move |_ctx, msg| {
                    let _ = tx.send(Obs::Delivered {
                        member: site,
                        body: msg.get_u64("body").unwrap_or(u64::MAX),
                    });
                });
                b.on_view_change(gid_slot, move |_ctx, ev| {
                    let _ = tx2.send(Obs::ViewInstalled {
                        member: site,
                        seq: ev.view.seq(),
                        len: ev.view.len(),
                    });
                });
            })
        })
        .collect();
    h.create_group_with_id("conf", gid_slot, members[0]);
    for m in &members[1..] {
        h.join_and_wait(gid_slot, *m, None, Duration::from_secs(20))
            .expect("join");
    }

    // Barrier: every member site has installed the fully-formed view (seq 3: create plus
    // two joins) before any traffic flows, so all sixteen messages belong to views every
    // member participates in.
    let ok = h.wait_until(Duration::from_secs(20), |h| {
        (0..3u16).all(|s| {
            h.view_of(SiteId(s), gid_slot)
                .map(|v| v.seq() == 3 && v.len() == 3)
                .unwrap_or(false)
        })
    });
    assert!(ok, "three-member view never installed everywhere");

    // Phase one: eight ABCASTs, senders rotating over all three members.
    for i in 0..8u64 {
        h.client_send(
            members[(i % 3) as usize],
            gid_slot,
            APPLY,
            Message::with_body(i),
            ProtocolKind::Abcast,
        );
    }
    // Wait until all 24 phase-one deliveries (8 messages × 3 members) are observed, so the
    // crash cannot take phase-one messages with it and both backends settle on one set.
    let mut observations: Vec<Obs> = Vec::new();
    let all_phase_one = |obs: &[Obs]| {
        obs.iter()
            .filter(|o| matches!(o, Obs::Delivered { .. }))
            .count()
            >= 24
    };
    let ok = h.wait_until(Duration::from_secs(20), |_h| {
        while let Ok(o) = rx.try_recv() {
            observations.push(o);
        }
        all_phase_one(&observations)
    });
    assert!(ok, "phase-one deliveries incomplete: {observations:?}");

    // Crash the third member's site; survivors must flush and install the 2-member view.
    h.rt.kill_site(SiteId(2));
    let ok = h.wait_until(Duration::from_secs(30), |h| {
        [0u16, 1].iter().all(|s| {
            h.view_of(SiteId(*s), gid_slot)
                .map(|v| v.len() == 2)
                .unwrap_or(false)
        })
    });
    assert!(ok, "survivors never installed the post-crash view");

    // Phase two: eight more ABCASTs from the survivors only.
    for i in 8..16u64 {
        h.client_send(
            members[(i % 2) as usize],
            gid_slot,
            APPLY,
            Message::with_body(i),
            ProtocolKind::Abcast,
        );
    }
    let ok = h.wait_until(Duration::from_secs(20), |_h| {
        while let Ok(o) = rx.try_recv() {
            observations.push(o);
        }
        // 24 phase-one + 16 phase-two survivor deliveries; the crashed member may have
        // logged some phase-one deliveries of its own on top.
        let survivor_deliveries = observations
            .iter()
            .filter(|o| matches!(o, Obs::Delivered { member, .. } if *member < 2))
            .count();
        survivor_deliveries >= 16 + 16
    });
    // Final drain of anything still in flight.
    h.settle(Duration::from_millis(50));
    while let Ok(o) = rx.try_recv() {
        observations.push(o);
    }
    assert!(ok, "phase-two deliveries incomplete: {observations:?}");
    observations
}

/// The virtual-synchrony checks both backends must pass.
fn check_virtual_synchrony(observations: &[Obs]) -> Vec<u64> {
    let logs = member_logs(observations, &[0, 1]);
    // Survivors observe the same view sequence from the fully-formed view onward (before
    // that their histories legitimately differ: each member starts observing the group at
    // its own join).
    let views_from_full =
        |log: &MemberLog| -> Vec<u64> { log.views.iter().copied().filter(|s| *s >= 3).collect() };
    assert_eq!(
        views_from_full(&logs[0]),
        views_from_full(&logs[1]),
        "survivors disagree on the view sequence"
    );
    // Identical delivery orders relative to views: every delivery is tagged with the view
    // it was delivered in, and the full tagged sequences must match — same total order
    // (ABCAST) and same partitioning across view boundaries (the virtual synchrony cut).
    assert_eq!(
        logs[0].deliveries, logs[1].deliveries,
        "survivors disagree on delivery order relative to views"
    );
    // Exactly-once: no body repeats.
    let mut bodies: Vec<u64> = logs[0].deliveries.iter().map(|(_, b)| *b).collect();
    let order = bodies.clone();
    bodies.sort_unstable();
    let before = bodies.len();
    bodies.dedup();
    assert_eq!(before, bodies.len(), "duplicate deliveries");
    // All sixteen messages (both phases came from processes that stayed alive through
    // their sends and the waits) are delivered.
    assert_eq!(bodies, (0..16).collect::<Vec<u64>>(), "lost deliveries");
    order
}

/// Runs the join-under-load scenario: a three-member group, a first ABCAST burst, then a
/// fourth member whose join is submitted **while a second burst is still in flight**, a
/// final burst in which the joiner also sends, and a drain.  Returns the observations.
fn run_join_under_load_scenario<R: IsisRuntime>(mut h: IsisHarness<R>) -> Vec<Obs> {
    let (tx, rx) = mpsc::channel::<Obs>();
    let gid_slot = h.allocate_group_id();
    let spawn_observer = |h: &mut IsisHarness<R>, site: u16, tx: mpsc::Sender<Obs>| {
        h.spawn(SiteId(site), move |b| {
            let tx2 = tx.clone();
            b.on_entry(APPLY, move |_ctx, msg| {
                let _ = tx.send(Obs::Delivered {
                    member: site,
                    body: msg.get_u64("body").unwrap_or(u64::MAX),
                });
            });
            b.on_view_change(gid_slot, move |_ctx, ev| {
                let _ = tx2.send(Obs::ViewInstalled {
                    member: site,
                    seq: ev.view.seq(),
                    len: ev.view.len(),
                });
            });
        })
    };
    let members: Vec<ProcessId> = (0..3u16)
        .map(|site| spawn_observer(&mut h, site, tx.clone()))
        .collect();
    h.create_group_with_id("load", gid_slot, members[0]);
    for m in &members[1..] {
        h.join_and_wait(gid_slot, *m, None, Duration::from_secs(20))
            .expect("join");
    }
    let ok = h.wait_until(Duration::from_secs(20), |h| {
        (0..3u16).all(|s| {
            h.view_of(SiteId(s), gid_slot)
                .map(|v| v.seq() == 3 && v.len() == 3)
                .unwrap_or(false)
        })
    });
    assert!(ok, "three-member view never installed everywhere");

    // Phase one: eight ABCASTs, fully delivered before the join traffic starts.
    for i in 0..8u64 {
        h.client_send(
            members[(i % 3) as usize],
            gid_slot,
            APPLY,
            Message::with_body(i),
            ProtocolKind::Abcast,
        );
    }
    let mut observations: Vec<Obs> = Vec::new();
    let ok = h.wait_until(Duration::from_secs(20), |_h| {
        while let Ok(o) = rx.try_recv() {
            observations.push(o);
        }
        observations
            .iter()
            .filter(|o| matches!(o, Obs::Delivered { .. }))
            .count()
            >= 24
    });
    assert!(ok, "phase-one deliveries incomplete: {observations:?}");

    // Phase two: eight more ABCASTs, and the fourth member joins while they are in
    // flight — the join races unstable traffic.
    for i in 8..16u64 {
        h.client_send(
            members[(i % 3) as usize],
            gid_slot,
            APPLY,
            Message::with_body(i),
            ProtocolKind::Abcast,
        );
    }
    let joiner = spawn_observer(&mut h, 3, tx.clone());
    h.join_and_wait(gid_slot, joiner, None, Duration::from_secs(20))
        .expect("join under load");

    // Phase three: the joiner is a full member and sends too.
    let all = [members[0], members[1], members[2], joiner];
    for i in 16..24u64 {
        h.client_send(
            all[(i % 4) as usize],
            gid_slot,
            APPLY,
            Message::with_body(i),
            ProtocolKind::Abcast,
        );
    }
    let ok = h.wait_until(Duration::from_secs(20), |_h| {
        while let Ok(o) = rx.try_recv() {
            observations.push(o);
        }
        // The three original members deliver all 24 bodies; the joiner delivers at least
        // the 8 post-join ones (how much of phase two lands after its cut is schedule-
        // dependent).
        (0..3u16).all(|m| {
            observations
                .iter()
                .filter(|o| matches!(o, Obs::Delivered { member, .. } if *member == m))
                .count()
                >= 24
        }) && observations
            .iter()
            .filter(|o| matches!(o, Obs::Delivered { member, .. } if *member == 3))
            .count()
            >= 8
    });
    h.settle(Duration::from_millis(50));
    while let Ok(o) = rx.try_recv() {
        observations.push(o);
    }
    assert!(
        ok,
        "join-under-load deliveries incomplete: {observations:?}"
    );
    observations
}

/// The join-under-load invariants both backends must pass: exactly-once everywhere, and
/// identical delivery orders relative to views — including at the joiner, whose log must
/// coincide with every older member's log restricted to the views the joiner belongs to.
fn check_join_under_load(observations: &[Obs]) {
    let logs = member_logs(observations, &[0, 1, 2, 3]);
    // Original members: all 24 bodies, exactly once, in identical view-tagged order from
    // the fully-formed view onward.
    for (m, log) in logs.iter().take(3).enumerate() {
        let mut bodies: Vec<u64> = log.deliveries.iter().map(|(_, b)| *b).collect();
        bodies.sort_unstable();
        assert_eq!(
            bodies,
            (0..24).collect::<Vec<u64>>(),
            "member {m} lost or duplicated deliveries"
        );
    }
    let tagged_from = |log: &MemberLog, seq: u64| -> Vec<(u64, u64)> {
        log.deliveries
            .iter()
            .copied()
            .filter(|(v, _)| *v >= seq)
            .collect()
    };
    for m in 1..3 {
        assert_eq!(
            tagged_from(&logs[0], 3),
            tagged_from(&logs[m], 3),
            "member {m} disagrees on delivery order relative to views"
        );
    }
    // The joiner: duplicate-free, and from its first view onward its entire log is
    // *identical* to every older member's log restricted to those views — the joiner sees
    // exactly the post-cut suffix of the group's history (the pre-cut prefix reaches it
    // as state, not as messages).
    let join_seq = *logs[3].views.first().expect("joiner installed a view");
    assert!(
        join_seq >= 4,
        "the joiner's first view follows the join cut"
    );
    let joiner_log = tagged_from(&logs[3], 0);
    let mut bodies: Vec<u64> = joiner_log.iter().map(|(_, b)| *b).collect();
    bodies.sort_unstable();
    let before = bodies.len();
    bodies.dedup();
    assert_eq!(before, bodies.len(), "duplicate deliveries at the joiner");
    for (m, log) in logs.iter().enumerate().take(3) {
        assert_eq!(
            tagged_from(log, join_seq),
            joiner_log,
            "joiner's delivery order diverges from member {m}'s post-cut suffix"
        );
    }
}

#[test]
fn simulated_backend_join_under_load_preserves_view_relative_order() {
    let params = NetParams::modern();
    let h = IsisHarness::new(SimRuntime::new(
        4,
        params,
        StackConfig::from_params(&params),
        ProtoConfig::fast(),
        2027,
    ));
    let obs = run_join_under_load_scenario(h);
    check_join_under_load(&obs);
}

#[test]
fn threaded_backend_join_under_load_preserves_view_relative_order() {
    let faults = FaultPlan::none()
        .with_delay(Duration::from_micros(100))
        .with_jitter(Duration::from_micros(300));
    let h = IsisHarness::new(ThreadedRuntime::new(
        4,
        ThreadedRuntime::fast_local_config(),
        ProtoConfig::fast(),
        faults,
        2027,
    ));
    let obs = run_join_under_load_scenario(h);
    check_join_under_load(&obs);
}

#[test]
fn simulated_backend_preserves_virtual_synchrony() {
    let params = NetParams::modern();
    let h = IsisHarness::new(SimRuntime::new(
        3,
        params,
        StackConfig::from_params(&params),
        ProtoConfig::fast(),
        2026,
    ));
    let obs = run_scenario(h);
    check_virtual_synchrony(&obs);
}

#[test]
fn threaded_backend_preserves_virtual_synchrony() {
    // Delay + jitter injection on top of real threads; the FIFO clamp keeps channels
    // in order, the protocols do the rest.
    let faults = FaultPlan::none()
        .with_delay(Duration::from_micros(100))
        .with_jitter(Duration::from_micros(300));
    let h = IsisHarness::new(ThreadedRuntime::new(
        3,
        ThreadedRuntime::fast_local_config(),
        ProtoConfig::fast(),
        faults,
        2026,
    ));
    let obs = run_scenario(h);
    check_virtual_synchrony(&obs);
}

// ---------------------------------------------------------------------------------------
// Crash → durable-log replay → rejoin
// ---------------------------------------------------------------------------------------
//
// A member site that fully dies (process and memory both gone) replays its on-disk
// recovery log to rebuild pre-crash state, then rejoins via state transfer.  The scenario
// pins the exactly-once partition — every message reaches the recovered member through
// exactly one of {log replay, rejoin snapshot, post-snapshot delivery} — and the recovery
// delivery *order*: the recovered member's full state order must equal every survivor's,
// because the replay preserves the pre-crash total order, the snapshot preserves the
// serving survivor's, and post-cut traffic is totally ordered ABCAST.

/// Deliveries of the recovery scenario, in phases of eight: pre-crash, while down, after
/// rejoin.
const REC_TOTAL: u64 = 24;

struct RecMirror {
    /// Every body added to the member's state, in state order.
    order: Arc<Mutex<Vec<u64>>>,
    ready: Arc<AtomicBool>,
}

struct ReplayCounters {
    replayed: Arc<AtomicU64>,
    snapshot_added: Arc<AtomicU64>,
    applies: Arc<AtomicU64>,
}

/// Spawns a group member whose state is the ordered list of delivered bodies.  With a
/// `root`, deliveries and view markers are also appended to a durable on-disk recovery log
/// (fsync'd per record), which is what the respawn leg replays.
fn spawn_durable_member<R: IsisRuntime>(
    h: &mut IsisHarness<R>,
    site: SiteId,
    gid: GroupId,
    ready: bool,
    root: Option<PathBuf>,
) -> (ProcessId, RecMirror) {
    let mirror = RecMirror {
        order: Arc::new(Mutex::new(Vec::new())),
        ready: Arc::new(AtomicBool::new(ready)),
    };
    let m_order = mirror.order.clone();
    let m_ready = mirror.ready.clone();
    let pid = h.spawn(site, move |b| {
        let rm = root.map(|r| {
            RecoveryManager::new(
                Rc::new(FileStore::new(r).expect("store").with_fsync_interval(1)),
                "recovery",
            )
        });
        if let Some(rm) = &rm {
            rm.attach_logging(b, gid);
        }
        let state: Rc<RefCell<Vec<u64>>> = Rc::new(RefCell::new(Vec::new()));
        let s_encode = state.clone();
        let s_apply = state.clone();
        let o_apply = m_order.clone();
        let xfer = StateTransfer::new(
            gid,
            move || {
                s_encode
                    .borrow()
                    .iter()
                    .map(|v| Message::new().with("rec-entry", *v))
                    .collect()
            },
            move |_ctx, block| {
                if let Some(v) = block.get_u64("rec-entry") {
                    let mut s = s_apply.borrow_mut();
                    if !s.contains(&v) {
                        s.push(v);
                        o_apply.lock().unwrap().push(v);
                    }
                }
                if block.get_bool("xfer-last").unwrap_or(false) {
                    m_ready.store(true, Ordering::Relaxed);
                }
            },
        );
        xfer.attach(b);
        if ready {
            xfer.mark_ready();
        }
        let s_update = state.clone();
        xfer.on_entry_buffered(b, APPLY, move |_ctx, msg| {
            // Log first, then apply: the test's "all delivered" observation reads the
            // mirror, so a kill can never land between a mirrored apply and its record.
            if let Some(rm) = &rm {
                let _ = rm.log_delivery(APPLY, msg);
            }
            let v = msg.get_u64("body").unwrap_or(u64::MAX);
            s_update.borrow_mut().push(v);
            m_order.lock().unwrap().push(v);
        });
    });
    (pid, mirror)
}

/// Respawns the member of a fully-dead site: reopen the on-disk store, replay the log to
/// rebuild pre-crash state, *then* wire the transfer tool and rejoin.  The counters pin
/// where each body came from.
fn respawn_recovered_member<R: IsisRuntime>(
    h: &mut IsisHarness<R>,
    site: SiteId,
    gid: GroupId,
    root: PathBuf,
) -> (ProcessId, RecMirror, ReplayCounters) {
    let mirror = RecMirror {
        order: Arc::new(Mutex::new(Vec::new())),
        ready: Arc::new(AtomicBool::new(false)),
    };
    let counters = ReplayCounters {
        replayed: Arc::new(AtomicU64::new(0)),
        snapshot_added: Arc::new(AtomicU64::new(0)),
        applies: Arc::new(AtomicU64::new(0)),
    };
    let m_order = mirror.order.clone();
    let m_ready = mirror.ready.clone();
    let c_replayed = counters.replayed.clone();
    let c_snapshot = counters.snapshot_added.clone();
    let c_applies = counters.applies.clone();
    let pid = h.spawn(site, move |b| {
        let rm = RecoveryManager::new(
            Rc::new(
                FileStore::new(root)
                    .expect("reopen store")
                    .with_fsync_interval(1),
            ),
            "recovery",
        );
        let state: Rc<RefCell<Vec<u64>>> = Rc::new(RefCell::new(Vec::new()));
        // Replay before anything else: the durable log rebuilds the pre-crash state in
        // delivery order.
        {
            let s = state.clone();
            let o = m_order.clone();
            let summary = rm
                .replay(|entry, payload| {
                    if entry == APPLY {
                        let v = payload.get_u64("body").unwrap_or(u64::MAX);
                        s.borrow_mut().push(v);
                        o.lock().unwrap().push(v);
                    }
                })
                .expect("replay");
            c_replayed.store(summary.messages as u64, Ordering::Relaxed);
        }
        rm.attach_logging(b, gid);
        let s_encode = state.clone();
        let s_apply = state.clone();
        let o_apply = m_order.clone();
        let xfer = StateTransfer::new(
            gid,
            move || {
                s_encode
                    .borrow()
                    .iter()
                    .map(|v| Message::new().with("rec-entry", *v))
                    .collect()
            },
            move |_ctx, block| {
                if let Some(v) = block.get_u64("rec-entry") {
                    let mut s = s_apply.borrow_mut();
                    // The rejoin snapshot overlaps the replayed prefix; only genuinely new
                    // bodies count as snapshot-recovered.
                    if !s.contains(&v) {
                        s.push(v);
                        o_apply.lock().unwrap().push(v);
                        c_snapshot.fetch_add(1, Ordering::Relaxed);
                    }
                }
                if block.get_bool("xfer-last").unwrap_or(false) {
                    m_ready.store(true, Ordering::Relaxed);
                }
            },
        );
        xfer.attach(b);
        let s_update = state.clone();
        xfer.on_entry_buffered(b, APPLY, move |_ctx, msg| {
            let _ = rm.log_delivery(APPLY, msg);
            let v = msg.get_u64("body").unwrap_or(u64::MAX);
            s_update.borrow_mut().push(v);
            m_order.lock().unwrap().push(v);
            c_applies.fetch_add(1, Ordering::Relaxed);
        });
    });
    (pid, mirror, counters)
}

/// Runs the crash → replay → rejoin scenario and returns the three members' state orders
/// plus the recovered member's partition counters.
fn run_recovery_scenario<R: IsisRuntime>(
    mut h: IsisHarness<R>,
    root: &std::path::Path,
) -> (Vec<Vec<u64>>, [u64; 3]) {
    let gid = h.allocate_group_id();
    let (m0, c0) = spawn_durable_member(&mut h, SiteId(0), gid, true, None);
    h.create_group_with_id("rec", gid, m0);
    let (m1, c1) = spawn_durable_member(&mut h, SiteId(1), gid, false, None);
    h.join_and_wait(gid, m1, None, Duration::from_secs(20))
        .expect("join m1");
    let (m2, c2) = spawn_durable_member(&mut h, SiteId(2), gid, false, Some(root.to_path_buf()));
    h.join_and_wait(gid, m2, None, Duration::from_secs(20))
        .expect("join m2");
    let ok = h.wait_until(Duration::from_secs(20), |_| {
        c1.ready.load(Ordering::Relaxed) && c2.ready.load(Ordering::Relaxed)
    });
    assert!(ok, "initial transfers never completed");

    let order_len = |c: &RecMirror| c.order.lock().unwrap().len() as u64;

    // Phase one: eight ABCASTs, logged durably at site 2, delivered everywhere.
    for i in 0..8u64 {
        h.client_send(
            [m0, m1, m2][(i % 3) as usize],
            gid,
            APPLY,
            Message::with_body(i),
            ProtocolKind::Abcast,
        );
    }
    let ok = h.wait_until(Duration::from_secs(20), |_| {
        [&c0, &c1, &c2].iter().all(|c| order_len(c) == 8)
    });
    assert!(ok, "phase-one deliveries incomplete");

    // Full site death: process, memory and in-flight state all gone; only the disk log
    // survives.
    h.rt.kill_site(SiteId(2));
    let ok = h.wait_until(Duration::from_secs(30), |h| {
        [0u16, 1].iter().all(|s| {
            h.view_of(SiteId(*s), gid)
                .map(|v| v.len() == 2)
                .unwrap_or(false)
        })
    });
    assert!(ok, "survivors never installed the post-crash view");

    // Phase two: eight more ABCASTs the dead site misses entirely.
    for i in 8..16u64 {
        h.client_send(
            [m0, m1][(i % 2) as usize],
            gid,
            APPLY,
            Message::with_body(i),
            ProtocolKind::Abcast,
        );
    }
    // Quiesce before the rejoin so the cut is clean: phase two fully delivered *and*
    // stable, which forces the partition counters to exact values below.
    let ok = h.wait_until(Duration::from_secs(20), |h| {
        order_len(&c0) == 16 && order_len(&c1) == 16 && h.unstable_count(SiteId(0), gid) == 0
    });
    assert!(ok, "phase-two deliveries never stabilised");

    // Respawn: fresh stack, fresh process, state rebuilt from the disk log, rejoin via
    // state transfer.
    h.rt.recover_site(SiteId(2));
    let (r2, c2b, counters) = respawn_recovered_member(&mut h, SiteId(2), gid, root.to_path_buf());
    h.query(SiteId(2), move |stack, _now, _out| {
        // The fresh stack lost its namespace cache; both survivor sites as contacts.
        stack.register_group("rec", gid, vec![SiteId(0), SiteId(1)]);
    });
    h.join_and_wait(gid, r2, None, Duration::from_secs(20))
        .expect("rejoin after replay");
    let ok = h.wait_until(Duration::from_secs(20), |_| {
        c2b.ready.load(Ordering::Relaxed)
    });
    assert!(ok, "rejoin transfer never completed");

    // Phase three: eight more ABCASTs, the recovered member sending too.
    for i in 16..REC_TOTAL {
        h.client_send(
            [m0, m1, r2][(i % 3) as usize],
            gid,
            APPLY,
            Message::with_body(i),
            ProtocolKind::Abcast,
        );
    }
    let ok = h.wait_until(Duration::from_secs(20), |_| {
        [&c0, &c1, &c2b].iter().all(|c| order_len(c) == REC_TOTAL)
    });
    assert!(ok, "phase-three deliveries incomplete");
    h.settle(Duration::from_millis(50));

    let orders = [&c0, &c1, &c2b]
        .iter()
        .map(|c| c.order.lock().unwrap().clone())
        .collect();
    (
        orders,
        [
            counters.replayed.load(Ordering::Relaxed),
            counters.snapshot_added.load(Ordering::Relaxed),
            counters.applies.load(Ordering::Relaxed),
        ],
    )
}

/// The invariants the recovery scenario must satisfy on every backend.
fn check_recovery(orders: &[Vec<u64>], partition: [u64; 3]) {
    // Identical recovery delivery orders: replay preserves the pre-crash prefix, the
    // snapshot the serving survivor's order, post-cut ABCAST the total order — so all
    // three full state orders coincide.
    assert_eq!(orders[0], orders[1], "survivors disagree on delivery order");
    assert_eq!(
        orders[0], orders[2],
        "recovered member's state order diverges from the survivors'"
    );
    let mut bodies = orders[2].clone();
    bodies.sort_unstable();
    assert_eq!(
        bodies,
        (0..REC_TOTAL).collect::<Vec<u64>>(),
        "recovered member lost or duplicated deliveries"
    );
    // The exactly-once partition, pinned to exact per-phase counts by the quiesced cut:
    // phase one arrives via the replayed log, phase two via the rejoin snapshot, phase
    // three via post-snapshot delivery.
    assert_eq!(partition, [8, 8, 8], "recovery partition off");
    assert_eq!(
        partition.iter().sum::<u64>(),
        REC_TOTAL,
        "log-replayed + snapshot + post-snapshot applies must equal the total"
    );
}

fn recovery_root(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("vsync-recovery-{tag}-{}", std::process::id()))
}

#[test]
fn simulated_backend_recovers_from_its_durable_log() {
    let root = recovery_root("sim");
    let _ = std::fs::remove_dir_all(&root);
    let params = NetParams::modern();
    let h = IsisHarness::new(SimRuntime::new(
        3,
        params,
        StackConfig::from_params(&params),
        ProtoConfig::fast(),
        2026,
    ));
    let (orders, partition) = run_recovery_scenario(h, &root);
    check_recovery(&orders, partition);
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn threaded_backend_recovers_from_its_durable_log() {
    let root = recovery_root("threaded");
    let _ = std::fs::remove_dir_all(&root);
    let faults = FaultPlan::none()
        .with_delay(Duration::from_micros(100))
        .with_jitter(Duration::from_micros(300));
    let h = IsisHarness::new(ThreadedRuntime::new(
        3,
        ThreadedRuntime::fast_local_config(),
        ProtoConfig::fast(),
        faults,
        2027,
    ));
    let (orders, partition) = run_recovery_scenario(h, &root);
    check_recovery(&orders, partition);
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn both_backends_deliver_the_same_message_set() {
    let params = NetParams::modern();
    let sim_obs = run_scenario(IsisHarness::new(SimRuntime::new(
        3,
        params,
        StackConfig::from_params(&params),
        ProtoConfig::fast(),
        2026,
    )));
    let sim_order = check_virtual_synchrony(&sim_obs);
    let thr_obs = run_scenario(IsisHarness::new(ThreadedRuntime::new(
        3,
        ThreadedRuntime::fast_local_config(),
        ProtoConfig::fast(),
        FaultPlan::none(),
        2026,
    )));
    let thr_order = check_virtual_synchrony(&thr_obs);
    // Both backends deliver exactly the same set; each backend's order is a valid total
    // order but the two need not coincide (the threaded schedule is the OS's).
    let set = |v: &[u64]| {
        let mut s = v.to_vec();
        s.sort_unstable();
        s
    };
    assert_eq!(set(&sim_order), set(&thr_order));
}

// ---------------------------------------------------------------------------------------
// Partition → wedge → heal → rejoin
// ---------------------------------------------------------------------------------------
//
// The same primary-partition contract on both backends: a symmetric cut exiles the
// minority member (the majority flushes it out; the minority wedges instead of forming a
// rump view), and after the heal the exile discards its tail and rejoins through a state
// transfer.  Conformance is again the invariant, not the schedule: the continuous members'
// view-tagged delivery logs stay identical, and the rejoined member's *body order* equals
// theirs — phase-one live deliveries, then the exile-gap bodies in the snapshot server's
// state order (which is the majority's delivery order), then post-heal traffic.

/// Spawns a member whose replicated state is the ordered list of delivered bodies, wired
/// through `StateTransfer` so a heal-rejoin can catch it up exactly once.
fn spawn_partition_member<R: IsisRuntime>(
    h: &mut IsisHarness<R>,
    site: u16,
    gid: GroupId,
    ready: bool,
    tx: mpsc::Sender<Obs>,
) -> ProcessId {
    h.spawn(SiteId(site), move |b| {
        let state: Rc<RefCell<Vec<u64>>> = Rc::new(RefCell::new(Vec::new()));
        let s_encode = state.clone();
        let s_apply = state.clone();
        let tx_apply = tx.clone();
        let xfer = StateTransfer::new(
            gid,
            move || {
                s_encode
                    .borrow()
                    .iter()
                    .map(|v| Message::new().with("ph-entry", *v))
                    .collect()
            },
            move |_ctx, block| {
                if let Some(v) = block.get_u64("ph-entry") {
                    let mut s = s_apply.borrow_mut();
                    // A rejoin snapshot overlaps the prefix the exile already delivered.
                    if !s.contains(&v) {
                        s.push(v);
                        let _ = tx_apply.send(Obs::Delivered {
                            member: site,
                            body: v,
                        });
                    }
                }
            },
        );
        xfer.attach(b);
        if ready {
            xfer.mark_ready();
        }
        let s_update = state.clone();
        let tx_deliver = tx.clone();
        xfer.on_entry_buffered(b, APPLY, move |_ctx, msg| {
            let v = msg.get_u64("body").unwrap_or(u64::MAX);
            s_update.borrow_mut().push(v);
            let _ = tx_deliver.send(Obs::Delivered {
                member: site,
                body: v,
            });
        });
        b.on_view_change(gid, move |_ctx, ev| {
            let _ = tx.send(Obs::ViewInstalled {
                member: site,
                seq: ev.view.seq(),
                len: ev.view.len(),
            });
        });
    })
}

/// Cut `{0,1} | {2}`, run majority traffic while the minority is wedged, heal, and demand
/// full convergence plus a post-heal burst in which the rejoined member also sends.
fn run_partition_heal_scenario<R: IsisRuntime>(mut h: IsisHarness<R>) -> Vec<Obs> {
    let (tx, rx) = mpsc::channel::<Obs>();
    let gid = h.allocate_group_id();
    let members: Vec<ProcessId> = (0..3u16)
        .map(|site| spawn_partition_member(&mut h, site, gid, site == 0, tx.clone()))
        .collect();
    h.create_group_with_id("part-conf", gid, members[0]);
    for m in &members[1..] {
        h.join_and_wait(gid, *m, None, Duration::from_secs(20))
            .expect("join");
    }
    let ok = h.wait_until(Duration::from_secs(20), |h| {
        (0..3u16).all(|s| {
            h.view_of(SiteId(s), gid)
                .map(|v| v.seq() == 3 && v.len() == 3)
                .unwrap_or(false)
        })
    });
    assert!(ok, "three-member view never installed everywhere");

    let mut observations: Vec<Obs> = Vec::new();
    let drain = |obs: &mut Vec<Obs>, rx: &mpsc::Receiver<Obs>| {
        while let Ok(o) = rx.try_recv() {
            obs.push(o);
        }
    };
    let delivered = |obs: &[Obs], member: u16| -> usize {
        let mut bodies: Vec<u64> = obs
            .iter()
            .filter_map(|o| match o {
                Obs::Delivered { member: m, body } if *m == member => Some(*body),
                _ => None,
            })
            .collect();
        bodies.sort_unstable();
        bodies.dedup();
        bodies.len()
    };

    // Phase one: six ABCASTs from all three members, fully delivered before the cut.
    for i in 0..6u64 {
        h.client_send(
            members[(i % 3) as usize],
            gid,
            APPLY,
            Message::with_body(i),
            ProtocolKind::Abcast,
        );
    }
    let ok = h.wait_until(Duration::from_secs(20), |_h| {
        drain(&mut observations, &rx);
        (0..3u16).all(|m| delivered(&observations, m) >= 6)
    });
    assert!(ok, "phase-one deliveries incomplete");

    // Cut the third member away and hold the cut open (no scheduled heal): the cut lasts
    // exactly as long as the scenario needs it to, on either backend's clock.
    h.run_nemesis(&NemesisSchedule::new().at(
        Duration::from_millis(10),
        NemesisEvent::Partition {
            components: vec![vec![SiteId(0), SiteId(1)], vec![SiteId(2)]],
        },
    ));
    let ok = h.wait_until(Duration::from_secs(30), |h| {
        [0u16, 1].iter().all(|s| {
            h.view_of(SiteId(*s), gid)
                .map(|v| v.len() == 2)
                .unwrap_or(false)
        })
    });
    assert!(ok, "the majority never cut the minority out");

    // Phase two: majority-only traffic while the exile is wedged.
    for i in 6..12u64 {
        h.client_send(
            members[(i % 2) as usize],
            gid,
            APPLY,
            Message::with_body(i),
            ProtocolKind::Abcast,
        );
    }
    let ok = h.wait_until(Duration::from_secs(20), |_h| {
        drain(&mut observations, &rx);
        [0u16, 1].iter().all(|m| delivered(&observations, *m) >= 12)
    });
    assert!(ok, "phase-two survivor deliveries incomplete");

    // Heal.  The wedged exile learns of the primary's view, discards its tail, rejoins,
    // and catches up through the snapshot.
    h.run_nemesis(&NemesisSchedule::new().at(Duration::from_millis(1), NemesisEvent::Heal));
    let ok = h.wait_until(Duration::from_secs(60), |h| {
        drain(&mut observations, &rx);
        (0..3u16).all(|s| {
            h.view_of(SiteId(s), gid)
                .map(|v| members.iter().all(|m| v.contains(*m)))
                .unwrap_or(false)
        }) && delivered(&observations, 2) >= 12
    });
    assert!(ok, "the exiled member never rejoined and converged");

    // Phase three: everyone sends, including the rejoined member.
    for i in 12..18u64 {
        h.client_send(
            members[(i % 3) as usize],
            gid,
            APPLY,
            Message::with_body(i),
            ProtocolKind::Abcast,
        );
    }
    let ok = h.wait_until(Duration::from_secs(20), |_h| {
        drain(&mut observations, &rx);
        (0..3u16).all(|m| delivered(&observations, m) >= 18)
    });
    assert!(ok, "phase-three deliveries incomplete");
    h.settle(Duration::from_millis(50));
    drain(&mut observations, &rx);
    observations
}

fn check_partition_heal(observations: &[Obs]) {
    let logs = member_logs(observations, &[0, 1, 2]);
    // The continuous members observe identical view sequences from the fully-formed view
    // on (3-member, cut to 2, back to 3) and identical view-tagged delivery orders.
    let views_from_full =
        |log: &MemberLog| -> Vec<u64> { log.views.iter().copied().filter(|s| *s >= 3).collect() };
    assert_eq!(
        views_from_full(&logs[0]),
        views_from_full(&logs[1]),
        "continuous members disagree on the view sequence"
    );
    assert_eq!(
        logs[0].deliveries, logs[1].deliveries,
        "continuous members disagree on delivery order relative to views"
    );
    // Every member — including the exile — ends with the same duplicate-free body order:
    // the snapshot hands the exile the gap bodies in the majority's state order.
    for (m, log) in logs.iter().enumerate() {
        let bodies: Vec<u64> = log.deliveries.iter().map(|(_, b)| *b).collect();
        let mut sorted = bodies.clone();
        sorted.sort_unstable();
        let before = sorted.len();
        sorted.dedup();
        assert_eq!(before, sorted.len(), "member {m} delivered a duplicate");
        assert_eq!(
            sorted,
            (0..18).collect::<Vec<u64>>(),
            "member {m} lost bodies"
        );
    }
    let order = |log: &MemberLog| -> Vec<u64> { log.deliveries.iter().map(|(_, b)| *b).collect() };
    assert_eq!(
        order(&logs[2]),
        order(&logs[0]),
        "the rejoined member's body order diverged from the primary's"
    );
}

#[test]
fn simulated_backend_conforms_across_a_partition_heal_cycle() {
    let params = NetParams::modern();
    let obs = run_partition_heal_scenario(IsisHarness::new(SimRuntime::new(
        3,
        params,
        StackConfig::from_params(&params),
        ProtoConfig::fast(),
        2027,
    )));
    check_partition_heal(&obs);
}

#[test]
fn threaded_backend_conforms_across_a_partition_heal_cycle() {
    let faults = FaultPlan::none()
        .with_delay(Duration::from_micros(100))
        .with_jitter(Duration::from_micros(300));
    let obs = run_partition_heal_scenario(IsisHarness::new(ThreadedRuntime::new(
        3,
        ThreadedRuntime::fast_local_config(),
        ProtoConfig::fast(),
        faults,
        2027,
    )));
    check_partition_heal(&obs);
}

#[test]
fn one_way_cut_exiles_the_silenced_member_without_a_wedge() {
    // Asymmetric failure: site 2 can still *hear* the majority but the majority cannot
    // hear it.  The majority suspects the silent member and cuts it; the member itself
    // never loses its majority (it hears every heartbeat), so it never wedges — it learns
    // of its exile from the commit that excludes it and goes straight to rejoin, which
    // stalls on the outbound cut until the heal.
    let params = NetParams::modern();
    let mut h = IsisHarness::new(SimRuntime::new(
        3,
        params,
        StackConfig::from_params(&params),
        ProtoConfig::fast(),
        2028,
    ));
    let (tx, rx) = mpsc::channel::<Obs>();
    let gid = h.allocate_group_id();
    let members: Vec<ProcessId> = (0..3u16)
        .map(|site| spawn_partition_member(&mut h, site, gid, site == 0, tx.clone()))
        .collect();
    h.create_group_with_id("oneway", gid, members[0]);
    for m in &members[1..] {
        h.join_and_wait(gid, *m, None, Duration::from_secs(20))
            .expect("join");
    }

    let mut observations: Vec<Obs> = Vec::new();
    let delivered = |obs: &[Obs], member: u16| -> Vec<u64> {
        obs.iter()
            .filter_map(|o| match o {
                Obs::Delivered { member: m, body } if *m == member => Some(*body),
                _ => None,
            })
            .collect()
    };

    // A fully delivered burst before the cut.
    for i in 0..6u64 {
        h.client_send(
            members[(i % 3) as usize],
            gid,
            APPLY,
            Message::with_body(i),
            ProtocolKind::Abcast,
        );
    }
    let ok = h.wait_until(Duration::from_secs(20), |_h| {
        while let Ok(o) = rx.try_recv() {
            observations.push(o);
        }
        (0..3u16).all(|m| delivered(&observations, m).len() >= 6)
    });
    assert!(ok, "pre-cut deliveries incomplete");

    h.run_nemesis(&NemesisSchedule::new().at(
        Duration::from_millis(10),
        NemesisEvent::OneWayCut {
            from: vec![SiteId(2)],
            to: vec![SiteId(0), SiteId(1)],
        },
    ));
    let ok = h.wait_until(Duration::from_secs(30), |h| {
        [0u16, 1].iter().all(|s| {
            h.view_of(SiteId(*s), gid)
                .map(|v| v.len() == 2)
                .unwrap_or(false)
        })
    });
    assert!(ok, "the majority never cut the silenced member");
    assert_eq!(
        h.rt.stats().minority_wedges,
        0,
        "the silenced member hears the majority and must not wedge"
    );

    // Heal the outbound direction; the pending rejoin can now reach a contact.
    h.run_nemesis(&NemesisSchedule::new().at(Duration::from_millis(1), NemesisEvent::Heal));
    let ok = h.wait_until(Duration::from_secs(60), |h| {
        (0..3u16).all(|s| {
            h.view_of(SiteId(s), gid)
                .map(|v| members.iter().all(|m| v.contains(*m)))
                .unwrap_or(false)
        })
    });
    assert!(ok, "the exiled member never rejoined after the heal");
    assert!(
        h.rt.stats().rejoins_after_heal >= 1,
        "the rejoin path was not taken"
    );

    // Post-heal traffic from everyone lands everywhere, in one order.
    for i in 6..12u64 {
        h.client_send(
            members[(i % 3) as usize],
            gid,
            APPLY,
            Message::with_body(i),
            ProtocolKind::Abcast,
        );
    }
    let ok = h.wait_until(Duration::from_secs(20), |_h| {
        while let Ok(o) = rx.try_recv() {
            observations.push(o);
        }
        (0..3u16).all(|m| {
            let mut b = delivered(&observations, m);
            b.sort_unstable();
            b.dedup();
            b.len() >= 12
        })
    });
    assert!(ok, "post-heal deliveries incomplete");
    h.settle(Duration::from_millis(50));
    while let Ok(o) = rx.try_recv() {
        observations.push(o);
    }
    let logs = member_logs(&observations, &[0, 1, 2]);
    for (m, log) in logs.iter().enumerate() {
        let bodies: Vec<u64> = log.deliveries.iter().map(|(_, b)| *b).collect();
        let mut sorted = bodies.clone();
        sorted.sort_unstable();
        let before = sorted.len();
        sorted.dedup();
        assert_eq!(before, sorted.len(), "member {m} delivered a duplicate");
        assert_eq!(
            sorted,
            (0..12).collect::<Vec<u64>>(),
            "member {m} lost bodies"
        );
    }
}
