//! Property test: joining a group at a **random instant inside an ongoing multicast
//! burst** is exactly-once (simulated backend, seeded).
//!
//! Every case runs the same scenario — a two-member group blasting interleaved CBCAST and
//! ABCAST increments, with a third member whose join is injected at a randomized point of
//! the burst — under a randomized network schedule.  Whatever the interleaving, the
//! virtual-synchrony contract must hold: the joiner's snapshot is taken at the view cut,
//! the flush's redelivery of snapshot-covered messages is suppressed at the joining
//! endpoint, and post-cut messages are buffered until the snapshot lands.  The pinned
//! property is the application-visible one: **every member's applied-message multiset is
//! identical and duplicate-free** — no message is lost, replayed, or double-applied, no
//! matter when the join happened.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

use proptest::prelude::*;
use vsync::core::{Duration, EntryId, Message, ProcessId, ProtocolKind, SiteId, StackConfig};
use vsync::proto::ProtoConfig;
use vsync::rt::{IsisHarness, IsisRuntime, SimRuntime};
use vsync::tools::StateTransfer;
use vsync::util::NetParams;

const APPLY: EntryId = EntryId(3);
/// Messages in the burst the join is injected into.
const TOTAL: u64 = 16;

/// A spawned member: its id, shared applied-body log, and transfer-complete mirror.
type Member = (ProcessId, Arc<Mutex<Vec<u64>>>, Arc<AtomicBool>);

fn sim_harness(seed: u64) -> IsisHarness<SimRuntime> {
    let params = NetParams::modern();
    IsisHarness::new(SimRuntime::new(
        3,
        params,
        StackConfig::from_params(&params),
        ProtoConfig::fast(),
        seed,
    ))
}

/// Spawns a member whose state is the ordered log of applied message bodies.  The log is
/// transferred on join; the APPLY entry is buffered until the member's snapshot is in
/// place.
fn spawn_log_member(
    h: &mut IsisHarness<SimRuntime>,
    site: SiteId,
    gid: vsync::core::GroupId,
    ready: bool,
) -> Member {
    let log: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::new()));
    let ready_mirror = Arc::new(AtomicBool::new(ready));
    let log2 = log.clone();
    let ready2 = ready_mirror.clone();
    let pid = h.spawn(site, move |b| {
        let l_encode = log2.clone();
        let l_apply = log2.clone();
        let r_apply = ready2.clone();
        let xfer = StateTransfer::new(
            gid,
            move || vec![Message::new().with("log", l_encode.lock().unwrap().clone())],
            move |_ctx, block| {
                if let Some(snapshot) = block.get_u64_list("log") {
                    *l_apply.lock().unwrap() = snapshot.to_vec();
                }
                if block.get_bool("xfer-last").unwrap_or(false) {
                    r_apply.store(true, Ordering::Relaxed);
                }
            },
        );
        xfer.attach(b);
        if ready {
            xfer.mark_ready();
        }
        let l_update = log2.clone();
        xfer.on_entry_buffered(b, APPLY, move |_ctx, msg| {
            l_update
                .lock()
                .unwrap()
                .push(msg.get_u64("body").unwrap_or(u64::MAX));
        });
    });
    (pid, log, ready_mirror)
}

/// Runs one seeded scenario with the join submitted after `join_after` of the burst's
/// `TOTAL` sends (`join_after > TOTAL` degenerates to a join after the whole burst is in
/// flight).  Panics if any member's applied multiset is wrong.
fn join_races_burst(seed: u64, join_after: u64) {
    let mut h = sim_harness(seed);
    let gid = h.allocate_group_id();
    let (m0, log0, _) = spawn_log_member(&mut h, SiteId(0), gid, true);
    h.create_group_with_id("load", gid, m0);
    let (m1, log1, ready1) = spawn_log_member(&mut h, SiteId(1), gid, false);
    h.join_and_wait(gid, m1, None, Duration::from_secs(10))
        .expect("first join");
    assert!(
        h.wait_until(Duration::from_secs(10), |_| ready1.load(Ordering::Relaxed)),
        "first transfer never completed"
    );

    // The burst, with the joiner injected mid-flight.  Sends execute immediately at the
    // sender; the tiny settles let the join's flush interleave with in-flight traffic
    // instead of everything happening at one instant.
    let senders = [m0, m1];
    let mut joiner: Option<Member> = None;
    fn submit_join(h: &mut IsisHarness<SimRuntime>, gid: vsync::core::GroupId) -> Member {
        let (pid, log, ready) = spawn_log_member(h, SiteId(2), gid, false);
        h.rt.with_stack_job(
            SiteId(2),
            Box::new(move |stack, _now, out| {
                stack
                    .join_group(gid, pid, None, out)
                    .expect("join submitted");
            }),
        );
        (pid, log, ready)
    }
    for i in 0..TOTAL {
        if i == join_after {
            joiner = Some(submit_join(&mut h, gid));
        }
        let protocol = if i % 2 == 0 {
            ProtocolKind::Cbcast
        } else {
            ProtocolKind::Abcast
        };
        h.client_send(
            senders[(i % 2) as usize],
            gid,
            APPLY,
            Message::with_body(i),
            protocol,
        );
        h.settle(Duration::from_micros(500));
    }
    let (jid, log2, ready2) = joiner.unwrap_or_else(|| submit_join(&mut h, gid));

    // Everyone converges: the joiner is a member, its transfer completed, and all three
    // logs hold the full burst.
    let ok = h.wait_until(Duration::from_secs(20), |h| {
        h.view_of(SiteId(2), gid)
            .map(|v| v.contains(jid))
            .unwrap_or(false)
    });
    assert!(
        ok,
        "seed {seed}, join_after {join_after}: join never installed"
    );
    let ok = h.wait_until(Duration::from_secs(20), |_| {
        ready2.load(Ordering::Relaxed)
            && log0.lock().unwrap().len() == TOTAL as usize
            && log1.lock().unwrap().len() == TOTAL as usize
            && log2.lock().unwrap().len() == TOTAL as usize
    });
    let snapshot = |l: &Arc<Mutex<Vec<u64>>>| l.lock().unwrap().clone();
    assert!(
        ok,
        "seed {seed}, join_after {join_after}: logs never converged \
         (m0={:?}, m1={:?}, joiner={:?}, ready={})",
        snapshot(&log0),
        snapshot(&log1),
        snapshot(&log2),
        ready2.load(Ordering::Relaxed),
    );

    // The property: identical, duplicate-free applied multisets at every member.
    let want: Vec<u64> = (0..TOTAL).collect();
    for (who, log) in [("m0", &log0), ("m1", &log1), ("joiner", &log2)] {
        let mut multiset = snapshot(log);
        multiset.sort_unstable();
        assert_eq!(
            multiset, want,
            "seed {seed}, join_after {join_after}: {who} applied a wrong multiset"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24 })]
    #[test]
    fn randomized_join_instants_are_exactly_once(
        seed in 0u64..1_000_000,
        join_after in 0u64..(TOTAL + 2),
    ) {
        join_races_burst(seed, join_after);
    }
}

/// The corner instants (join before the first send, join after the last) are always part
/// of the suite, independent of what the randomized cases drew.
#[test]
fn boundary_join_instants_are_exactly_once() {
    join_races_burst(7, 0);
    join_races_burst(11, TOTAL);
}
