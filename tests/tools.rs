//! Integration: the toolkit tools running over real (simulated) groups — replicated data,
//! configuration, semaphores, news, bulletin boards.

use std::cell::RefCell;
use std::rc::Rc;

use vsync_core::{Duration, EntryId, IsisSystem, LatencyProfile, Message, ProcessId, SiteId};
use vsync_tools::{
    BulletinBoard, ConfigTool, NewsService, ReplicatedData, SemaphoreTool, SiteMonitor,
    UpdateOrdering,
};

const DATA: EntryId = EntryId(60);
const CFG: EntryId = EntryId(61);
const SEM: EntryId = EntryId(62);
const NEWS: EntryId = EntryId(63);
const BB: EntryId = EntryId(64);

struct Member {
    pid: ProcessId,
    data: ReplicatedData,
    cfg: ConfigTool,
    sem: SemaphoreTool,
    news: NewsService,
    bb: BulletinBoard,
    monitor: SiteMonitor,
}

fn deploy(n: usize) -> (IsisSystem, vsync_core::GroupId, Vec<Member>) {
    let mut sys = IsisSystem::new(n, LatencyProfile::Modern);
    let gid = sys.allocate_group_id();
    let mut members = Vec::new();
    for i in 0..n {
        let data = ReplicatedData::new(gid, DATA, UpdateOrdering::Total);
        let cfg = ConfigTool::new(gid, CFG);
        let sem = SemaphoreTool::new(gid, SEM);
        sem.define("mutex", 1);
        let news = NewsService::new(gid, NEWS);
        let bb = BulletinBoard::new(gid, BB);
        let monitor = SiteMonitor::new(gid);
        let (d, c, s, nw, b, m) = (
            data.clone(),
            cfg.clone(),
            sem.clone(),
            news.clone(),
            bb.clone(),
            monitor.clone(),
        );
        let pid = sys.spawn(SiteId(i as u16), move |builder| {
            d.attach(builder);
            c.attach(builder);
            s.attach(builder);
            nw.attach(builder);
            b.attach(builder);
            m.attach(builder);
        });
        if i == 0 {
            sys.create_group_with_id("tools", gid, pid);
        } else {
            sys.join_and_wait(gid, pid, None, Duration::from_secs(5))
                .unwrap();
        }
        members.push(Member {
            pid,
            data,
            cfg,
            sem,
            news,
            bb,
            monitor,
        });
    }
    sys.run_ms(50);
    (sys, gid, members)
}

#[test]
fn replicated_data_converges_at_every_member() {
    let (mut sys, gid, members) = deploy(3);
    // Drive updates through the tool by sending the tool's own wire format from a member.
    sys.client_send(
        members[0].pid,
        gid,
        DATA,
        Message::new()
            .with("rd-item", "inventory")
            .with("rd-value", 42u64),
        vsync_core::ProtocolKind::Abcast,
    );
    sys.run_ms(500);
    for (i, m) in members.iter().enumerate() {
        assert_eq!(m.data.read_u64("inventory"), Some(42), "member {i}");
        assert_eq!(m.data.updates_applied(), 1, "member {i}");
    }
}

#[test]
fn configuration_changes_are_seen_by_every_member() {
    let (mut sys, gid, members) = deploy(3);
    sys.client_send(
        members[1].pid,
        gid,
        CFG,
        Message::new()
            .with("cfg-item", "nworkers")
            .with("cfg-value", 7u64),
        vsync_core::ProtocolKind::Gbcast,
    );
    sys.run_ms(500);
    for (i, m) in members.iter().enumerate() {
        assert_eq!(m.cfg.read_u64("nworkers"), Some(7), "member {i}");
        assert_eq!(m.cfg.version(), 1, "member {i}");
    }
}

#[test]
fn semaphore_grants_are_mutually_exclusive_and_fifo() {
    let (mut sys, gid, members) = deploy(3);
    // Two members request the mutex; the requests travel by ABCAST so everyone agrees who
    // holds it and who queues.
    for idx in [0usize, 1] {
        sys.client_send(
            members[idx].pid,
            gid,
            SEM,
            Message::new()
                .with("sem-name", "mutex")
                .with("sem-op", "P")
                .with("sem-proc", members[idx].pid),
            vsync_core::ProtocolKind::Abcast,
        );
    }
    sys.run_ms(500);
    let holders: Vec<_> = members.iter().map(|m| m.sem.holders("mutex")).collect();
    assert!(
        holders.windows(2).all(|w| w[0] == w[1]),
        "holder sets diverged: {holders:?}"
    );
    assert_eq!(holders[0].len(), 1);
    assert_eq!(members[0].sem.queue_len("mutex"), 1);
    // Release: the queued requester is granted at every member.
    let holder = holders[0][0];
    sys.client_send(
        members[0].pid,
        gid,
        SEM,
        Message::new()
            .with("sem-name", "mutex")
            .with("sem-op", "V")
            .with("sem-proc", holder),
        vsync_core::ProtocolKind::Abcast,
    );
    sys.run_ms(500);
    for m in &members {
        assert_eq!(m.sem.holders("mutex").len(), 1);
        assert_ne!(m.sem.holders("mutex")[0], holder);
        assert_eq!(m.sem.queue_len("mutex"), 0);
    }
}

#[test]
fn semaphore_held_by_a_failed_member_is_released() {
    let (mut sys, gid, members) = deploy(3);
    sys.client_send(
        members[2].pid,
        gid,
        SEM,
        Message::new()
            .with("sem-name", "mutex")
            .with("sem-op", "P")
            .with("sem-proc", members[2].pid),
        vsync_core::ProtocolKind::Abcast,
    );
    sys.run_ms(500);
    assert_eq!(members[0].sem.holders("mutex"), vec![members[2].pid]);
    sys.kill_process(members[2].pid);
    let ok = sys.run_until_condition(Duration::from_secs(10), |s| {
        s.view_of(SiteId(0), gid)
            .map(|v| v.len() == 2)
            .unwrap_or(false)
    });
    assert!(ok);
    sys.run_ms(100);
    for m in &members[..2] {
        assert!(
            m.sem.holders("mutex").is_empty(),
            "failed holder must be auto-released"
        );
        assert_eq!(m.sem.auto_releases(), 1);
    }
}

#[test]
fn news_postings_arrive_in_the_same_order_for_every_subscriber() {
    let (mut sys, gid, members) = deploy(3);
    let seen: Vec<Rc<RefCell<Vec<u64>>>> =
        (0..3).map(|_| Rc::new(RefCell::new(Vec::new()))).collect();
    for (m, s) in members.iter().zip(&seen) {
        let s = s.clone();
        m.news.subscribe("alerts", move |_ctx, msg| {
            s.borrow_mut().push(msg.get_u64("body").unwrap_or(0));
        });
    }
    for i in 0..5u64 {
        let poster = &members[(i % 3) as usize];
        sys.client_send(
            poster.pid,
            gid,
            NEWS,
            Message::with_body(i).with("news-subject", "alerts"),
            vsync_core::ProtocolKind::Abcast,
        );
    }
    sys.run_ms(1_000);
    let reference = seen[0].borrow().clone();
    assert_eq!(reference.len(), 5);
    for s in &seen[1..] {
        assert_eq!(
            *s.borrow(),
            reference,
            "subscribers observed different posting orders"
        );
    }
    // Unsubscribed subjects are not delivered to callbacks but are kept in the history.
    assert_eq!(members[0].news.posts_seen(), 5);
    assert_eq!(members[0].news.history("alerts").len(), 5);
}

#[test]
fn bulletin_board_replicates_postings_in_order() {
    let (mut sys, gid, members) = deploy(2);
    for i in 0..4u64 {
        sys.client_send(
            members[(i % 2) as usize].pid,
            gid,
            BB,
            Message::with_body(i).with("bb-board", "sensor"),
            vsync_core::ProtocolKind::Abcast,
        );
    }
    sys.run_ms(500);
    let a: Vec<u64> = members[0]
        .bb
        .read("sensor")
        .iter()
        .filter_map(|m| m.get_u64("body"))
        .collect();
    let b: Vec<u64> = members[1]
        .bb
        .read("sensor")
        .iter()
        .filter_map(|m| m.get_u64("body"))
        .collect();
    assert_eq!(a.len(), 4);
    assert_eq!(a, b);
}

#[test]
fn site_monitor_reports_clean_membership_events() {
    let (mut sys, gid, members) = deploy(3);
    sys.kill_process(members[2].pid);
    let ok = sys.run_until_condition(Duration::from_secs(10), |s| {
        s.view_of(SiteId(0), gid)
            .map(|v| v.len() == 2)
            .unwrap_or(false)
    });
    assert!(ok);
    sys.run_ms(100);
    assert_eq!(members[0].monitor.departures(), 1);
    assert_eq!(members[1].monitor.departures(), 1);
}
