//! Property test: crashing the **state-transfer source at a random instant** of an ongoing
//! multicast burst never wedges the joiner (simulated backend, seeded).
//!
//! Every case runs the same scenario — a three-member group (the source plus two members
//! on the survivor site, so the survivors stay a primary majority) blasting interleaved
//! CBCAST and ABCAST increments, a joiner injected at a randomized point of the burst,
//! and the rank-0 transfer source killed at a *second* randomized point — under a
//! randomized network schedule.  Whatever the interleaving, the survivor re-serve protocol
//! must hold: if the source dies mid-transfer, the joiner discards the dead cut's partial
//! blocks, GBCASTs a re-request that rides a fresh flush, and the surviving member
//! re-encodes at the new cut.  The pinned property is the application-visible one: the
//! joiner always unwedges (becomes ready), and the survivor's and joiner's applied-message
//! multisets are **identical and duplicate-free**.  (Messages the dead source never managed
//! to get out may be legitimately lost — virtual synchrony promises agreement among the
//! survivors, not delivery of a crashed sender's unsent traffic.)
//!
//! Two deterministic companions pin the mechanism itself: one catches the exact
//! view-installed-but-transfer-incomplete window and asserts a re-serve happened, the other
//! disables re-serve and pins the wedge it fixes (joiner stuck, `TransferStalled` raised).

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use proptest::prelude::*;
use vsync::core::{Duration, EntryId, Message, ProcessId, ProtocolKind, SiteId, StackConfig};
use vsync::proto::ProtoConfig;
use vsync::rt::{FaultPlan, IsisHarness, IsisRuntime, SimRuntime, ThreadedRuntime};
use vsync::tools::StateTransfer;
use vsync::util::NetParams;

const APPLY: EntryId = EntryId(3);
/// Unbuffered probe entry: snapshots the transfer tool's counters into the mirrors, even
/// while the member is wedged (buffered entries would hold a probe back).
const PROBE: EntryId = EntryId(4);
/// Messages in the burst the join and the crash are injected into.
const TOTAL: u64 = 16;

/// Test-thread-readable mirrors of one member's application and transfer-tool state.
struct Mirrors {
    log: Arc<Mutex<Vec<u64>>>,
    ready: Arc<AtomicBool>,
    rerequests: Arc<AtomicU64>,
    stalled_events: Arc<AtomicU64>,
    buffered: Arc<AtomicU64>,
}

fn sim_harness(seed: u64) -> IsisHarness<SimRuntime> {
    let params = NetParams::modern();
    IsisHarness::new(SimRuntime::new(
        3,
        params,
        StackConfig::from_params(&params),
        ProtoConfig::fast(),
        seed,
    ))
}

/// Spawns a member whose state is the log of applied message bodies.  The state encodes as
/// **one block per entry** and snapshot application deduplicates, so a fresh re-serve can
/// overlap whatever a dead serve already delivered.  The APPLY entry pushes
/// unconditionally: a protocol-level double-delivery shows up as a duplicate in the log.
/// `pad` bytes of ballast per block let the deterministic tests make blocks *slower on the
/// wire than the commit* (serialization delay grows with size), opening a real window in
/// which the join view is installed while the snapshot is still in flight.
fn spawn_log_member<R: IsisRuntime>(
    h: &mut IsisHarness<R>,
    site: SiteId,
    gid: vsync::core::GroupId,
    ready: bool,
    reserve: bool,
    pad: usize,
) -> (ProcessId, Mirrors) {
    let mirrors = Mirrors {
        log: Arc::new(Mutex::new(Vec::new())),
        ready: Arc::new(AtomicBool::new(ready)),
        rerequests: Arc::new(AtomicU64::new(0)),
        stalled_events: Arc::new(AtomicU64::new(0)),
        buffered: Arc::new(AtomicU64::new(0)),
    };
    let log = mirrors.log.clone();
    let m_ready = mirrors.ready.clone();
    let m_rereq = mirrors.rerequests.clone();
    let m_stall = mirrors.stalled_events.clone();
    let m_buf = mirrors.buffered.clone();
    let pid = h.spawn(site, move |b| {
        let l_encode = log.clone();
        let l_apply = log.clone();
        let r_apply = m_ready.clone();
        let xfer = StateTransfer::new(
            gid,
            move || {
                l_encode
                    .lock()
                    .unwrap()
                    .iter()
                    .map(|v| {
                        let m = Message::new().with("log-entry", *v);
                        if pad == 0 {
                            m
                        } else {
                            m.with("pad", "x".repeat(pad))
                        }
                    })
                    .collect()
            },
            move |_ctx, block| {
                if let Some(v) = block.get_u64("log-entry") {
                    let mut l = l_apply.lock().unwrap();
                    // A re-serve resends the full state; entries a dead serve already
                    // delivered must not double-apply.
                    if !l.contains(&v) {
                        l.push(v);
                    }
                }
                if block.get_bool("xfer-last").unwrap_or(false) {
                    r_apply.store(true, Ordering::Relaxed);
                }
            },
        )
        .with_stall_threshold(4);
        xfer.attach(b);
        if ready {
            xfer.mark_ready();
        }
        if !reserve {
            xfer.disable_reserve();
        }
        let l_update = log.clone();
        xfer.on_entry_buffered(b, APPLY, move |_ctx, msg| {
            l_update
                .lock()
                .unwrap()
                .push(msg.get_u64("body").unwrap_or(u64::MAX));
        });
        let x_probe = xfer.clone();
        b.on_entry(PROBE, move |_ctx, _msg| {
            m_rereq.store(x_probe.rerequests_sent(), Ordering::Relaxed);
            m_stall.store(x_probe.stalled_events(), Ordering::Relaxed);
            m_buf.store(x_probe.buffered_len() as u64, Ordering::Relaxed);
        });
    });
    (pid, mirrors)
}

fn submit_join<R: IsisRuntime>(
    h: &mut IsisHarness<R>,
    gid: vsync::core::GroupId,
    reserve: bool,
    pad: usize,
) -> (ProcessId, Mirrors) {
    let (pid, mirrors) = spawn_log_member(h, SiteId(2), gid, false, reserve, pad);
    h.rt.with_stack_job(
        SiteId(2),
        Box::new(move |stack, _now, out| {
            // Both member sites as contacts: when the first one dies with the JoinReq,
            // the stack's join retry must be able to route around it.
            stack.register_group("crash", gid, vec![SiteId(0), SiteId(1)]);
            stack
                .join_group(gid, pid, None, out)
                .expect("join submitted");
        }),
    );
    (pid, mirrors)
}

/// Builds the source/survivor group: the rank-0 transfer source at site 0 and *two*
/// members at the survivor site 1, with the survivors' transfers completed, ready for a
/// burst.  The second survivor-site member keeps the survivor side a strict majority of
/// the view when the source dies: a lone junior survivor of a two-member group is
/// indistinguishable from the losing half of an even partition split, so the
/// primary-partition fence wedges it by design and the join could never install.
fn source_survivor_group<R: IsisRuntime>(
    h: &mut IsisHarness<R>,
    gid: vsync::core::GroupId,
    pad: usize,
) -> (ProcessId, Mirrors, ProcessId, Mirrors) {
    let (m0, mir0) = spawn_log_member(h, SiteId(0), gid, true, true, pad);
    h.create_group_with_id("crash", gid, m0);
    let (m1, mir1) = spawn_log_member(h, SiteId(1), gid, false, true, pad);
    h.join_and_wait(gid, m1, None, Duration::from_secs(10))
        .expect("survivor join");
    let (m1b, mir1b) = spawn_log_member(h, SiteId(1), gid, false, true, pad);
    h.join_and_wait(gid, m1b, None, Duration::from_secs(10))
        .expect("second survivor join");
    assert!(
        h.wait_until(Duration::from_secs(10), |_| {
            mir1.ready.load(Ordering::Relaxed) && mir1b.ready.load(Ordering::Relaxed)
        }),
        "survivor transfers never completed"
    );
    (m0, mir0, m1, mir1)
}

fn sorted(l: &Arc<Mutex<Vec<u64>>>) -> Vec<u64> {
    let mut v = l.lock().unwrap().clone();
    v.sort_unstable();
    v
}

fn assert_duplicate_free(who: &str, ctx: &str, multiset: &[u64]) {
    for w in multiset.windows(2) {
        assert!(
            w[0] != w[1],
            "{ctx}: {who} applied message {} twice (multiset {multiset:?})",
            w[0]
        );
    }
}

/// Runs one seeded scenario: the join is submitted after `join_after` of the burst's
/// `TOTAL` sends and the transfer source is killed after `kill_after` sends
/// (`kill_after >= TOTAL` degenerates to a crash after the whole burst is in flight).
/// Panics unless the joiner unwedges and the survivor and joiner converge on an identical,
/// duplicate-free applied multiset.
fn crash_races_transfer(seed: u64, join_after: u64, kill_after: u64) {
    let ctx = format!("seed {seed}, join_after {join_after}, kill_after {kill_after}");
    let mut h = sim_harness(seed);
    let gid = h.allocate_group_id();
    let (m0, _mir0, m1, mir1) = source_survivor_group(&mut h, gid, 0);

    // The burst, with the joiner and the crash injected mid-flight.
    let mut joiner: Option<(ProcessId, Mirrors)> = None;
    let mut killed = false;
    for i in 0..TOTAL {
        if i == join_after {
            joiner = Some(submit_join(&mut h, gid, true, 0));
        }
        if i == kill_after {
            // The hard kill: in-flight packets from site 0 die on the wire, so the crash
            // can truncate a commit fan-out or a block stream mid-exchange.
            h.rt.kill_site_dropping_outbound(SiteId(0));
            killed = true;
        }
        let protocol = if i % 2 == 0 {
            ProtocolKind::Cbcast
        } else {
            ProtocolKind::Abcast
        };
        // Alternate senders while both live; after the crash everything goes via the
        // survivor.
        let sender = if killed || i % 2 == 1 { m1 } else { m0 };
        h.client_send(sender, gid, APPLY, Message::with_body(i), protocol);
        h.settle(Duration::from_micros(500));
    }
    let (jid, mir2) = joiner.unwrap_or_else(|| submit_join(&mut h, gid, true, 0));
    if !killed {
        h.rt.kill_site_dropping_outbound(SiteId(0));
    }

    // Convergence: the joiner is in the view, the dead source is out of it, the joiner's
    // transfer completed (possibly via a survivor re-serve), and both logs agree.
    let ok = h.wait_until(Duration::from_secs(30), |h| {
        [SiteId(1), SiteId(2)].iter().all(|s| {
            h.view_of(*s, gid)
                .map(|v| v.contains(jid) && !v.contains(m0) && v.len() == 3)
                .unwrap_or(false)
        })
    });
    assert!(ok, "{ctx}: survivors never agreed on the post-crash view");
    let ok = h.wait_until(Duration::from_secs(30), |_| {
        mir2.ready.load(Ordering::Relaxed) && sorted(&mir1.log) == sorted(&mir2.log)
    });
    assert!(
        ok,
        "{ctx}: joiner wedged or logs diverged (ready={}, survivor={:?}, joiner={:?})",
        mir2.ready.load(Ordering::Relaxed),
        sorted(&mir1.log),
        sorted(&mir2.log),
    );
    // Let any straggler (a late duplicate would be one) land, then re-check: nothing moves.
    h.settle(Duration::from_millis(200));
    let survivor = sorted(&mir1.log);
    let joiner_log = sorted(&mir2.log);
    assert_eq!(
        survivor, joiner_log,
        "{ctx}: applied multisets diverged after settling"
    );
    assert_duplicate_free("survivor", &ctx, &survivor);
    assert_duplicate_free("joiner", &ctx, &joiner_log);
    // The survivor's own sends can never be lost: it outlives the cut that installs them.
    for i in 0..TOTAL {
        let survivor_sent = i % 2 == 1 || i >= kill_after;
        if survivor_sent {
            assert!(
                survivor.contains(&i),
                "{ctx}: survivor-sent message {i} lost (multiset {survivor:?})"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24 })]
    #[test]
    fn randomized_crash_instants_never_wedge_the_joiner(
        seed in 0u64..1_000_000,
        join_after in 0u64..TOTAL,
        kill_after in 0u64..(TOTAL + 2),
    ) {
        crash_races_transfer(seed, join_after, kill_after);
    }
}

/// The corner instants are always part of the suite, independent of what the randomized
/// cases drew: crash before anything else, crash racing the join exactly, crash after the
/// whole burst.
#[test]
fn boundary_crash_instants_never_wedge_the_joiner() {
    crash_races_transfer(7, 0, 0);
    crash_races_transfer(11, 5, 5);
    crash_races_transfer(13, 3, TOTAL);
}

/// Catches the exact window the re-serve protocol exists for — the join view has installed
/// everywhere but the joiner's transfer is still incomplete — kills the source inside it,
/// and asserts the joiner recovered *via a re-request* (not by luck).
#[test]
fn mid_transfer_source_crash_is_reserved_by_the_survivor() {
    let (h, gid, m1, mir2, caught) = run_mid_transfer_crash(21, true);
    assert!(
        caught,
        "never caught the mid-transfer window; pick another seed"
    );
    let mut h = h;
    let ok = h.wait_until(Duration::from_secs(30), |_| {
        mir2.ready.load(Ordering::Relaxed)
    });
    assert!(ok, "joiner never unwedged after mid-transfer source crash");
    // Probe the joiner's transfer tool: the recovery must have gone through at least one
    // snapshot re-request.
    probe(&mut h, gid, m1);
    assert!(
        mir2.rerequests.load(Ordering::Relaxed) >= 1,
        "joiner became ready without re-requesting — the window was not exercised"
    );
    let survivor_log = sorted(&mir2.log);
    assert_duplicate_free("joiner", "mid-transfer crash", &survivor_log);
}

/// The same window with re-serve disabled pins the failure mode the protocol fixes: the
/// joiner stays wedged forever, its buffer grows, and the `TransferStalled` detector fires
/// so the condition is observable outside tests too.
#[test]
fn without_reserve_the_joiner_wedges_and_reports_a_stall() {
    let (h, gid, m1, mir2, caught) = run_mid_transfer_crash(21, false);
    assert!(
        caught,
        "never caught the mid-transfer window; pick another seed"
    );
    let mut h = h;
    h.settle(Duration::from_secs(5));
    probe(&mut h, gid, m1);
    assert!(
        !mir2.ready.load(Ordering::Relaxed),
        "joiner unwedged with re-serve disabled — the knob no longer pins the failure mode"
    );
    assert!(
        mir2.buffered.load(Ordering::Relaxed) >= 4,
        "wedged joiner's buffer never grew past the stall threshold (buffered={})",
        mir2.buffered.load(Ordering::Relaxed)
    );
    assert!(
        mir2.stalled_events.load(Ordering::Relaxed) >= 1,
        "TransferStalled never fired for a wedged joiner"
    );
    assert_eq!(mir2.rerequests.load(Ordering::Relaxed), 0);
}

/// Shared choreography for the deterministic window tests: build the group, deliver a
/// 16-message burst everywhere, submit the join, wait until the three-member view has
/// installed at the joiner's site while the transfer is still incomplete, and kill the
/// source in that instant.  Post-cut traffic (sent by the survivor) keeps flowing so the
/// joiner's buffered entries see load.  Returns `caught = false` if the transfer won the
/// race against the view observation (seed-dependent; the callers assert it).
fn run_mid_transfer_crash(
    seed: u64,
    reserve: bool,
) -> (
    IsisHarness<SimRuntime>,
    vsync::core::GroupId,
    ProcessId,
    Mirrors,
    bool,
) {
    let mut h = sim_harness(seed);
    let gid = h.allocate_group_id();
    // Half a megabyte of ballast per snapshot block: at the modern profile's 10 Gbit/s the
    // blocks' serialization delay (~400 µs each) dwarfs the flush commit's (~KBs), so the
    // join view installs everywhere while the whole snapshot is still on the wire.  The
    // simulator's latency model is deterministic, so without the ballast the small blocks
    // would *always* beat the commit and the window would never be observable.
    const PAD: usize = 512 * 1024;
    let (m0, _mir0, m1, mir1) = source_survivor_group(&mut h, gid, PAD);
    // Pre-join history: 16 entries, fully delivered, so the snapshot is 16 blocks wide —
    // a wide window for the crash to land inside.
    for i in 0..TOTAL {
        h.client_send(m0, gid, APPLY, Message::with_body(i), ProtocolKind::Cbcast);
    }
    let ok = h.wait_until(Duration::from_secs(10), |_| {
        mir1.log.lock().unwrap().len() == TOTAL as usize
    });
    assert!(ok, "pre-join burst never delivered");
    let (jid, mir2) = submit_join(&mut h, gid, reserve, PAD);
    // Advance in 50 µs steps hunting for the instant where the join view has installed at
    // both surviving sites but the joiner's transfer is still incomplete — i.e. some of
    // the source's snapshot blocks are still on the wire.  (Requiring the survivor to have
    // installed too keeps the kill honest: it truncates the block stream, not the commit
    // fan-out, so the scenario isolates the transfer-crash path.)
    let mut caught = false;
    for _ in 0..200_000 {
        if mir2.ready.load(Ordering::Relaxed) {
            break; // the transfer won the race against the observation
        }
        let installed_everywhere = [SiteId(1), SiteId(2)]
            .iter()
            .all(|s| h.view_of(*s, gid).map(|v| v.contains(jid)).unwrap_or(false));
        if installed_everywhere {
            caught = true;
            break;
        }
        h.settle(Duration::from_micros(50));
    }
    if caught {
        h.rt.kill_site_dropping_outbound(SiteId(0));
    }
    // Post-crash traffic from the survivor: the wedged joiner must buffer it.
    for i in 0..8u64 {
        h.client_send(
            m1,
            gid,
            APPLY,
            Message::with_body(TOTAL + i),
            ProtocolKind::Cbcast,
        );
        h.settle(Duration::from_micros(500));
    }
    (h, gid, m1, mir2, caught)
}

/// Sends a probe through the survivor and settles so the joiner's counter mirrors refresh.
fn probe(h: &mut IsisHarness<SimRuntime>, gid: vsync::core::GroupId, m1: ProcessId) {
    h.client_send(m1, gid, PROBE, Message::new(), ProtocolKind::Cbcast);
    h.settle(Duration::from_millis(50));
}

/// The source-crash property on the **threaded** backend: real OS scheduling decides the
/// exact crash instant, so the test scans several kill delays around the join — before the
/// flush, racing it, and mid/post transfer — and requires the joiner to unwedge and agree
/// with the survivor for every one.  (The sim proptest above explores the instant space
/// exhaustively; this leg pins that nothing about the recovery depends on simulated time.)
#[test]
fn threaded_source_crash_never_wedges_the_joiner() {
    for (round, delay) in [0u64, 500, 2_000, 8_000].into_iter().enumerate() {
        let faults = FaultPlan::none()
            .with_delay(Duration::from_micros(200))
            .with_jitter(Duration::from_micros(400));
        let mut h = IsisHarness::new(ThreadedRuntime::new(
            3,
            ThreadedRuntime::fast_local_config(),
            ProtoConfig::fast(),
            faults,
            77 + round as u64,
        ));
        let gid = h.allocate_group_id();
        let (m0, _mir0, m1, mir1) = source_survivor_group(&mut h, gid, 0);
        for i in 0..TOTAL {
            let sender = if i % 2 == 0 { m0 } else { m1 };
            h.client_send(
                sender,
                gid,
                APPLY,
                Message::with_body(i),
                ProtocolKind::Cbcast,
            );
        }
        let ok = h.wait_until(Duration::from_secs(20), |_| {
            mir1.log.lock().unwrap().len() == TOTAL as usize
        });
        assert!(ok, "round {round}: pre-join burst never delivered");

        let (jid, mir2) = submit_join(&mut h, gid, true, 0);
        if delay > 0 {
            h.settle(Duration::from_micros(delay));
        }
        h.rt.kill_site(SiteId(0));
        // Post-crash traffic from the survivor keeps the group live.
        for i in 0..8u64 {
            h.client_send(
                m1,
                gid,
                APPLY,
                Message::with_body(TOTAL + i),
                ProtocolKind::Cbcast,
            );
        }
        let ok = h.wait_until(Duration::from_secs(30), |h| {
            [SiteId(1), SiteId(2)].iter().all(|s| {
                h.view_of(*s, gid)
                    .map(|v| v.contains(jid) && !v.contains(m0) && v.len() == 3)
                    .unwrap_or(false)
            })
        });
        assert!(
            ok,
            "round {round}: survivors never agreed on the post-crash view"
        );
        let ok = h.wait_until(Duration::from_secs(30), |_| {
            mir2.ready.load(Ordering::Relaxed) && sorted(&mir1.log) == sorted(&mir2.log)
        });
        assert!(
            ok,
            "round {round}: joiner wedged or logs diverged (ready={}, survivor={:?}, joiner={:?})",
            mir2.ready.load(Ordering::Relaxed),
            sorted(&mir1.log),
            sorted(&mir2.log),
        );
        h.settle(Duration::from_millis(100));
        let survivor = sorted(&mir1.log);
        let joiner_log = sorted(&mir2.log);
        assert_eq!(
            survivor, joiner_log,
            "round {round}: applied multisets diverged after settling"
        );
        assert_duplicate_free("survivor", &format!("threaded round {round}"), &survivor);
        assert_duplicate_free("joiner", &format!("threaded round {round}"), &joiner_log);
    }
}
