//! Property-style integration tests of the virtual synchrony invariants, run across random
//! seeds, message mixes and failure times.
//!
//! The defining property (paper Section 2.4): every process observes the same events in the
//! same order — for ABCAST, the same total order; for any primitive, the same set of
//! messages delivered before each membership change.

use std::cell::RefCell;
use std::rc::Rc;

use proptest::prelude::*;
use vsync_core::{
    Duration, EntryId, IsisSystem, Message, NetParams, ProcessId, ProtocolKind, SiteId,
};

const APPLY: EntryId = EntryId(2);

type Log = Rc<RefCell<Vec<u64>>>;

fn deploy_with(
    seed: u64,
    loss: f64,
    n: usize,
) -> (IsisSystem, vsync_core::GroupId, Vec<ProcessId>, Vec<Log>) {
    let params = NetParams::modern().with_loss(loss);
    let mut sys = IsisSystem::builder(n).params(params).seed(seed).build();
    let mut members = Vec::new();
    let mut logs = Vec::new();
    for i in 0..n {
        let log: Log = Rc::new(RefCell::new(Vec::new()));
        let l = log.clone();
        let pid = sys.spawn(SiteId(i as u16), move |b| {
            b.on_entry(APPLY, move |_ctx, msg| {
                l.borrow_mut().push(msg.get_u64("body").unwrap_or(0));
            });
        });
        members.push(pid);
        logs.push(log);
    }
    let gid = sys.create_group("props", members[0]);
    for m in &members[1..] {
        sys.join_and_wait(gid, *m, None, Duration::from_secs(10))
            .unwrap();
    }
    (sys, gid, members, logs)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// ABCAST delivers the same total order at every member, for any seed, sender mix and
    /// (recoverable) packet-loss rate.
    #[test]
    fn abcast_total_order_holds_under_loss_and_any_seed(
        seed in 0u64..1_000,
        loss in 0.0f64..0.2,
        sender_picks in proptest::collection::vec(0usize..3, 6..15),
    ) {
        let (mut sys, gid, members, logs) = deploy_with(seed, loss, 3);
        for (i, pick) in sender_picks.iter().enumerate() {
            sys.client_send(
                members[*pick],
                gid,
                APPLY,
                Message::with_body(i as u64),
                ProtocolKind::Abcast,
            );
        }
        sys.run_ms(5_000);
        let reference = logs[0].borrow().clone();
        prop_assert_eq!(reference.len(), sender_picks.len(), "all messages delivered");
        for log in &logs[1..] {
            prop_assert_eq!(&*log.borrow(), &reference);
        }
    }

    /// When a member crashes mid-stream, every survivor delivers exactly the same set of
    /// messages (atomicity + the virtual synchrony cut), and all survivors agree on the view.
    #[test]
    fn survivors_agree_on_deliveries_across_a_crash(
        seed in 0u64..1_000,
        crash_after in 1usize..8,
        total in 8usize..16,
    ) {
        let (mut sys, gid, members, logs) = deploy_with(seed, 0.0, 4);
        for i in 0..total {
            sys.client_send(
                members[i % 4],
                gid,
                APPLY,
                Message::with_body(i as u64),
                ProtocolKind::Cbcast,
            );
            if i == crash_after {
                // Crash the site of member 3 mid-stream.
                sys.kill_site(SiteId(3));
            }
        }
        let ok = sys.run_until_condition(Duration::from_secs(30), |s| {
            [0u16, 1, 2].iter().all(|i| {
                s.view_of(SiteId(*i), gid).map(|v| v.len() == 3).unwrap_or(false)
            })
        });
        prop_assert!(ok, "survivors never installed the post-crash view");
        sys.run_ms(3_000);
        // Survivors delivered identical message sets (order may differ between concurrent
        // CBCASTs from different senders, so compare as sets).
        let mut sets: Vec<Vec<u64>> = logs[..3]
            .iter()
            .map(|l| {
                let mut v = l.borrow().clone();
                v.sort_unstable();
                v.dedup();
                v
            })
            .collect();
        let reference = sets.remove(0);
        for s in sets {
            prop_assert_eq!(&s, &reference, "survivors delivered different message sets");
        }
        // Messages from surviving senders must not be lost.
        for i in 0..total {
            if i % 4 != 3 && i > crash_after {
                prop_assert!(reference.contains(&(i as u64)), "message {i} lost");
            }
        }
    }
}

#[test]
fn per_sender_fifo_holds_for_every_seed_in_a_sweep() {
    for seed in 0..5u64 {
        let (mut sys, gid, members, logs) = deploy_with(seed, 0.05, 3);
        for i in 0..12u64 {
            sys.client_send(
                members[0],
                gid,
                APPLY,
                Message::with_body(i),
                ProtocolKind::Cbcast,
            );
        }
        sys.run_ms(3_000);
        for log in &logs {
            let seen = log.borrow();
            let only_sender0: Vec<u64> = seen.iter().copied().collect();
            assert_eq!(only_sender0, (0..12).collect::<Vec<u64>>(), "seed {seed}");
        }
    }
}
