//! Property test: **network partitions never split the brain** (primary-partition
//! membership, both backends).
//!
//! Every fuzz case forms a five-member group, blasts ABCAST bursts from the members that
//! will stay in the majority component, and drives a randomized [`NemesisSchedule`]: a
//! symmetric cut at a randomized instant, held for a randomized duration, then healed.
//! The cut may or may not last long enough to trigger failure detection, and the minority
//! may or may not contain the rank-0 coordinator — whatever happens, the recorded
//! [`MemberTimeline`]s must satisfy the [`PartitionInvariants`]: no two members ever
//! install the same view seq with different memberships (no split-brain), each member's
//! view seqs are monotonic across wedge/heal/rejoin cycles, and after the heal every
//! member converges to the identical duplicate-free delivery log.
//!
//! Deterministic companions pin the mechanisms the fuzz relies on: the minority wedges
//! *observably* (counters) and rejoins after the heal; a cut too short for suspicion
//! changes nothing; with the fence disabled the same cut manufactures a split-brain the
//! checker catches; a cluster-wide delay spike produces suspicions that retract without a
//! needless view change; and a join routed at a wedged contact fails over to a reachable
//! one.

use std::cell::RefCell;
use std::collections::BTreeSet;
use std::rc::Rc;
use std::sync::mpsc;

use proptest::prelude::*;
use vsync::core::{
    Duration, EntryId, GroupId, Message, ProcessId, ProtocolKind, SiteId, StackConfig,
};
use vsync::proto::ProtoConfig;
use vsync::rt::{
    FaultPlan, InvariantViolation, IsisHarness, IsisRuntime, MemberTimeline, NemesisEvent,
    NemesisSchedule, PartitionInvariants, SimRuntime, ThreadedRuntime,
};
use vsync::tools::StateTransfer;
use vsync::util::NetParams;

const APPLY: EntryId = EntryId(7);
const SITES: u16 = 5;
/// Messages per burst phase (one fully-delivered pre-cut burst, one riding into the cut).
const BURST: u64 = 6;

/// One observation from a member, tagged with the member's site.  Handlers run
/// sequentially on the member's node, so filtering the shared stream by member
/// reconstructs each member's local event order.
#[derive(Clone, Debug)]
enum Obs {
    Delivered {
        member: u16,
        body: u64,
    },
    View {
        member: u16,
        seq: u64,
        members: Vec<ProcessId>,
    },
}

fn drain(rx: &mpsc::Receiver<Obs>, into: &mut Vec<Obs>) {
    while let Ok(o) = rx.try_recv() {
        into.push(o);
    }
}

fn distinct_bodies(obs: &[Obs], member: u16) -> BTreeSet<u64> {
    obs.iter()
        .filter_map(|o| match o {
            Obs::Delivered { member: m, body } if *m == member => Some(*body),
            _ => None,
        })
        .collect()
}

/// Spawns a member whose state is the log of applied bodies.  The state-transfer tool is
/// what lets an exiled member catch up after a heal-rejoin: the rejoin snapshot re-serves
/// the primary's state and deduplicated application appends exactly the messages the
/// exile missed, in the primary's order.
fn spawn_member<R: IsisRuntime>(
    h: &mut IsisHarness<R>,
    site: u16,
    gid: GroupId,
    ready: bool,
    tx: mpsc::Sender<Obs>,
) -> ProcessId {
    h.spawn(SiteId(site), move |b| {
        let state: Rc<RefCell<Vec<u64>>> = Rc::new(RefCell::new(Vec::new()));
        let s_encode = state.clone();
        let s_apply = state.clone();
        let tx_apply = tx.clone();
        let xfer = StateTransfer::new(
            gid,
            move || {
                s_encode
                    .borrow()
                    .iter()
                    .map(|v| Message::new().with("pf-entry", *v))
                    .collect()
            },
            move |_ctx, block| {
                if let Some(v) = block.get_u64("pf-entry") {
                    let mut s = s_apply.borrow_mut();
                    // A rejoin snapshot overlaps the prefix the exile already holds.
                    if !s.contains(&v) {
                        s.push(v);
                        let _ = tx_apply.send(Obs::Delivered {
                            member: site,
                            body: v,
                        });
                    }
                }
            },
        );
        xfer.attach(b);
        if ready {
            xfer.mark_ready();
        }
        let s_update = state.clone();
        let tx_deliver = tx.clone();
        xfer.on_entry_buffered(b, APPLY, move |_ctx, msg| {
            let v = msg.get_u64("body").unwrap_or(u64::MAX);
            s_update.borrow_mut().push(v);
            let _ = tx_deliver.send(Obs::Delivered {
                member: site,
                body: v,
            });
        });
        b.on_view_change(gid, move |_ctx, ev| {
            let _ = tx.send(Obs::View {
                member: site,
                seq: ev.view.seq(),
                members: ev.view.members.clone(),
            });
        });
    })
}

/// Forms the five-member group (one member per site) and waits for the fully-formed view
/// (seq 5) everywhere.
fn form_group<R: IsisRuntime>(
    h: &mut IsisHarness<R>,
    tx: &mpsc::Sender<Obs>,
) -> (GroupId, Vec<ProcessId>) {
    let gid = h.allocate_group_id();
    let members: Vec<ProcessId> = (0..SITES)
        .map(|s| spawn_member(h, s, gid, s == 0, tx.clone()))
        .collect();
    h.create_group_with_id("part", gid, members[0]);
    for m in &members[1..] {
        h.join_and_wait(gid, *m, None, Duration::from_secs(20))
            .expect("join");
    }
    let ok = h.wait_until(Duration::from_secs(20), |h| {
        (0..SITES).all(|s| {
            h.view_of(SiteId(s), gid)
                .map(|v| v.seq() == SITES as u64 && v.len() == SITES as usize)
                .unwrap_or(false)
        })
    });
    assert!(ok, "five-member view never installed everywhere");
    (gid, members)
}

/// Folds the shared observation stream into per-member timelines for the checker.
fn timelines_from(obs: &[Obs]) -> Vec<MemberTimeline> {
    (0..SITES)
        .map(|m| {
            let mut t = MemberTimeline::new(format!("m{m}"));
            let mut cur = 0u64;
            for o in obs {
                match o {
                    Obs::View {
                        member,
                        seq,
                        members,
                    } if *member == m => {
                        cur = *seq;
                        t.install(*seq, members.clone());
                    }
                    Obs::Delivered { member, body } if *member == m => {
                        t.deliver(cur, body.to_string());
                    }
                    _ => {}
                }
            }
            t
        })
        .collect()
}

struct CycleOutcome {
    timelines: Vec<MemberTimeline>,
    /// Whether any member installed a view past the fully-formed one (the cut was long
    /// enough to change membership).
    membership_changed: bool,
}

/// The core cycle: form, burst, cut, heal, converge.  Panics if the cluster fails to
/// re-agree on one view containing every member with every body delivered everywhere.
fn run_partition_cycle<R: IsisRuntime>(
    h: &mut IsisHarness<R>,
    minority: &[u16],
    cut_at: Duration,
    cut_len: Duration,
) -> CycleOutcome {
    let (tx, rx) = mpsc::channel::<Obs>();
    let (gid, members) = form_group(h, &tx);
    let majority: Vec<u16> = (0..SITES).filter(|s| !minority.contains(s)).collect();
    // Senders stay in the primary component throughout, so virtual synchrony obliges
    // every burst message to survive the cut (a doomed component's unsent traffic may be
    // legitimately lost; a primary member's may not).
    let senders: Vec<ProcessId> = majority.iter().map(|s| members[*s as usize]).collect();
    let mut observations: Vec<Obs> = Vec::new();

    // Phase one: a burst fully delivered before the cut.
    for i in 0..BURST {
        h.client_send(
            senders[(i as usize) % senders.len()],
            gid,
            APPLY,
            Message::with_body(i),
            ProtocolKind::Abcast,
        );
    }
    let ok = h.wait_until(Duration::from_secs(20), |_h| {
        drain(&rx, &mut observations);
        (0..SITES).all(|m| distinct_bodies(&observations, m).len() >= BURST as usize)
    });
    assert!(ok, "phase-one deliveries incomplete");

    // Phase two rides into the cut: send, then execute the nemesis window.
    for i in BURST..2 * BURST {
        h.client_send(
            senders[(i as usize) % senders.len()],
            gid,
            APPLY,
            Message::with_body(i),
            ProtocolKind::Abcast,
        );
    }
    let components = vec![
        majority.iter().map(|s| SiteId(*s)).collect::<Vec<_>>(),
        minority.iter().map(|s| SiteId(*s)).collect::<Vec<_>>(),
    ];
    h.run_nemesis(&NemesisSchedule::partition_window(
        cut_at,
        cut_at + cut_len,
        components,
    ));

    // Healed: the cluster must converge — one agreed view containing every member, and
    // every member holding every body (exiles catch up through the rejoin snapshot).
    let all = 2 * BURST;
    let ok = h.wait_until(Duration::from_secs(60), |h| {
        drain(&rx, &mut observations);
        let mut agreed: Option<(u64, Vec<ProcessId>)> = None;
        for s in 0..SITES {
            let Some(v) = h.view_of(SiteId(s), gid) else {
                return false;
            };
            let mut ms = v.members.clone();
            ms.sort();
            match &agreed {
                None => agreed = Some((v.seq(), ms)),
                Some((seq, known)) => {
                    if *seq != v.seq() || *known != ms {
                        return false;
                    }
                }
            }
        }
        let (_, ms) = agreed.expect("checked all sites");
        members.iter().all(|m| ms.contains(m))
            && (0..SITES).all(|m| distinct_bodies(&observations, m).len() >= all as usize)
    });
    assert!(ok, "cluster never converged after the heal");
    h.settle(Duration::from_millis(100));
    drain(&rx, &mut observations);

    let membership_changed = observations
        .iter()
        .any(|o| matches!(o, Obs::View { seq, .. } if *seq > SITES as u64));
    CycleOutcome {
        timelines: timelines_from(&observations),
        membership_changed,
    }
}

fn check_invariants(timelines: Vec<MemberTimeline>) {
    let mut inv = PartitionInvariants::new();
    for t in timelines {
        inv.record(t);
    }
    if let Err(v) = inv.check_all() {
        panic!("partition invariant violated: {v}");
    }
}

fn sim_harness(seed: u64) -> IsisHarness<SimRuntime> {
    let params = NetParams::modern();
    IsisHarness::new(SimRuntime::new(
        SITES as usize,
        params,
        StackConfig::from_params(&params),
        ProtoConfig::fast(),
        seed,
    ))
}

fn threaded_harness(seed: u64) -> IsisHarness<ThreadedRuntime> {
    let faults = FaultPlan::none()
        .with_delay(Duration::from_micros(100))
        .with_jitter(Duration::from_micros(300));
    IsisHarness::new(ThreadedRuntime::new(
        SITES as usize,
        ThreadedRuntime::fast_local_config(),
        ProtoConfig::fast(),
        faults,
        seed,
    ))
}

/// Minority compositions the fuzz rotates through: a lone junior, a junior pair, the
/// coordinator paired with a junior, the coordinator alone, and the two oldest members —
/// every one a strict minority, so the fence must wedge exactly that side.
const MINORITIES: [&[u16]; 5] = [&[4], &[3, 4], &[0, 4], &[0], &[0, 1]];

proptest! {
    #![proptest_config(ProptestConfig { cases: 10 })]
    #[test]
    fn simulated_backend_survives_fuzzed_partitions(
        minority_idx in 0usize..MINORITIES.len(),
        cut_at_ms in 0u64..40,
        // From well under the failure timeout (no suspicion forms at all) to many
        // multiples of it (the majority cuts the minority, which must wedge and rejoin).
        cut_len_ms in 20u64..400,
        seed in 1u64..5_000,
    ) {
        let mut h = sim_harness(seed);
        let outcome = run_partition_cycle(
            &mut h,
            MINORITIES[minority_idx],
            Duration::from_millis(cut_at_ms),
            Duration::from_millis(cut_len_ms),
        );
        check_invariants(outcome.timelines);
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 2 })]
    #[test]
    fn threaded_backend_survives_fuzzed_partitions(
        minority_idx in 0usize..2,
        // The threaded failure timeout is 300ms of wall-clock; hold the cut well past it.
        cut_len_ms in 700u64..1_000,
        seed in 1u64..5_000,
    ) {
        let mut h = threaded_harness(seed);
        let outcome = run_partition_cycle(
            &mut h,
            MINORITIES[minority_idx],
            Duration::from_millis(10),
            Duration::from_millis(cut_len_ms),
        );
        check_invariants(outcome.timelines);
    }
}

#[test]
fn the_minority_wedges_observably_and_rejoins_after_the_heal() {
    let mut h = sim_harness(41);
    let outcome = run_partition_cycle(
        &mut h,
        &[3, 4],
        Duration::from_millis(10),
        Duration::from_millis(600),
    );
    assert!(
        outcome.membership_changed,
        "a 600ms cut must have cut the minority out of the view"
    );
    let stats = h.rt.stats();
    assert!(stats.minority_wedges >= 1, "no wedge was counted");
    assert!(stats.partition_stalls >= 1, "no stall was counted");
    assert!(
        stats.rejoins_after_heal >= 2,
        "both exiled sites must discard their tails and rejoin: {}",
        stats.rejoins_after_heal
    );
    check_invariants(outcome.timelines);
}

#[test]
fn a_cut_shorter_than_the_failure_timeout_changes_nothing() {
    let mut h = sim_harness(42);
    let outcome = run_partition_cycle(
        &mut h,
        &[4],
        Duration::from_millis(10),
        Duration::from_millis(12),
    );
    assert!(
        !outcome.membership_changed,
        "a 12ms cut (failure timeout 50ms) must not change membership"
    );
    check_invariants(outcome.timelines);
}

#[test]
fn without_the_fence_the_same_cut_manufactures_a_split_brain() {
    let params = NetParams::modern();
    let mut h = IsisHarness::new(SimRuntime::new(
        SITES as usize,
        params,
        StackConfig::from_params(&params),
        ProtoConfig {
            primary_partition: false,
            ..ProtoConfig::fast()
        },
        43,
    ));
    let (tx, rx) = mpsc::channel::<Obs>();
    let (_gid, _members) = form_group(&mut h, &tx);

    // Cut and never heal: with the fence off, *both* components flush their own view 6.
    h.run_nemesis(&NemesisSchedule::new().at(
        Duration::from_millis(10),
        NemesisEvent::Partition {
            components: vec![
                vec![SiteId(0), SiteId(1), SiteId(2)],
                vec![SiteId(3), SiteId(4)],
            ],
        },
    ));
    let mut observations: Vec<Obs> = Vec::new();
    let seen_six = |obs: &[Obs], m: u16| {
        obs.iter()
            .any(|o| matches!(o, Obs::View { member, seq, .. } if *member == m && *seq == 6))
    };
    let ok = h.wait_until(Duration::from_secs(20), |_h| {
        drain(&rx, &mut observations);
        seen_six(&observations, 0) && seen_six(&observations, 4)
    });
    assert!(ok, "both components should have installed their own view 6");

    let mut inv = PartitionInvariants::new();
    for t in timelines_from(&observations) {
        inv.record(t);
    }
    match inv.check_no_split_brain() {
        Err(InvariantViolation::ConflictingViews { seq: 6, .. }) => {}
        other => panic!("expected the checker to catch the split-brain, got {other:?}"),
    }
}

#[test]
fn a_delay_spike_wedges_then_retracts_without_a_needless_view_change() {
    let mut h = sim_harness(44);
    let (tx, rx) = mpsc::channel::<Obs>();
    let (gid, members) = form_group(&mut h, &tx);

    // 300ms of extra one-way latency on every link, against a 50ms failure timeout: every
    // site suspects every peer (false suspicions — all packets still arrive, late), so the
    // fence wedges everyone instead of letting anyone cut anyone.  Once the spiked
    // heartbeat stream catches up, the suspicions retract and the group resumes at the
    // *same* view.
    h.run_nemesis(&NemesisSchedule::delay_spike_window(
        Duration::from_millis(10),
        Duration::from_millis(510),
        Duration::from_millis(300),
    ));
    let ok = h.wait_until(Duration::from_secs(20), |h| {
        h.rt.stats().suspicions_cleared >= 1
            && (0..SITES).all(|s| {
                h.view_of(SiteId(s), gid)
                    .map(|v| v.seq() == SITES as u64 && v.len() == SITES as usize)
                    .unwrap_or(false)
            })
    });
    assert!(ok, "suspicions never retracted back to the full view");

    // Functional probe: the unwedged group still delivers everywhere.
    h.client_send(
        members[0],
        gid,
        APPLY,
        Message::with_body(99),
        ProtocolKind::Abcast,
    );
    let mut observations: Vec<Obs> = Vec::new();
    let ok = h.wait_until(Duration::from_secs(20), |_h| {
        drain(&rx, &mut observations);
        (0..SITES).all(|m| distinct_bodies(&observations, m).contains(&99))
    });
    assert!(ok, "post-spike multicast not delivered everywhere");

    assert!(
        !observations
            .iter()
            .any(|o| matches!(o, Obs::View { seq, .. } if *seq > SITES as u64)),
        "a false suspicion must not produce a view change"
    );
    let stats = h.rt.stats();
    assert!(stats.suspicions_cleared >= 1, "no retraction was counted");
    assert!(
        stats.partition_stalls >= 1,
        "the fence never engaged during the spike"
    );
}

#[test]
fn a_join_through_a_wedged_contact_fails_over_to_a_reachable_one() {
    // Three-member group on sites 0-2 plus a spare site 3 for the joiner.
    let params = NetParams::modern();
    let mut h = IsisHarness::new(SimRuntime::new(
        4,
        params,
        StackConfig::from_params(&params),
        ProtoConfig::fast(),
        45,
    ));
    let (tx, _rx) = mpsc::channel::<Obs>();
    let gid = h.allocate_group_id();
    let members: Vec<ProcessId> = (0..3u16)
        .map(|s| spawn_member(&mut h, s, gid, s == 0, tx.clone()))
        .collect();
    h.create_group_with_id("fo", gid, members[0]);
    for m in &members[1..] {
        h.join_and_wait(gid, *m, None, Duration::from_secs(20))
            .expect("join");
    }

    // Cut site 0 away from the other members.  Site 3 is in no component, so it keeps
    // its links to *both* sides: site 0 still heartbeats it and looks perfectly alive.
    h.run_nemesis(&NemesisSchedule::new().at(
        Duration::from_millis(10),
        NemesisEvent::Partition {
            components: vec![vec![SiteId(0)], vec![SiteId(1), SiteId(2)]],
        },
    ));
    let ok = h.wait_until(Duration::from_secs(20), |h| {
        h.rt.stats().minority_wedges >= 1
            && [1u16, 2].iter().all(|s| {
                h.view_of(SiteId(*s), gid)
                    .map(|v| v.len() == 2)
                    .unwrap_or(false)
            })
    });
    assert!(ok, "the majority never cut the wedged minority out");

    // The join names the wedged site as its first contact.  The contact answers
    // heartbeats, so the failure detector never writes it off — only the backoff
    // exhaustion can conclude the join is stranded and rotate to the other contact.
    let joiner = spawn_member(&mut h, 3, gid, false, tx.clone());
    h.query(SiteId(3), move |stack, _now, _out| {
        stack.register_group("fo", gid, vec![SiteId(0), SiteId(1)]);
    });
    h.join_and_wait(gid, joiner, None, Duration::from_secs(30))
        .expect("join must fail over to the reachable contact");
    let stats = h.rt.stats();
    assert!(
        stats.join_failovers >= 1,
        "the join must have rotated away from the wedged contact"
    );
}
