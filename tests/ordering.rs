//! Integration: ordering guarantees of the three multicast primitives observed end-to-end by
//! application handlers.

use std::cell::RefCell;
use std::rc::Rc;

use vsync_core::{
    Duration, EntryId, IsisSystem, LatencyProfile, Message, ProcessId, ProtocolKind, SiteId,
};

const APPLY: EntryId = EntryId(2);

type Log = Rc<RefCell<Vec<u64>>>;

fn spawn_logger(sys: &mut IsisSystem, site: SiteId) -> (ProcessId, Log) {
    let log: Log = Rc::new(RefCell::new(Vec::new()));
    let l = log.clone();
    let pid = sys.spawn(site, move |b| {
        b.on_entry(APPLY, move |_ctx, msg| {
            l.borrow_mut().push(msg.get_u64("body").unwrap_or(0));
        });
    });
    (pid, log)
}

fn deploy(n: usize) -> (IsisSystem, vsync_core::GroupId, Vec<ProcessId>, Vec<Log>) {
    let mut sys = IsisSystem::new(n, LatencyProfile::Modern);
    let mut members = Vec::new();
    let mut logs = Vec::new();
    for i in 0..n {
        let (p, l) = spawn_logger(&mut sys, SiteId(i as u16));
        members.push(p);
        logs.push(l);
    }
    let gid = sys.create_group("ordered", members[0]);
    for m in &members[1..] {
        sys.join_and_wait(gid, *m, None, Duration::from_secs(5))
            .unwrap();
    }
    (sys, gid, members, logs)
}

#[test]
fn cbcast_is_fifo_per_sender_and_delivered_everywhere() {
    let (mut sys, gid, members, logs) = deploy(3);
    for i in 0..10u64 {
        sys.client_send(
            members[0],
            gid,
            APPLY,
            Message::with_body(i),
            ProtocolKind::Cbcast,
        );
    }
    sys.run_ms(500);
    for (i, log) in logs.iter().enumerate() {
        assert_eq!(*log.borrow(), (0..10).collect::<Vec<u64>>(), "member {i}");
    }
}

#[test]
fn abcast_total_order_is_identical_at_every_member() {
    let (mut sys, gid, members, logs) = deploy(4);
    // Concurrent ABCASTs from every member, interleaved.
    for round in 0..5u64 {
        for (i, m) in members.iter().enumerate() {
            sys.client_send(
                *m,
                gid,
                APPLY,
                Message::with_body(round * 10 + i as u64),
                ProtocolKind::Abcast,
            );
        }
    }
    sys.run_ms(2_000);
    let reference = logs[0].borrow().clone();
    assert_eq!(
        reference.len(),
        20,
        "every multicast delivered: {reference:?}"
    );
    for (i, log) in logs.iter().enumerate().skip(1) {
        assert_eq!(
            *log.borrow(),
            reference,
            "member {i} disagrees on the total order"
        );
    }
}

#[test]
fn gbcast_is_ordered_with_respect_to_cbcast_traffic() {
    let (mut sys, gid, members, logs) = deploy(3);
    // A stream of CBCASTs with one GBCAST in the middle: every member must observe the
    // GBCAST at the same position relative to the stream (virtual synchrony cut).
    for i in 0..5u64 {
        sys.client_send(
            members[0],
            gid,
            APPLY,
            Message::with_body(i),
            ProtocolKind::Cbcast,
        );
    }
    sys.run_ms(200);
    sys.client_send(
        members[0],
        gid,
        APPLY,
        Message::with_body(100),
        ProtocolKind::Gbcast,
    );
    sys.run_ms(200);
    for i in 5..10u64 {
        sys.client_send(
            members[0],
            gid,
            APPLY,
            Message::with_body(i),
            ProtocolKind::Cbcast,
        );
    }
    sys.run_ms(1_000);
    let positions: Vec<usize> = logs
        .iter()
        .map(|l| {
            l.borrow()
                .iter()
                .position(|v| *v == 100)
                .expect("gbcast delivered")
        })
        .collect();
    assert!(
        positions.windows(2).all(|w| w[0] == w[1]),
        "GBCAST observed at different positions: {positions:?}"
    );
    for log in &logs {
        assert_eq!(log.borrow().len(), 11);
    }
}

#[test]
fn every_primitive_reaches_every_member_exactly_once() {
    let (mut sys, gid, members, logs) = deploy(3);
    sys.client_send(
        members[0],
        gid,
        APPLY,
        Message::with_body(1u64),
        ProtocolKind::Cbcast,
    );
    sys.client_send(
        members[1],
        gid,
        APPLY,
        Message::with_body(2u64),
        ProtocolKind::Abcast,
    );
    sys.client_send(
        members[2],
        gid,
        APPLY,
        Message::with_body(3u64),
        ProtocolKind::Gbcast,
    );
    sys.run_ms(1_000);
    for (i, log) in logs.iter().enumerate() {
        let mut seen = log.borrow().clone();
        seen.sort_unstable();
        assert_eq!(
            seen,
            vec![1, 2, 3],
            "member {i} missed or duplicated a message"
        );
    }
}
