//! Integration: failure detection, view changes under crashes, coordinator–cohort take-over,
//! and the virtual-synchrony guarantee that survivors agree on what was delivered before a
//! failure.

use std::cell::RefCell;
use std::rc::Rc;

use vsync_apps::factory::Factory;
use vsync_core::{
    Address, Duration, EntryId, IsisSystem, LatencyProfile, Message, ProtocolKind, ReplyWanted,
    SiteId,
};

const APPLY: EntryId = EntryId(2);

#[test]
fn site_crash_is_converted_into_a_clean_membership_change() {
    let mut sys = IsisSystem::new(4, LatencyProfile::Modern);
    let logs: Vec<Rc<RefCell<Vec<u64>>>> =
        (0..4).map(|_| Rc::new(RefCell::new(Vec::new()))).collect();
    let members: Vec<_> = (0..4)
        .map(|i| {
            let l = logs[i].clone();
            sys.spawn(SiteId(i as u16), move |b| {
                b.on_entry(APPLY, move |_ctx, msg| {
                    l.borrow_mut().push(msg.get_u64("body").unwrap_or(0));
                });
            })
        })
        .collect();
    let gid = sys.create_group("svc", members[0]);
    for m in &members[1..] {
        sys.join_and_wait(gid, *m, None, Duration::from_secs(5))
            .unwrap();
    }
    // Traffic flows, then a site dies.
    for i in 0..5u64 {
        sys.client_send(
            members[1],
            gid,
            APPLY,
            Message::with_body(i),
            ProtocolKind::Cbcast,
        );
    }
    sys.run_ms(200);
    sys.kill_site(SiteId(3));
    let ok = sys.run_until_condition(Duration::from_secs(10), |s| {
        [0u16, 1, 2].iter().all(|i| {
            s.view_of(SiteId(*i), gid)
                .map(|v| v.len() == 3)
                .unwrap_or(false)
        })
    });
    assert!(ok, "survivors never agreed on the three-member view");
    // All survivors delivered the same pre-crash messages.
    let reference = logs[0].borrow().clone();
    assert_eq!(reference.len(), 5);
    for (i, log) in logs.iter().enumerate().take(3).skip(1) {
        assert_eq!(*log.borrow(), reference, "survivor {i} diverged");
    }
}

#[test]
fn coordinator_cohort_fail_over_still_answers_the_caller() {
    let mut sys = IsisSystem::new(4, LatencyProfile::Modern);
    let factory = Factory::deploy(&mut sys, &[SiteId(0), SiteId(1), SiteId(2)]);
    let client = sys.spawn(SiteId(3), |_| {});

    // Healthy case: a batch is processed exactly once.
    let done = factory.submit_batch(&mut sys, client, 1, Duration::from_secs(5));
    assert_eq!(done, Some(1));
    assert_eq!(factory.total_batches_processed(), 1);

    // Kill the member co-located with nothing in particular (rank 0 member's site) and submit
    // again: the coordinator selection skips the dead member and the batch still completes.
    sys.kill_process(factory.emulsion[0].pid);
    let ok = sys.run_until_condition(Duration::from_secs(10), |s| {
        s.view_of(SiteId(1), factory.emulsion_gid)
            .map(|v| v.len() == 2)
            .unwrap_or(false)
    });
    assert!(ok, "emulsion group never shrank");
    let done = factory.submit_batch(&mut sys, client, 2, Duration::from_secs(5));
    assert_eq!(done, Some(2), "batch must complete despite the failure");
}

#[test]
fn rpc_in_flight_when_a_destination_dies_still_completes() {
    let mut sys = IsisSystem::new(3, LatencyProfile::Modern);
    let responder = sys.spawn(SiteId(0), |b| {
        b.on_entry(APPLY, |ctx, msg| {
            ctx.reply(msg, Message::with_body(7u64));
        });
    });
    let silent = sys.spawn(SiteId(1), |b| {
        // Never replies: the caller can only be released by the failure notification.
        b.on_entry(APPLY, |_ctx, _msg| {});
    });
    let gid = sys.create_group("svc", responder);
    sys.join_and_wait(gid, silent, None, Duration::from_secs(5))
        .unwrap();
    let client = sys.spawn(SiteId(2), |_| {});

    // Ask for ALL replies, then kill the silent member while the call is outstanding.
    sys.kill_process(silent);
    let outcome = sys.client_call(
        client,
        vec![Address::Group(gid)],
        APPLY,
        Message::with_body(1u64),
        ProtocolKind::Cbcast,
        ReplyWanted::All,
        Duration::from_secs(10),
    );
    // The collection completes (short) with the one real reply rather than hanging.
    assert_eq!(outcome.replies.len(), 1);
}
