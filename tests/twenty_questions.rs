//! Integration: the twenty-questions service of paper Section 5, step by step.

use vsync_apps::twenty::{Answer, Database, Op, Query, TwentyQuestions};
use vsync_core::{Duration, IsisSystem, LatencyProfile, SiteId};

fn sites(n: usize) -> Vec<SiteId> {
    (0..n as u16).map(SiteId).collect()
}

#[test]
fn vertical_queries_are_answered_by_exactly_one_member() {
    let mut sys = IsisSystem::new(5, LatencyProfile::Modern);
    let svc = TwentyQuestions::deploy(&mut sys, "twenty", &sites(4), 4, Database::demo());
    let client = sys.spawn(SiteId(4), |_| {});

    let answers = svc.query(
        &mut sys,
        client,
        &Query::vertical("object", Op::Eq, "car"),
        Duration::from_secs(5),
    );
    assert_eq!(answers, vec![Answer::Yes]);

    let answers = svc.query(
        &mut sys,
        client,
        &Query::vertical("color", Op::Eq, "purple"),
        Duration::from_secs(5),
    );
    assert_eq!(answers, vec![Answer::No]);

    // Only one member produced a real reply per query; the others sent nulls.
    let answered: u64 = svc.handles.iter().map(|h| *h.answered.borrow()).sum();
    assert_eq!(answered, 2);
}

#[test]
fn horizontal_queries_fan_out_across_all_members() {
    let mut sys = IsisSystem::new(5, LatencyProfile::Modern);
    let svc = TwentyQuestions::deploy(&mut sys, "twenty", &sites(5), 5, Database::demo());
    let client = sys.spawn(SiteId(4), |_| {});
    let mut answers = svc.query(
        &mut sys,
        client,
        &Query::horizontal("price", Op::Gt, "9000"),
        Duration::from_secs(5),
    );
    assert_eq!(answers.len(), 5, "one answer per member");
    // The paper's example result for *price > 9000 with 5 members: no / sometimes x3 / yes.
    answers.sort_by_key(|a| match a {
        Answer::No => 0,
        Answer::Sometimes => 1,
        Answer::Yes => 2,
        Answer::Unknown => 3,
    });
    assert_eq!(
        answers,
        vec![
            Answer::No,
            Answer::Sometimes,
            Answer::Sometimes,
            Answer::Sometimes,
            Answer::Yes
        ]
    );
}

#[test]
fn dynamic_updates_reach_every_replica_and_later_queries_see_them() {
    let mut sys = IsisSystem::new(4, LatencyProfile::Modern);
    let svc = TwentyQuestions::deploy(&mut sys, "twenty", &sites(3), 3, Database::demo());
    let client = sys.spawn(SiteId(3), |_| {});

    // Before the update no car costs more than 50000.
    let before = svc.query(
        &mut sys,
        client,
        &Query::vertical("price", Op::Gt, "50000"),
        Duration::from_secs(5),
    );
    assert_eq!(before, vec![Answer::No]);

    svc.update(
        &mut sys,
        client,
        vec![
            ("object".into(), "car".into()),
            ("color".into(), "silver".into()),
            ("size".into(), "sport".into()),
            ("price".into(), "120000".into()),
            ("make".into(), "Ferrari".into()),
            ("model".into(), "Testarossa".into()),
        ],
    );
    sys.run_ms(500);
    assert_eq!(
        svc.replica_sizes(),
        vec![11, 11, 11],
        "every replica applied the update"
    );

    let after = svc.query(
        &mut sys,
        client,
        &Query::vertical("price", Op::Gt, "50000"),
        Duration::from_secs(5),
    );
    assert_eq!(after, vec![Answer::Sometimes]);
}

#[test]
fn member_failure_is_tolerated_with_standbys_taking_over() {
    // Step 4: deploy 4 members but NMEMBERS = 3, so the youngest is a hot standby.
    let mut sys = IsisSystem::new(5, LatencyProfile::Modern);
    let svc = TwentyQuestions::deploy(&mut sys, "twenty", &sites(4), 3, Database::demo());
    let client = sys.spawn(SiteId(4), |_| {});

    let before = svc.query(
        &mut sys,
        client,
        &Query::horizontal("object", Op::Eq, "car"),
        Duration::from_secs(5),
    );
    assert_eq!(before.len(), 3, "standby stays invisible to clients");

    // Kill an active member: the standby inherits its rank at the next view and the service
    // keeps answering with the full decomposition.
    sys.kill_process(svc.members[1]);
    let gid = svc.gid;
    let ok = sys.run_until_condition(Duration::from_secs(10), |s| {
        s.view_of(SiteId(0), gid)
            .map(|v| v.len() == 3)
            .unwrap_or(false)
    });
    assert!(ok, "view never shrank after the failure");
    sys.run_ms(100);

    let after = svc.query(
        &mut sys,
        client,
        &Query::horizontal("object", Op::Eq, "car"),
        Duration::from_secs(5),
    );
    assert_eq!(
        after.len(),
        3,
        "the standby answers in place of the failed member"
    );
    assert!(after.iter().all(|a| *a == Answer::Yes));
}
