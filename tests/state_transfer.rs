//! Integration: state transfer to joining members and process "migration" (join then leave),
//! paper Section 3.8.

use std::cell::RefCell;
use std::rc::Rc;

use vsync_core::{Duration, EntryId, IsisSystem, LatencyProfile, Message, ProtocolKind, SiteId};
use vsync_tools::StateTransfer;

const APPLY: EntryId = EntryId(2);

/// Spawns a member holding a counter that is updated by multicast and transferred on join.
fn spawn_counter_member(
    sys: &mut IsisSystem,
    site: SiteId,
    gid: vsync_core::GroupId,
) -> (vsync_core::ProcessId, Rc<RefCell<u64>>, StateTransfer) {
    let counter = Rc::new(RefCell::new(0u64));
    let c_for_encode = counter.clone();
    let c_for_apply = counter.clone();
    let xfer = StateTransfer::new(
        gid,
        move || vec![Message::new().with("counter", *c_for_encode.borrow())],
        move |_ctx, block| {
            if let Some(v) = block.get_u64("counter") {
                *c_for_apply.borrow_mut() = v;
            }
        },
    );
    let xfer_attach = xfer.clone();
    let c_for_updates = counter.clone();
    let pid = sys.spawn(site, move |b| {
        xfer_attach.attach(b);
        b.on_entry(APPLY, move |_ctx, msg| {
            *c_for_updates.borrow_mut() += msg.get_u64("body").unwrap_or(0);
        });
    });
    (pid, counter, xfer)
}

#[test]
fn joiner_receives_the_state_current_at_the_join() {
    let mut sys = IsisSystem::new(3, LatencyProfile::Modern);
    let gid = sys.allocate_group_id();
    let (creator, c0, x0) = spawn_counter_member(&mut sys, SiteId(0), gid);
    sys.create_group_with_id("counter", gid, creator);
    x0.mark_ready();

    // Accumulate state before anyone joins.
    for _ in 0..10 {
        sys.client_send(
            creator,
            gid,
            APPLY,
            Message::with_body(1u64),
            ProtocolKind::Cbcast,
        );
    }
    sys.run_ms(200);
    assert_eq!(*c0.borrow(), 10);

    // A member joins: it must converge to the same counter value without replaying history.
    let (joiner, c1, x1) = spawn_counter_member(&mut sys, SiteId(1), gid);
    sys.join_and_wait(gid, joiner, None, Duration::from_secs(5))
        .unwrap();
    let ok = sys.run_until_condition(Duration::from_secs(5), |_s| x1.is_ready());
    assert!(ok, "state transfer never completed");
    assert_eq!(*c1.borrow(), 10, "joiner state differs from the source");
    assert!(x0.transfers_served() >= 1);

    // Updates after the join reach both replicas.
    sys.client_send(
        creator,
        gid,
        APPLY,
        Message::with_body(5u64),
        ProtocolKind::Cbcast,
    );
    sys.run_ms(200);
    assert_eq!(*c0.borrow(), 15);
    assert_eq!(*c1.borrow(), 15);
}

#[test]
fn process_migration_as_join_then_leave() {
    let mut sys = IsisSystem::new(3, LatencyProfile::Modern);
    let gid = sys.allocate_group_id();
    let (old, c_old, x_old) = spawn_counter_member(&mut sys, SiteId(0), gid);
    sys.create_group_with_id("migrating", gid, old);
    x_old.mark_ready();
    for _ in 0..4 {
        sys.client_send(
            old,
            gid,
            APPLY,
            Message::with_body(1u64),
            ProtocolKind::Cbcast,
        );
    }
    sys.run_ms(200);
    assert_eq!(*c_old.borrow(), 4);

    // Migration: start the replacement, let it join and absorb the state, then retire the
    // original member.  Clients see this as an atomic handover (paper Section 3.8).
    let (new, c_new, x_new) = spawn_counter_member(&mut sys, SiteId(2), gid);
    sys.join_and_wait(gid, new, None, Duration::from_secs(5))
        .unwrap();
    let ok = sys.run_until_condition(Duration::from_secs(5), |_s| x_new.is_ready());
    assert!(ok);
    assert_eq!(*c_new.borrow(), 4);
    sys.leave_and_wait(gid, old, Duration::from_secs(5))
        .unwrap();
    sys.run_ms(100);

    let v = sys.view_of(SiteId(2), gid).unwrap();
    assert_eq!(v.members, vec![new]);
    // The migrated service keeps working.
    sys.client_send(
        new,
        gid,
        APPLY,
        Message::with_body(1u64),
        ProtocolKind::Cbcast,
    );
    sys.run_ms(200);
    assert_eq!(*c_new.borrow(), 5);
}
