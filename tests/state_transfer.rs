//! Integration: state transfer to joining members and process "migration" (join then leave),
//! paper Section 3.8.
//!
//! Joins here are deliberately **not** preceded by any settling: the state-receiving join
//! is submitted while the pre-join multicast burst is still unstable (asserted), and the
//! view-cut-coordinated transfer — snapshot at the cut, covered-frontier suppression at
//! the joining endpoint, buffered application entries — must still apply every message
//! exactly once.

use std::cell::RefCell;
use std::rc::Rc;

use vsync_core::{Duration, EntryId, IsisSystem, LatencyProfile, Message, ProtocolKind, SiteId};
use vsync_tools::StateTransfer;

const APPLY: EntryId = EntryId(2);

/// One member's counter state: the value, how many increments its APPLY entry executed,
/// and the value its received snapshot carried (joiners only).
struct CounterState {
    value: Rc<RefCell<u64>>,
    applies: Rc<RefCell<u64>>,
    snapshot: Rc<RefCell<u64>>,
}

/// Spawns a member holding a counter that is updated by multicast and transferred on join.
/// The APPLY entry goes through the transfer tool's buffering, so a joiner holds post-cut
/// messages until its snapshot has been applied.
fn spawn_counter_member(
    sys: &mut IsisSystem,
    site: SiteId,
    gid: vsync_core::GroupId,
) -> (vsync_core::ProcessId, CounterState, StateTransfer) {
    let state = CounterState {
        value: Rc::new(RefCell::new(0)),
        applies: Rc::new(RefCell::new(0)),
        snapshot: Rc::new(RefCell::new(0)),
    };
    let c_for_encode = state.value.clone();
    let c_for_apply = state.value.clone();
    let snap = state.snapshot.clone();
    let xfer = StateTransfer::new(
        gid,
        move || vec![Message::new().with("counter", *c_for_encode.borrow())],
        move |_ctx, block| {
            if let Some(v) = block.get_u64("counter") {
                *c_for_apply.borrow_mut() = v;
                *snap.borrow_mut() = v;
            }
        },
    );
    let xfer_attach = xfer.clone();
    let c_for_updates = state.value.clone();
    let applies = state.applies.clone();
    let pid = sys.spawn(site, move |b| {
        xfer_attach.attach(b);
        xfer_attach.on_entry_buffered(b, APPLY, move |_ctx, msg| {
            *c_for_updates.borrow_mut() += msg.get_u64("body").unwrap_or(0);
            *applies.borrow_mut() += 1;
        });
    });
    (pid, state, xfer)
}

#[test]
fn joiner_receives_the_state_current_at_the_join_while_traffic_is_unstable() {
    let mut sys = IsisSystem::new(3, LatencyProfile::Modern);
    let gid = sys.allocate_group_id();
    let (creator, c0, x0) = spawn_counter_member(&mut sys, SiteId(0), gid);
    sys.create_group_with_id("counter", gid, creator);
    x0.mark_ready();
    // A second member site, so the burst below actually has somewhere to be unstable
    // towards (a single-site group stabilizes its own messages instantly).
    let (m1, c1, x1) = spawn_counter_member(&mut sys, SiteId(1), gid);
    sys.join_and_wait(gid, m1, None, Duration::from_secs(5))
        .unwrap();
    let ok = sys.run_until_condition(Duration::from_secs(5), |_s| x1.is_ready());
    assert!(ok, "first transfer never completed");

    // Burst state updates and join immediately: no settling, the burst is still in flight.
    for _ in 0..10 {
        sys.client_send(
            creator,
            gid,
            APPLY,
            Message::with_body(1u64),
            ProtocolKind::Cbcast,
        );
    }
    assert_eq!(*c0.value.borrow(), 10, "CBCAST self-delivery is immediate");
    assert!(
        sys.unstable_count(SiteId(0), gid) >= 8,
        "the join must race unstable traffic (saw {})",
        sys.unstable_count(SiteId(0), gid)
    );

    // The join races the unstable burst; the joiner must converge to the same counter
    // value with every message applied exactly once (snapshot + post-cut flow partition
    // the history — no replay, no double application).
    let (joiner, c2, x2) = spawn_counter_member(&mut sys, SiteId(2), gid);
    sys.join_and_wait(gid, joiner, None, Duration::from_secs(5))
        .unwrap();
    let ok = sys.run_until_condition(Duration::from_secs(5), |_s| x2.is_ready());
    assert!(ok, "state transfer never completed");
    let ok = sys.run_until_condition(Duration::from_secs(5), |_s| {
        *c1.value.borrow() == 10 && *c2.value.borrow() == 10
    });
    assert!(
        ok,
        "joiner state differs from the source (c1={}, c2={})",
        *c1.value.borrow(),
        *c2.value.borrow()
    );
    assert_eq!(
        *c2.snapshot.borrow() + *c2.applies.borrow(),
        10,
        "snapshot + post-snapshot applies must partition the history exactly once"
    );
    assert!(x0.transfers_served() >= 1);
    // The snapshot blocks carried the cut's covered frontier.
    let covered = x2.covered().expect("snapshot blocks are frontier-tagged");
    assert!(!covered.is_empty(), "a cut over unstable traffic covers it");

    // Updates after the join reach all three replicas, exactly once each.
    sys.client_send(
        creator,
        gid,
        APPLY,
        Message::with_body(5u64),
        ProtocolKind::Cbcast,
    );
    let ok = sys.run_until_condition(Duration::from_secs(5), |_s| {
        *c0.value.borrow() == 15 && *c1.value.borrow() == 15 && *c2.value.borrow() == 15
    });
    assert!(ok, "post-join update lost or duplicated");
}

#[test]
fn process_migration_as_join_then_leave() {
    let mut sys = IsisSystem::new(3, LatencyProfile::Modern);
    let gid = sys.allocate_group_id();
    let (old, c_old, x_old) = spawn_counter_member(&mut sys, SiteId(0), gid);
    sys.create_group_with_id("migrating", gid, old);
    x_old.mark_ready();
    for _ in 0..4 {
        sys.client_send(
            old,
            gid,
            APPLY,
            Message::with_body(1u64),
            ProtocolKind::Cbcast,
        );
    }
    assert_eq!(*c_old.value.borrow(), 4);

    // Migration: start the replacement and let it join immediately (no settling), absorb
    // the state, then retire the original member.  Clients see this as an atomic handover
    // (paper Section 3.8).
    let (new, c_new, x_new) = spawn_counter_member(&mut sys, SiteId(2), gid);
    sys.join_and_wait(gid, new, None, Duration::from_secs(5))
        .unwrap();
    let ok = sys.run_until_condition(Duration::from_secs(5), |_s| x_new.is_ready());
    assert!(ok);
    assert_eq!(*c_new.value.borrow(), 4);
    sys.leave_and_wait(gid, old, Duration::from_secs(5))
        .unwrap();
    sys.run_ms(100);

    let v = sys.view_of(SiteId(2), gid).unwrap();
    assert_eq!(v.members, vec![new]);
    // The migrated service keeps working.
    sys.client_send(
        new,
        gid,
        APPLY,
        Message::with_body(1u64),
        ProtocolKind::Cbcast,
    );
    sys.run_ms(200);
    assert_eq!(*c_new.value.borrow(), 5);
}
