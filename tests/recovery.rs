//! Integration: stable storage, the recovery manager's restart-vs-rejoin advice, and
//! rebuilding replicated state after a total failure (paper Section 3.8 and Section 5 Step 6).

use std::cell::RefCell;
use std::rc::Rc;

use proptest::prelude::*;
use vsync_core::{Duration, EntryId, IsisSystem, LatencyProfile, Message, ProtocolKind, SiteId};
use vsync_tools::{
    FileStore, MemoryStore, RecoveryAdvice, RecoveryManager, ReplicatedData, StableStore,
    UpdateOrdering,
};

const DATA: EntryId = EntryId(60);

#[test]
fn replicated_data_survives_total_failure_through_checkpoint_and_log() {
    // "Stable" storage shared across incarnations of the simulated service.
    let store: Rc<dyn StableStore> = Rc::new(MemoryStore::new());

    // First incarnation: two members, some updates, a checkpoint, more updates, then a total
    // failure (both sites die).
    let mut sys = IsisSystem::new(2, LatencyProfile::Modern);
    let gid = sys.allocate_group_id();
    let data0 = ReplicatedData::new(gid, DATA, UpdateOrdering::Total)
        .with_logging(store.clone(), "inventory");
    let d0 = data0.clone();
    let creator = sys.spawn(SiteId(0), move |b| d0.attach(b));
    sys.create_group_with_id("inventory", gid, creator);
    let data1 = ReplicatedData::new(gid, DATA, UpdateOrdering::Total);
    let d1 = data1.clone();
    let member1 = sys.spawn(SiteId(1), move |b| d1.attach(b));
    sys.join_and_wait(gid, member1, None, Duration::from_secs(5))
        .unwrap();

    sys.client_send(
        creator,
        gid,
        DATA,
        Message::new()
            .with("rd-item", "widgets")
            .with("rd-value", 10u64),
        ProtocolKind::Abcast,
    );
    sys.run_ms(300);
    data0.checkpoint().unwrap();
    sys.client_send(
        creator,
        gid,
        DATA,
        Message::new()
            .with("rd-item", "widgets")
            .with("rd-value", 25u64),
        ProtocolKind::Abcast,
    );
    sys.client_send(
        creator,
        gid,
        DATA,
        Message::new()
            .with("rd-item", "gadgets")
            .with("rd-value", 3u64),
        ProtocolKind::Abcast,
    );
    sys.run_ms(300);
    assert_eq!(data0.read_u64("widgets"), Some(25));
    sys.kill_site(SiteId(0));
    sys.kill_site(SiteId(1));

    // Second incarnation: a fresh replica recovers from the checkpoint plus the logged
    // updates, exactly as the original version of the program "would have read the database
    // from disk".
    let recovered =
        ReplicatedData::new(gid, DATA, UpdateOrdering::Total).with_logging(store, "inventory");
    let replayed = recovered.recover_from_log().unwrap();
    assert_eq!(replayed, 2, "two post-checkpoint updates replayed");
    assert_eq!(recovered.read_u64("widgets"), Some(25));
    assert_eq!(recovered.read_u64("gadgets"), Some(3));
}

#[test]
fn recovery_manager_advice_depends_on_who_failed_last() {
    let mut sys = IsisSystem::new(3, LatencyProfile::Modern);
    let store: Rc<dyn StableStore> = Rc::new(MemoryStore::new());
    let rm = RecoveryManager::new(store, "svc");

    let gid = sys.allocate_group_id();
    let rm_attach = rm.clone();
    let a = sys.spawn(SiteId(0), move |b| rm_attach.attach_logging(b, gid));
    sys.create_group_with_id("svc", gid, a);
    let rm_attach = rm.clone();
    let b = sys.spawn(SiteId(1), move |builder| {
        rm_attach.attach_logging(builder, gid)
    });
    sys.join_and_wait(gid, b, None, Duration::from_secs(5))
        .unwrap();
    sys.run_ms(100);

    // While the group is operational somewhere, the advice is always to rejoin.
    assert_eq!(rm.advise(a, true).unwrap(), RecoveryAdvice::Rejoin);

    // Member a fails first; the survivors install a view without it and keep logging.
    sys.kill_process(a);
    let ok = sys.run_until_condition(Duration::from_secs(10), |s| {
        s.view_of(SiteId(1), gid)
            .map(|v| v.len() == 1)
            .unwrap_or(false)
    });
    assert!(ok);
    sys.run_ms(100);

    // Now the whole group fails.  Consulting the (surviving site's) log: member b was in the
    // last view, so it restarts; member a was not, so it waits for b.
    assert_eq!(rm.advise(b, false).unwrap(), RecoveryAdvice::Restart);
    assert_eq!(rm.advise(a, false).unwrap(), RecoveryAdvice::WaitForRestart);
    assert_eq!(rm.last_known_members().unwrap(), vec![b]);
}

#[test]
fn recovered_site_can_host_a_rejoining_member() {
    let mut sys = IsisSystem::new(3, LatencyProfile::Modern);
    let data_b = ReplicatedData::new(vsync_core::GroupId(1), DATA, UpdateOrdering::Causal);
    let gid = sys.allocate_group_id();
    assert_eq!(gid, vsync_core::GroupId(1));
    // The group is founded on site 1, which survives the crash below: in a two-member
    // group the primary-partition fence only lets the half holding the oldest member cut
    // the dead half out, so the survivor must be the founder.
    let d = data_b.clone();
    let b = sys.spawn(SiteId(1), move |builder| d.attach(builder));
    sys.create_group_with_id("svc", gid, b);
    let data_a = ReplicatedData::new(gid, DATA, UpdateOrdering::Causal);
    let d = data_a.clone();
    let a = sys.spawn(SiteId(0), move |builder| d.attach(builder));
    sys.join_and_wait(gid, a, None, Duration::from_secs(5))
        .unwrap();

    // Site 0 crashes and later recovers empty; the group survives on site 1.
    sys.kill_site(SiteId(0));
    let ok = sys.run_until_condition(Duration::from_secs(10), |s| {
        s.view_of(SiteId(1), gid)
            .map(|v| v.len() == 1)
            .unwrap_or(false)
    });
    assert!(ok);
    sys.recover_site(SiteId(0));
    sys.run_ms(200);

    // The namespace on the recovered site is rebuilt by re-registration (the namespace
    // service push), after which a fresh process there can rejoin the surviving group.
    sys.with_stack(SiteId(0), |stack, _now, _out| {
        stack.register_group("svc", gid, vec![SiteId(1)]);
    });
    let data_a2 = ReplicatedData::new(gid, DATA, UpdateOrdering::Causal);
    let d = data_a2.clone();
    let a2 = sys.spawn(SiteId(0), move |builder| d.attach(builder));
    sys.join_and_wait(gid, a2, None, Duration::from_secs(5))
        .unwrap();
    let v = sys.view_of(SiteId(1), gid).unwrap();
    assert_eq!(v.members.len(), 2);
    assert!(v.contains(a2));

    // Updates now reach both the survivor and the recovered member.
    sys.client_send(
        b,
        gid,
        DATA,
        Message::new().with("rd-item", "x").with("rd-value", 1u64),
        ProtocolKind::Cbcast,
    );
    sys.run_ms(300);
    assert_eq!(data_b.read_u64("x"), Some(1));
    assert_eq!(data_a2.read_u64("x"), Some(1));
}

// ---------------------------------------------------------------------------------------
// Torn-tail log replay
// ---------------------------------------------------------------------------------------
//
// A machine that dies mid-append leaves a torn final record on disk.  Replay must recover
// every *complete* record, in order, exactly once, and treat the torn tail as the crash
// artifact it is — never as an error, and never by replaying around a mid-log hole.

/// Unique on-disk root per proptest case (cases run sequentially in one process).
fn torn_root(case: u64) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("vsync-torn-replay-{}-{case}", std::process::id()))
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48 })]
    #[test]
    fn torn_log_tails_replay_every_complete_record(
        case in 0u64..u64::MAX,
        records in 1u64..10,
        mode in 0u8..3,
        cut in 1usize..4096,
    ) {
        let dir = torn_root(case);
        let _ = std::fs::remove_dir_all(&dir);

        // First incarnation: log `records` fsync'd deliveries.
        {
            let store: Rc<dyn StableStore> =
                Rc::new(FileStore::new(&dir).unwrap().with_fsync_interval(1));
            let rm = RecoveryManager::new(store, "torn");
            for i in 0..records {
                rm.log_delivery(DATA, &Message::with_body(i)).unwrap();
            }
        }

        // The crash artifact: mangle the tail of the log directory.
        let log_dir = dir.join("recovery-log-torn.log");
        let mut entries: Vec<std::path::PathBuf> = std::fs::read_dir(&log_dir)
            .unwrap()
            .map(|e| e.unwrap().path())
            .collect();
        entries.sort();
        let last = entries.last().unwrap().clone();
        // Whether the final *complete* record survives the mangling.
        let tail_survives = match mode {
            0 => {
                // Truncate the final record to a strict prefix: the classic torn write.
                let bytes = std::fs::read(&last).unwrap();
                std::fs::write(&last, &bytes[..cut % bytes.len()]).unwrap();
                false
            }
            1 => {
                // Overwrite the final record with garbage of arbitrary length.
                let garbage: Vec<u8> = (0..(cut % 64) + 1).map(|_| 0xFF).collect();
                std::fs::write(&last, garbage).unwrap();
                false
            }
            _ => {
                // A torn append *after* the last complete record: a fresh entry file the
                // crash left undecodable.  Every complete record must survive.
                let name = format!("{:08}.msg", entries.len());
                std::fs::write(log_dir.join(name), [0xFFu8, 0x00, 0xFF]).unwrap();
                true
            }
        };

        // Second incarnation: replay recovers the complete records, in order, once.
        let store: Rc<dyn StableStore> = Rc::new(FileStore::new(&dir).unwrap());
        let rm = RecoveryManager::new(store, "torn");
        let got = RefCell::new(Vec::new());
        let summary = rm
            .replay(|entry, payload| {
                assert_eq!(entry, DATA);
                got.borrow_mut().push(payload.get_u64("body").unwrap());
            })
            .expect("torn tail must not fail replay");
        let got = got.into_inner();
        let expect: Vec<u64> = if tail_survives {
            (0..records).collect()
        } else {
            (0..records - 1).collect()
        };
        prop_assert_eq!(&got, &expect, "mode {}: wrong records replayed", mode);
        prop_assert_eq!(summary.messages, expect.len());

        // The torn entry was repaired on first read: a second replay sees a clean log and
        // yields exactly the same records (no error, no double-apply).
        let again = RefCell::new(Vec::new());
        rm.replay(|_, payload| {
            again.borrow_mut().push(payload.get_u64("body").unwrap());
        })
        .expect("repaired log must replay cleanly");
        prop_assert_eq!(again.into_inner(), expect);

        let _ = std::fs::remove_dir_all(&dir);
    }
}
