//! Integration: stable storage, the recovery manager's restart-vs-rejoin advice, and
//! rebuilding replicated state after a total failure (paper Section 3.8 and Section 5 Step 6).

use std::rc::Rc;

use vsync_core::{Duration, EntryId, IsisSystem, LatencyProfile, Message, ProtocolKind, SiteId};
use vsync_tools::{
    MemoryStore, RecoveryAdvice, RecoveryManager, ReplicatedData, StableStore, UpdateOrdering,
};

const DATA: EntryId = EntryId(60);

#[test]
fn replicated_data_survives_total_failure_through_checkpoint_and_log() {
    // "Stable" storage shared across incarnations of the simulated service.
    let store: Rc<dyn StableStore> = Rc::new(MemoryStore::new());

    // First incarnation: two members, some updates, a checkpoint, more updates, then a total
    // failure (both sites die).
    let mut sys = IsisSystem::new(2, LatencyProfile::Modern);
    let gid = sys.allocate_group_id();
    let data0 = ReplicatedData::new(gid, DATA, UpdateOrdering::Total)
        .with_logging(store.clone(), "inventory");
    let d0 = data0.clone();
    let creator = sys.spawn(SiteId(0), move |b| d0.attach(b));
    sys.create_group_with_id("inventory", gid, creator);
    let data1 = ReplicatedData::new(gid, DATA, UpdateOrdering::Total);
    let d1 = data1.clone();
    let member1 = sys.spawn(SiteId(1), move |b| d1.attach(b));
    sys.join_and_wait(gid, member1, None, Duration::from_secs(5))
        .unwrap();

    sys.client_send(
        creator,
        gid,
        DATA,
        Message::new()
            .with("rd-item", "widgets")
            .with("rd-value", 10u64),
        ProtocolKind::Abcast,
    );
    sys.run_ms(300);
    data0.checkpoint().unwrap();
    sys.client_send(
        creator,
        gid,
        DATA,
        Message::new()
            .with("rd-item", "widgets")
            .with("rd-value", 25u64),
        ProtocolKind::Abcast,
    );
    sys.client_send(
        creator,
        gid,
        DATA,
        Message::new()
            .with("rd-item", "gadgets")
            .with("rd-value", 3u64),
        ProtocolKind::Abcast,
    );
    sys.run_ms(300);
    assert_eq!(data0.read_u64("widgets"), Some(25));
    sys.kill_site(SiteId(0));
    sys.kill_site(SiteId(1));

    // Second incarnation: a fresh replica recovers from the checkpoint plus the logged
    // updates, exactly as the original version of the program "would have read the database
    // from disk".
    let recovered =
        ReplicatedData::new(gid, DATA, UpdateOrdering::Total).with_logging(store, "inventory");
    let replayed = recovered.recover_from_log().unwrap();
    assert_eq!(replayed, 2, "two post-checkpoint updates replayed");
    assert_eq!(recovered.read_u64("widgets"), Some(25));
    assert_eq!(recovered.read_u64("gadgets"), Some(3));
}

#[test]
fn recovery_manager_advice_depends_on_who_failed_last() {
    let mut sys = IsisSystem::new(3, LatencyProfile::Modern);
    let store: Rc<dyn StableStore> = Rc::new(MemoryStore::new());
    let rm = RecoveryManager::new(store, "svc");

    let gid = sys.allocate_group_id();
    let rm_attach = rm.clone();
    let a = sys.spawn(SiteId(0), move |b| rm_attach.attach_logging(b, gid));
    sys.create_group_with_id("svc", gid, a);
    let rm_attach = rm.clone();
    let b = sys.spawn(SiteId(1), move |builder| {
        rm_attach.attach_logging(builder, gid)
    });
    sys.join_and_wait(gid, b, None, Duration::from_secs(5))
        .unwrap();
    sys.run_ms(100);

    // While the group is operational somewhere, the advice is always to rejoin.
    assert_eq!(rm.advise(a, true).unwrap(), RecoveryAdvice::Rejoin);

    // Member a fails first; the survivors install a view without it and keep logging.
    sys.kill_process(a);
    let ok = sys.run_until_condition(Duration::from_secs(10), |s| {
        s.view_of(SiteId(1), gid)
            .map(|v| v.len() == 1)
            .unwrap_or(false)
    });
    assert!(ok);
    sys.run_ms(100);

    // Now the whole group fails.  Consulting the (surviving site's) log: member b was in the
    // last view, so it restarts; member a was not, so it waits for b.
    assert_eq!(rm.advise(b, false).unwrap(), RecoveryAdvice::Restart);
    assert_eq!(rm.advise(a, false).unwrap(), RecoveryAdvice::WaitForRestart);
    assert_eq!(rm.last_known_members().unwrap(), vec![b]);
}

#[test]
fn recovered_site_can_host_a_rejoining_member() {
    let mut sys = IsisSystem::new(3, LatencyProfile::Modern);
    let data_a = ReplicatedData::new(vsync_core::GroupId(1), DATA, UpdateOrdering::Causal);
    let gid = sys.allocate_group_id();
    assert_eq!(gid, vsync_core::GroupId(1));
    let d = data_a.clone();
    let a = sys.spawn(SiteId(0), move |b| d.attach(b));
    sys.create_group_with_id("svc", gid, a);
    let data_b = ReplicatedData::new(gid, DATA, UpdateOrdering::Causal);
    let d = data_b.clone();
    let b = sys.spawn(SiteId(1), move |builder| d.attach(builder));
    sys.join_and_wait(gid, b, None, Duration::from_secs(5))
        .unwrap();

    // Site 0 crashes and later recovers empty; the group survives on site 1.
    sys.kill_site(SiteId(0));
    let ok = sys.run_until_condition(Duration::from_secs(10), |s| {
        s.view_of(SiteId(1), gid)
            .map(|v| v.len() == 1)
            .unwrap_or(false)
    });
    assert!(ok);
    sys.recover_site(SiteId(0));
    sys.run_ms(200);

    // The namespace on the recovered site is rebuilt by re-registration (the namespace
    // service push), after which a fresh process there can rejoin the surviving group.
    sys.with_stack(SiteId(0), |stack, _now, _out| {
        stack.register_group("svc", gid, vec![SiteId(1)]);
    });
    let data_a2 = ReplicatedData::new(gid, DATA, UpdateOrdering::Causal);
    let d = data_a2.clone();
    let a2 = sys.spawn(SiteId(0), move |builder| d.attach(builder));
    sys.join_and_wait(gid, a2, None, Duration::from_secs(5))
        .unwrap();
    let v = sys.view_of(SiteId(1), gid).unwrap();
    assert_eq!(v.members.len(), 2);
    assert!(v.contains(a2));

    // Updates now reach both the survivor and the recovered member.
    sys.client_send(
        b,
        gid,
        DATA,
        Message::new().with("rd-item", "x").with("rd-value", 1u64),
        ProtocolKind::Cbcast,
    );
    sys.run_ms(300);
    assert_eq!(data_b.read_u64("x"), Some(1));
    assert_eq!(data_a2.read_u64("x"), Some(1));
}
