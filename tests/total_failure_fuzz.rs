//! Total-failure reform (paper Section 3.8): every member site of a group is killed
//! mid-burst — process, memory and in-flight state all gone, only the fsync'd on-disk
//! recovery logs survive — and the restarting sites must *reform* the group from those
//! logs: exchange log summaries, elect the "last to fail" log as authoritative, refound
//! the group from the winner's replayed state, and rejoin the losers via the ordinary
//! view-cut state transfer.
//!
//! What the scenario pins, on both backends and across fuzzed kill orders and instants:
//!
//! * exactly one site's log wins the election (no split-brain refounding);
//! * every reformed member ends with the identical delivery order, whose prefix is
//!   exactly the winner's durably-logged pre-crash order;
//! * the exactly-once partition holds per member:
//!   `log-replayed + snapshot + post-reform applies == total`;
//! * compaction-truncated logs (checkpoint + log tail) reform to the same state as
//!   uncompacted ones, including when a kill lands in the compaction window.
//!
//! The kill choreography is a seedable [`CrashSchedule`] so the proptest leg draws many
//! orders and instants without hand-writing permutations.

use std::cell::RefCell;
use std::path::{Path, PathBuf};
use std::rc::Rc;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use proptest::prelude::*;
use vsync::core::{
    Duration, EntryId, GroupId, Message, ProcessId, ProtocolKind, ReformStatus, SiteId, StackConfig,
};
use vsync::proto::ProtoConfig;
use vsync::rt::{CrashSchedule, FaultPlan, IsisHarness, IsisRuntime, SimRuntime, ThreadedRuntime};
use vsync::tools::{FileStore, RecoveryManager, StateTransfer};
use vsync::util::NetParams;

const APPLY: EntryId = EntryId(5);
const NUM_SITES: u16 = 3;
/// Pre-crash burst: sent round-robin while the crash schedule executes, so an arbitrary
/// prefix of it lands in the logs.
const BURST: u64 = 8;
/// Post-reform burst: sent by all reformed members, must be delivered everywhere.
const POST: u64 = 8;

/// Test-side mirror of one member: its full state order plus the exactly-once partition
/// counters (how many bodies arrived via log replay, via the rejoin snapshot, and via
/// post-cut delivery).
struct Member {
    order: Arc<Mutex<Vec<u64>>>,
    ready: Arc<AtomicBool>,
    replayed: Arc<AtomicU64>,
    snapshot_added: Arc<AtomicU64>,
    applies: Arc<AtomicU64>,
}

impl Member {
    fn new(ready: bool) -> Member {
        Member {
            order: Arc::new(Mutex::new(Vec::new())),
            ready: Arc::new(AtomicBool::new(ready)),
            replayed: Arc::new(AtomicU64::new(0)),
            snapshot_added: Arc::new(AtomicU64::new(0)),
            applies: Arc::new(AtomicU64::new(0)),
        }
    }

    fn order(&self) -> Vec<u64> {
        self.order.lock().unwrap().clone()
    }

    fn partition(&self) -> [u64; 3] {
        [
            self.replayed.load(Ordering::Relaxed),
            self.snapshot_added.load(Ordering::Relaxed),
            self.applies.load(Ordering::Relaxed),
        ]
    }
}

fn site_root(root: &Path, site: SiteId) -> PathBuf {
    root.join(format!("s{}", site.0))
}

fn open_manager(root: PathBuf) -> RecoveryManager {
    RecoveryManager::new(
        Rc::new(
            FileStore::new(root)
                .expect("open store")
                .with_fsync_interval(1),
        ),
        "recovery",
    )
}

/// Wires the common member plumbing on the node: a `Vec<u64>` state fed by ABCAST
/// deliveries (logged durably *before* they touch state, so the mirror is always covered
/// by the log) and by snapshot blocks (deduplicated — the rejoin snapshot may overlap a
/// replayed prefix).
fn wire_member(
    b: &mut vsync::core::ProcessBuilder,
    gid: GroupId,
    rm: RecoveryManager,
    state: Rc<RefCell<Vec<u64>>>,
    m: &Member,
    ready: bool,
    compaction: Option<usize>,
) {
    rm.attach_logging(b, gid);
    if let Some(threshold) = compaction {
        let s_ckpt = state.clone();
        rm.attach_compaction(b, gid, threshold, move || {
            s_ckpt
                .borrow()
                .iter()
                .map(|v| Message::new().with("tf-entry", *v))
                .collect()
        });
    }
    let s_encode = state.clone();
    let s_apply = state.clone();
    let o_apply = m.order.clone();
    let c_snapshot = m.snapshot_added.clone();
    let m_ready = m.ready.clone();
    let xfer = StateTransfer::new(
        gid,
        move || {
            s_encode
                .borrow()
                .iter()
                .map(|v| Message::new().with("tf-entry", *v))
                .collect()
        },
        move |_ctx, block| {
            if let Some(v) = block.get_u64("tf-entry") {
                let mut s = s_apply.borrow_mut();
                if !s.contains(&v) {
                    s.push(v);
                    o_apply.lock().unwrap().push(v);
                    c_snapshot.fetch_add(1, Ordering::Relaxed);
                }
            }
            if block.get_bool("xfer-last").unwrap_or(false) {
                m_ready.store(true, Ordering::Relaxed);
            }
        },
    );
    xfer.attach(b);
    if ready {
        xfer.mark_ready();
    }
    let s_update = state.clone();
    let o_update = m.order.clone();
    let c_applies = m.applies.clone();
    xfer.on_entry_buffered(b, APPLY, move |_ctx, msg| {
        let _ = rm.log_delivery(APPLY, msg);
        let v = msg.get_u64("body").unwrap_or(u64::MAX);
        s_update.borrow_mut().push(v);
        o_update.lock().unwrap().push(v);
        c_applies.fetch_add(1, Ordering::Relaxed);
    });
}

/// First incarnation: empty state, durable logging (and optionally compaction) from the
/// start.
fn spawn_logging_member<R: IsisRuntime>(
    h: &mut IsisHarness<R>,
    site: SiteId,
    gid: GroupId,
    ready: bool,
    root: PathBuf,
    compaction: Option<usize>,
) -> (ProcessId, Member) {
    let m = Member::new(ready);
    let mirror = Member {
        order: m.order.clone(),
        ready: m.ready.clone(),
        replayed: m.replayed.clone(),
        snapshot_added: m.snapshot_added.clone(),
        applies: m.applies.clone(),
    };
    let pid = h.spawn(site, move |b| {
        let rm = open_manager(root);
        let state: Rc<RefCell<Vec<u64>>> = Rc::new(RefCell::new(Vec::new()));
        wire_member(b, gid, rm, state, &mirror, ready, compaction);
    });
    (pid, m)
}

/// The election winner's second incarnation: full recovery (newest checkpoint's blocks,
/// then the surviving log tail) rebuilds the authoritative pre-crash state *before* any
/// handler is wired; it then refounds the group, so it spawns ready.
fn spawn_reform_leader<R: IsisRuntime>(
    h: &mut IsisHarness<R>,
    site: SiteId,
    gid: GroupId,
    root: PathBuf,
) -> (ProcessId, Member) {
    let m = Member::new(true);
    let mirror = Member {
        order: m.order.clone(),
        ready: m.ready.clone(),
        replayed: m.replayed.clone(),
        snapshot_added: m.snapshot_added.clone(),
        applies: m.applies.clone(),
    };
    let pid = h.spawn(site, move |b| {
        let rm = open_manager(root);
        let state: Rc<RefCell<Vec<u64>>> = Rc::new(RefCell::new(Vec::new()));
        {
            let s = state.clone();
            let o = mirror.order.clone();
            let s2 = state.clone();
            let o2 = mirror.order.clone();
            let summary = rm
                .recover(
                    |block| {
                        if let Some(v) = block.get_u64("tf-entry") {
                            s.borrow_mut().push(v);
                            o.lock().unwrap().push(v);
                        }
                    },
                    |entry, payload| {
                        if entry == APPLY {
                            let v = payload.get_u64("body").unwrap_or(u64::MAX);
                            s2.borrow_mut().push(v);
                            o2.lock().unwrap().push(v);
                        }
                    },
                )
                .expect("leader recovery");
            mirror.replayed.store(
                (summary.messages + summary.snapshot_blocks) as u64,
                Ordering::Relaxed,
            );
        }
        wire_member(b, gid, rm, state, &mirror, true, None);
    });
    (pid, m)
}

/// A loser's second incarnation: its log lost the election, so its (possibly divergent)
/// tail is discarded outright and the whole state arrives via the winner's view-cut
/// snapshot — the paper's "recover as if joining for the first time" path.
fn spawn_reform_follower<R: IsisRuntime>(
    h: &mut IsisHarness<R>,
    site: SiteId,
    gid: GroupId,
    root: PathBuf,
) -> (ProcessId, Member) {
    let m = Member::new(false);
    let mirror = Member {
        order: m.order.clone(),
        ready: m.ready.clone(),
        replayed: m.replayed.clone(),
        snapshot_added: m.snapshot_added.clone(),
        applies: m.applies.clone(),
    };
    let pid = h.spawn(site, move |b| {
        let rm = open_manager(root);
        rm.discard().expect("discard losing log");
        let state: Rc<RefCell<Vec<u64>>> = Rc::new(RefCell::new(Vec::new()));
        wire_member(b, gid, rm, state, &mirror, false, None);
    });
    (pid, m)
}

/// Everything the invariant checks need from one run.
struct ReformOutcome {
    /// The elected site.
    lead: SiteId,
    /// Kill order the schedule executed.
    kill_order: Vec<SiteId>,
    /// The winner's durably-covered pre-crash order (its mirror at the instant it died).
    precrash_lead: Vec<u64>,
    /// Final state orders, indexed by site.
    orders: Vec<Vec<u64>>,
    /// Final partition counters, indexed by site.
    partitions: Vec<[u64; 3]>,
}

/// Runs the full scenario: found a three-member group, start a burst, execute the crash
/// schedule mid-burst (total failure), respawn every site, reform from the logs, rejoin
/// the losers, then a post-reform burst.
fn run_total_failure_scenario<R: IsisRuntime>(
    mut h: IsisHarness<R>,
    root: &Path,
    schedule: &CrashSchedule,
    crash_after: Duration,
    compaction: Option<usize>,
) -> ReformOutcome {
    let _ = std::fs::remove_dir_all(root);
    let gid = h.allocate_group_id();
    let sites = h.sites();

    // Found the group and get all three members in with completed transfers.
    let mut pids = Vec::new();
    let mut members = Vec::new();
    for (i, &s) in sites.iter().enumerate() {
        let (pid, m) = spawn_logging_member(&mut h, s, gid, i == 0, site_root(root, s), compaction);
        if i == 0 {
            h.create_group_with_id("tf", gid, pid);
        } else {
            h.join_and_wait(gid, pid, None, Duration::from_secs(20))
                .expect("initial join");
        }
        pids.push(pid);
        members.push(m);
    }
    let ok = h.wait_until(Duration::from_secs(20), |_| {
        members.iter().all(|m| m.ready.load(Ordering::Relaxed))
    });
    assert!(ok, "initial transfers never completed");

    // The burst, and the coordinated crash in the middle of it.
    for i in 0..BURST {
        h.client_send(
            pids[(i % NUM_SITES as u64) as usize],
            gid,
            APPLY,
            Message::with_body(i),
            ProtocolKind::Abcast,
        );
    }
    if crash_after > Duration::ZERO {
        h.rt.advance(crash_after);
    }
    h.run_crash_schedule(schedule);
    for &s in &sites {
        assert!(!h.rt.site_is_up(s), "schedule must kill every site");
    }
    let precrash: Vec<Vec<u64>> = members.iter().map(|m| m.order()).collect();

    // Respawn the sites (empty stacks, no processes) and start the reform election at
    // each: offer what the site's own log covers to the sites of its last recorded view.
    h.respawn_all();
    for &s in &sites {
        let r = site_root(root, s);
        let me = pids[s.index()];
        let began = h.query(s, move |stack, _now, out| {
            let rm = open_manager(r);
            let summary = rm
                .log_summary(me)
                .expect("log summary")
                .expect("every member site logged durably");
            let mut expected = rm.last_known_sites().expect("last known sites");
            if expected.is_empty() {
                expected.push(me.site);
            }
            stack.begin_reform(gid, summary, expected, out);
        });
        assert!(began.is_some(), "reform never started at {s:?}");
    }

    // Poll every site until its election resolves.
    let mut resolved: Vec<Option<ReformStatus>> = vec![None; sites.len()];
    let mut waited = Duration::ZERO;
    while resolved.iter().any(Option::is_none) {
        for &s in &sites {
            if resolved[s.index()].is_some() {
                continue;
            }
            match h.reform_status(s, gid) {
                Some(ReformStatus::Collecting { .. }) | None => {}
                Some(done) => resolved[s.index()] = Some(done),
            }
        }
        h.rt.advance(Duration::from_millis(5));
        waited += Duration::from_millis(5);
        assert!(
            waited < Duration::from_secs(30),
            "reform election never resolved: {resolved:?}"
        );
    }

    // Exactly one winner; everyone else must name it as their contact.
    let leads: Vec<(SiteId, u64)> = sites
        .iter()
        .filter_map(|&s| match resolved[s.index()] {
            Some(ReformStatus::Lead { new_view_seq }) => Some((s, new_view_seq)),
            _ => None,
        })
        .collect();
    assert_eq!(
        leads.len(),
        1,
        "exactly one log must win the election: {resolved:?}"
    );
    let (lead, new_view_seq) = leads[0];
    for &s in &sites {
        if s == lead {
            continue;
        }
        let contact = match resolved[s.index()] {
            Some(ReformStatus::Follow { leader }) => leader,
            Some(ReformStatus::Operational { contact }) => contact,
            ref other => panic!("loser at {s:?} resolved unexpectedly: {other:?}"),
        };
        assert_eq!(contact, lead, "loser at {s:?} named the wrong contact");
    }

    // The winner replays its log and refounds the group one past the authoritative view,
    // so the reformed incarnation's views dominate every pre-crash log.
    let (lead_pid, lead_member) = spawn_reform_leader(&mut h, lead, gid, site_root(root, lead));
    h.query(lead, move |stack, _now, out| {
        stack.create_group_at("tf", gid, lead_pid, new_view_seq, out);
    })
    .expect("refound at leader");
    assert_eq!(
        lead_member.order(),
        precrash[lead.index()],
        "leader replay must rebuild exactly its durably-covered pre-crash order"
    );

    // The losers discard their divergent tails and rejoin through the ordinary view-cut
    // transfer, with the reformed leader as contact.
    let mut new_pids = vec![ProcessId::new(lead, 0); sites.len()];
    let mut new_members: Vec<Option<Member>> = sites.iter().map(|_| None).collect();
    new_pids[lead.index()] = lead_pid;
    new_members[lead.index()] = Some(lead_member);
    for &s in &sites {
        if s == lead {
            continue;
        }
        let (pid, m) = spawn_reform_follower(&mut h, s, gid, site_root(root, s));
        h.query(s, move |stack, _now, _out| {
            stack.register_group("tf", gid, vec![lead]);
        })
        .expect("register reformed group");
        h.join_and_wait(gid, pid, None, Duration::from_secs(20))
            .expect("loser rejoin");
        new_pids[s.index()] = pid;
        new_members[s.index()] = Some(m);
    }
    let new_members: Vec<Member> = new_members.into_iter().map(Option::unwrap).collect();
    let ok = h.wait_until(Duration::from_secs(20), |_| {
        new_members.iter().all(|m| m.ready.load(Ordering::Relaxed))
    });
    assert!(ok, "rejoin transfers never completed");

    // Post-reform burst: distinct bodies, everyone sending, everyone delivering.
    let total = precrash[lead.index()].len() as u64 + POST;
    for i in 0..POST {
        h.client_send(
            new_pids[(i % NUM_SITES as u64) as usize],
            gid,
            APPLY,
            Message::with_body(100 + i),
            ProtocolKind::Abcast,
        );
    }
    let ok = h.wait_until(Duration::from_secs(20), |_| {
        new_members
            .iter()
            .all(|m| m.order.lock().unwrap().len() as u64 == total)
    });
    assert!(ok, "post-reform deliveries incomplete");
    h.settle(Duration::from_millis(50));

    let outcome = ReformOutcome {
        lead,
        kill_order: schedule.order(),
        precrash_lead: precrash[lead.index()].clone(),
        orders: new_members.iter().map(Member::order).collect(),
        partitions: new_members.iter().map(Member::partition).collect(),
    };
    let _ = std::fs::remove_dir_all(root);
    outcome
}

/// The invariants every run must satisfy, regardless of kill order or instant.
fn check_reform(o: &ReformOutcome) {
    let lead = o.lead.index();
    let total = o.precrash_lead.len() + POST as usize;

    // Identical delivery orders everywhere, whose prefix is exactly the winner's
    // durably-logged pre-crash order.
    for (i, order) in o.orders.iter().enumerate() {
        assert_eq!(
            order, &o.orders[lead],
            "member at site {i} diverges from the reformed order"
        );
        assert_eq!(
            order.len(),
            total,
            "member at site {i} lost or gained bodies"
        );
    }
    assert_eq!(
        &o.orders[lead][..o.precrash_lead.len()],
        &o.precrash_lead[..],
        "the authoritative pre-crash order must survive as the reformed prefix"
    );

    // No duplicates, and the delivered set is exactly log ∪ post-reform burst.
    let mut bodies = o.orders[lead].clone();
    bodies.sort_unstable();
    let mut expect = o.precrash_lead.clone();
    expect.extend((0..POST).map(|i| 100 + i));
    expect.sort_unstable();
    assert_eq!(bodies, expect, "reformed members lost or duplicated bodies");

    // The exactly-once partition.  The winner gets its whole prefix from the log and
    // nothing from any snapshot; each loser gets the whole prefix from the winner's
    // snapshot and nothing from its (discarded) log; everyone applies the post burst.
    let prefix = o.precrash_lead.len() as u64;
    for (i, p) in o.partitions.iter().enumerate() {
        let expected = if i == lead {
            [prefix, 0, POST]
        } else {
            [0, prefix, POST]
        };
        assert_eq!(
            *p, expected,
            "site {i} partition (log-replayed + snapshot + applies) off \
             (kill order {:?}, lead {:?})",
            o.kill_order, o.lead
        );
        assert_eq!(
            p.iter().sum::<u64>(),
            total as u64,
            "site {i}: partition must sum to the member's total state"
        );
    }
}

fn sim_harness(seed: u64) -> IsisHarness<SimRuntime> {
    let params = NetParams::modern();
    IsisHarness::new(SimRuntime::new(
        NUM_SITES as usize,
        params,
        StackConfig::from_params(&params),
        ProtoConfig::fast(),
        seed,
    ))
}

fn threaded_harness(seed: u64) -> IsisHarness<ThreadedRuntime> {
    let faults = FaultPlan::none()
        .with_delay(Duration::from_micros(100))
        .with_jitter(Duration::from_micros(300));
    IsisHarness::new(ThreadedRuntime::new(
        NUM_SITES as usize,
        ThreadedRuntime::fast_local_config(),
        ProtoConfig::fast(),
        faults,
        seed,
    ))
}

fn fuzz_root(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("vsync-total-failure-{tag}-{}", std::process::id()))
}

// ---------------------------------------------------------------------------------------
// Deterministic conformance legs (both backends)
// ---------------------------------------------------------------------------------------

#[test]
fn simulated_backend_reforms_after_total_failure() {
    // Generous gaps: each kill is followed by a view change at the survivors — until the
    // group is down to its last two members.  Killing the *older* of those wedges the
    // younger behind the primary-partition fence (the survivor is the losing half of an
    // even split), so the final two sites' logs share the authoritative view and the
    // election tie-breaks toward the older member: the penultimate kill wins.
    let sites: Vec<SiteId> = (0..NUM_SITES).map(SiteId).collect();
    let schedule = CrashSchedule::staggered(sites, Duration::from_millis(200));
    let o = run_total_failure_scenario(
        sim_harness(2026),
        &fuzz_root("sim"),
        &schedule,
        Duration::from_millis(2),
        None,
    );
    check_reform(&o);
    let penultimate = o.kill_order.get(o.kill_order.len() - 2);
    assert_eq!(
        Some(&o.lead),
        penultimate,
        "the older member of the final wedged pair must win the election"
    );
}

#[test]
fn simulated_backend_reforms_after_a_reversed_kill_order() {
    let sites: Vec<SiteId> = (0..NUM_SITES).rev().map(SiteId).collect();
    let schedule = CrashSchedule::staggered(sites, Duration::from_millis(200));
    let o = run_total_failure_scenario(
        sim_harness(2027),
        &fuzz_root("sim-rev"),
        &schedule,
        Duration::from_millis(2),
        None,
    );
    check_reform(&o);
    assert_eq!(Some(&o.lead), o.kill_order.last());
}

#[test]
fn simulated_backend_reforms_after_a_simultaneous_crash() {
    // No site outlives another: the election falls entirely to the frontier weight and
    // rank tie-breaks, and must still produce exactly one winner.
    let sites: Vec<SiteId> = (0..NUM_SITES).map(SiteId).collect();
    let schedule = CrashSchedule::simultaneous(sites);
    let o = run_total_failure_scenario(
        sim_harness(2028),
        &fuzz_root("sim-simul"),
        &schedule,
        Duration::from_millis(3),
        None,
    );
    check_reform(&o);
}

#[test]
fn threaded_backend_reforms_after_total_failure() {
    let sites: Vec<SiteId> = (0..NUM_SITES).map(SiteId).collect();
    let schedule = CrashSchedule::staggered(sites, Duration::from_millis(20));
    let o = run_total_failure_scenario(
        threaded_harness(2026),
        &fuzz_root("thr"),
        &schedule,
        Duration::from_millis(2),
        None,
    );
    check_reform(&o);
}

#[test]
fn threaded_backend_reforms_after_a_shuffled_kill_order() {
    let sites: Vec<SiteId> = (0..NUM_SITES).map(SiteId).collect();
    let schedule = CrashSchedule::shuffled(sites, Duration::from_millis(10), 7);
    let o = run_total_failure_scenario(
        threaded_harness(2029),
        &fuzz_root("thr-shuf"),
        &schedule,
        Duration::from_millis(1),
        None,
    );
    check_reform(&o);
}

// ---------------------------------------------------------------------------------------
// Compaction companions
// ---------------------------------------------------------------------------------------

/// A compaction-truncated log (checkpoint + surviving tail) must reform to *exactly* the
/// state an uncompacted log reforms to.  Compaction is purely local work inside a view
/// change handler, so the same seed and schedule produce the same network history in the
/// simulator — any divergence is compaction corrupting recovery.
#[test]
fn compacted_logs_reform_to_the_same_state_as_uncompacted() {
    let sites: Vec<SiteId> = (0..NUM_SITES).map(SiteId).collect();
    let schedule = CrashSchedule::staggered(sites, Duration::from_millis(200));
    let plain = run_total_failure_scenario(
        sim_harness(2030),
        &fuzz_root("plain"),
        &schedule,
        Duration::from_millis(2),
        None,
    );
    check_reform(&plain);
    // Threshold 1: every view change with anything in the log compacts, so the staggered
    // kills (each of which forces a view change at the survivors) guarantee the winner's
    // log is checkpoint + tail by the time it dies.
    let compacted = run_total_failure_scenario(
        sim_harness(2030),
        &fuzz_root("compacted"),
        &schedule,
        Duration::from_millis(2),
        Some(1),
    );
    check_reform(&compacted);
    assert_eq!(
        plain.lead, compacted.lead,
        "compaction changed the election outcome"
    );
    assert_eq!(
        plain.orders, compacted.orders,
        "compaction-truncated logs reformed to a different state"
    );
    assert_eq!(plain.partitions, compacted.partitions);
}

/// Kills timed around the survivors' post-kill view change — the instant automatic
/// compaction fires — exercising the checkpoint-written / log-truncated crash window.
#[test]
fn kills_landing_in_the_compaction_window_stay_exactly_once() {
    // The first kill forces a view change (and hence a compaction) at the survivors
    // roughly one failure timeout later; sweep the second kill across that instant.
    let ft = NetParams::modern().failure_timeout;
    for (i, epsilon_ms) in [0u64, 2, 5, 10].into_iter().enumerate() {
        let schedule = CrashSchedule::at_offsets([
            (SiteId(0), Duration::ZERO),
            (SiteId(1), ft + Duration::from_millis(epsilon_ms)),
            (SiteId(2), ft.saturating_mul(3)),
        ]);
        let o = run_total_failure_scenario(
            sim_harness(3000 + i as u64),
            &fuzz_root(&format!("ckpt-window-{i}")),
            &schedule,
            Duration::from_millis(2),
            Some(1),
        );
        check_reform(&o);
    }
}

// ---------------------------------------------------------------------------------------
// Fuzz: crash order and crash instant
// ---------------------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig { cases: 10 })]
    #[test]
    fn any_kill_order_and_instant_reforms_exactly_once_sim(
        seed in 0u64..u64::MAX,
        gap_ms in 0u64..300,
        crash_after_ms in 0u64..10,
        compact in 0u8..2,
    ) {
        let sites: Vec<SiteId> = (0..NUM_SITES).map(SiteId).collect();
        let schedule = CrashSchedule::shuffled(sites, Duration::from_millis(gap_ms), seed);
        let o = run_total_failure_scenario(
            sim_harness(seed ^ 0xace1),
            &fuzz_root(&format!("fuzz-{seed}")),
            &schedule,
            Duration::from_millis(crash_after_ms),
            if compact == 1 { Some(2) } else { None },
        );
        check_reform(&o);
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 3 })]
    #[test]
    fn any_kill_order_and_instant_reforms_exactly_once_threaded(
        seed in 0u64..u64::MAX,
        gap_ms in 0u64..30,
        crash_after_ms in 0u64..4,
    ) {
        let sites: Vec<SiteId> = (0..NUM_SITES).map(SiteId).collect();
        let schedule = CrashSchedule::shuffled(sites, Duration::from_millis(gap_ms), seed);
        let o = run_total_failure_scenario(
            threaded_harness(seed ^ 0xbeef),
            &fuzz_root(&format!("fuzz-thr-{seed}")),
            &schedule,
            Duration::from_millis(crash_after_ms),
            None,
        );
        check_reform(&o);
    }
}
