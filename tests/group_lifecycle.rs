//! Integration: process-group lifecycle — create, lookup, join, rank, leave — across the full
//! stack (engine → transport → protocol endpoints → site stacks → application handlers).

use vsync_core::{Duration, EntryId, IsisSystem, LatencyProfile, Message, SiteId};

const ECHO: EntryId = EntryId(1);

fn spawn_echo(sys: &mut IsisSystem, site: SiteId) -> vsync_core::ProcessId {
    sys.spawn(site, |b| {
        b.on_entry(ECHO, |ctx, msg| {
            ctx.reply(
                msg,
                Message::with_body(msg.get_u64("body").unwrap_or(0) + 1),
            );
        });
    })
}

#[test]
fn create_join_leave_lifecycle() {
    let mut sys = IsisSystem::new(4, LatencyProfile::Modern);
    let a = spawn_echo(&mut sys, SiteId(0));
    let b = spawn_echo(&mut sys, SiteId(1));
    let c = spawn_echo(&mut sys, SiteId(2));

    let gid = sys.create_group("service", a);
    assert_eq!(
        sys.lookup(SiteId(3), "service"),
        Some(gid),
        "namespace visible everywhere"
    );

    sys.join_and_wait(gid, b, None, Duration::from_secs(5))
        .unwrap();
    sys.join_and_wait(gid, c, None, Duration::from_secs(5))
        .unwrap();

    // Ranks reflect decreasing age and are identical at every member site.
    for site in [0u16, 1, 2] {
        let v = sys.view_of(SiteId(site), gid).unwrap();
        assert_eq!(v.members, vec![a, b, c], "site {site}");
    }
    assert_eq!(sys.rank_of(gid, a), Some(0));
    assert_eq!(sys.rank_of(gid, b), Some(1));
    assert_eq!(sys.rank_of(gid, c), Some(2));

    // The middle member leaves; survivors promote consistently.
    sys.leave_and_wait(gid, b, Duration::from_secs(5)).unwrap();
    sys.run_ms(100);
    for site in [0u16, 2] {
        let v = sys.view_of(SiteId(site), gid).unwrap();
        assert_eq!(v.members, vec![a, c], "site {site}");
    }
    assert_eq!(sys.rank_of(gid, c), Some(1), "survivor promoted to rank 1");
}

#[test]
fn every_member_observes_the_same_view_sequence() {
    let mut sys = IsisSystem::new(3, LatencyProfile::Modern);
    let members: Vec<_> = (0..3).map(|i| spawn_echo(&mut sys, SiteId(i))).collect();
    let gid = sys.create_group("seq", members[0]);
    for m in &members[1..] {
        sys.join_and_wait(gid, *m, None, Duration::from_secs(5))
            .unwrap();
    }
    // All sites agree on the final view id and membership.
    let views: Vec<_> = (0..3)
        .map(|i| sys.view_of(SiteId(i), gid).unwrap())
        .collect();
    assert!(views.windows(2).all(|w| w[0] == w[1]));
    assert_eq!(views[0].seq(), 3);
}

#[test]
fn joining_a_nonexistent_group_fails_cleanly() {
    let mut sys = IsisSystem::new(2, LatencyProfile::Modern);
    let p = spawn_echo(&mut sys, SiteId(0));
    let bogus = vsync_core::GroupId(999);
    let res = sys.join_and_wait(bogus, p, None, Duration::from_millis(200));
    assert!(res.is_err());
}

#[test]
fn two_groups_are_independent() {
    let mut sys = IsisSystem::new(3, LatencyProfile::Modern);
    let a = spawn_echo(&mut sys, SiteId(0));
    let b = spawn_echo(&mut sys, SiteId(1));
    let c = spawn_echo(&mut sys, SiteId(2));
    let g1 = sys.create_group("g1", a);
    let g2 = sys.create_group("g2", b);
    sys.join_and_wait(g1, c, None, Duration::from_secs(5))
        .unwrap();
    sys.join_and_wait(g2, c, None, Duration::from_secs(5))
        .unwrap();
    assert_eq!(sys.view_of(SiteId(0), g1).unwrap().members, vec![a, c]);
    assert_eq!(sys.view_of(SiteId(1), g2).unwrap().members, vec![b, c]);
    // Killing a member of g1 does not disturb g2's membership.
    sys.kill_process(a);
    let ok = sys.run_until_condition(Duration::from_secs(10), |s| {
        s.view_of(SiteId(2), g1)
            .map(|v| v.len() == 1)
            .unwrap_or(false)
    });
    assert!(ok);
    assert_eq!(sys.view_of(SiteId(2), g2).unwrap().members, vec![b, c]);
}
