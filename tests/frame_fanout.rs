//! Integration: the shared-frame fan-out contract.
//!
//! A multicast to N sites must encode its wire frame exactly once, parse it at most once
//! per (frame, receiving site) — in practice once per frame, because receivers share the
//! frame's decode memo — and still hand every receiver an isolated payload: one receiver
//! editing its copy can never be observed by another.  The encode/decode counts come from
//! `vsync_proto::messages::wire_stats`, which tracks uncached frame work per thread.

use std::any::Any;
use std::cell::RefCell;
use std::rc::Rc;

use vsync_core::{
    Duration, EntryId, IsisSystem, LatencyProfile, Message, ProcessId, ProtocolKind, SiteId,
    StackConfig,
};
use vsync_msg::Frame;
use vsync_net::{Engine, Outbox, Packet, PacketKind, SiteHandler};
use vsync_proto::messages::wire_stats;
use vsync_proto::ProtoConfig;
use vsync_util::{NetParams, SimTime};

const APPLY: EntryId = EntryId(2);

type Log = Rc<RefCell<Vec<u64>>>;
type Deployment = (IsisSystem, vsync_core::GroupId, Vec<ProcessId>, Vec<Log>);

/// A cluster whose every periodic timer is pushed beyond the test horizon, so the only
/// wire traffic during the measurement window is the multicast under test.
fn quiet_cluster(num_sites: usize, num_members: usize) -> Deployment {
    let hour = Duration::from_secs(3_600);
    let stack_cfg = StackConfig {
        tick_interval: hour,
        heartbeat_interval: hour,
        failure_timeout: hour,
        rpc_timeout: hour,
        reform_timeout: hour,
    };
    let proto_cfg = ProtoConfig {
        stability_interval: hour,
        flush_timeout: hour,
        abcast_retry: hour,
        ack_proposal_only: true,
        primary_partition: true,
    };
    let mut sys = IsisSystem::builder(num_sites)
        .profile(LatencyProfile::Modern)
        .stack_config(stack_cfg)
        .proto_config(proto_cfg)
        .seed(11)
        .build();
    let mut members = Vec::new();
    let mut logs = Vec::new();
    for i in 0..num_members {
        let log: Log = Rc::new(RefCell::new(Vec::new()));
        let l = log.clone();
        let pid = sys.spawn(SiteId(i as u16), move |b| {
            b.on_entry(APPLY, move |_ctx, msg| {
                l.borrow_mut().push(msg.get_u64("body").unwrap_or(0));
            });
        });
        members.push(pid);
        logs.push(log);
    }
    let gid = sys.create_group("fanout", members[0]);
    for m in &members[1..] {
        sys.join_and_wait(gid, *m, None, Duration::from_secs(30))
            .expect("join");
    }
    sys.run_ms(50);
    (sys, gid, members, logs)
}

#[test]
fn cbcast_fan_out_encodes_once_and_decodes_once_per_frame() {
    let (mut sys, gid, members, logs) = quiet_cluster(4, 3);
    let encodes = wire_stats::frame_encodes();
    let decodes = wire_stats::frame_decodes();
    sys.client_send(
        members[0],
        gid,
        APPLY,
        Message::with_body(77u64),
        ProtocolKind::Cbcast,
    );
    sys.run_ms(50);
    for (i, log) in logs.iter().enumerate() {
        assert_eq!(log.borrow().as_slice(), &[77], "member {i} delivered");
    }
    assert_eq!(
        wire_stats::frame_encodes() - encodes,
        1,
        "a multicast to 2 peer sites encodes exactly one wire frame"
    );
    assert_eq!(
        wire_stats::frame_decodes() - decodes,
        1,
        "both receiving sites share the frame's decode memo: one parse total \
         (the contract allows at most one per site-frame pair)"
    );
}

#[test]
fn abcast_fan_out_encodes_once_per_protocol_message() {
    let (mut sys, gid, members, logs) = quiet_cluster(4, 3);
    let encodes = wire_stats::frame_encodes();
    let decodes = wire_stats::frame_decodes();
    sys.client_send(
        members[1],
        gid,
        APPLY,
        Message::with_body(99u64),
        ProtocolKind::Abcast,
    );
    sys.run_ms(100);
    for (i, log) in logs.iter().enumerate() {
        assert_eq!(log.borrow().as_slice(), &[99], "member {i} delivered");
    }
    // ABCAST = 1 AbData (fanned out, shared) + 2 AbPropose (one per destination site,
    // distinct frames) + 1 AbOrder (fanned out, shared): 4 encodes.
    assert_eq!(
        wire_stats::frame_encodes() - encodes,
        4,
        "one encode per distinct protocol message, regardless of fan-out width"
    );
    // Decodes: AbData parsed once (memo shared by both receivers), each AbPropose once at
    // the initiator, AbOrder once (memo shared): 4 — and never more than one per
    // (frame, receiving site) pair, of which there are 6.
    let d = wire_stats::frame_decodes() - decodes;
    assert_eq!(d, 4, "decode-once delivery held: {d} parses");
}

/// Engine-level isolation: two packets of one fan-out alias a single frame; a receiver
/// that edits its packet payload (copy-on-write) must not be observable by the other.
struct Editor {
    edit: bool,
    seen: Rc<RefCell<Vec<String>>>,
}

impl SiteHandler for Editor {
    fn on_packet(&mut self, _now: SimTime, mut pkt: Packet, _out: &mut Outbox) {
        if self.edit {
            pkt.payload_mut().set("body", "defaced");
        }
        self.seen
            .borrow_mut()
            .push(pkt.payload.get_str("body").unwrap_or("?").to_owned());
    }

    fn on_timer(&mut self, _now: SimTime, _token: u64, _out: &mut Outbox) {}

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[test]
fn shared_frame_fan_out_preserves_payload_isolation_between_receivers() {
    let seen = Rc::new(RefCell::new(Vec::new()));
    let mut eng = Engine::new(3, NetParams::instant(), 5);
    eng.install_site(
        SiteId(0),
        Box::new(Editor {
            edit: false,
            seen: seen.clone(),
        }),
    );
    // Site 1 edits its delivered copy; site 2 receives the sibling packet of the same
    // fan-out afterwards (same instant, pushed later) and must see the original body.
    eng.install_site(
        SiteId(1),
        Box::new(Editor {
            edit: true,
            seen: seen.clone(),
        }),
    );
    eng.install_site(
        SiteId(2),
        Box::new(Editor {
            edit: false,
            seen: seen.clone(),
        }),
    );
    let src = ProcessId::new(SiteId(0), 0);
    let frame = Frame::new(Message::with_body("pristine"));
    eng.with_site::<Editor, _>(SiteId(0), |_h, _now, out| {
        for dst_site in [1u16, 2] {
            out.send(Packet::new(
                src,
                ProcessId::new(SiteId(dst_site), 0),
                PacketKind::Data,
                frame.clone(),
            ));
        }
    });
    eng.run_until(SimTime(1_000_000));
    assert_eq!(
        seen.borrow().as_slice(),
        ["defaced", "pristine"],
        "the editing receiver sees its edit; the aliasing receiver sees the original"
    );
    // And the sender's own handle still reads the original: copy-on-write never wrote
    // through the shared allocation.
    assert_eq!(frame.get_str("body"), Some("pristine"));
}
