//! The distributed twenty-questions service of paper Section 5, end to end: vertical and
//! horizontal queries, a dynamic update, and a member failure with a hot standby taking over.
//!
//! Run with: `cargo run --example twenty_questions`

use vsync_apps::twenty::{Database, Op, Query, TwentyQuestions};
use vsync_core::{Duration, IsisSystem, LatencyProfile, SiteId};

fn main() {
    // Four service sites plus one client site (the paper ran on four SUN 3/50s).
    let mut sys = IsisSystem::new(5, LatencyProfile::Modern);
    let sites: Vec<SiteId> = (0..4).map(SiteId).collect();

    // Deploy with NMEMBERS = 3 active members and one hot standby (Step 4).
    let svc = TwentyQuestions::deploy(&mut sys, "twenty", &sites, 3, Database::demo());
    let client = sys.spawn(SiteId(4), |_| {});

    // Vertical query: exactly one member answers, selected by column mod NMEMBERS.
    let q = Query::vertical("price", Op::Gt, "9000");
    println!(
        "price > 9000        -> {:?}",
        svc.query(&mut sys, client, &q, Duration::from_secs(5))
    );

    // Horizontal query: every active member answers over its rows.
    let q = Query::horizontal("price", Op::Gt, "9000");
    println!(
        "*price > 9000       -> {:?}",
        svc.query(&mut sys, client, &q, Duration::from_secs(5))
    );

    // Dynamic update (Step 5): add a very expensive car, delivered by GBCAST.
    svc.update(
        &mut sys,
        client,
        vec![
            ("object".into(), "car".into()),
            ("color".into(), "silver".into()),
            ("size".into(), "sport".into()),
            ("price".into(), "120000".into()),
            ("make".into(), "Ferrari".into()),
            ("model".into(), "F40".into()),
        ],
    );
    sys.run_ms(300);
    println!("replica sizes after update: {:?}", svc.replica_sizes());
    let q = Query::vertical("price", Op::Gt, "50000");
    println!(
        "price > 50000       -> {:?}",
        svc.query(&mut sys, client, &q, Duration::from_secs(5))
    );

    // Failure: kill an active member; the standby takes over its rank (Steps 3-4).
    sys.kill_process(svc.members[1]);
    let gid = svc.gid;
    sys.run_until_condition(Duration::from_secs(10), |s| {
        s.view_of(SiteId(0), gid)
            .map(|v| v.len() == 3)
            .unwrap_or(false)
    });
    let q = Query::horizontal("object", Op::Eq, "car");
    println!(
        "after failure, *object = car -> {:?}",
        svc.query(&mut sys, client, &q, Duration::from_secs(5))
    );
    println!("multicasts used: {}", sys.stats().multicast_summary());
}
