//! The factory-automation scenario from the paper's introduction: an emulsion-deposition
//! service (coordinator–cohort) and a transport service (replicated station status plus a
//! conveyor semaphore).
//!
//! Run with: `cargo run --example factory_automation`

use vsync_apps::factory::Factory;
use vsync_core::{Duration, IsisSystem, LatencyProfile, SiteId};

fn main() {
    let mut sys = IsisSystem::new(4, LatencyProfile::Modern);
    let factory = Factory::deploy(&mut sys, &[SiteId(0), SiteId(1), SiteId(2)]);
    let operator = sys.spawn(SiteId(3), |_| {});

    // Submit a few emulsion batches; each is processed by exactly one member (the
    // coordinator), with the others standing by as cohorts.
    for batch in 1..=5u64 {
        let done = factory.submit_batch(&mut sys, operator, batch, Duration::from_secs(5));
        println!("batch {batch} deposited by the service -> {done:?}");
    }
    println!(
        "total batches processed: {}",
        factory.total_batches_processed()
    );

    // Update station status through the replicated data tool and read it from another member.
    factory.update_station(&mut sys, 0, "station-7", "loaded");
    factory.update_station(&mut sys, 1, "station-9", "empty");
    sys.run_ms(200);
    println!(
        "station-7 as seen from member 2: {:?}",
        factory.station_status(2, "station-7")
    );

    // Kill the oldest emulsion member mid-operation; the next batch still completes because
    // the cohorts take over.
    sys.kill_process(factory.emulsion[0].pid);
    sys.run_until_condition(Duration::from_secs(10), |s| {
        s.view_of(SiteId(1), factory.emulsion_gid)
            .map(|v| v.len() == 2)
            .unwrap_or(false)
    });
    let done = factory.submit_batch(&mut sys, operator, 6, Duration::from_secs(5));
    println!("batch 6 after a member failure -> {done:?}");
    println!("multicasts used: {}", sys.stats().multicast_summary());
}
