//! Total-failure recovery (paper Section 3.8): every site hosting a group dies — OS
//! threads, memory, in-flight messages, all of it — and the group must come back from
//! nothing but the fsync'd recovery logs on each site's disk.
//!
//! The restarting sites run the *reform* protocol:
//!
//! 1. each reopens its own log and broadcasts a **log summary** — the highest view
//!    sequence it recorded and its per-origin delivery frontier — to the sites of the
//!    last view its log remembers;
//! 2. the summaries are totally ordered (view seq, then covered frontier, then rank):
//!    the **"last site to fail"** wins, because only its log saw the group's final state;
//! 3. the winner replays its log (checkpoint + tail, if compaction ran) and *refounds*
//!    the group one view past the authoritative log, so the reformed incarnation's views
//!    dominate every pre-crash log;
//! 4. the losers discard their divergent tails and rejoin through the ordinary view-cut
//!    state transfer, exactly like a brand-new member.
//!
//! The example stages a coordinated crash with a [`CrashSchedule`] — site 0 first, then
//! site 1, then site 2, so site 2's log is authoritative — and prints the election plus
//! each member's exactly-once partition:
//! `log-replayed + snapshot + post-reform applies == total`.
//!
//! Run with: `cargo run --example total_failure`

use std::cell::RefCell;
use std::path::PathBuf;
use std::rc::Rc;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use vsync::core::{Duration, EntryId, GroupId, Message, ProtocolKind, ReformStatus, SiteId};
use vsync::proto::ProtoConfig;
use vsync::rt::{CrashSchedule, FaultPlan, IsisHarness, IsisRuntime, ThreadedRuntime};
use vsync::tools::{FileStore, RecoveryManager, StateTransfer};

const APPLY: EntryId = EntryId(9);

struct Mirror {
    order: Arc<Mutex<Vec<u64>>>,
    ready: Arc<AtomicBool>,
    replayed: Arc<AtomicU64>,
    snapshot_added: Arc<AtomicU64>,
    applies: Arc<AtomicU64>,
}

impl Mirror {
    fn new(ready: bool) -> Mirror {
        Mirror {
            order: Arc::new(Mutex::new(Vec::new())),
            ready: Arc::new(AtomicBool::new(ready)),
            replayed: Arc::new(AtomicU64::new(0)),
            snapshot_added: Arc::new(AtomicU64::new(0)),
            applies: Arc::new(AtomicU64::new(0)),
        }
    }

    fn share(&self) -> Mirror {
        Mirror {
            order: self.order.clone(),
            ready: self.ready.clone(),
            replayed: self.replayed.clone(),
            snapshot_added: self.snapshot_added.clone(),
            applies: self.applies.clone(),
        }
    }
}

fn open_manager(root: PathBuf) -> RecoveryManager {
    RecoveryManager::new(
        Rc::new(FileStore::new(root).expect("store").with_fsync_interval(1)),
        "recovery",
    )
}

/// Wires a member whose state is the ordered list of delivered bodies, durably logged
/// (log first, then apply) and served to joiners via state transfer.
fn wire_member(
    b: &mut vsync::core::ProcessBuilder,
    gid: GroupId,
    rm: RecoveryManager,
    state: Rc<RefCell<Vec<u64>>>,
    m: &Mirror,
    ready: bool,
) {
    rm.attach_logging(b, gid);
    let s_encode = state.clone();
    let s_apply = state.clone();
    let o_apply = m.order.clone();
    let c_snapshot = m.snapshot_added.clone();
    let m_ready = m.ready.clone();
    let xfer = StateTransfer::new(
        gid,
        move || {
            s_encode
                .borrow()
                .iter()
                .map(|v| Message::new().with("tf-entry", *v))
                .collect()
        },
        move |_ctx, block| {
            if let Some(v) = block.get_u64("tf-entry") {
                let mut s = s_apply.borrow_mut();
                if !s.contains(&v) {
                    s.push(v);
                    o_apply.lock().unwrap().push(v);
                    c_snapshot.fetch_add(1, Ordering::Relaxed);
                }
            }
            if block.get_bool("xfer-last").unwrap_or(false) {
                m_ready.store(true, Ordering::Relaxed);
            }
        },
    );
    xfer.attach(b);
    if ready {
        xfer.mark_ready();
    }
    let s_update = state.clone();
    let o_update = m.order.clone();
    let c_applies = m.applies.clone();
    xfer.on_entry_buffered(b, APPLY, move |_ctx, msg| {
        let _ = rm.log_delivery(APPLY, msg);
        let v = msg.get_u64("body").unwrap_or(u64::MAX);
        s_update.borrow_mut().push(v);
        o_update.lock().unwrap().push(v);
        c_applies.fetch_add(1, Ordering::Relaxed);
    });
}

fn main() {
    let root = std::env::temp_dir().join(format!("vsync-total-failure-ex-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let site_root = |s: SiteId| root.join(format!("s{}", s.0));

    let faults = FaultPlan::none()
        .with_delay(Duration::from_micros(100))
        .with_jitter(Duration::from_micros(300));
    let mut h = IsisHarness::new(ThreadedRuntime::new(
        3,
        ThreadedRuntime::fast_local_config(),
        ProtoConfig::fast(),
        faults,
        7,
    ));
    let sites: Vec<SiteId> = h.sites();
    let gid = h.allocate_group_id();

    // -- A three-member group, every member logging durably ------------------------------
    let mut pids = Vec::new();
    let mut mirrors = Vec::new();
    for (i, &s) in sites.iter().enumerate() {
        let m = Mirror::new(i == 0);
        let shared = m.share();
        let r = site_root(s);
        let pid = h.spawn(s, move |b| {
            let state = Rc::new(RefCell::new(Vec::new()));
            wire_member(b, gid, open_manager(r), state, &shared, i == 0);
        });
        if i == 0 {
            h.create_group_with_id("inventory", gid, pid);
        } else {
            h.join_and_wait(gid, pid, None, Duration::from_secs(10))
                .expect("join");
        }
        pids.push(pid);
        mirrors.push(m);
    }
    h.wait_until(Duration::from_secs(10), |_| {
        mirrors.iter().all(|m| m.ready.load(Ordering::Relaxed))
    });
    println!("group formed: 3 members over sites 0-2, each logging to its own disk");

    // -- A burst, and a coordinated total failure in the middle of it --------------------
    for i in 0..8u64 {
        h.client_send(
            pids[(i % 3) as usize],
            gid,
            APPLY,
            Message::with_body(i),
            ProtocolKind::Abcast,
        );
    }
    h.rt.advance(Duration::from_millis(2));
    let schedule = CrashSchedule::staggered(sites.clone(), Duration::from_millis(25));
    println!(
        "killing every site mid-burst, {:?} apart (kill order {:?})",
        Duration::from_millis(25),
        schedule.order()
    );
    h.run_crash_schedule(&schedule);
    let covered: Vec<usize> = mirrors
        .iter()
        .map(|m| m.order.lock().unwrap().len())
        .collect();
    println!("total failure: all sites dead; per-site durably covered deliveries: {covered:?}");

    // -- Reform: respawn, exchange summaries, elect the last log -------------------------
    h.respawn_all();
    for &s in &sites {
        let r = site_root(s);
        let me = pids[s.index()];
        h.query(s, move |stack, _now, out| {
            let rm = open_manager(r);
            let summary = rm.log_summary(me).expect("summary").expect("logged");
            let mut expected = rm.last_known_sites().expect("sites");
            if expected.is_empty() {
                expected.push(me.site);
            }
            stack.begin_reform(gid, summary, expected, out);
        });
    }
    let mut resolved: Vec<Option<ReformStatus>> = vec![None; sites.len()];
    while resolved.iter().any(Option::is_none) {
        for &s in &sites {
            if resolved[s.index()].is_none() {
                match h.reform_status(s, gid) {
                    Some(ReformStatus::Collecting { .. }) | None => {}
                    Some(done) => {
                        println!("  site {} resolved: {done:?}", s.0);
                        resolved[s.index()] = Some(done);
                    }
                }
            }
        }
        h.rt.advance(Duration::from_millis(5));
    }
    let (lead, new_view_seq) = sites
        .iter()
        .find_map(|&s| match resolved[s.index()] {
            Some(ReformStatus::Lead { new_view_seq }) => Some((s, new_view_seq)),
            _ => None,
        })
        .expect("exactly one leader");
    println!("election: site {}'s log is authoritative (last to fail); refounding at view {new_view_seq}", lead.0);

    // Winner: recover checkpoint + log tail into a fresh member, then refound the group.
    let lead_mirror = Mirror::new(true);
    let shared = lead_mirror.share();
    let r = site_root(lead);
    let lead_pid = h.spawn(lead, move |b| {
        let rm = open_manager(r);
        let state: Rc<RefCell<Vec<u64>>> = Rc::new(RefCell::new(Vec::new()));
        let s = state.clone();
        let o = shared.order.clone();
        let s2 = state.clone();
        let o2 = shared.order.clone();
        let summary = rm
            .recover(
                |block| {
                    if let Some(v) = block.get_u64("tf-entry") {
                        s.borrow_mut().push(v);
                        o.lock().unwrap().push(v);
                    }
                },
                |entry, payload| {
                    if entry == APPLY {
                        let v = payload.get_u64("body").unwrap_or(u64::MAX);
                        s2.borrow_mut().push(v);
                        o2.lock().unwrap().push(v);
                    }
                },
            )
            .expect("recover");
        shared.replayed.store(
            (summary.messages + summary.snapshot_blocks) as u64,
            Ordering::Relaxed,
        );
        wire_member(b, gid, rm, state, &shared, true);
    });
    h.query(lead, move |stack, _now, out| {
        stack.create_group_at("inventory", gid, lead_pid, new_view_seq, out);
    });

    // Losers: discard the divergent tail, rejoin via the ordinary view-cut transfer.
    let mut members = vec![None, None, None];
    let mut new_pids = [lead_pid; 3];
    members[lead.index()] = Some(lead_mirror);
    for &s in &sites {
        if s == lead {
            continue;
        }
        let m = Mirror::new(false);
        let shared = m.share();
        let r = site_root(s);
        let pid = h.spawn(s, move |b| {
            let rm = open_manager(r);
            rm.discard().expect("discard losing log");
            wire_member(
                b,
                gid,
                rm,
                Rc::new(RefCell::new(Vec::new())),
                &shared,
                false,
            );
        });
        h.query(s, move |stack, _now, _out| {
            stack.register_group("inventory", gid, vec![lead]);
        });
        h.join_and_wait(gid, pid, None, Duration::from_secs(10))
            .expect("loser rejoin");
        members[s.index()] = Some(m);
        new_pids[s.index()] = pid;
    }
    let members: Vec<Mirror> = members.into_iter().map(Option::unwrap).collect();
    h.wait_until(Duration::from_secs(10), |_| {
        members.iter().all(|m| m.ready.load(Ordering::Relaxed))
    });
    println!("reform complete: losers discarded their tails and rejoined via state transfer");

    // -- The reformed group is fully operational -----------------------------------------
    let replayed = members[lead.index()].replayed.load(Ordering::Relaxed);
    for i in 0..8u64 {
        h.client_send(
            new_pids[(i % 3) as usize],
            gid,
            APPLY,
            Message::with_body(100 + i),
            ProtocolKind::Abcast,
        );
    }
    let total = replayed + 8;
    h.wait_until(Duration::from_secs(10), |_| {
        members
            .iter()
            .all(|m| m.order.lock().unwrap().len() as u64 == total)
    });

    println!("\nexactly-once partition per member (log-replayed + snapshot + applies = total):");
    for (i, m) in members.iter().enumerate() {
        let (r, sn, a) = (
            m.replayed.load(Ordering::Relaxed),
            m.snapshot_added.load(Ordering::Relaxed),
            m.applies.load(Ordering::Relaxed),
        );
        println!(
            "  site {i}: {r:2} + {sn:2} + {a:2} = {:2}{}",
            r + sn + a,
            if SiteId(i as u16) == lead {
                "   <- election winner"
            } else {
                ""
            }
        );
        assert_eq!(r + sn + a, total);
    }
    let orders: Vec<Vec<u64>> = members
        .iter()
        .map(|m| m.order.lock().unwrap().clone())
        .collect();
    assert!(orders.windows(2).all(|w| w[0] == w[1]), "orders must agree");
    println!(
        "\nall members share the identical delivery order: {:?}",
        orders[0]
    );

    let _ = std::fs::remove_dir_all(&root);
}
