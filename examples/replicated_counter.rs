//! A replicated counter service using the replicated-data tool with asynchronous CBCAST
//! updates (paper Sections 3.4 and 3.6): the caller never blocks on its own updates, yet no
//! member ever reads a stale value relative to what the caller already observed.
//!
//! Run with: `cargo run --example replicated_counter`

use vsync_core::{Duration, EntryId, IsisSystem, LatencyProfile, Message, ProtocolKind, SiteId};
use vsync_tools::{ReplicatedData, UpdateOrdering};

const DATA: EntryId = EntryId(60);

fn main() {
    let mut sys = IsisSystem::new(3, LatencyProfile::Modern);
    let gid = sys.allocate_group_id();

    // Three members, each holding a replica managed by the replicated-data tool.
    let mut members = Vec::new();
    let mut replicas = Vec::new();
    for i in 0..3u16 {
        let data = ReplicatedData::new(gid, DATA, UpdateOrdering::Causal);
        let d = data.clone();
        let pid = sys.spawn(SiteId(i), move |b| d.attach(b));
        if i == 0 {
            sys.create_group_with_id("counter", gid, pid);
        } else {
            sys.join_and_wait(gid, pid, None, Duration::from_secs(5))
                .expect("join");
        }
        members.push(pid);
        replicas.push(data);
    }

    // Member 0 issues a burst of asynchronous updates; it can keep computing immediately.
    for value in 1..=20u64 {
        sys.client_send(
            members[0],
            gid,
            DATA,
            Message::new()
                .with("rd-item", "counter")
                .with("rd-value", value),
            ProtocolKind::Cbcast,
        );
    }
    // Reads at the sender reflect its own updates at once (delivered locally at send time).
    println!(
        "replica 0 immediately reads: {:?}",
        replicas[0].read_u64("counter")
    );

    sys.run_ms(500);
    for (i, r) in replicas.iter().enumerate() {
        println!(
            "replica {i}: counter = {:?} after {} applied updates",
            r.read_u64("counter"),
            r.updates_applied()
        );
    }
    println!("multicasts used: {}", sys.stats().multicast_summary());
}
