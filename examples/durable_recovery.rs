//! Durable log-based recovery (paper Sections 2.2 and 3.8): a member site dies outright —
//! its OS thread, memory and in-flight state all gone — and its next incarnation rebuilds
//! from an fsync'd on-disk log, rejoins via state transfer, and ends exactly-once.
//!
//! Every message reaches the recovered member through exactly one of three doors:
//!
//! * the **replayed log** for what it delivered (and durably recorded) before dying,
//! * the **rejoin snapshot** for what the group delivered while it was down,
//! * **post-snapshot delivery** for what arrived after its rejoin cut.
//!
//! The example prints the partition so the accounting is visible:
//! `log-replayed + snapshot + post-snapshot applies == total`.
//!
//! Run with: `cargo run --example durable_recovery`

use std::cell::RefCell;
use std::path::PathBuf;
use std::rc::Rc;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use vsync::core::{Duration, EntryId, Message, ProcessId, ProtocolKind, SiteId};
use vsync::proto::ProtoConfig;
use vsync::rt::{FaultPlan, IsisHarness, IsisRuntime, ThreadedRuntime};
use vsync::tools::{FileStore, RecoveryManager, StateTransfer};

const APPLY: EntryId = EntryId(9);

struct Mirror {
    len: Arc<AtomicU64>,
    ready: Arc<AtomicBool>,
    replayed: Arc<AtomicU64>,
    snapshot_added: Arc<AtomicU64>,
    applies: Arc<AtomicU64>,
}

/// Spawns a member whose state is the list of delivered bodies.  With a `root`, every
/// delivery and view marker is appended to an on-disk recovery log (fsync'd per record);
/// with `replay`, the state is first rebuilt from that log before anything else is wired.
fn spawn_member(
    h: &mut IsisHarness<ThreadedRuntime>,
    site: SiteId,
    gid: vsync::core::GroupId,
    ready: bool,
    root: Option<PathBuf>,
    replay: bool,
) -> (ProcessId, Mirror) {
    let mirror = Mirror {
        len: Arc::new(AtomicU64::new(0)),
        ready: Arc::new(AtomicBool::new(ready)),
        replayed: Arc::new(AtomicU64::new(0)),
        snapshot_added: Arc::new(AtomicU64::new(0)),
        applies: Arc::new(AtomicU64::new(0)),
    };
    let m_len = mirror.len.clone();
    let m_ready = mirror.ready.clone();
    let m_replayed = mirror.replayed.clone();
    let m_snapshot = mirror.snapshot_added.clone();
    let m_applies = mirror.applies.clone();
    let pid = h.spawn(site, move |b| {
        let rm = root.map(|r| {
            RecoveryManager::new(
                Rc::new(FileStore::new(r).expect("store").with_fsync_interval(1)),
                "example",
            )
        });
        let state: Rc<RefCell<Vec<u64>>> = Rc::new(RefCell::new(Vec::new()));
        if replay {
            let rm = rm.as_ref().expect("replay needs a store");
            let s = state.clone();
            let summary = rm
                .replay(|entry, payload| {
                    if entry == APPLY {
                        s.borrow_mut()
                            .push(payload.get_u64("body").unwrap_or(u64::MAX));
                    }
                })
                .expect("replay");
            m_replayed.store(summary.messages as u64, Ordering::Relaxed);
            m_len.store(state.borrow().len() as u64, Ordering::Relaxed);
        }
        if let Some(rm) = &rm {
            rm.attach_logging(b, gid);
        }
        let s_encode = state.clone();
        let s_apply = state.clone();
        let l_apply = m_len.clone();
        let xfer = StateTransfer::new(
            gid,
            move || {
                s_encode
                    .borrow()
                    .iter()
                    .map(|v| Message::new().with("entry", *v))
                    .collect()
            },
            move |_ctx, block| {
                if let Some(v) = block.get_u64("entry") {
                    let mut s = s_apply.borrow_mut();
                    // The rejoin snapshot overlaps the replayed prefix; apply only what
                    // the log did not already rebuild.
                    if !s.contains(&v) {
                        s.push(v);
                        l_apply.store(s.len() as u64, Ordering::Relaxed);
                        m_snapshot.fetch_add(1, Ordering::Relaxed);
                    }
                }
                if block.get_bool("xfer-last").unwrap_or(false) {
                    m_ready.store(true, Ordering::Relaxed);
                }
            },
        );
        xfer.attach(b);
        if ready {
            xfer.mark_ready();
        }
        let s_update = state.clone();
        xfer.on_entry_buffered(b, APPLY, move |_ctx, msg| {
            if let Some(rm) = &rm {
                let _ = rm.log_delivery(APPLY, msg);
            }
            let mut s = s_update.borrow_mut();
            s.push(msg.get_u64("body").unwrap_or(u64::MAX));
            m_len.store(s.len() as u64, Ordering::Relaxed);
            m_applies.fetch_add(1, Ordering::Relaxed);
        });
    });
    (pid, mirror)
}

fn main() {
    let root = std::env::temp_dir().join(format!("vsync-durable-recovery-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);

    let mut h = IsisHarness::new(ThreadedRuntime::new(
        3,
        ThreadedRuntime::fast_local_config(),
        ProtoConfig::fast(),
        FaultPlan::none().with_delay(Duration::from_micros(100)),
        7,
    ));
    let gid = h.allocate_group_id();
    let (m0, _c0) = spawn_member(&mut h, SiteId(0), gid, true, None, false);
    h.create_group_with_id("durable", gid, m0);
    let (m1, c1) = spawn_member(&mut h, SiteId(1), gid, false, None, false);
    h.join_and_wait(gid, m1, None, Duration::from_secs(20))
        .expect("join m1");
    let (m2, c2) = spawn_member(&mut h, SiteId(2), gid, false, Some(root.clone()), false);
    h.join_and_wait(gid, m2, None, Duration::from_secs(20))
        .expect("join m2");
    h.wait_until(Duration::from_secs(20), |_| {
        c1.ready.load(Ordering::Relaxed) && c2.ready.load(Ordering::Relaxed)
    });

    // Phase one: ten messages, each durably logged at site 2 before it is applied.
    for i in 0..10u64 {
        h.client_send(
            [m0, m1, m2][(i % 3) as usize],
            gid,
            APPLY,
            Message::with_body(i),
            ProtocolKind::Abcast,
        );
    }
    h.wait_until(Duration::from_secs(20), |_| {
        c2.len.load(Ordering::Relaxed) == 10
    });
    println!("phase one delivered: member 2 holds 10 records, all on disk");

    // The site dies completely; only the disk survives.
    h.rt.kill_site(SiteId(2));
    println!("site 2 killed (thread gone, memory gone)");

    // Phase two happens without it.
    for i in 10..20u64 {
        h.client_send(
            [m0, m1][(i % 2) as usize],
            gid,
            APPLY,
            Message::with_body(i),
            ProtocolKind::Abcast,
        );
    }
    h.wait_until(Duration::from_secs(20), |h| {
        c1.len.load(Ordering::Relaxed) == 20 && h.unstable_count(SiteId(0), gid) == 0
    });
    println!("phase two delivered to the survivors while site 2 was down");

    // Resurrection: fresh thread, replay the log, rejoin via state transfer.
    h.rt.recover_site(SiteId(2));
    let (r2, c2b) = spawn_member(&mut h, SiteId(2), gid, false, Some(root.clone()), true);
    h.query(SiteId(2), move |stack, _now, _out| {
        stack.register_group("durable", gid, vec![SiteId(0), SiteId(1)]);
    });
    h.join_and_wait(gid, r2, None, Duration::from_secs(20))
        .expect("rejoin");
    h.wait_until(Duration::from_secs(20), |_| {
        c2b.ready.load(Ordering::Relaxed)
    });

    // Phase three: the recovered member applies live traffic again.
    for i in 20..24u64 {
        h.client_send(r2, gid, APPLY, Message::with_body(i), ProtocolKind::Abcast);
    }
    h.wait_until(Duration::from_secs(20), |_| {
        c2b.len.load(Ordering::Relaxed) == 24
    });

    let replayed = c2b.replayed.load(Ordering::Relaxed);
    let snapshot = c2b.snapshot_added.load(Ordering::Relaxed);
    let applies = c2b.applies.load(Ordering::Relaxed);
    println!("recovered member's exactly-once partition:");
    println!("  log-replayed:           {replayed}");
    println!("  rejoin snapshot:        {snapshot}");
    println!("  post-snapshot applies:  {applies}");
    println!(
        "  total:                  {} (== {} messages sent)",
        replayed + snapshot + applies,
        24
    );
    assert_eq!(replayed + snapshot + applies, 24);

    let _ = std::fs::remove_dir_all(&root);
    h.rt.shutdown();
}
