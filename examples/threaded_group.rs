//! Quickstart for the threaded runtime: a process group served by real OS threads.
//!
//! Three sites run on three threads; a group forms across them, multicasts flow over the
//! lock-protected channels, one site crashes, and the survivors install the new view —
//! the same toolkit calls as the simulated quickstart, against `vsync::rt` instead of
//! `IsisSystem`.
//!
//! Run with: `cargo run --example threaded_group`

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use vsync::core::{Duration, EntryId, Message, ProcessId, ProtocolKind, SiteId};
use vsync::proto::ProtoConfig;
use vsync::rt::{FaultPlan, IsisHarness, IsisRuntime, ThreadedRuntime};

const HELLO: EntryId = EntryId(1);

fn main() {
    // One protocols process per site, each on its own OS thread.  Fault injection adds a
    // little link delay and jitter so this behaves like a LAN, not a function call.
    let rt = ThreadedRuntime::new(
        3,
        ThreadedRuntime::fast_local_config(),
        ProtoConfig::fast(),
        FaultPlan::none()
            .with_delay(Duration::from_micros(100))
            .with_jitter(Duration::from_micros(200)),
        1,
    );
    let mut h = IsisHarness::new(rt);

    // Spawn one member per site.  The handler closures are built on each node's thread;
    // the atomic counter is the only state shared with the main thread.
    let delivered = Arc::new(AtomicU64::new(0));
    let members: Vec<ProcessId> = (0..3u16)
        .map(|site| {
            let d = delivered.clone();
            h.spawn(SiteId(site), move |b| {
                b.on_entry(HELLO, move |ctx, msg| {
                    let n = d.fetch_add(1, Ordering::Relaxed);
                    let _ = (ctx.me(), msg.get_u64("body"), n);
                });
            })
        })
        .collect();

    // pg_create + pg_join, exactly as in the simulated quickstart.
    let gid = h.create_group("hello", members[0]);
    for m in &members[1..] {
        h.join_and_wait(gid, *m, None, Duration::from_secs(10))
            .expect("join");
    }
    let view = h.view_of(SiteId(0), gid).expect("view");
    println!(
        "group formed: {} members, view seq {}",
        view.len(),
        view.seq()
    );

    // Multicast from every member; each message lands once per member.
    for i in 0..5u64 {
        h.client_send(
            members[(i % 3) as usize],
            gid,
            HELLO,
            Message::with_body(i),
            ProtocolKind::Abcast,
        );
    }
    let all = h.wait_until(Duration::from_secs(10), |_| {
        delivered.load(Ordering::Relaxed) >= 15
    });
    println!(
        "delivered {} handler invocations (complete: {all})",
        delivered.load(Ordering::Relaxed)
    );

    // Crash a site; the survivors flush and install the two-member view.
    h.rt.kill_site(SiteId(2));
    let ok = h.wait_until(Duration::from_secs(15), |h| {
        h.view_of(SiteId(0), gid)
            .map(|v| v.len() == 2)
            .unwrap_or(false)
    });
    let view = h.view_of(SiteId(0), gid).expect("view");
    println!(
        "after crash: {} members, view seq {} (flush ok: {ok})",
        view.len(),
        view.seq()
    );

    // Clean shutdown joins every node thread.
    let reports = h.rt.shutdown();
    for r in reports {
        println!("site {:?} handled {} events", r.site, r.events);
    }
}
