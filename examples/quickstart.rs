//! Quickstart: create a process group, join members on three sites, multicast with CBCAST
//! and ABCAST, issue a group RPC, and watch a view change when a member fails.
//!
//! Run with: `cargo run --example quickstart`

use std::cell::RefCell;
use std::rc::Rc;

use vsync_core::{
    Address, Duration, EntryId, IsisSystem, LatencyProfile, Message, ProtocolKind, ReplyWanted,
    SiteId,
};

const HELLO: EntryId = EntryId(1);

fn main() {
    // A four-site simulated LAN with a modern latency profile.
    let mut sys = IsisSystem::new(4, LatencyProfile::Modern);

    // Spawn three members; each logs what it receives and answers group RPCs.
    let logs: Vec<Rc<RefCell<Vec<u64>>>> =
        (0..3).map(|_| Rc::new(RefCell::new(Vec::new()))).collect();
    let members: Vec<_> = (0..3)
        .map(|i| {
            let log = logs[i].clone();
            sys.spawn(SiteId(i as u16), move |b| {
                b.on_entry(HELLO, move |ctx, msg| {
                    let n = msg.get_u64("body").unwrap_or(0);
                    log.borrow_mut().push(n);
                    ctx.reply(msg, Message::with_body(n * 10));
                });
            })
        })
        .collect();

    // pg_create + pg_join: the group spans three sites, ranked by age.
    let gid = sys.create_group("hello-service", members[0]);
    for m in &members[1..] {
        sys.join_and_wait(gid, *m, None, Duration::from_secs(5))
            .expect("join");
    }
    println!("view: {:?}", sys.view_of(SiteId(0), gid).unwrap().members);

    // Asynchronous CBCAST: the caller continues immediately.
    sys.client_send(
        members[0],
        gid,
        HELLO,
        Message::with_body(1u64),
        ProtocolKind::Cbcast,
    );
    // Totally ordered ABCAST.
    sys.client_send(
        members[1],
        gid,
        HELLO,
        Message::with_body(2u64),
        ProtocolKind::Abcast,
    );
    sys.run_ms(200);

    // Group RPC from a client outside the group: wait for all three replies.
    let client = sys.spawn(SiteId(3), |_| {});
    let outcome = sys.client_call(
        client,
        vec![Address::Group(gid)],
        HELLO,
        Message::with_body(7u64),
        ProtocolKind::Cbcast,
        ReplyWanted::Count(3),
        Duration::from_secs(5),
    );
    println!(
        "group RPC got {} replies: {:?}",
        outcome.replies.len(),
        outcome
            .replies
            .iter()
            .filter_map(|r| r.get_u64("body"))
            .collect::<Vec<_>>()
    );

    // Kill a member: the surviving members install a new view (a clean, agreed event).
    sys.kill_process(members[2]);
    sys.run_until_condition(Duration::from_secs(10), |s| {
        s.view_of(SiteId(0), gid)
            .map(|v| v.len() == 2)
            .unwrap_or(false)
    });
    println!(
        "view after failure: {:?}",
        sys.view_of(SiteId(0), gid).unwrap().members
    );
    for (i, log) in logs.iter().enumerate() {
        println!("member {i} delivered {:?}", log.borrow());
    }
    println!("multicast counters: {}", sys.stats().multicast_summary());
}
