//! Focused demonstration of the coordinator–cohort tool (paper Section 6): the deterministic
//! coordinator selection, the cohort's monitoring, and take-over after a failure.
//!
//! Run with: `cargo run --example coordinator_failover`

use std::cell::RefCell;
use std::rc::Rc;

use vsync_core::{
    Address, Duration, EntryId, IsisSystem, LatencyProfile, Message, ProtocolKind, ReplyWanted,
    SiteId,
};
use vsync_tools::CoordCohort;

const WORK: EntryId = EntryId(33);

fn main() {
    let mut sys = IsisSystem::new(4, LatencyProfile::Modern);
    let gid = sys.allocate_group_id();

    // Three members; each records which requests it executed as coordinator.
    let mut members = Vec::new();
    let mut executed: Vec<Rc<RefCell<Vec<u64>>>> = Vec::new();
    for i in 0..3u16 {
        let cc = CoordCohort::new(gid);
        let cc_attach = cc.clone();
        let cc_handle = cc.clone();
        let log = Rc::new(RefCell::new(Vec::new()));
        let log_for_action = log.clone();
        let pid = sys.spawn(SiteId(i), move |b| {
            cc_attach.attach(b);
            let cc = cc_handle.clone();
            let log = log_for_action.clone();
            b.on_entry(WORK, move |ctx, msg| {
                let group = msg.group().unwrap_or(gid);
                let Some(view) = ctx.view_of(group).cloned() else {
                    ctx.null_reply(msg);
                    return;
                };
                let plist = view.members.clone();
                let log = log.clone();
                cc.handle(
                    ctx,
                    msg,
                    plist,
                    move |_ctx, request| {
                        let job = request.get_u64("job").unwrap_or(0);
                        log.borrow_mut().push(job);
                        Message::new().with("done", job)
                    },
                    |_ctx, _copy| {},
                );
            });
        });
        if i == 0 {
            sys.create_group_with_id("workers", gid, pid);
        } else {
            sys.join_and_wait(gid, pid, None, Duration::from_secs(5))
                .expect("join");
        }
        members.push(pid);
        executed.push(log);
    }

    let client = sys.spawn(SiteId(3), |_| {});
    let submit = |sys: &mut IsisSystem, job: u64| {
        let outcome = sys.client_call(
            client,
            vec![Address::Group(gid)],
            WORK,
            Message::new().with("job", job),
            ProtocolKind::Cbcast,
            ReplyWanted::One,
            Duration::from_secs(5),
        );
        outcome.replies.first().and_then(|r| r.get_u64("done"))
    };

    println!("job 1 -> {:?}", submit(&mut sys, 1));
    println!("job 2 -> {:?}", submit(&mut sys, 2));

    // Kill whichever member has been doing the work; the cohorts take over transparently.
    let busiest = executed
        .iter()
        .enumerate()
        .max_by_key(|(_, l)| l.borrow().len())
        .map(|(i, _)| i)
        .unwrap();
    println!("killing member {busiest} (the current coordinator)");
    sys.kill_process(members[busiest]);
    sys.run_until_condition(Duration::from_secs(10), |s| {
        s.view_of(SiteId((busiest as u16 + 1) % 3), gid)
            .map(|v| v.len() == 2)
            .unwrap_or(false)
    });
    println!("job 3 -> {:?}", submit(&mut sys, 3));

    for (i, log) in executed.iter().enumerate() {
        println!("member {i} executed jobs {:?}", log.borrow());
    }
}
