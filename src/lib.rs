//! Umbrella crate for the vsync workspace — a reproduction of the ISIS virtual
//! synchrony toolkit from Birman & Joseph, *"Exploiting Virtual Synchrony in
//! Distributed Systems"* (SOSP 1987).
//!
//! This crate exists so the repository root can host the cross-crate integration
//! tests (`tests/`) and the runnable examples (`examples/`), and so downstream
//! consumers can pull the whole stack in with a single dependency.  Each layer is
//! re-exported under its short name:
//!
//! * [`util`] — ids, virtual time, logical clocks, deterministic RNG.
//! * [`msg`] — the ISIS symbol-table message representation and binary codec.
//! * [`net`] — the deterministic discrete-event simulated LAN and failure detector.
//! * [`proto`] — CBCAST / ABCAST / GBCAST sans-io protocol state machines.
//! * [`core`] — the user-facing toolkit core: processes, group RPC, the protocol
//!   stack, and [`IsisSystem`](vsync_core::IsisSystem).
//! * [`rt`](mod@rt) — runtime backends behind the `Transport` abstraction: the
//!   deterministic simulation and the multi-threaded in-process runtime (one OS
//!   thread per site, lock-protected channels, fault injection).
//! * [`tools`] — the ISIS tool suite (coordinator–cohort, replicated data,
//!   semaphores, monitoring, recovery, state transfer, news, bulletin board).
//! * [`apps`] — worked applications: twenty questions (paper Section 5) and the
//!   factory-automation scenario.
//! * [`bench`](mod@bench) — the measurement harness that regenerates the paper's tables
//!   and figures.

pub use vsync_apps as apps;
pub use vsync_bench as bench;
pub use vsync_core as core;
pub use vsync_msg as msg;
pub use vsync_net as net;
pub use vsync_proto as proto;
pub use vsync_rt as rt;
pub use vsync_tools as tools;
pub use vsync_util as util;
