//! Property tests: the indexed ABCAST delivery path (`BTreeSet` delivery index plus
//! undecided frontier) must produce *exactly* the delivery sequence of the original
//! full-scan holdback queue, across random arrival/decision interleavings.
//!
//! The reference model below is a line-for-line port of the pre-index implementation:
//! a `BTreeMap` holdback queue whose `drain` rescans all pending messages for the minimum
//! effective key on every delivery.  Divergence in `drain`, `force_drain`, or
//! `pending_proposals` fails the test.

use std::collections::BTreeMap;

use proptest::prelude::*;
use vsync_msg::Message;
use vsync_net::MsgId;
use vsync_proto::abcast::AbcastState;
use vsync_util::{ProcessId, SiteId};

/// The original full-scan implementation, kept as the executable specification.
#[derive(Default)]
struct ReferenceAbcast {
    priority_clock: u64,
    pending: BTreeMap<MsgId, RefPending>,
}

struct RefPending {
    proposed: u64,
    decided: Option<(u64, SiteId)>,
}

impl ReferenceAbcast {
    fn on_data(&mut self, id: MsgId, _sender: ProcessId, _payload: Message) -> u64 {
        if let Some(p) = self.pending.get(&id) {
            return p.proposed;
        }
        self.priority_clock += 1;
        let proposed = self.priority_clock;
        self.pending.insert(
            id,
            RefPending {
                proposed,
                decided: None,
            },
        );
        proposed
    }

    fn decide(&mut self, id: MsgId, final_priority: u64, site: SiteId) {
        if let Some(p) = self.pending.get_mut(&id) {
            p.decided = Some((final_priority, site));
        }
        if final_priority > self.priority_clock {
            self.priority_clock = final_priority;
        }
    }

    fn pending_proposals(&self) -> Vec<(MsgId, u64)> {
        self.pending
            .iter()
            .filter(|(_, p)| p.decided.is_none())
            .map(|(id, p)| (*id, p.proposed))
            .collect()
    }

    /// The O(n²) drain: full rescan for the minimum effective key per delivery.
    fn drain(&mut self) -> Vec<(MsgId, u64)> {
        let mut out = Vec::new();
        loop {
            let min_key = self
                .pending
                .iter()
                .map(|(id, p)| {
                    let prio = p.decided.map(|(f, _)| f).unwrap_or(p.proposed);
                    (prio, *id)
                })
                .min();
            let Some((_, min_id)) = min_key else { break };
            let decided = self.pending.get(&min_id).and_then(|p| p.decided);
            match decided {
                Some((prio, _site)) => {
                    self.pending.remove(&min_id).expect("pending entry");
                    out.push((min_id, prio));
                }
                None => break,
            }
        }
        out
    }

    fn force_drain(&mut self) -> Vec<(MsgId, u64)> {
        let mut rest: Vec<(MsgId, RefPending)> =
            std::mem::take(&mut self.pending).into_iter().collect();
        rest.sort_by_key(|(id, p)| (p.decided.map(|(f, _)| f).unwrap_or(p.proposed), *id));
        rest.into_iter()
            .map(|(id, p)| (id, p.decided.map(|(f, _)| f).unwrap_or(p.proposed)))
            .collect()
    }
}

/// One step of a random ABCAST history, to be applied to both implementations.
#[derive(Clone, Copy, Debug)]
enum Op {
    /// Phase one arrival of message `idx` (idempotent on duplicates).
    Arrive(u8),
    /// Phase two decision for message `idx` with a priority offset and tie-break site.
    Decide(u8, u8, u8),
    /// Opportunistic delivery drain.
    Drain,
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u8..12).prop_map(Op::Arrive),
        (0u8..12, any::<u8>(), 0u8..4).prop_map(|(i, prio, site)| Op::Decide(i, prio, site)),
        Just(Op::Drain),
    ]
}

fn msg_id(idx: u8) -> MsgId {
    // Spread origins over a few sites so id tie-breaks are exercised.
    MsgId::new(SiteId(u16::from(idx % 3)), u64::from(idx))
}

fn sender(idx: u8) -> ProcessId {
    ProcessId::new(SiteId(u16::from(idx % 3)), u32::from(idx) + 1)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    #[test]
    fn indexed_abcast_matches_the_full_scan_reference(ops in proptest::collection::vec(arb_op(), 1..60)) {
        let mut new_impl = AbcastState::new();
        let mut reference = ReferenceAbcast::default();
        let mut delivered_new: Vec<(MsgId, u64)> = Vec::new();
        let mut delivered_ref: Vec<(MsgId, u64)> = Vec::new();

        for op in &ops {
            match *op {
                Op::Arrive(idx) => {
                    let id = msg_id(idx);
                    let p_new = new_impl.on_data(id, sender(idx), Message::with_body(u64::from(idx)));
                    let p_ref = reference.on_data(id, sender(idx), Message::with_body(u64::from(idx)));
                    prop_assert_eq!(p_new, p_ref, "proposals diverged for {:?}", id);
                }
                Op::Decide(idx, prio_offset, site) => {
                    let id = msg_id(idx);
                    // Priorities near the current clock keep the decided/undecided frontier
                    // interleaved rather than trivially ordered.
                    let base = reference.priority_clock;
                    let prio = base.saturating_sub(2) + u64::from(prio_offset % 8);
                    new_impl.decide(id, prio, SiteId(u16::from(site)));
                    reference.decide(id, prio, SiteId(u16::from(site)));
                }
                Op::Drain => {
                    delivered_new.extend(new_impl.drain().into_iter().map(|r| (r.id, r.priority)));
                    delivered_ref.extend(reference.drain());
                    prop_assert_eq!(&delivered_new, &delivered_ref, "drain order diverged");
                }
            }
            // The undecided frontier must agree at every step (flush acks depend on it).
            let mut p_new = new_impl.pending_proposals();
            let mut p_ref = reference.pending_proposals();
            p_new.sort_unstable();
            p_ref.sort_unstable();
            prop_assert_eq!(p_new, p_ref, "pending proposals diverged");
        }

        // Final flush cut: the forced drain must agree, completing the total order.
        delivered_new.extend(new_impl.force_drain().into_iter().map(|r| (r.id, r.priority)));
        delivered_ref.extend(reference.force_drain());
        prop_assert_eq!(delivered_new, delivered_ref, "total delivery order diverged");
        prop_assert_eq!(new_impl.pending_len(), 0);
    }

    #[test]
    fn two_destinations_with_same_decisions_deliver_identically(
        arrivals_a in proptest::collection::vec(0u8..10, 1..20),
        arrivals_b in proptest::collection::vec(0u8..10, 1..20),
        prios in proptest::collection::vec((0u8..10, any::<u8>()), 1..20),
    ) {
        // Two endpoints see overlapping message sets in different orders, then apply the
        // same decisions; messages decided at both must deliver in the same relative order.
        let mut site_a = AbcastState::new();
        let mut site_b = AbcastState::new();
        for idx in &arrivals_a {
            site_a.on_data(msg_id(*idx), sender(*idx), Message::with_body(u64::from(*idx)));
        }
        for idx in &arrivals_b {
            site_b.on_data(msg_id(*idx), sender(*idx), Message::with_body(u64::from(*idx)));
        }
        for (idx, prio) in &prios {
            let final_prio = 100 + u64::from(*prio);
            site_a.decide(msg_id(*idx), final_prio, SiteId(0));
            site_b.decide(msg_id(*idx), final_prio, SiteId(0));
        }
        let order_a: Vec<MsgId> = site_a.force_drain().into_iter().map(|r| r.id).collect();
        let order_b: Vec<MsgId> = site_b.force_drain().into_iter().map(|r| r.id).collect();
        // Project each site's order onto the common (decided) subset.
        let decided: std::collections::BTreeSet<MsgId> =
            prios.iter().map(|(idx, _)| msg_id(*idx)).collect();
        let common_a: Vec<MsgId> = order_a
            .iter()
            .filter(|id| decided.contains(id) && order_b.contains(id))
            .copied()
            .collect();
        let common_b: Vec<MsgId> = order_b
            .iter()
            .filter(|id| decided.contains(id) && order_a.contains(id))
            .copied()
            .collect();
        prop_assert_eq!(common_a, common_b, "decided messages must share one total order");
    }
}
