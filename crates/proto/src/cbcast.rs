//! CBCAST: causally ordered multicast.
//!
//! "Lamport observed that in a distributed system, the ordering of events is meaningful only
//! when information could have flowed from one to the other ...  CBCAST guarantees that if
//! any invocations of CBCAST are potentially causally related, the corresponding messages are
//! delivered everywhere in the order of invocation" (paper Section 3.1).
//!
//! The implementation is the classic vector-timestamp scheme: the sending endpoint increments
//! its own component and stamps the message; a receiver holds the message back until the
//! timestamp shows that every causally earlier message has already been delivered.  Messages
//! that are not causally related may be delivered in different orders at different sites —
//! that freedom is exactly what makes CBCAST cheap enough to use asynchronously.

use vsync_msg::Message;
use vsync_net::MsgId;
use vsync_util::{ProcessId, Rank, VectorClock};

/// A causally ordered message ready for delivery to the local members.
#[derive(Clone, Debug, PartialEq)]
pub struct ReadyCb {
    /// Unique id of the multicast.
    pub id: MsgId,
    /// Application-level sender.
    pub sender: ProcessId,
    /// Rank of the sending endpoint in the view.
    pub sender_rank: Rank,
    /// Vector timestamp of the message.
    pub vt: VectorClock,
    /// Application payload.
    pub payload: Message,
}

/// A message waiting in the holdback queue for its causal predecessors.
#[derive(Clone, Debug)]
struct HeldCb {
    ready: ReadyCb,
}

/// Per-view CBCAST state of one group endpoint.
#[derive(Clone, Debug, Default)]
pub struct CbcastState {
    delivered_vt: VectorClock,
    holdback: Vec<HeldCb>,
}

impl CbcastState {
    /// Creates state for a view with `width` members.
    pub fn new(width: usize) -> Self {
        CbcastState {
            delivered_vt: VectorClock::zero(width),
            holdback: Vec::new(),
        }
    }

    /// Resets the state for a new view of `width` members (the flush protocol guarantees
    /// nothing from the previous view is still undelivered).
    pub fn reset(&mut self, width: usize) {
        self.delivered_vt = VectorClock::zero(width);
        self.holdback.clear();
    }

    /// Vector timestamp of everything delivered so far.
    pub fn delivered_vt(&self) -> &VectorClock {
        &self.delivered_vt
    }

    /// Number of messages parked in the holdback queue.
    pub fn holdback_len(&self) -> usize {
        self.holdback.len()
    }

    /// Prepares to send a new CBCAST from the local member at `my_rank`: advances the local
    /// clock and returns the timestamp to stamp on the message.  The caller must deliver the
    /// message locally right away (the local copy trivially satisfies the delivery rule).
    pub fn stamp_send(&mut self, my_rank: Rank) -> VectorClock {
        self.delivered_vt.increment(my_rank);
        self.delivered_vt.clone()
    }

    /// Handles an incoming CBCAST.  Returns every message (possibly including this one and
    /// previously held ones) that has become deliverable, in causal order.
    pub fn receive(&mut self, msg: ReadyCb) -> Vec<ReadyCb> {
        let mut delivered = Vec::new();
        self.receive_into(msg, &mut delivered);
        delivered
    }

    /// Like [`CbcastState::receive`], but appends the deliverable messages to a
    /// caller-owned vector — the hot receive path reuses one scratch vector across packets
    /// instead of allocating per receive.
    pub fn receive_into(&mut self, msg: ReadyCb, delivered: &mut Vec<ReadyCb>) {
        self.holdback.push(HeldCb { ready: msg });
        self.drain_into(delivered);
    }

    /// Delivers every message whose causal predecessors have been delivered.
    pub fn drain(&mut self) -> Vec<ReadyCb> {
        let mut delivered = Vec::new();
        self.drain_into(&mut delivered);
        delivered
    }

    /// Allocation-reusing form of [`CbcastState::drain`].
    pub fn drain_into(&mut self, delivered: &mut Vec<ReadyCb>) {
        loop {
            let idx = self.holdback.iter().position(|h| {
                self.delivered_vt
                    .deliverable_from(h.ready.sender_rank, &h.ready.vt)
            });
            match idx {
                Some(i) => {
                    let h = self.holdback.remove(i);
                    self.delivered_vt.merge(&h.ready.vt);
                    delivered.push(h.ready);
                }
                None => break,
            }
        }
    }

    /// Delivers everything still held back, in a deterministic order, ignoring unsatisfiable
    /// causal dependencies.  Used at the flush cut when a dependency vanished with a failed
    /// sender that nobody else heard from.
    pub fn force_drain(&mut self) -> Vec<ReadyCb> {
        let mut rest: Vec<ReadyCb> = self.holdback.drain(..).map(|h| h.ready).collect();
        rest.sort_by(|a, b| {
            (a.sender_rank, a.vt.get(a.sender_rank), a.id).cmp(&(
                b.sender_rank,
                b.vt.get(b.sender_rank),
                b.id,
            ))
        });
        for r in &rest {
            self.delivered_vt.merge(&r.vt);
        }
        rest
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vsync_util::SiteId;

    fn mk(id_seq: u64, sender_rank: Rank, vt: Vec<u64>) -> ReadyCb {
        ReadyCb {
            id: MsgId::new(SiteId(sender_rank as u16), id_seq),
            sender: ProcessId::new(SiteId(sender_rank as u16), 1),
            sender_rank,
            vt: VectorClock::from_entries(vt),
            payload: Message::with_body(id_seq),
        }
    }

    #[test]
    fn stamp_send_increments_own_component() {
        let mut cb = CbcastState::new(3);
        let vt1 = cb.stamp_send(1);
        assert_eq!(vt1.entries(), &[0, 1, 0]);
        let vt2 = cb.stamp_send(1);
        assert_eq!(vt2.entries(), &[0, 2, 0]);
    }

    #[test]
    fn in_order_messages_deliver_immediately() {
        let mut cb = CbcastState::new(2);
        let d1 = cb.receive(mk(1, 0, vec![1, 0]));
        assert_eq!(d1.len(), 1);
        let d2 = cb.receive(mk(2, 0, vec![2, 0]));
        assert_eq!(d2.len(), 1);
        assert_eq!(cb.delivered_vt().entries(), &[2, 0]);
    }

    #[test]
    fn causally_dependent_message_waits_for_its_predecessor() {
        let mut cb = CbcastState::new(2);
        // Rank 1 sent a message after seeing rank 0's first message; it arrives first.
        let dependent = mk(10, 1, vec![1, 1]);
        assert!(cb.receive(dependent.clone()).is_empty());
        assert_eq!(cb.holdback_len(), 1);
        // The predecessor arrives: both become deliverable, predecessor first.
        let predecessor = mk(1, 0, vec![1, 0]);
        let delivered = cb.receive(predecessor.clone());
        assert_eq!(delivered.len(), 2);
        assert_eq!(delivered[0].id, predecessor.id);
        assert_eq!(delivered[1].id, dependent.id);
    }

    #[test]
    fn fifo_from_a_single_sender_is_preserved() {
        let mut cb = CbcastState::new(2);
        // Second message from rank 0 arrives before the first.
        assert!(cb.receive(mk(2, 0, vec![2, 0])).is_empty());
        let delivered = cb.receive(mk(1, 0, vec![1, 0]));
        assert_eq!(delivered.len(), 2);
        assert_eq!(delivered[0].vt.get(0), 1);
        assert_eq!(delivered[1].vt.get(0), 2);
    }

    #[test]
    fn concurrent_messages_deliver_in_any_order_without_blocking() {
        let mut cb = CbcastState::new(3);
        let a = mk(1, 0, vec![1, 0, 0]);
        let b = mk(2, 1, vec![0, 1, 0]);
        assert_eq!(cb.receive(b).len(), 1);
        assert_eq!(cb.receive(a).len(), 1);
    }

    #[test]
    fn own_sends_interleave_with_receives() {
        let mut cb = CbcastState::new(2);
        // We are rank 0; we send one message.
        let vt = cb.stamp_send(0);
        assert_eq!(vt.entries(), &[1, 0]);
        // Rank 1 replies causally after ours: deliverable immediately.
        let reply = mk(5, 1, vec![1, 1]);
        assert_eq!(cb.receive(reply).len(), 1);
    }

    #[test]
    fn force_drain_releases_stuck_messages_in_deterministic_order() {
        let mut cb = CbcastState::new(3);
        // Both messages depend on a rank-2 message nobody will ever get.
        let a = mk(3, 0, vec![1, 0, 1]);
        let b = mk(4, 1, vec![0, 1, 1]);
        assert!(cb.receive(b.clone()).is_empty());
        assert!(cb.receive(a.clone()).is_empty());
        let drained = cb.force_drain();
        assert_eq!(drained.len(), 2);
        assert_eq!(drained[0].id, a.id, "lower sender rank first");
        assert_eq!(drained[1].id, b.id);
        assert_eq!(cb.holdback_len(), 0);
    }

    #[test]
    fn reset_clears_everything() {
        let mut cb = CbcastState::new(2);
        cb.stamp_send(0);
        cb.receive(mk(9, 1, vec![5, 5]));
        cb.reset(4);
        assert_eq!(cb.delivered_vt().entries(), &[0, 0, 0, 0]);
        assert_eq!(cb.holdback_len(), 0);
    }
}
