//! A fixed-sequencer total-order baseline.
//!
//! The paper's ABCAST uses decentralised two-phase priority agreement.  A common alternative
//! (used by many later group-communication systems) is a *fixed sequencer*: all messages are
//! sent to one distinguished member which assigns consecutive sequence numbers and
//! rebroadcasts them; receivers deliver in sequence-number order.  The sequencer needs fewer
//! messages per multicast when the sender is not the sequencer's site (2 inter-site hops
//! instead of 3) but concentrates load and adds a hop for every sender that is not co-located
//! with the sequencer.  The ablation benchmark (`repro -- ablation-order`) compares the two.

use std::collections::BTreeMap;

use vsync_msg::Message;
use vsync_net::MsgId;
use vsync_util::{ProcessId, SiteId};

/// A message ordered by the sequencer, ready for delivery.
#[derive(Clone, Debug, PartialEq)]
pub struct SequencedMsg {
    /// Original multicast id.
    pub id: MsgId,
    /// Application-level sender.
    pub sender: ProcessId,
    /// Global sequence number assigned by the sequencer.
    pub seq: u64,
    /// Payload.
    pub payload: Message,
}

/// State of the sequencer member itself.
#[derive(Clone, Debug, Default)]
pub struct Sequencer {
    next_seq: u64,
}

impl Sequencer {
    /// Creates a sequencer starting at sequence number 1.
    pub fn new() -> Self {
        Sequencer { next_seq: 0 }
    }

    /// Assigns the next global sequence number to a message.
    pub fn assign(&mut self, id: MsgId, sender: ProcessId, payload: Message) -> SequencedMsg {
        self.next_seq += 1;
        SequencedMsg {
            id,
            sender,
            seq: self.next_seq,
            payload,
        }
    }
}

/// Receiver-side state: delivers sequenced messages in gap-free order.
#[derive(Clone, Debug, Default)]
pub struct SequencedReceiver {
    next_expected: u64,
    pending: BTreeMap<u64, SequencedMsg>,
}

impl SequencedReceiver {
    /// Creates a receiver expecting sequence number 1 first.
    pub fn new() -> Self {
        SequencedReceiver {
            next_expected: 1,
            pending: BTreeMap::new(),
        }
    }

    /// Accepts a sequenced message (possibly out of order); returns everything now deliverable.
    pub fn receive(&mut self, msg: SequencedMsg) -> Vec<SequencedMsg> {
        self.pending.insert(msg.seq, msg);
        let mut out = Vec::new();
        while let Some(m) = self.pending.remove(&self.next_expected) {
            self.next_expected += 1;
            out.push(m);
        }
        out
    }

    /// Number of messages waiting for earlier sequence numbers.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }
}

/// Message cost of one multicast under the sequencer scheme, counted the same way Figure 3
/// counts ABCAST hops: inter-site messages on the critical path to a remote destination.
pub fn sequencer_inter_site_hops(sender_site: SiteId, sequencer_site: SiteId) -> u32 {
    if sender_site == sequencer_site {
        1 // Rebroadcast only.
    } else {
        2 // Forward to the sequencer, then rebroadcast.
    }
}

/// Inter-site hops on the critical path of the ISIS ABCAST (phase one out, proposal back,
/// phase two out — see Figure 3 of the paper).
pub fn abcast_inter_site_hops(sender_site: SiteId, destination_site: SiteId) -> u32 {
    if sender_site == destination_site {
        0
    } else {
        3
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pid(site: u16) -> ProcessId {
        ProcessId::new(SiteId(site), 1)
    }

    #[test]
    fn sequencer_assigns_consecutive_numbers() {
        let mut s = Sequencer::new();
        let a = s.assign(MsgId::new(SiteId(1), 1), pid(1), Message::with_body(1u64));
        let b = s.assign(MsgId::new(SiteId(2), 1), pid(2), Message::with_body(2u64));
        assert_eq!(a.seq, 1);
        assert_eq!(b.seq, 2);
    }

    #[test]
    fn receiver_delivers_in_order_despite_reordering() {
        let mut s = Sequencer::new();
        let a = s.assign(MsgId::new(SiteId(1), 1), pid(1), Message::with_body(1u64));
        let b = s.assign(MsgId::new(SiteId(2), 1), pid(2), Message::with_body(2u64));
        let c = s.assign(MsgId::new(SiteId(0), 1), pid(0), Message::with_body(3u64));
        let mut r = SequencedReceiver::new();
        assert!(r.receive(c.clone()).is_empty());
        assert!(r.receive(b.clone()).is_empty());
        assert_eq!(r.pending_len(), 2);
        let delivered = r.receive(a.clone());
        assert_eq!(
            delivered.iter().map(|m| m.seq).collect::<Vec<_>>(),
            vec![1, 2, 3]
        );
        assert_eq!(r.pending_len(), 0);
    }

    #[test]
    fn all_receivers_agree_on_the_order() {
        let mut s = Sequencer::new();
        let msgs: Vec<SequencedMsg> = (0..10)
            .map(|i| {
                s.assign(
                    MsgId::new(SiteId(i % 3), i as u64),
                    pid(i % 3),
                    Message::with_body(i as u64),
                )
            })
            .collect();
        let mut orders = Vec::new();
        for skew in 0..3usize {
            let mut r = SequencedReceiver::new();
            let mut delivered = Vec::new();
            let mut arrival = msgs.clone();
            arrival.rotate_left(skew);
            for m in arrival {
                delivered.extend(r.receive(m).into_iter().map(|m| m.seq));
            }
            orders.push(delivered);
        }
        assert_eq!(orders[0], orders[1]);
        assert_eq!(orders[1], orders[2]);
    }

    #[test]
    fn hop_counts_match_the_analytical_model() {
        assert_eq!(sequencer_inter_site_hops(SiteId(0), SiteId(0)), 1);
        assert_eq!(sequencer_inter_site_hops(SiteId(1), SiteId(0)), 2);
        assert_eq!(abcast_inter_site_hops(SiteId(0), SiteId(0)), 0);
        assert_eq!(abcast_inter_site_hops(SiteId(0), SiteId(1)), 3);
    }
}
