//! Group membership views.
//!
//! A view is the membership of a process group at a point in its history.  "The membership
//! list is sorted in order of decreasing age, providing a natural ranking on the members, and
//! one that is the same at all members" (paper Section 3.2).  Because view changes are
//! delivered as virtually synchronous events, every member observes the same sequence of
//! views and can use its rank in the current view as the basis of deterministic, local
//! decisions — no extra agreement protocol required.

use serde::{Deserialize, Serialize};
use vsync_msg::Message;
use vsync_util::{Address, GroupId, ProcessId, Rank, SiteId, ViewId};

/// A group membership view.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct View {
    /// Identity of the view (group plus sequence number).
    pub id: ViewId,
    /// Members in order of decreasing age: index = rank, rank 0 is the oldest member.
    pub members: Vec<ProcessId>,
    /// Members added relative to the previous view (empty for the founding view).
    pub joined: Vec<ProcessId>,
    /// Members that departed (left or failed) relative to the previous view.
    pub departed: Vec<ProcessId>,
}

/// Rebuilds `buf` as `{prefix}{suffix}` without allocating per field — the one helper both
/// wire directions use, so encode and decode can never disagree on a view field name.
fn view_field(buf: &mut String, prefix: &str, suffix: &str) {
    buf.clear();
    buf.push_str(prefix);
    buf.push_str(suffix);
}

impl View {
    /// Creates the founding view of a group with a single creator member.
    pub fn founding(group: GroupId, creator: ProcessId) -> Self {
        View::founding_at(group, creator, ViewId::initial(group).seq)
    }

    /// Creates a founding view whose sequence number starts at `seq` instead of the
    /// default.  Used when a group is *reformed* after a total failure: the new
    /// incarnation continues the view-sequence line of the authoritative log
    /// (`last logged seq + 1`), so recovery logs written across incarnations stay
    /// totally ordered and a later reform election still compares view seqs directly.
    pub fn founding_at(group: GroupId, creator: ProcessId, seq: u64) -> Self {
        View {
            id: ViewId { group, seq },
            members: vec![creator],
            joined: vec![creator],
            departed: Vec::new(),
        }
    }

    /// The group this view belongs to.
    pub fn group(&self) -> GroupId {
        self.id.group
    }

    /// The view sequence number.
    pub fn seq(&self) -> u64 {
        self.id.seq
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// True if the view has no members (a group that everyone has left).
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Rank of a member (0 = oldest), or `None` if not a member.
    pub fn rank_of(&self, p: ProcessId) -> Option<Rank> {
        self.members.iter().position(|m| *m == p)
    }

    /// True if `p` is a member of this view.
    pub fn contains(&self, p: ProcessId) -> bool {
        self.rank_of(p).is_some()
    }

    /// The oldest member, which acts as the group coordinator for view changes.
    pub fn coordinator(&self) -> Option<ProcessId> {
        self.members.first().copied()
    }

    /// The distinct sites hosting members, in rank order (oldest member's site first).
    pub fn member_sites(&self) -> Vec<SiteId> {
        let mut sites = Vec::new();
        for m in &self.members {
            if !sites.contains(&m.site) {
                sites.push(m.site);
            }
        }
        sites
    }

    /// Members hosted at `site`.
    pub fn members_at(&self, site: SiteId) -> Vec<ProcessId> {
        self.members
            .iter()
            .copied()
            .filter(|m| m.site == site)
            .collect()
    }

    /// Builds the successor view after applying departures and additions.
    ///
    /// Departed members are removed; joiners are appended at the end (they are the youngest),
    /// preserving the decreasing-age order of everyone else.
    pub fn successor(&self, departed: &[ProcessId], joined: &[ProcessId]) -> View {
        let mut members: Vec<ProcessId> = self
            .members
            .iter()
            .copied()
            .filter(|m| !departed.contains(m))
            .collect();
        let mut actually_joined = Vec::new();
        for j in joined {
            if !members.contains(j) {
                members.push(*j);
                actually_joined.push(*j);
            }
        }
        View {
            id: self.id.next(),
            members,
            joined: actually_joined,
            departed: departed
                .iter()
                .copied()
                .filter(|d| self.contains(*d))
                .collect(),
        }
    }

    /// Serialises the view into message fields (prefixed with `prefix`) for the wire.
    /// Field names are assembled in one reused buffer instead of a `format!` per field —
    /// every flush commit carries a view, so this runs on the view-change path.
    pub fn encode_into(&self, msg: &mut Message, prefix: &str) {
        let mut name = String::with_capacity(prefix.len() + 8);
        view_field(&mut name, prefix, "group");
        msg.set(&name, self.id.group);
        view_field(&mut name, prefix, "seq");
        msg.set(&name, self.id.seq);
        view_field(&mut name, prefix, "members");
        msg.set(
            &name,
            self.members
                .iter()
                .map(|m| Address::Process(*m))
                .collect::<Vec<_>>(),
        );
        view_field(&mut name, prefix, "joined");
        msg.set(
            &name,
            self.joined
                .iter()
                .map(|m| Address::Process(*m))
                .collect::<Vec<_>>(),
        );
        view_field(&mut name, prefix, "departed");
        msg.set(
            &name,
            self.departed
                .iter()
                .map(|m| Address::Process(*m))
                .collect::<Vec<_>>(),
        );
    }

    /// Parses a view previously written by [`View::encode_into`].
    pub fn decode_from(msg: &Message, prefix: &str) -> Option<View> {
        let mut name = String::with_capacity(prefix.len() + 8);
        view_field(&mut name, prefix, "group");
        let group = msg.get_addr(&name)?.as_group()?;
        view_field(&mut name, prefix, "seq");
        let seq = msg.get_u64(&name)?;
        let decode_list = |name: &str| -> Vec<ProcessId> {
            msg.get_addr_list(name)
                .map(|l| l.iter().filter_map(|a| a.as_process()).collect())
                .unwrap_or_default()
        };
        view_field(&mut name, prefix, "members");
        let members = decode_list(&name);
        view_field(&mut name, prefix, "joined");
        let joined = decode_list(&name);
        view_field(&mut name, prefix, "departed");
        let departed = decode_list(&name);
        Some(View {
            id: ViewId { group, seq },
            members,
            joined,
            departed,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vsync_util::SiteId;

    fn p(site: u16, local: u32) -> ProcessId {
        ProcessId::new(SiteId(site), local)
    }

    #[test]
    fn founding_view_has_one_member_at_rank_zero() {
        let v = View::founding(GroupId(1), p(0, 1));
        assert_eq!(v.seq(), 1);
        assert_eq!(v.len(), 1);
        assert_eq!(v.rank_of(p(0, 1)), Some(0));
        assert_eq!(v.coordinator(), Some(p(0, 1)));
        assert_eq!(v.joined, vec![p(0, 1)]);
    }

    #[test]
    fn successor_appends_joiners_as_youngest() {
        let v1 = View::founding(GroupId(1), p(0, 1));
        let v2 = v1.successor(&[], &[p(1, 1)]);
        let v3 = v2.successor(&[], &[p(2, 1)]);
        assert_eq!(v3.members, vec![p(0, 1), p(1, 1), p(2, 1)]);
        assert_eq!(v3.seq(), 3);
        assert_eq!(v3.rank_of(p(2, 1)), Some(2));
        assert_eq!(v3.joined, vec![p(2, 1)]);
    }

    #[test]
    fn successor_removes_departed_and_promotes_survivors() {
        let v = View::founding(GroupId(1), p(0, 1))
            .successor(&[], &[p(1, 1)])
            .successor(&[], &[p(2, 1)]);
        let after = v.successor(&[p(0, 1)], &[]);
        assert_eq!(after.members, vec![p(1, 1), p(2, 1)]);
        assert_eq!(after.coordinator(), Some(p(1, 1)));
        assert_eq!(after.departed, vec![p(0, 1)]);
        // Departures of non-members are ignored.
        let again = after.successor(&[p(9, 9)], &[]);
        assert!(again.departed.is_empty());
        assert_eq!(again.members.len(), 2);
    }

    #[test]
    fn duplicate_joins_are_ignored() {
        let v = View::founding(GroupId(1), p(0, 1));
        let v2 = v.successor(&[], &[p(0, 1), p(1, 1)]);
        assert_eq!(v2.members, vec![p(0, 1), p(1, 1)]);
        assert_eq!(v2.joined, vec![p(1, 1)]);
    }

    #[test]
    fn member_sites_deduplicate_in_rank_order() {
        let v = View::founding(GroupId(1), p(2, 1))
            .successor(&[], &[p(0, 1)])
            .successor(&[], &[p(2, 2)])
            .successor(&[], &[p(1, 1)]);
        assert_eq!(v.member_sites(), vec![SiteId(2), SiteId(0), SiteId(1)]);
        assert_eq!(v.members_at(SiteId(2)), vec![p(2, 1), p(2, 2)]);
    }

    #[test]
    fn wire_roundtrip() {
        let v = View::founding(GroupId(7), p(0, 1))
            .successor(&[], &[p(1, 1)])
            .successor(&[p(0, 1)], &[p(2, 1)]);
        let mut m = Message::new();
        v.encode_into(&mut m, "v-");
        let back = View::decode_from(&m, "v-").expect("decode");
        assert_eq!(back, v);
    }
}
