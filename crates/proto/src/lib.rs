//! The ISIS multicast protocols (paper Section 3.1) as sans-io state machines.
//!
//! This crate implements the ordering machinery that makes process groups *virtually
//! synchronous*:
//!
//! * [`cbcast`] — causally ordered multicast: messages that are potentially causally related
//!   are delivered everywhere in their causal order; unrelated messages may be delivered in
//!   different orders at different members.
//! * [`abcast`] — totally ordered atomic multicast using the ISIS two-phase priority scheme
//!   (every destination proposes a priority, the initiator picks the maximum and announces
//!   it; ties are broken by proposer site).
//! * [`flush`] + [`endpoint`] — GBCAST and the view-change protocol: a coordinator collects
//!   every member's unstable messages, redistributes the union, finalises pending ABCAST
//!   orderings, and installs the new view, so that all survivors observe the same set of
//!   messages before every membership change — the defining property of virtual synchrony.
//! * [`stability`] — tracking of which messages are known to have reached every member, so
//!   flush reports stay small.
//! * [`sequencer`] — a fixed-sequencer total-order baseline used by the ablation benchmarks.
//!
//! Everything here is deterministic and free of I/O: inputs are explicit calls plus a clock
//! value, outputs are [`output::EndpointOutput`] values that the hosting layer (the
//! `vsync-core` protocol stack) turns into packets, timers and application deliveries.

pub mod abcast;
pub mod cbcast;
pub mod config;
pub mod endpoint;
pub mod flush;
pub mod frontier;
pub mod messages;
pub mod output;
pub mod reform;
pub mod sequencer;
pub mod stability;
pub mod view;

pub use config::ProtoConfig;
pub use endpoint::GroupEndpoint;
pub use frontier::Frontier;
pub use messages::ProtoMsg;
pub use output::{Delivery, EndpointOutput, ViewEvent};
pub use reform::{authority_cmp, LogSummary, ReformStatus, ReformTracker};
pub use view::View;
