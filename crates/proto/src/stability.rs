//! Message stability tracking.
//!
//! A message is *stable* once every member site of the group is known to have received it.
//! Stability matters for two reasons: stable messages can be garbage-collected from the
//! endpoint's buffers, and — more importantly — they never need to be redistributed by a
//! view-change flush, which keeps flush acks small.  Sites learn about each other's receipts
//! through periodic gossip of received-message ids.

use std::collections::BTreeMap;

use vsync_net::MsgId;
use vsync_util::SiteId;

use crate::messages::StoredMsg;

/// Per-message tracking entry: the buffered copy (once this site has received the message)
/// and the sites known to have received it.  The ack set is a small unsorted vector, not a
/// `BTreeSet`: groups span a handful of sites and this is touched on every receive.
#[derive(Clone, Debug, Default)]
struct Tracked {
    copy: Option<StoredMsg>,
    acked: Vec<SiteId>,
}

/// Tracks which multicasts this site has received in the current view and which of them are
/// known to have reached every member site.
#[derive(Clone, Debug)]
pub struct StabilityTracker {
    /// Sites whose acknowledgement is required for stability (all member sites).
    member_sites: Vec<SiteId>,
    /// This endpoint's own site.
    my_site: SiteId,
    /// One entry per message not yet known stable — the held copy and its ack set live in
    /// the same node, so the per-receive bookkeeping touches one map, not two.
    tracked: BTreeMap<MsgId, Tracked>,
    /// Number of entries whose copy is present (= the held-message count).
    held_count: usize,
}

impl StabilityTracker {
    /// Creates a tracker for a view spanning `member_sites`.
    pub fn new(my_site: SiteId, member_sites: Vec<SiteId>) -> Self {
        StabilityTracker {
            member_sites,
            my_site,
            tracked: BTreeMap::new(),
            held_count: 0,
        }
    }

    /// Resets for a new view.
    pub fn reset(&mut self, member_sites: Vec<SiteId>) {
        self.member_sites = member_sites;
        self.tracked.clear();
        self.held_count = 0;
    }

    /// Number of messages currently held as potentially unstable.
    pub fn held_len(&self) -> usize {
        self.held_count
    }

    /// Records that this site received (and is buffering a copy of) a message.
    pub fn record_local(&mut self, id: MsgId, copy: StoredMsg) {
        let entry = self.tracked.entry(id).or_default();
        if entry.copy.is_none() {
            entry.copy = Some(copy);
            self.held_count += 1;
        }
        if !entry.acked.contains(&self.my_site) {
            entry.acked.push(self.my_site);
        }
        self.collect(id);
    }

    /// Updates the flush-relevant ABCAST priority attached to a held copy (e.g. once the
    /// final order is known).
    pub fn set_ab_priority(&mut self, id: MsgId, priority: u64) {
        if let Some(copy) = self.tracked.get_mut(&id).and_then(|t| t.copy.as_mut()) {
            copy.ab_priority = Some(priority);
        }
    }

    /// Ids of messages this site has received (sent in stability gossip).
    pub fn local_ids(&self) -> Vec<MsgId> {
        self.tracked
            .iter()
            .filter(|(_, t)| t.copy.is_some())
            .map(|(id, _)| *id)
            .collect()
    }

    /// Processes a gossip message from `from_site`; returns ids that became stable.
    pub fn on_gossip(&mut self, from_site: SiteId, ids: &[MsgId]) -> Vec<MsgId> {
        let mut stabilized = Vec::new();
        for id in ids {
            let entry = self.tracked.entry(*id).or_default();
            if !entry.acked.contains(&from_site) {
                entry.acked.push(from_site);
            }
            if self.collect(*id) {
                stabilized.push(*id);
            }
        }
        stabilized
    }

    /// Returns copies of every message still considered unstable, for a flush ack.
    pub fn unstable(&self) -> Vec<StoredMsg> {
        self.tracked
            .values()
            .filter_map(|t| t.copy.clone())
            .collect()
    }

    /// Returns true if the id was held here and has already been garbage-collected as stable.
    pub fn is_stable(&self, id: &MsgId) -> bool {
        !self.tracked.contains_key(id)
    }

    fn collect(&mut self, id: MsgId) -> bool {
        let Some(entry) = self.tracked.get(&id) else {
            return false;
        };
        let all = self.member_sites.iter().all(|s| entry.acked.contains(s));
        if all && entry.copy.is_some() {
            self.tracked.remove(&id);
            self.held_count -= 1;
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vsync_msg::Message;

    fn copy(n: u64) -> StoredMsg {
        StoredMsg {
            wire: Message::with_body(n).into(),
            ab_priority: None,
        }
    }

    fn id(site: u16, seq: u64) -> MsgId {
        MsgId::new(SiteId(site), seq)
    }

    #[test]
    fn single_site_groups_stabilize_immediately() {
        let mut t = StabilityTracker::new(SiteId(0), vec![SiteId(0)]);
        t.record_local(id(0, 1), copy(1));
        assert_eq!(
            t.held_len(),
            0,
            "own ack suffices when we are the only member site"
        );
    }

    #[test]
    fn stability_requires_every_member_site() {
        let mut t = StabilityTracker::new(SiteId(0), vec![SiteId(0), SiteId(1), SiteId(2)]);
        t.record_local(id(0, 1), copy(1));
        assert_eq!(t.held_len(), 1);
        assert!(t.on_gossip(SiteId(1), &[id(0, 1)]).is_empty());
        let stable = t.on_gossip(SiteId(2), &[id(0, 1)]);
        assert_eq!(stable, vec![id(0, 1)]);
        assert_eq!(t.held_len(), 0);
        assert!(t.is_stable(&id(0, 1)));
    }

    #[test]
    fn unstable_copies_are_reported_for_flush() {
        let mut t = StabilityTracker::new(SiteId(0), vec![SiteId(0), SiteId(1)]);
        t.record_local(id(0, 1), copy(1));
        t.record_local(id(1, 5), copy(2));
        t.on_gossip(SiteId(1), &[id(0, 1)]);
        let unstable = t.unstable();
        assert_eq!(unstable.len(), 1);
        assert_eq!(unstable[0].wire.get_u64("body"), Some(2));
    }

    #[test]
    fn ab_priority_updates_are_carried_in_copies() {
        let mut t = StabilityTracker::new(SiteId(0), vec![SiteId(0), SiteId(1)]);
        t.record_local(id(0, 1), copy(1));
        t.set_ab_priority(id(0, 1), 42);
        assert_eq!(t.unstable()[0].ab_priority, Some(42));
    }

    #[test]
    fn gossip_about_unknown_messages_is_remembered() {
        // A remote site may ack a message we have not received yet; when our copy arrives the
        // earlier ack still counts.
        let mut t = StabilityTracker::new(SiteId(0), vec![SiteId(0), SiteId(1)]);
        t.on_gossip(SiteId(1), &[id(1, 1)]);
        t.record_local(id(1, 1), copy(3));
        assert_eq!(t.held_len(), 0, "stable as soon as our copy arrives");
    }

    #[test]
    fn reset_drops_view_scoped_state() {
        let mut t = StabilityTracker::new(SiteId(0), vec![SiteId(0), SiteId(1)]);
        t.record_local(id(0, 1), copy(1));
        t.reset(vec![SiteId(0)]);
        assert_eq!(t.held_len(), 0);
        assert!(t.local_ids().is_empty());
    }
}
