//! Message stability tracking.
//!
//! A message is *stable* once every member site of the group is known to have received it.
//! Stability matters for two reasons: stable messages can be garbage-collected from the
//! endpoint's buffers, and — more importantly — they never need to be redistributed by a
//! view-change flush, which keeps flush acks small.  Sites learn about each other's receipts
//! through periodic gossip of received-message ids.

use std::collections::BTreeMap;

use vsync_net::MsgId;
use vsync_util::SiteId;

use crate::messages::StoredMsg;

/// Per-message tracking entry: the buffered copy (once this site has received the message)
/// and the sites known to have received it.  The ack set is a small unsorted vector, not a
/// `BTreeSet`: groups span a handful of sites and this is touched on every receive.
#[derive(Clone, Debug, Default)]
struct Tracked {
    copy: Option<StoredMsg>,
    acked: Vec<SiteId>,
    /// `Some(n)` once the message is stable *here*: the copy has been dropped but the
    /// entry lingers as an **ack tombstone** for `n` more gossip rounds, so our gossip
    /// keeps telling slower sites that we received it.  Without the tombstone a site that
    /// stabilizes on the origin's gossip before ever gossiping itself silently strands
    /// the origin: it stops advertising the id, the origin never completes its ack set,
    /// and the message stays "unstable" there forever — which every later view-change
    /// flush then redistributes.  Invisible in the simulator (all sites tick at the same
    /// virtual instants, so gossip always crosses symmetrically); the threaded runtime's
    /// unaligned clocks hit it on most runs.
    stable_for: Option<u8>,
    /// Gossip rounds this entry has existed as a *remote-ack-only* record (no local copy,
    /// not locally acked): either the message is still in flight to us, or a peer's late
    /// tombstone gossip arrived after our own entry was dropped.  Aged out after
    /// `ORPHAN_ROUNDS` so such records cannot accumulate for the lifetime of a view.
    orphan_rounds: u8,
}

/// Gossip rounds an ack tombstone is re-advertised after stabilization.  Each round is one
/// `stability_interval`, so this gives a slow peer several full gossip exchanges (plus
/// retransmission delays) to pick the ack up before the entry is finally dropped.
const TOMBSTONE_ROUNDS: u8 = 4;

/// Gossip rounds a remote-ack-only entry is remembered while waiting for our own copy.
/// Generous enough to cover worst-case in-flight time (a full retransmission ladder);
/// expiring early is safe — the ack is simply forgotten and the message stays unstable
/// until the next flush accounts for it.
const ORPHAN_ROUNDS: u8 = 32;

/// Tracks which multicasts this site has received in the current view and which of them are
/// known to have reached every member site.
#[derive(Clone, Debug)]
pub struct StabilityTracker {
    /// Sites whose acknowledgement is required for stability (all member sites).
    member_sites: Vec<SiteId>,
    /// This endpoint's own site.
    my_site: SiteId,
    /// One entry per message not yet known stable — the held copy and its ack set live in
    /// the same node, so the per-receive bookkeeping touches one map, not two.
    tracked: BTreeMap<MsgId, Tracked>,
    /// Number of entries whose copy is present (= the held-message count).
    held_count: usize,
}

impl StabilityTracker {
    /// Creates a tracker for a view spanning `member_sites`.
    pub fn new(my_site: SiteId, member_sites: Vec<SiteId>) -> Self {
        StabilityTracker {
            member_sites,
            my_site,
            tracked: BTreeMap::new(),
            held_count: 0,
        }
    }

    /// Resets for a new view.
    pub fn reset(&mut self, member_sites: Vec<SiteId>) {
        self.member_sites = member_sites;
        self.tracked.clear();
        self.held_count = 0;
    }

    /// Number of messages currently held as potentially unstable.
    pub fn held_len(&self) -> usize {
        self.held_count
    }

    /// Records that this site received (and is buffering a copy of) a message.
    pub fn record_local(&mut self, id: MsgId, copy: StoredMsg) {
        let entry = self.tracked.entry(id).or_default();
        if entry.stable_for.is_some() {
            // A retransmitted copy of a message already known stable; do not resurrect it.
            return;
        }
        if entry.copy.is_none() {
            entry.copy = Some(copy);
            self.held_count += 1;
        }
        if !entry.acked.contains(&self.my_site) {
            entry.acked.push(self.my_site);
        }
        self.collect(id);
    }

    /// Updates the flush-relevant ABCAST priority attached to a held copy (e.g. once the
    /// final order is known).
    pub fn set_ab_priority(&mut self, id: MsgId, priority: u64) {
        if let Some(copy) = self.tracked.get_mut(&id).and_then(|t| t.copy.as_mut()) {
            copy.ab_priority = Some(priority);
        }
    }

    /// Ids of messages this site has received (sent in stability gossip).  Includes ack
    /// tombstones: stable messages are still advertised for `TOMBSTONE_ROUNDS` gossip
    /// rounds so every peer can complete its own ack set.
    pub fn local_ids(&self) -> Vec<MsgId> {
        self.tracked
            .iter()
            .filter(|(_, t)| t.acked.contains(&self.my_site))
            .map(|(id, _)| *id)
            .collect()
    }

    /// True if gossip has anything to advertise (held copies or ack tombstones).
    pub fn has_reportable(&self) -> bool {
        self.held_count > 0
            || self
                .tracked
                .values()
                .any(|t| t.acked.contains(&self.my_site))
    }

    /// Marks one gossip round as elapsed: ack tombstones age and are dropped once every
    /// peer has had `TOMBSTONE_ROUNDS` chances to hear them.  Call once per gossip
    /// interval, after sending.
    pub fn note_gossip_round(&mut self) {
        let my_site = self.my_site;
        self.tracked.retain(|_, t| {
            if let Some(rounds) = &mut t.stable_for {
                if *rounds >= TOMBSTONE_ROUNDS {
                    return false;
                }
                *rounds += 1;
                return true;
            }
            if t.copy.is_none() && !t.acked.contains(&my_site) {
                if t.orphan_rounds >= ORPHAN_ROUNDS {
                    return false;
                }
                t.orphan_rounds += 1;
            }
            true
        });
    }

    /// Processes a gossip message from `from_site`; returns ids that became stable.
    pub fn on_gossip(&mut self, from_site: SiteId, ids: &[MsgId]) -> Vec<MsgId> {
        let mut stabilized = Vec::new();
        for id in ids {
            let entry = self.tracked.entry(*id).or_default();
            if !entry.acked.contains(&from_site) {
                entry.acked.push(from_site);
            }
            if self.collect(*id) {
                stabilized.push(*id);
            }
        }
        stabilized
    }

    /// Returns copies of every message still considered unstable, for a flush ack.
    pub fn unstable(&self) -> Vec<StoredMsg> {
        self.tracked
            .values()
            .filter_map(|t| t.copy.clone())
            .collect()
    }

    /// Returns true if the id is known stable here (its copy has been released; the entry
    /// may still linger as an ack tombstone) or was never tracked at all.
    pub fn is_stable(&self, id: &MsgId) -> bool {
        self.tracked
            .get(id)
            .map(|t| t.stable_for.is_some())
            .unwrap_or(true)
    }

    fn collect(&mut self, id: MsgId) -> bool {
        let Some(entry) = self.tracked.get_mut(&id) else {
            return false;
        };
        let all = self.member_sites.iter().all(|s| entry.acked.contains(s));
        if all && entry.copy.is_some() {
            // Release the buffered copy but keep the entry as an ack tombstone (see
            // `Tracked::stable_for`): our gossip must keep advertising the receipt until
            // every peer has had a chance to complete its own ack set.
            entry.copy = None;
            entry.stable_for = Some(0);
            self.held_count -= 1;
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vsync_msg::Message;

    fn copy(n: u64) -> StoredMsg {
        StoredMsg {
            wire: Message::with_body(n).into(),
            ab_priority: None,
        }
    }

    fn id(site: u16, seq: u64) -> MsgId {
        MsgId::new(SiteId(site), seq)
    }

    #[test]
    fn single_site_groups_stabilize_immediately() {
        let mut t = StabilityTracker::new(SiteId(0), vec![SiteId(0)]);
        t.record_local(id(0, 1), copy(1));
        assert_eq!(
            t.held_len(),
            0,
            "own ack suffices when we are the only member site"
        );
    }

    #[test]
    fn stability_requires_every_member_site() {
        let mut t = StabilityTracker::new(SiteId(0), vec![SiteId(0), SiteId(1), SiteId(2)]);
        t.record_local(id(0, 1), copy(1));
        assert_eq!(t.held_len(), 1);
        assert!(t.on_gossip(SiteId(1), &[id(0, 1)]).is_empty());
        let stable = t.on_gossip(SiteId(2), &[id(0, 1)]);
        assert_eq!(stable, vec![id(0, 1)]);
        assert_eq!(t.held_len(), 0);
        assert!(t.is_stable(&id(0, 1)));
    }

    #[test]
    fn unstable_copies_are_reported_for_flush() {
        let mut t = StabilityTracker::new(SiteId(0), vec![SiteId(0), SiteId(1)]);
        t.record_local(id(0, 1), copy(1));
        t.record_local(id(1, 5), copy(2));
        t.on_gossip(SiteId(1), &[id(0, 1)]);
        let unstable = t.unstable();
        assert_eq!(unstable.len(), 1);
        assert_eq!(unstable[0].wire.get_u64("body"), Some(2));
    }

    #[test]
    fn ab_priority_updates_are_carried_in_copies() {
        let mut t = StabilityTracker::new(SiteId(0), vec![SiteId(0), SiteId(1)]);
        t.record_local(id(0, 1), copy(1));
        t.set_ab_priority(id(0, 1), 42);
        assert_eq!(t.unstable()[0].ab_priority, Some(42));
    }

    #[test]
    fn gossip_about_unknown_messages_is_remembered() {
        // A remote site may ack a message we have not received yet; when our copy arrives the
        // earlier ack still counts.
        let mut t = StabilityTracker::new(SiteId(0), vec![SiteId(0), SiteId(1)]);
        t.on_gossip(SiteId(1), &[id(1, 1)]);
        t.record_local(id(1, 1), copy(3));
        assert_eq!(t.held_len(), 0, "stable as soon as our copy arrives");
    }

    #[test]
    fn stabilized_receiver_keeps_acking_until_the_origin_converges() {
        // The threaded-runtime regression: origin site 0 holds m; site 1 receives m and
        // hears the origin's gossip *before ever gossiping itself*, so it stabilizes
        // immediately.  Pre-tombstone, site 1 then stopped advertising m and the origin
        // could never complete its ack set — m stayed "unstable" forever and every later
        // view-change flush redistributed it.
        let mut origin = StabilityTracker::new(SiteId(0), vec![SiteId(0), SiteId(1)]);
        let mut receiver = StabilityTracker::new(SiteId(1), vec![SiteId(0), SiteId(1)]);
        origin.record_local(id(0, 1), copy(1));
        receiver.record_local(id(0, 1), copy(1));
        // Site 1 hears the origin first and stabilizes at once.
        receiver.on_gossip(SiteId(0), &origin.local_ids());
        assert_eq!(receiver.held_len(), 0);
        // Its own next gossip must still advertise the id (ack tombstone)...
        let advertised = receiver.local_ids();
        assert_eq!(advertised, vec![id(0, 1)]);
        // ...so the origin converges instead of holding m unstable forever.
        origin.on_gossip(SiteId(1), &advertised);
        assert_eq!(origin.held_len(), 0);
        assert!(origin.unstable().is_empty());
        // Tombstones age out after a few gossip rounds and gossip goes quiet.
        for _ in 0..=TOMBSTONE_ROUNDS {
            receiver.note_gossip_round();
            origin.note_gossip_round();
        }
        assert!(!receiver.has_reportable());
        assert!(!origin.has_reportable());
    }

    #[test]
    fn remote_only_entries_age_out_instead_of_leaking() {
        // A peer's gossip (possibly a late tombstone after our own entry was dropped)
        // creates a remote-ack-only record.  It must not live for the rest of the view.
        let mut t = StabilityTracker::new(SiteId(0), vec![SiteId(0), SiteId(1)]);
        t.on_gossip(SiteId(1), &[id(1, 1)]);
        for _ in 0..=ORPHAN_ROUNDS {
            t.note_gossip_round();
        }
        // The remembered ack expired; when the copy finally arrives the message is simply
        // unstable again (the flush accounts for it) rather than instantly stable.
        t.record_local(id(1, 1), copy(3));
        assert_eq!(t.held_len(), 1, "expired remote ack no longer counts");
    }

    #[test]
    fn retransmits_of_stable_messages_are_not_resurrected() {
        let mut t = StabilityTracker::new(SiteId(0), vec![SiteId(0), SiteId(1)]);
        t.record_local(id(0, 1), copy(1));
        t.on_gossip(SiteId(1), &[id(0, 1)]);
        assert_eq!(t.held_len(), 0);
        // A duplicate (retransmitted) copy of the now-stable message arrives.
        t.record_local(id(0, 1), copy(1));
        assert_eq!(t.held_len(), 0, "tombstoned entries must not re-buffer");
        assert!(t.is_stable(&id(0, 1)));
    }

    #[test]
    fn reset_drops_view_scoped_state() {
        let mut t = StabilityTracker::new(SiteId(0), vec![SiteId(0), SiteId(1)]);
        t.record_local(id(0, 1), copy(1));
        t.reset(vec![SiteId(0)]);
        assert_eq!(t.held_len(), 0);
        assert!(t.local_ids().is_empty());
    }
}
