//! Per-origin sequence frontiers: the compact description of "which messages a state
//! snapshot already covers".
//!
//! Virtual synchrony requires a joiner's state snapshot to be taken exactly at the view
//! cut, so that the transferred state and the post-cut message flow *partition* the
//! group's history (paper Section 3.8: "only after it has received the state that was
//! current at the time of the join").  The flush coordinator describes the cut as a
//! [`Frontier`]: for every origin site, the highest message sequence number that is part
//! of the pre-cut history.  Because message ids ([`MsgId`]) are allocated monotonically
//! per origin site, `seq <= frontier[origin]` is exactly the predicate "this message's
//! effects are already inside a snapshot taken at the cut".
//!
//! The frontier travels in two places:
//!
//! * inside `FlushCommit`, so a joining endpoint can suppress the flush's
//!   unstable-message redelivery for messages the snapshot will cover (the endpoint-side
//!   dedup that makes join-under-load exactly-once);
//! * tagged onto the state-transfer blocks themselves (`vsync-tools`'s `StateTransfer`),
//!   so the receiving side can verify what its snapshot claims to include.

use vsync_net::MsgId;
use vsync_util::SiteId;

/// A per-origin-site message-sequence frontier.  Entries are kept sorted by site, so the
/// wire form (and equality) is canonical regardless of observation order.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Frontier {
    /// `(origin site, highest covered seq)`, sorted by site, one entry per site.
    entries: Vec<(SiteId, u64)>,
}

impl Frontier {
    /// An empty frontier (covers nothing).
    pub fn new() -> Self {
        Frontier::default()
    }

    /// True if no message is covered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The sorted `(site, seq)` entries.
    pub fn entries(&self) -> &[(SiteId, u64)] {
        &self.entries
    }

    /// Folds a message id into the frontier: the frontier afterwards covers `id`.
    pub fn observe(&mut self, id: MsgId) {
        match self.entries.binary_search_by_key(&id.origin, |(s, _)| *s) {
            Ok(i) => {
                if self.entries[i].1 < id.seq {
                    self.entries[i].1 = id.seq;
                }
            }
            Err(i) => self.entries.insert(i, (id.origin, id.seq)),
        }
    }

    /// True if the frontier covers `id`: a snapshot cut at this frontier already includes
    /// the message's effects, so delivering it again would double-apply.
    pub fn covers(&self, id: MsgId) -> bool {
        self.entries
            .binary_search_by_key(&id.origin, |(s, _)| *s)
            .map(|i| id.seq <= self.entries[i].1)
            .unwrap_or(false)
    }

    /// Total coverage weight: the sum of the per-origin covered sequence numbers.  Used
    /// as the reform election's tie-break between logs that agree on the final view seq —
    /// a strictly larger weight means the log delivered (and therefore durably recorded)
    /// more of the group's history before the crash.
    pub fn weight(&self) -> u64 {
        self.entries.iter().map(|(_, seq)| *seq).sum()
    }

    /// Flattens to the wire form: `[site0, seq0, site1, seq1, ...]`.
    pub fn to_wire(&self) -> Vec<u64> {
        let mut out = Vec::with_capacity(self.entries.len() * 2);
        for (site, seq) in &self.entries {
            out.push(site.0 as u64);
            out.push(*seq);
        }
        out
    }

    /// Parses the wire form written by [`Frontier::to_wire`].  Tolerates unsorted input
    /// (re-canonicalised through [`Frontier::observe`]); a trailing odd element is ignored.
    pub fn from_wire(raw: &[u64]) -> Self {
        let mut f = Frontier::new();
        for pair in raw.chunks_exact(2) {
            f.observe(MsgId::new(SiteId(pair[0] as u16), pair[1]));
        }
        f
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(site: u16, seq: u64) -> MsgId {
        MsgId::new(SiteId(site), seq)
    }

    #[test]
    fn empty_frontier_covers_nothing() {
        let f = Frontier::new();
        assert!(f.is_empty());
        assert!(!f.covers(id(0, 1)));
        assert!(f.to_wire().is_empty());
    }

    #[test]
    fn observe_keeps_the_maximum_per_origin() {
        let mut f = Frontier::new();
        f.observe(id(2, 5));
        f.observe(id(2, 3));
        f.observe(id(0, 7));
        assert_eq!(f.entries(), &[(SiteId(0), 7), (SiteId(2), 5)]);
        assert!(f.covers(id(2, 5)));
        assert!(f.covers(id(2, 1)));
        assert!(!f.covers(id(2, 6)));
        assert!(f.covers(id(0, 7)));
        assert!(!f.covers(id(1, 1)), "unknown origins are not covered");
    }

    #[test]
    fn wire_roundtrip_is_canonical() {
        let mut f = Frontier::new();
        f.observe(id(3, 9));
        f.observe(id(1, 2));
        let wire = f.to_wire();
        assert_eq!(wire, vec![1, 2, 3, 9]);
        assert_eq!(Frontier::from_wire(&wire), f);
        // Unsorted and duplicated input canonicalises to the same frontier.
        assert_eq!(Frontier::from_wire(&[3, 9, 1, 2, 3, 4]), f);
        // A stray trailing element is ignored rather than misparsed.
        assert_eq!(Frontier::from_wire(&[1, 2, 3, 9, 7]), f);
    }

    #[test]
    fn covers_is_monotone_under_observe() {
        let mut f = Frontier::new();
        for seq in [4u64, 1, 9, 6] {
            f.observe(id(0, seq));
        }
        for seq in 1..=9 {
            assert!(
                f.covers(id(0, seq)),
                "seq {seq} below the max must be covered"
            );
        }
        assert!(!f.covers(id(0, 10)));
    }
}
