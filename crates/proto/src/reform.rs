//! Total-failure group reform: electing the "last to fail" log (paper Section 3.8).
//!
//! When *every* member of a group crashes there is no survivor to serve a state transfer,
//! so the normal rejoin path cannot run.  The paper's answer is to reform the group from
//! persistent storage: restarting sites exchange summaries of their recovery logs and the
//! log that was written by the **last site to fail** is elected authoritative — by
//! definition it observed every view change and every delivery that became stable before
//! the group died.  The elected site replays its log and refounds the group; everyone else
//! discards its (possibly divergent) tail and rejoins through the ordinary view-cut state
//! transfer.
//!
//! This module is the deterministic core of that protocol: the [`LogSummary`] each site
//! offers, the strict total order [`authority_cmp`] that decides the election identically
//! at every site, and the [`ReformTracker`] state machine a restarting stack drives with
//! incoming summaries and its clock.  Wire traffic (`ProtoMsg::ReformSummary` /
//! `ProtoMsg::ReformAlive`) and retransmission live in the `vsync-core` stack; nothing
//! here does I/O.

use std::cmp::Ordering;
use std::collections::BTreeMap;

use crate::frontier::Frontier;
use vsync_util::{SimTime, SiteId};

/// What one restarting site's recovery log claims to cover.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LogSummary {
    /// The site offering the log.
    pub site: SiteId,
    /// Highest view sequence number the log records.  A log that strictly dominates on
    /// this field saw a view change the others missed, so its writer failed later.
    pub view_seq: u64,
    /// Per-origin delivery frontier the log covers (first tie-break: within the same
    /// final view, the log that recorded more deliveries died later).
    pub covered: Frontier,
    /// Rank the site's member held in its last logged view (second tie-break: lower rank
    /// = older member, matching the view's deterministic age order).
    pub rank: u64,
}

/// Strict total order on log summaries: `Greater` means "more authoritative".
///
/// The primary key is the paper's last-to-fail determination — a log whose final view seq
/// strictly dominates wins outright, because view installation is totally ordered and a
/// site that installed view `n+1` must have outlived every site that stopped at `n`.
/// Within the same final view the covered frontier's weight decides (more durably recorded
/// deliveries = died later), then the member's rank (older member wins), then the site id
/// — so the order is total and every site elects the same log without communication
/// beyond the summaries themselves.
pub fn authority_cmp(a: &LogSummary, b: &LogSummary) -> Ordering {
    a.view_seq
        .cmp(&b.view_seq)
        .then(a.covered.weight().cmp(&b.covered.weight()))
        .then(b.rank.cmp(&a.rank))
        .then(b.site.0.cmp(&a.site.0))
}

/// Outcome of a reform election at one site.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ReformStatus {
    /// Still collecting summaries from the expected participants.
    Collecting {
        /// Summaries received so far (including our own).
        have: usize,
        /// Participants we are waiting to hear from in total.
        expected: usize,
    },
    /// Our log won: replay it and refound the group at `new_view_seq`.
    Lead {
        /// Founding seq for the reformed view: one past the authoritative log's last
        /// view, so the view-sequence line (and future elections) stay monotone.
        new_view_seq: u64,
    },
    /// Another site's log won: discard our divergent tail and rejoin via state transfer.
    Follow {
        /// The elected site, usable as the join contact once it has refounded the group.
        leader: SiteId,
    },
    /// The group never fully died — a live member answered.  Abandon the reform and take
    /// the normal rejoin path.
    Operational {
        /// A site hosting a live member.
        contact: SiteId,
    },
}

/// Per-group reform state at one restarting site.
///
/// Driven by the hosting stack: [`record`](ReformTracker::record) with each incoming
/// summary, [`mark_alive`](ReformTracker::mark_alive) if a live member answers, and
/// [`try_resolve`](ReformTracker::try_resolve) with the clock.  The election fires as
/// soon as every expected participant has reported; if the deadline passes first, it
/// fires over the summaries at hand (a *degraded* election — some logs may be
/// unreachable, e.g. a site whose disk died with it; the paper accepts this as the price
/// of availability, and view-seq monotonicity still guarantees no elected log can be
/// older than any log that does eventually come back and Follow).
///
/// The degraded path carries the same primary-partition fence as the live membership
/// protocol: a deadline election only fires if the summaries at hand cover a strict
/// majority of the expected participants.  Without the fence, a minority component of
/// restarting sites (the rest partitioned away, not dead) would self-elect an
/// authoritative log while the majority elects a different one — split-brain by reform.
#[derive(Clone, Debug)]
pub struct ReformTracker {
    me: SiteId,
    expected: Vec<SiteId>,
    summaries: BTreeMap<SiteId, LogSummary>,
    deadline: SimTime,
    resolved: Option<ReformStatus>,
    majority_fence: bool,
}

impl ReformTracker {
    /// Starts a reform with our own log summary and the participant set (the sites of the
    /// last view our log recorded — the only sites whose logs could possibly dominate).
    pub fn new(own: LogSummary, mut expected: Vec<SiteId>, deadline: SimTime) -> Self {
        let me = own.site;
        if !expected.contains(&me) {
            expected.push(me);
        }
        let mut summaries = BTreeMap::new();
        summaries.insert(me, own);
        ReformTracker {
            me,
            expected,
            summaries,
            deadline,
            resolved: None,
            majority_fence: true,
        }
    }

    /// Disables the degraded-election majority fence.  The escape hatch exists only so
    /// tests can demonstrate the split-brain the fence prevents.
    pub fn without_majority_fence(mut self) -> Self {
        self.majority_fence = false;
        self
    }

    /// Our own summary (re-broadcast by the stack until the election resolves).
    pub fn own_summary(&self) -> &LogSummary {
        &self.summaries[&self.me]
    }

    /// The participant sites this tracker is waiting on.
    pub fn expected(&self) -> &[SiteId] {
        &self.expected
    }

    /// Folds in a summary received from a peer.  Returns `true` if it was new
    /// information (first summary from that site, or a better one — a site may
    /// resummarise after recovering more of its disk).
    pub fn record(&mut self, summary: LogSummary) -> bool {
        if self.resolved.is_some() {
            return false;
        }
        match self.summaries.get(&summary.site) {
            Some(prev) if authority_cmp(prev, &summary) != Ordering::Less => false,
            _ => {
                self.summaries.insert(summary.site, summary);
                true
            }
        }
    }

    /// A live member of the group answered: the group never fully failed.
    pub fn mark_alive(&mut self, contact: SiteId) {
        if self.resolved.is_none() {
            self.resolved = Some(ReformStatus::Operational { contact });
        }
    }

    /// Advances the election.  Returns the resolution once reached; `Collecting` until
    /// then.  Deterministic: given the same summaries, every site resolves identically.
    pub fn try_resolve(&mut self, now: SimTime) -> ReformStatus {
        if let Some(r) = &self.resolved {
            return r.clone();
        }
        let all_in = self.expected.iter().all(|s| self.summaries.contains_key(s));
        let majority = self.summaries.len() * 2 > self.expected.len();
        // A degraded (deadline-fired) election additionally needs summaries from a strict
        // majority of the expected participants; a minority keeps collecting — it can
        // never self-elect an authoritative log while the rest might be partitioned away,
        // alive, and electing among themselves.
        if !all_in && (now < self.deadline || (self.majority_fence && !majority)) {
            return ReformStatus::Collecting {
                have: self.summaries.len(),
                expected: self.expected.len(),
            };
        }
        let winner = self
            .summaries
            .values()
            .max_by(|a, b| authority_cmp(a, b))
            .expect("tracker always holds its own summary");
        let status = if winner.site == self.me {
            ReformStatus::Lead {
                new_view_seq: winner.view_seq + 1,
            }
        } else {
            ReformStatus::Follow {
                leader: winner.site,
            }
        };
        self.resolved = Some(status.clone());
        status
    }

    /// The resolution, if the election has fired.
    pub fn status(&self) -> Option<&ReformStatus> {
        self.resolved.as_ref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vsync_net::MsgId;

    fn frontier(pairs: &[(u16, u64)]) -> Frontier {
        let mut f = Frontier::new();
        for (site, seq) in pairs {
            f.observe(MsgId::new(SiteId(*site), *seq));
        }
        f
    }

    fn summary(site: u16, view_seq: u64, covered: &[(u16, u64)], rank: u64) -> LogSummary {
        LogSummary {
            site: SiteId(site),
            view_seq,
            covered: frontier(covered),
            rank,
        }
    }

    #[test]
    fn view_seq_strictly_dominates() {
        // A later final view beats any frontier or rank advantage.
        let late = summary(2, 7, &[], 2);
        let busy = summary(0, 6, &[(0, 100), (1, 100)], 0);
        assert_eq!(authority_cmp(&late, &busy), Ordering::Greater);
    }

    #[test]
    fn frontier_weight_breaks_view_ties() {
        let more = summary(1, 5, &[(0, 9), (1, 3)], 1);
        let less = summary(0, 5, &[(0, 9)], 0);
        assert_eq!(authority_cmp(&more, &less), Ordering::Greater);
    }

    #[test]
    fn rank_then_site_break_full_ties_deterministically() {
        let older = summary(2, 5, &[(0, 4)], 0);
        let younger = summary(1, 5, &[(0, 4)], 1);
        assert_eq!(authority_cmp(&older, &younger), Ordering::Greater);
        let a = summary(1, 5, &[(0, 4)], 0);
        let b = summary(3, 5, &[(0, 4)], 0);
        assert_eq!(authority_cmp(&a, &b), Ordering::Greater, "lower site wins");
        // The order is strict on distinct sites: never Equal.
        assert_ne!(authority_cmp(&a, &b), Ordering::Equal);
    }

    #[test]
    fn election_fires_when_all_expected_report() {
        let mut t = ReformTracker::new(
            summary(0, 4, &[(0, 2)], 1),
            vec![SiteId(0), SiteId(1), SiteId(2)],
            SimTime::ZERO + vsync_util::Duration::from_secs(5),
        );
        let now = SimTime::ZERO;
        assert!(matches!(
            t.try_resolve(now),
            ReformStatus::Collecting {
                have: 1,
                expected: 3
            }
        ));
        assert!(t.record(summary(1, 5, &[(0, 3)], 0)));
        assert!(matches!(
            t.try_resolve(now),
            ReformStatus::Collecting { have: 2, .. }
        ));
        assert!(t.record(summary(2, 4, &[(0, 2)], 2)));
        assert_eq!(
            t.try_resolve(now),
            ReformStatus::Follow { leader: SiteId(1) }
        );
        // Resolution is sticky: later summaries cannot reopen the election.
        assert!(!t.record(summary(2, 9, &[], 0)));
        assert_eq!(
            t.try_resolve(now),
            ReformStatus::Follow { leader: SiteId(1) }
        );
    }

    #[test]
    fn own_log_winning_leads_at_the_next_view_seq() {
        let mut t = ReformTracker::new(
            summary(1, 6, &[(0, 9)], 0),
            vec![SiteId(0), SiteId(1)],
            SimTime::ZERO + vsync_util::Duration::from_secs(5),
        );
        t.record(summary(0, 5, &[(0, 9), (1, 50)], 0));
        assert_eq!(
            t.try_resolve(SimTime::ZERO),
            ReformStatus::Lead { new_view_seq: 7 }
        );
    }

    #[test]
    fn deadline_forces_a_degraded_election() {
        let deadline = SimTime::ZERO + vsync_util::Duration::from_secs(1);
        let mut t = ReformTracker::new(
            summary(2, 3, &[], 1),
            vec![SiteId(0), SiteId(1), SiteId(2)],
            deadline,
        );
        assert!(matches!(
            t.try_resolve(SimTime::ZERO),
            ReformStatus::Collecting { .. }
        ));
        // Only one peer ever reports; the deadline elects among what we have.
        t.record(summary(0, 4, &[], 0));
        assert_eq!(
            t.try_resolve(deadline),
            ReformStatus::Follow { leader: SiteId(0) }
        );
    }

    #[test]
    fn minority_never_self_elects_at_the_deadline() {
        let deadline = SimTime::ZERO + vsync_util::Duration::from_secs(1);
        // 1 of 5 expected: far past the deadline, the election must keep collecting.
        let mut t = ReformTracker::new(
            summary(0, 9, &[(0, 50)], 0),
            (0..5).map(SiteId).collect(),
            deadline,
        );
        assert!(matches!(
            t.try_resolve(deadline + vsync_util::Duration::from_secs(60)),
            ReformStatus::Collecting {
                have: 1,
                expected: 5
            }
        ));
        // 2 of 5 is still a minority.
        t.record(summary(1, 8, &[], 1));
        assert!(matches!(
            t.try_resolve(deadline + vsync_util::Duration::from_secs(60)),
            ReformStatus::Collecting { have: 2, .. }
        ));
        // 3 of 5 crosses the majority: the degraded election fires.
        t.record(summary(2, 7, &[], 2));
        assert_eq!(
            t.try_resolve(deadline + vsync_util::Duration::from_secs(60)),
            ReformStatus::Lead { new_view_seq: 10 }
        );
    }

    #[test]
    fn fence_escape_hatch_demonstrates_minority_self_election() {
        let deadline = SimTime::ZERO + vsync_util::Duration::from_secs(1);
        let mut t = ReformTracker::new(
            summary(0, 9, &[(0, 50)], 0),
            (0..5).map(SiteId).collect(),
            deadline,
        )
        .without_majority_fence();
        // With the fence disabled a single stranded site elects its own log: exactly the
        // split-brain the fence exists to prevent.
        assert_eq!(
            t.try_resolve(deadline),
            ReformStatus::Lead { new_view_seq: 10 }
        );
    }

    #[test]
    fn alive_answer_short_circuits_everything() {
        let mut t = ReformTracker::new(
            summary(0, 8, &[(0, 40)], 0),
            vec![SiteId(0), SiteId(1)],
            SimTime::ZERO + vsync_util::Duration::from_secs(5),
        );
        t.mark_alive(SiteId(1));
        assert_eq!(
            t.try_resolve(SimTime::ZERO),
            ReformStatus::Operational { contact: SiteId(1) }
        );
        assert!(!t.record(summary(1, 1, &[], 0)));
    }

    #[test]
    fn better_resummary_from_the_same_site_replaces_the_old_one() {
        let mut t = ReformTracker::new(
            summary(0, 2, &[], 0),
            vec![SiteId(0), SiteId(1), SiteId(2)],
            SimTime::ZERO + vsync_util::Duration::from_secs(5),
        );
        assert!(t.record(summary(1, 3, &[], 0)));
        assert!(!t.record(summary(1, 3, &[], 0)), "duplicate is not new");
        assert!(t.record(summary(1, 4, &[], 0)), "strictly better replaces");
        t.record(summary(2, 1, &[], 0));
        assert_eq!(
            t.try_resolve(SimTime::ZERO),
            ReformStatus::Follow { leader: SiteId(1) }
        );
    }
}
