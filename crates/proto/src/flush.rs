//! The flush protocol that implements GBCAST and view changes.
//!
//! Virtual synchrony requires that "the delivery of an atomic multicast is always completed
//! before a group that forms part of its destinations is allowed to take on a new member"
//! (paper Section 2.4), and symmetrically that every surviving member observes the same set
//! of messages before a member is removed.  The flush achieves this:
//!
//! 1. the group coordinator (the site hosting the oldest surviving member) sends `FlushReq`
//!    to every member site;
//! 2. each site answers `FlushAck` with every message it has received in the current view
//!    that is not yet known stable (including its own sends), together with its outstanding
//!    ABCAST priority proposals;
//! 3. the coordinator merges the reports — taking the maximum proposal as the final priority
//!    of any ABCAST whose initiator did not finish phase two — and multicasts `FlushCommit`
//!    carrying the agreed message set, the new view, and any user GBCAST payloads;
//! 4. every member delivers whatever it is missing from the agreed set, then delivers the
//!    view-change event, then resumes normal operation in the new view.
//!
//! This module holds the bookkeeping for both roles; the driving logic lives in
//! [`crate::endpoint::GroupEndpoint`].

use std::collections::{BTreeMap, BTreeSet};

use vsync_net::MsgId;
use vsync_util::{ProcessId, Result, SimTime, SiteId, VsError};

use crate::messages::{ProtoMsg, StoredMsg};

/// Extracts the message id out of a stored (wire-form) data message.  Goes through the
/// frame's decode memo, so repeated id lookups over the same held copy (stability overlay,
/// coordinator merge) parse the wire form at most once.
pub fn stored_msg_id(stored: &StoredMsg) -> Result<MsgId> {
    let (_, proto) = ProtoMsg::decode_frame(&stored.wire)?;
    match proto {
        ProtoMsg::CbData { id, .. } | ProtoMsg::AbData { id, .. } => Ok(*id),
        other => Err(VsError::Internal(format!(
            "stored message is not a data message: {}",
            other.type_tag()
        ))),
    }
}

/// Coordinator-side state of an in-progress flush.
#[derive(Clone, Debug)]
pub struct FlushCoordinator {
    /// Sequence number of the view this flush installs.
    pub target_seq: u64,
    /// Takeover attempt counter.
    pub attempt: u64,
    /// Sites whose acks are still awaited.
    pub awaiting: BTreeSet<SiteId>,
    /// Union of unstable messages reported so far, keyed by message id.
    pub collected: BTreeMap<MsgId, StoredMsg>,
    /// When the flush started (for timeout-based retry).
    pub started_at: SimTime,
}

impl FlushCoordinator {
    /// Creates coordinator state awaiting acks from `awaiting`.
    pub fn new(
        target_seq: u64,
        attempt: u64,
        awaiting: BTreeSet<SiteId>,
        started_at: SimTime,
    ) -> Self {
        FlushCoordinator {
            target_seq,
            attempt,
            awaiting,
            collected: BTreeMap::new(),
            started_at,
        }
    }

    /// Merges one site's reported unstable messages into the union.
    pub fn merge(&mut self, stored: Vec<StoredMsg>) {
        for s in stored {
            let Ok(id) = stored_msg_id(&s) else { continue };
            match self.collected.get_mut(&id) {
                Some(existing) => {
                    // Keep the highest priority proposal seen; the maximum becomes the final
                    // ABCAST order when the initiator is gone.
                    existing.ab_priority = match (existing.ab_priority, s.ab_priority) {
                        (Some(a), Some(b)) => Some(a.max(b)),
                        (a, b) => a.or(b),
                    };
                }
                None => {
                    self.collected.insert(id, s);
                }
            }
        }
    }

    /// Records an ack from `site` (merging its report); returns true when every awaited site
    /// has answered.
    pub fn absorb_ack(&mut self, site: SiteId, stored: Vec<StoredMsg>) -> bool {
        self.merge(stored);
        self.awaiting.remove(&site);
        self.awaiting.is_empty()
    }

    /// Drops a site from the awaited set (it failed mid-flush); returns true if the flush is
    /// now complete.
    pub fn forget_site(&mut self, site: SiteId) -> bool {
        self.awaiting.remove(&site);
        self.awaiting.is_empty()
    }

    /// The agreed message set, in a deterministic order.
    pub fn deliver_set(&self) -> Vec<StoredMsg> {
        self.collected.values().cloned().collect()
    }
}

/// Participant-side state of an in-progress flush.
#[derive(Clone, Debug)]
pub struct FlushParticipant {
    /// Sequence number of the view being installed.
    pub target_seq: u64,
    /// The member coordinating this flush.
    pub initiator: ProcessId,
    /// Takeover attempt counter.
    pub attempt: u64,
    /// When we acked (for timeout-based takeover).
    pub started_at: SimTime,
}

/// Which role this endpoint plays in the current flush, if any.
#[derive(Clone, Debug)]
pub enum FlushRole {
    /// This endpoint's site hosts the flush coordinator.
    Coordinator(FlushCoordinator),
    /// This endpoint acked a flush and is waiting for the commit.
    Participant(FlushParticipant),
}

impl FlushRole {
    /// The target view sequence number of the flush.
    pub fn target_seq(&self) -> u64 {
        match self {
            FlushRole::Coordinator(c) => c.target_seq,
            FlushRole::Participant(p) => p.target_seq,
        }
    }

    /// When this flush started locally.
    pub fn started_at(&self) -> SimTime {
        match self {
            FlushRole::Coordinator(c) => c.started_at,
            FlushRole::Participant(p) => p.started_at,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vsync_msg::Message;
    use vsync_util::{GroupId, VectorClock};

    fn cb_stored(origin: u16, seq: u64, body: u64) -> StoredMsg {
        StoredMsg {
            wire: ProtoMsg::CbData {
                id: MsgId::new(SiteId(origin), seq),
                sender: ProcessId::new(SiteId(origin), 1),
                sender_rank: 0,
                view_seq: 1,
                vt: VectorClock::from_entries(vec![seq]),
                payload: Message::with_body(body),
            }
            .encode_frame(GroupId(1)),
            ab_priority: None,
        }
    }

    fn ab_stored(origin: u16, seq: u64, proposal: u64) -> StoredMsg {
        StoredMsg {
            wire: ProtoMsg::AbData {
                id: MsgId::new(SiteId(origin), seq),
                sender: ProcessId::new(SiteId(origin), 1),
                view_seq: 1,
                payload: Message::with_body(seq),
            }
            .encode_frame(GroupId(1)),
            ab_priority: Some(proposal),
        }
    }

    #[test]
    fn stored_msg_id_extraction() {
        assert_eq!(
            stored_msg_id(&cb_stored(2, 9, 1)).unwrap(),
            MsgId::new(SiteId(2), 9)
        );
        assert_eq!(
            stored_msg_id(&ab_stored(1, 3, 7)).unwrap(),
            MsgId::new(SiteId(1), 3)
        );
        let bogus = StoredMsg {
            wire: ProtoMsg::LeaveReq {
                member: ProcessId::new(SiteId(0), 1),
            }
            .encode_frame(GroupId(1)),
            ab_priority: None,
        };
        assert!(stored_msg_id(&bogus).is_err());
    }

    #[test]
    fn acks_complete_when_every_site_answers() {
        let mut c = FlushCoordinator::new(
            2,
            0,
            [SiteId(1), SiteId(2)].into_iter().collect(),
            SimTime::ZERO,
        );
        assert!(!c.absorb_ack(SiteId(1), vec![cb_stored(1, 1, 10)]));
        assert!(c.absorb_ack(SiteId(2), vec![cb_stored(1, 1, 10), cb_stored(2, 1, 20)]));
        let set = c.deliver_set();
        assert_eq!(set.len(), 2, "duplicates are merged by id");
    }

    #[test]
    fn ab_priorities_take_the_maximum_across_reports() {
        let mut c = FlushCoordinator::new(2, 0, [SiteId(1)].into_iter().collect(), SimTime::ZERO);
        c.merge(vec![ab_stored(0, 1, 4)]);
        c.merge(vec![ab_stored(0, 1, 9)]);
        c.merge(vec![ab_stored(0, 1, 2)]);
        let set = c.deliver_set();
        assert_eq!(set.len(), 1);
        assert_eq!(set[0].ab_priority, Some(9));
    }

    #[test]
    fn forgetting_a_failed_site_can_complete_the_flush() {
        let mut c = FlushCoordinator::new(
            3,
            1,
            [SiteId(1), SiteId(2)].into_iter().collect(),
            SimTime::ZERO,
        );
        assert!(!c.forget_site(SiteId(1)));
        assert!(c.forget_site(SiteId(2)));
    }

    #[test]
    fn role_accessors() {
        let c = FlushRole::Coordinator(FlushCoordinator::new(5, 0, BTreeSet::new(), SimTime(123)));
        assert_eq!(c.target_seq(), 5);
        assert_eq!(c.started_at(), SimTime(123));
        let p = FlushRole::Participant(FlushParticipant {
            target_seq: 6,
            initiator: ProcessId::new(SiteId(0), 1),
            attempt: 2,
            started_at: SimTime(9),
        });
        assert_eq!(p.target_seq(), 6);
    }
}
