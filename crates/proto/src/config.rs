//! Protocol-level tunables.

use vsync_util::Duration;

/// Timers and limits used by the group endpoints.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ProtoConfig {
    /// Interval between stability gossip rounds.
    pub stability_interval: Duration,
    /// How long a participant waits for a flush to commit before suspecting the flush
    /// coordinator and (if next in line) taking over.
    pub flush_timeout: Duration,
    /// How long the initiator of an ABCAST waits for priority proposals before re-sending
    /// phase one to destinations that have not answered (loss recovery belt-and-braces).
    pub abcast_retry: Duration,
    /// Whether flush acks carry *proposal-only* entries: ABCAST messages that are stable
    /// (so the stability tracker dropped their wire copies) but still undecided.  Required
    /// for correctness — a stable-but-undecided ABCAST is otherwise silently dropped at a
    /// view change.  The escape hatch exists only so tests can pin the failure mode.
    pub ack_proposal_only: bool,
    /// Whether view installs are fenced by the primary-partition majority rule: a flush
    /// only commits in a component holding a strict majority of the view it is cutting
    /// from (rank-0 membership breaks exact-half ties), and minority components wedge
    /// instead of installing.  Required for split-brain safety under network partitions.
    /// The escape hatch exists only so tests can demonstrate the failure mode.
    pub primary_partition: bool,
}

impl Default for ProtoConfig {
    fn default() -> Self {
        ProtoConfig {
            stability_interval: Duration::from_millis(200),
            flush_timeout: Duration::from_millis(2_000),
            abcast_retry: Duration::from_millis(1_000),
            ack_proposal_only: true,
            primary_partition: true,
        }
    }
}

impl ProtoConfig {
    /// A configuration with short timers suited to the `Modern`/`Instant` latency profiles.
    pub fn fast() -> Self {
        ProtoConfig {
            stability_interval: Duration::from_millis(5),
            flush_timeout: Duration::from_millis(100),
            abcast_retry: Duration::from_millis(50),
            ack_proposal_only: true,
            primary_partition: true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fast_config_is_faster_than_default() {
        let d = ProtoConfig::default();
        let f = ProtoConfig::fast();
        assert!(f.stability_interval < d.stability_interval);
        assert!(f.flush_timeout < d.flush_timeout);
    }
}
