//! Protocol-level tests for the group endpoint, driven by a small in-memory cluster harness
//! that routes endpoint outputs between sites without the full simulator.  The harness keeps
//! per-(source, destination) FIFO channels (like the real transport) but lets tests choose
//! adversarial interleavings *across* sources, which is where ordering protocols earn their
//! keep.

use std::collections::{BTreeMap, VecDeque};

use vsync_msg::{Frame, Message};
use vsync_net::{ProtocolKind, SharedStats};
use vsync_util::{GroupId, ProcessId, SimTime, SiteId};

use super::GroupEndpoint;
use crate::config::ProtoConfig;
use crate::output::{Delivery, EndpointOutput, ViewEvent};

const GROUP: GroupId = GroupId(1);

fn member(site: u16) -> ProcessId {
    ProcessId::new(SiteId(site), 1)
}

struct Cluster {
    endpoints: BTreeMap<SiteId, GroupEndpoint>,
    /// FIFO channel per (destination, source).  Carries the shared wire frames the
    /// endpoints emit, like the real packet layer.
    channels: BTreeMap<(SiteId, SiteId), VecDeque<Frame>>,
    deliveries: BTreeMap<SiteId, Vec<Delivery>>,
    views: BTreeMap<SiteId, Vec<ViewEvent>>,
    /// `PartitionStalled` reports per site: `(view_seq, alive, voters)`.
    stalls: BTreeMap<SiteId, Vec<(u64, usize, usize)>>,
    /// `RejoinRequired` requests per site: `(contact, observed_seq)`.
    rejoins: BTreeMap<SiteId, Vec<(SiteId, u64)>>,
    now: SimTime,
    stats: SharedStats,
}

impl Cluster {
    fn new(num_sites: u16) -> Self {
        Cluster::new_with_config(num_sites, ProtoConfig::fast())
    }

    fn new_with_config(num_sites: u16, cfg: ProtoConfig) -> Self {
        let stats = SharedStats::new();
        let mut endpoints = BTreeMap::new();
        for s in 0..num_sites {
            endpoints.insert(
                SiteId(s),
                GroupEndpoint::new(GROUP, SiteId(s), cfg, stats.clone()),
            );
        }
        Cluster {
            endpoints,
            channels: BTreeMap::new(),
            deliveries: BTreeMap::new(),
            views: BTreeMap::new(),
            stalls: BTreeMap::new(),
            rejoins: BTreeMap::new(),
            now: SimTime::ZERO,
            stats,
        }
    }

    /// Runs `f` against one endpoint and routes everything it produced.
    fn exec<R>(
        &mut self,
        site: SiteId,
        f: impl FnOnce(&mut GroupEndpoint, SimTime, &mut Vec<EndpointOutput>) -> R,
    ) -> R {
        let mut out = Vec::new();
        let now = self.now;
        let ep = self.endpoints.get_mut(&site).expect("endpoint exists");
        let r = f(ep, now, &mut out);
        self.route(site, out);
        r
    }

    fn route(&mut self, from: SiteId, outputs: Vec<EndpointOutput>) {
        for o in outputs {
            match o {
                EndpointOutput::Send { dst_site, msg, .. } => {
                    self.channels
                        .entry((dst_site, from))
                        .or_default()
                        .push_back(msg);
                }
                EndpointOutput::Deliver(d) => {
                    self.deliveries.entry(from).or_default().push(d);
                }
                EndpointOutput::ViewChange(v) => {
                    self.views.entry(from).or_default().push(v);
                }
                EndpointOutput::PartitionStalled {
                    view_seq,
                    alive,
                    voters,
                    ..
                } => {
                    self.stalls
                        .entry(from)
                        .or_default()
                        .push((view_seq, alive, voters));
                }
                EndpointOutput::RejoinRequired {
                    contact,
                    observed_seq,
                    ..
                } => {
                    self.rejoins
                        .entry(from)
                        .or_default()
                        .push((contact, observed_seq));
                }
            }
        }
    }

    /// Delivers queued messages until quiescent.  `reverse_sources` picks the adversarial
    /// interleaving: channels from higher-numbered sites are serviced first.
    fn pump(&mut self, reverse_sources: bool) {
        loop {
            let mut keys: Vec<(SiteId, SiteId)> = self
                .channels
                .iter()
                .filter(|(_, q)| !q.is_empty())
                .map(|(k, _)| *k)
                .collect();
            if keys.is_empty() {
                break;
            }
            keys.sort_by_key(|(dst, src)| {
                (
                    *dst,
                    if reverse_sources {
                        u16::MAX - src.0
                    } else {
                        src.0
                    },
                )
            });
            for key in keys {
                // Deliver one message per channel per round to interleave sources.
                let Some(msg) = self.channels.get_mut(&key).and_then(|q| q.pop_front()) else {
                    continue;
                };
                let (dst, src) = key;
                if !self.endpoints.contains_key(&dst) {
                    continue; // site is "down"
                }
                self.now = SimTime(self.now.0 + 1_000);
                self.exec(dst, |ep, now, out| {
                    ep.on_message(now, src, &msg, out)
                        .expect("protocol message handled");
                });
            }
        }
    }

    /// Discards everything queued on the channel from `src` to `dst` (simulated loss of all
    /// in-flight traffic when a sender crashes).
    fn drop_channel(&mut self, dst: SiteId, src: SiteId) {
        self.channels.remove(&(dst, src));
    }

    /// Removes a site entirely (crash): its endpoint vanishes, queued traffic to it is lost.
    fn crash_site(&mut self, site: SiteId) {
        self.endpoints.remove(&site);
        self.channels.retain(|(dst, _), _| *dst != site);
    }

    fn tick_all(&mut self) {
        self.now = SimTime(self.now.0 + 50_000);
        let sites: Vec<SiteId> = self.endpoints.keys().copied().collect();
        for s in sites {
            self.exec(s, |ep, now, out| ep.on_tick(now, out));
        }
    }

    fn delivered_bodies(&self, site: SiteId) -> Vec<u64> {
        self.deliveries
            .get(&site)
            .map(|ds| {
                ds.iter()
                    .filter_map(|d| d.payload.get_u64("body"))
                    .collect()
            })
            .unwrap_or_default()
    }

    fn latest_view(&self, site: SiteId) -> Option<&ViewEvent> {
        self.views.get(&site).and_then(|v| v.last())
    }

    /// Builds a three-member group spanning sites 0, 1, 2 (member i at site i).
    fn build_three_member_group() -> Cluster {
        Cluster::build_three_member_group_with(ProtoConfig::fast())
    }

    /// Like [`Cluster::build_three_member_group`] but with custom protocol tunables.
    fn build_three_member_group_with(cfg: ProtoConfig) -> Cluster {
        let mut c = Cluster::new_with_config(3, cfg);
        c.exec(SiteId(0), |ep, _now, out| ep.create(member(0), out));
        c.exec(SiteId(0), |ep, now, out| {
            ep.submit_join(now, member(1), None, out).unwrap();
        });
        c.pump(false);
        c.exec(SiteId(0), |ep, now, out| {
            ep.submit_join(now, member(2), None, out).unwrap();
        });
        c.pump(false);
        c
    }
}

#[test]
fn create_and_join_produce_identical_ranked_views() {
    let c = Cluster::build_three_member_group();
    for s in [0u16, 1, 2] {
        let view = c
            .endpoints
            .get(&SiteId(s))
            .and_then(|e| e.view())
            .expect("view installed");
        assert_eq!(view.seq(), 3, "site {s}");
        assert_eq!(view.members, vec![member(0), member(1), member(2)]);
    }
    // Each member's rank reflects join order (decreasing age).
    let v = c.endpoints[&SiteId(2)].view().unwrap();
    assert_eq!(v.rank_of(member(0)), Some(0));
    assert_eq!(v.rank_of(member(1)), Some(1));
    assert_eq!(v.rank_of(member(2)), Some(2));
}

#[test]
fn every_member_sees_the_same_sequence_of_views() {
    let c = Cluster::build_three_member_group();
    // Site 0 saw the founding view plus two joins; 1 and 2 saw the views from when they joined.
    let seqs = |s: u16| -> Vec<u64> {
        c.views
            .get(&SiteId(s))
            .map(|vs| vs.iter().map(|v| v.view.seq()).collect())
            .unwrap_or_default()
    };
    assert_eq!(seqs(0), vec![1, 2, 3]);
    assert_eq!(seqs(1), vec![2, 3]);
    assert_eq!(seqs(2), vec![3]);
}

#[test]
fn cbcast_reaches_every_member_exactly_once() {
    let mut c = Cluster::build_three_member_group();
    for i in 0..5u64 {
        c.exec(SiteId(0), |ep, now, out| {
            ep.cbcast(now, member(0), Message::with_body(i), out)
                .unwrap();
        });
    }
    c.pump(false);
    for s in [0u16, 1, 2] {
        assert_eq!(
            c.delivered_bodies(SiteId(s)),
            vec![0, 1, 2, 3, 4],
            "site {s}"
        );
    }
}

#[test]
fn cbcast_preserves_causality_under_adversarial_interleaving() {
    let mut c = Cluster::build_three_member_group();
    // Member 0 multicasts m1.
    c.exec(SiteId(0), |ep, now, out| {
        ep.cbcast(now, member(0), Message::with_body(1u64), out)
            .unwrap();
    });
    // Deliver m1 at site 1 only (site 2's channel stays queued).
    // Then member 1, having seen m1, multicasts m2 (causally after m1).
    // Site 2 services the channel from site 1 first (reverse order), receiving m2 before m1.
    let m1_for_site1 = self_channel_take(&mut c, SiteId(1), SiteId(0));
    c.exec(SiteId(1), |ep, now, out| {
        ep.on_message(now, SiteId(0), &m1_for_site1, out).unwrap();
    });
    c.exec(SiteId(1), |ep, now, out| {
        ep.cbcast(now, member(1), Message::with_body(2u64), out)
            .unwrap();
    });
    c.pump(true);
    // Causal order must hold at every member: 1 before 2.
    for s in [0u16, 1, 2] {
        let bodies = c.delivered_bodies(SiteId(s));
        let pos1 = bodies.iter().position(|b| *b == 1).expect("m1 delivered");
        let pos2 = bodies.iter().position(|b| *b == 2).expect("m2 delivered");
        assert!(
            pos1 < pos2,
            "site {s} delivered m2 before its causal predecessor m1"
        );
    }
}

/// Takes the single queued message on channel (dst, src).
fn self_channel_take(c: &mut Cluster, dst: SiteId, src: SiteId) -> Frame {
    c.channels
        .get_mut(&(dst, src))
        .and_then(|q| q.pop_front())
        .expect("message queued")
}

#[test]
fn abcast_orders_concurrent_messages_identically_everywhere() {
    let mut c = Cluster::build_three_member_group();
    // Three members issue ABCASTs concurrently.
    for s in [0u16, 1, 2] {
        c.exec(SiteId(s), |ep, now, out| {
            ep.abcast(now, member(s), Message::with_body(100 + s as u64), out)
                .unwrap();
        });
    }
    c.pump(true);
    let order0 = c.delivered_bodies(SiteId(0));
    assert_eq!(order0.len(), 3);
    for s in [1u16, 2] {
        assert_eq!(
            c.delivered_bodies(SiteId(s)),
            order0,
            "total order differs at site {s}"
        );
    }
}

#[test]
fn abcast_and_cbcast_mix_delivers_everything() {
    let mut c = Cluster::build_three_member_group();
    c.exec(SiteId(1), |ep, now, out| {
        ep.cbcast(now, member(1), Message::with_body(1u64), out)
            .unwrap();
    });
    c.exec(SiteId(2), |ep, now, out| {
        ep.abcast(now, member(2), Message::with_body(2u64), out)
            .unwrap();
    });
    c.exec(SiteId(0), |ep, now, out| {
        ep.cbcast(now, member(0), Message::with_body(3u64), out)
            .unwrap();
    });
    c.pump(false);
    for s in [0u16, 1, 2] {
        let mut bodies = c.delivered_bodies(SiteId(s));
        bodies.sort_unstable();
        assert_eq!(bodies, vec![1, 2, 3], "site {s}");
    }
}

#[test]
fn gbcast_payload_is_delivered_with_a_view_event_at_every_member() {
    let mut c = Cluster::build_three_member_group();
    c.stats.reset();
    c.exec(SiteId(2), |ep, now, out| {
        ep.gbcast(now, member(2), Message::with_body(77u64), out)
            .unwrap();
    });
    c.pump(false);
    for s in [0u16, 1, 2] {
        let ve = c.latest_view(SiteId(s)).expect("view event");
        assert_eq!(ve.gbcasts.len(), 1, "site {s}");
        assert_eq!(ve.gbcasts[0].get_u64("body"), Some(77));
        assert_eq!(
            ve.view.members.len(),
            3,
            "membership unchanged by a user GBCAST"
        );
    }
    // The GBCAST was counted once.
    assert_eq!(c.stats.snapshot().multicasts_of(ProtocolKind::Gbcast), 1);
}

#[test]
fn voluntary_leave_installs_a_smaller_view_everywhere() {
    let mut c = Cluster::build_three_member_group();
    c.exec(SiteId(1), |ep, now, out| {
        ep.submit_leave(now, member(1), out).unwrap();
    });
    c.pump(false);
    for s in [0u16, 2] {
        let v = c.endpoints[&SiteId(s)].view().unwrap();
        assert_eq!(v.members, vec![member(0), member(2)]);
        assert_eq!(v.seq(), 4);
    }
    // The departed member's site also learned about the new view (so the leaver can stop).
    let v1 = c.latest_view(SiteId(1)).unwrap();
    assert_eq!(v1.view.departed, vec![member(1)]);
}

#[test]
fn virtual_synchrony_failed_senders_message_is_redistributed_at_the_cut() {
    let mut c = Cluster::build_three_member_group();
    // Member 0 multicasts; the copy reaches site 1 but the copy to site 2 is lost when the
    // sender's site crashes.
    c.exec(SiteId(0), |ep, now, out| {
        ep.cbcast(now, member(0), Message::with_body(42u64), out)
            .unwrap();
    });
    let m_for_1 = self_channel_take(&mut c, SiteId(1), SiteId(0));
    c.exec(SiteId(1), |ep, now, out| {
        ep.on_message(now, SiteId(0), &m_for_1, out).unwrap();
    });
    c.drop_channel(SiteId(2), SiteId(0));
    c.crash_site(SiteId(0));
    assert_eq!(c.delivered_bodies(SiteId(1)), vec![42]);
    assert_eq!(c.delivered_bodies(SiteId(2)), Vec::<u64>::new());
    // Survivors learn of the failure.
    for s in [1u16, 2] {
        c.exec(SiteId(s), |ep, now, out| {
            ep.report_failures(now, &[member(0)], out);
        });
    }
    c.pump(false);
    // Both survivors installed the two-member view AND both delivered message 42 before it:
    // the defining guarantee of virtual synchrony.
    for s in [1u16, 2] {
        let v = c.endpoints[&SiteId(s)].view().unwrap();
        assert_eq!(v.members, vec![member(1), member(2)], "site {s}");
        assert_eq!(
            c.delivered_bodies(SiteId(s)),
            vec![42],
            "site {s} missed the pre-cut message"
        );
    }
}

#[test]
fn abcast_orphaned_by_sender_failure_is_finalized_by_the_flush() {
    let mut c = Cluster::build_three_member_group();
    // Member 0 initiates an ABCAST; phase one reaches both peers, but site 0 crashes before
    // sending the final order.
    c.exec(SiteId(0), |ep, now, out| {
        ep.abcast(now, member(0), Message::with_body(7u64), out)
            .unwrap();
    });
    // Deliver phase one at sites 1 and 2; their proposals go back to a dead site.
    let d1 = self_channel_take(&mut c, SiteId(1), SiteId(0));
    let d2 = self_channel_take(&mut c, SiteId(2), SiteId(0));
    c.exec(SiteId(1), |ep, now, out| {
        ep.on_message(now, SiteId(0), &d1, out).unwrap();
    });
    c.exec(SiteId(2), |ep, now, out| {
        ep.on_message(now, SiteId(0), &d2, out).unwrap();
    });
    c.crash_site(SiteId(0));
    assert!(
        c.delivered_bodies(SiteId(1)).is_empty(),
        "not deliverable before ordering"
    );
    for s in [1u16, 2] {
        c.exec(SiteId(s), |ep, now, out| {
            ep.report_failures(now, &[member(0)], out);
        });
    }
    c.pump(false);
    for s in [1u16, 2] {
        assert_eq!(c.delivered_bodies(SiteId(s)), vec![7], "site {s}");
        assert_eq!(c.endpoints[&SiteId(s)].view().unwrap().members.len(), 2);
    }
}

/// Drives the stable-but-undecided ABCAST edge: two concurrent ABCASTs from two different
/// initiators reach every site in *opposite* orders at the two eventual survivors, the
/// stability gossip runs to completion (so the survivors' stability trackers drop their
/// wire copies), and then both initiators crash before phase two.  The only remaining
/// record of either message is the survivors' holdback queues.  Returns the cluster after
/// the failure flush between the survivors (sites 1 and 2).
fn stable_undecided_abcasts_after_crash(ack_proposal_only: bool) -> Cluster {
    let mut c = Cluster::new_with_config(
        4,
        ProtoConfig {
            ack_proposal_only,
            // The scenario kills exactly half the view including the rank-0 member, which
            // the primary-partition fence (rightly) refuses to cut past — survivors cannot
            // tell these crashes from a partition.  This test pins the proposal-only-ack
            // edge, not partition semantics, so the fence is off.
            primary_partition: false,
            ..ProtoConfig::fast()
        },
    );
    c.exec(SiteId(0), |ep, _now, out| ep.create(member(0), out));
    for joiner in [1u16, 2, 3] {
        c.exec(SiteId(0), |ep, now, out| {
            ep.submit_join(now, member(joiner), None, out).unwrap();
        });
        c.pump(false);
    }
    // Member 0 initiates A (body 10) and member 3 initiates B (body 20) concurrently.
    c.exec(SiteId(0), |ep, now, out| {
        ep.abcast(now, member(0), Message::with_body(10u64), out)
            .unwrap();
    });
    c.exec(SiteId(3), |ep, now, out| {
        ep.abcast(now, member(3), Message::with_body(20u64), out)
            .unwrap();
    });
    // Adversarial phase-one interleaving: site 1 receives A then B, site 2 receives B then
    // A, and each initiator's site receives the other's message (every site holds both, the
    // precondition for stability).  All priority proposals head back to the initiators.
    let a_for_1 = self_channel_take(&mut c, SiteId(1), SiteId(0));
    let b_for_1 = self_channel_take(&mut c, SiteId(1), SiteId(3));
    let a_for_2 = self_channel_take(&mut c, SiteId(2), SiteId(0));
    let b_for_2 = self_channel_take(&mut c, SiteId(2), SiteId(3));
    let b_for_0 = self_channel_take(&mut c, SiteId(0), SiteId(3));
    let a_for_3 = self_channel_take(&mut c, SiteId(3), SiteId(0));
    for (dst, src, frame) in [
        (1u16, 0u16, a_for_1),
        (1, 3, b_for_1),
        (2, 3, b_for_2),
        (2, 0, a_for_2),
        (0, 3, b_for_0),
        (3, 0, a_for_3),
    ] {
        c.exec(SiteId(dst), |ep, now, out| {
            ep.on_message(now, SiteId(src), &frame, out).unwrap();
        });
    }
    // One gossip round from every site (all four now hold both copies), then both
    // initiators crash, taking the in-flight proposals with them — phase two never runs.
    c.tick_all();
    c.crash_site(SiteId(0));
    c.crash_site(SiteId(3));
    c.pump(false);
    c.tick_all();
    c.pump(false);
    // The precondition the regression pins: both messages went *stable* (no survivor holds
    // a wire copy any more) while still *undecided* (neither was delivered).
    for s in [1u16, 2] {
        assert_eq!(
            c.endpoints[&SiteId(s)].unstable_len(),
            0,
            "site {s} still holds an unstable copy; the edge under test needs stability"
        );
        assert!(
            c.delivered_bodies(SiteId(s)).is_empty(),
            "site {s} delivered before ordering completed"
        );
    }
    for s in [1u16, 2] {
        c.exec(SiteId(s), |ep, now, out| {
            ep.report_failures(now, &[member(0), member(3)], out);
        });
    }
    c.pump(false);
    c
}

#[test]
fn stable_but_undecided_abcasts_keep_a_single_total_order_across_the_view_change() {
    let c = stable_undecided_abcasts_after_crash(true);
    // The flush acks carried proposal-only entries re-encoded from the holdback queues, so
    // the coordinator finalised both orphaned ABCASTs with the merged maximum proposals:
    // one total order, identical at every survivor.
    let order1 = c.delivered_bodies(SiteId(1));
    let order2 = c.delivered_bodies(SiteId(2));
    assert_eq!(order1.len(), 2, "site 1 lost a stable-but-undecided ABCAST");
    assert_eq!(
        order1, order2,
        "survivors disagree on the total order at the cut"
    );
    for s in [1u16, 2] {
        assert_eq!(c.endpoints[&SiteId(s)].view().unwrap().members.len(), 2);
    }
}

#[test]
fn without_proposal_only_acks_the_total_order_diverges_at_the_cut() {
    // The knob exists precisely to keep the failure mode pinned: without proposal-only ack
    // entries the coordinator never learns of the stable-but-undecided messages, each
    // survivor force-drains them with its own *local* proposal priorities at the cut, and
    // the two survivors commit opposite total orders — the ABCAST contract is broken.
    let c = stable_undecided_abcasts_after_crash(false);
    let order1 = c.delivered_bodies(SiteId(1));
    let order2 = c.delivered_bodies(SiteId(2));
    assert_eq!(order1, vec![10, 20], "site 1 drains in its arrival order");
    assert_eq!(order2, vec![20, 10], "site 2 drains in its arrival order");
    for s in [1u16, 2] {
        assert_eq!(c.endpoints[&SiteId(s)].view().unwrap().members.len(), 2);
    }
}

#[test]
fn multicasts_issued_during_a_flush_are_delivered_in_the_next_view() {
    let mut c = Cluster::build_three_member_group();
    // Start a join (flush) but do not pump yet; the coordinator is now flushing.
    c.exec(SiteId(0), |ep, now, out| {
        ep.submit_join(now, ProcessId::new(SiteId(0), 9), None, out)
            .unwrap();
    });
    assert!(c.endpoints[&SiteId(0)].is_flushing());
    // A multicast issued at the flushing site is buffered, not lost.
    c.exec(SiteId(0), |ep, now, out| {
        ep.cbcast(now, member(0), Message::with_body(5u64), out)
            .unwrap();
    });
    c.pump(false);
    for s in [0u16, 1, 2] {
        assert_eq!(c.delivered_bodies(SiteId(s)), vec![5], "site {s}");
        assert_eq!(c.endpoints[&SiteId(s)].view().unwrap().members.len(), 4);
    }
}

#[test]
fn stability_gossip_shrinks_the_unstable_set() {
    let mut c = Cluster::build_three_member_group();
    c.exec(SiteId(0), |ep, now, out| {
        ep.cbcast(now, member(0), Message::with_body(1u64), out)
            .unwrap();
    });
    c.pump(false);
    // Before gossip the copies are held as potentially unstable somewhere.
    // After a couple of gossip rounds everyone knows everyone has the message.
    c.tick_all();
    c.pump(false);
    c.tick_all();
    c.pump(false);
    for s in [0u16, 1, 2] {
        let ep = &c.endpoints[&SiteId(s)];
        assert_eq!(ep.local_members().len(), 1);
    }
    // Trigger a view change; its commit must not need to redistribute the stable message.
    c.exec(SiteId(0), |ep, now, out| {
        ep.submit_join(now, ProcessId::new(SiteId(1), 9), None, out)
            .unwrap();
    });
    c.pump(false);
    // The newly joined member must NOT receive a stale copy of message 1.
    let site1_bodies = c.delivered_bodies(SiteId(1));
    assert_eq!(
        site1_bodies.iter().filter(|b| **b == 1).count(),
        1,
        "no duplicate deliveries"
    );
}

#[test]
fn joiner_at_a_fresh_site_does_not_apply_snapshot_covered_redelivery() {
    // Four site slots; the group spans sites 0-2 and site 3 starts with no view.
    let mut c = Cluster::new(4);
    c.exec(SiteId(0), |ep, _now, out| ep.create(member(0), out));
    for s in [1u16, 2] {
        c.exec(SiteId(0), |ep, now, out| {
            ep.submit_join(now, member(s), None, out).unwrap();
        });
        c.pump(false);
    }
    // A burst of multicasts that everyone receives but nobody has gossiped about: all of
    // them are still *unstable* (a flush would redistribute every one).
    for i in 0..8u64 {
        c.exec(SiteId(0), |ep, now, out| {
            ep.cbcast(now, member(0), Message::with_body(i), out)
                .unwrap();
        });
    }
    c.exec(SiteId(1), |ep, now, out| {
        ep.abcast(now, member(1), Message::with_body(100u64), out)
            .unwrap();
    });
    c.pump(false);
    for s in [0u16, 1, 2] {
        assert!(
            c.endpoints[&SiteId(s)].unstable_len() >= 8,
            "site {s} should still hold the burst as unstable"
        );
    }
    // Site 3 joins while all nine messages are unstable.
    c.exec(SiteId(0), |ep, now, out| {
        ep.submit_join(now, member(3), None, out).unwrap();
    });
    c.pump(false);
    // The joiner installed the view but applied NONE of the redistributed pre-cut
    // messages: their effects belong to the state snapshot taken at the cut.
    let v3 = c.endpoints[&SiteId(3)].view().expect("view installed");
    assert_eq!(v3.members.len(), 4);
    assert_eq!(
        c.delivered_bodies(SiteId(3)),
        Vec::<u64>::new(),
        "covered redelivery must be suppressed at the joiner"
    );
    // The joiner's view event carries the cut's covered frontier, and it covers exactly
    // the unstable burst it suppressed.
    let ev = c.latest_view(SiteId(3)).expect("view event");
    assert!(!ev.covered.is_empty());
    for (_site, seq) in ev.covered.entries() {
        assert!(*seq >= 1);
    }
    // Old members delivered each body exactly once (the flush changed nothing for them).
    for s in [0u16, 1, 2] {
        let mut bodies = c.delivered_bodies(SiteId(s));
        bodies.sort_unstable();
        assert_eq!(bodies, vec![0, 1, 2, 3, 4, 5, 6, 7, 100], "site {s}");
    }
}

#[test]
fn delivery_recipients_route_cut_deliveries_to_the_old_view() {
    let mut c = Cluster::build_three_member_group();
    let old_seq = c.endpoints[&SiteId(1)].view().unwrap().seq();
    // A second process joins at site 1, which already hosts member 1.
    let newcomer = ProcessId::new(SiteId(1), 9);
    c.exec(SiteId(0), |ep, now, out| {
        ep.submit_join(now, newcomer, None, out).unwrap();
    });
    c.pump(false);
    let ep1 = &c.endpoints[&SiteId(1)];
    let new_seq = ep1.view().unwrap().seq();
    assert_eq!(new_seq, old_seq + 1);
    // Deliveries tagged with the old view go to its members only — never the newcomer,
    // whose snapshot covers them; current-view deliveries include the newcomer.
    assert_eq!(ep1.delivery_recipients(old_seq), &[member(1)]);
    assert_eq!(ep1.delivery_recipients(new_seq), &[member(1), newcomer]);
}

#[test]
fn operations_without_a_view_fail_cleanly() {
    let stats = SharedStats::new();
    let mut ep = GroupEndpoint::new(GROUP, SiteId(0), ProtoConfig::fast(), stats);
    let mut out = Vec::new();
    assert!(ep
        .cbcast(SimTime::ZERO, member(0), Message::new(), &mut out)
        .is_err());
    assert!(ep
        .abcast(SimTime::ZERO, member(0), Message::new(), &mut out)
        .is_err());
    assert!(ep
        .gbcast(SimTime::ZERO, member(0), Message::new(), &mut out)
        .is_err());
    assert!(ep.view().is_none());
    assert!(ep.local_members().is_empty());
}

#[test]
fn multicast_counters_reflect_primitive_usage() {
    let mut c = Cluster::build_three_member_group();
    c.stats.reset();
    c.exec(SiteId(0), |ep, now, out| {
        ep.cbcast(now, member(0), Message::with_body(1u64), out)
            .unwrap();
    });
    c.exec(SiteId(1), |ep, now, out| {
        ep.abcast(now, member(1), Message::with_body(2u64), out)
            .unwrap();
    });
    c.pump(false);
    let snap = c.stats.snapshot();
    assert_eq!(snap.multicasts_of(ProtocolKind::Cbcast), 1);
    assert_eq!(snap.multicasts_of(ProtocolKind::Abcast), 1);
    assert_eq!(snap.multicasts_of(ProtocolKind::Gbcast), 0);
}

// -- Primary-partition fence ---------------------------------------------------------------

#[test]
fn minority_component_wedges_instead_of_cutting_a_view() {
    let mut c = Cluster::build_three_member_group();
    c.stats.reset();
    // A cut isolates site 2: its failure detector suspects both other members.
    c.exec(SiteId(2), |ep, now, out| {
        ep.report_failures(now, &[member(0), member(1)], out);
    });
    assert!(c.endpoints[&SiteId(2)].is_wedged());
    assert_eq!(c.stalls[&SiteId(2)], vec![(3, 1, 3)]);
    // The wedge happens before any flush traffic leaves the site: no FlushReq was sent,
    // so a one-member "view" can never be cut.
    assert!(c.channels.values().all(|q| q.is_empty()));
    assert_eq!(c.endpoints[&SiteId(2)].view().unwrap().seq(), 3);
    let snap = c.stats.snapshot();
    assert_eq!(snap.minority_wedges, 1);
    assert_eq!(snap.partition_stalls, 1);
}

#[test]
fn retracted_suspicion_unwedges_without_a_view_change() {
    let mut c = Cluster::build_three_member_group();
    c.stats.reset();
    c.exec(SiteId(2), |ep, now, out| {
        ep.report_failures(now, &[member(0), member(1)], out);
    });
    assert!(c.endpoints[&SiteId(2)].is_wedged());
    // The "dead" members speak again (the cut was a delay spike, not a crash): their
    // suspicions are withdrawn on arrival and the wedge lifts, with no view change.
    c.exec(SiteId(0), |ep, now, out| {
        ep.cbcast(now, member(0), Message::with_body(7u64), out)
            .unwrap();
    });
    c.exec(SiteId(1), |ep, now, out| {
        ep.cbcast(now, member(1), Message::with_body(8u64), out)
            .unwrap();
    });
    c.pump(false);
    let ep2 = &c.endpoints[&SiteId(2)];
    assert!(!ep2.is_wedged());
    assert_eq!(ep2.suspected_len(), 0);
    assert_eq!(ep2.view().unwrap().seq(), 3, "no view change was needed");
    assert_eq!(c.delivered_bodies(SiteId(2)), vec![7, 8]);
    assert_eq!(c.stats.snapshot().suspicions_cleared, 2);
}

#[test]
fn majority_cuts_the_minority_which_rejoins_after_heal() {
    let mut c = Cluster::build_three_member_group();
    c.stats.reset();
    // Cut: {0, 1} | {2}.  Each side suspects the other.
    c.exec(SiteId(2), |ep, now, out| {
        ep.report_failures(now, &[member(0), member(1)], out);
    });
    c.exec(SiteId(0), |ep, now, out| {
        ep.report_failures(now, &[member(2)], out);
    });
    c.exec(SiteId(1), |ep, now, out| {
        ep.report_failures(now, &[member(2)], out);
    });
    // While the cut holds, packets addressed to the isolated site are swallowed: pump
    // with its endpoint lifted out of the cluster (the harness drops traffic to missing
    // sites, which is exactly the sender-side drop a real partition performs).
    let isolated = c.endpoints.remove(&SiteId(2)).expect("endpoint exists");
    c.pump(false);
    c.endpoints.insert(SiteId(2), isolated);
    // The majority side cut the minority out ...
    for s in [0u16, 1] {
        let v = c.endpoints[&SiteId(s)].view().unwrap();
        assert_eq!(v.seq(), 4, "site {s}");
        assert_eq!(v.members, vec![member(0), member(1)]);
    }
    // ... while the minority wedged at the old view, having missed the commit.
    assert!(c.endpoints[&SiteId(2)].is_wedged());
    assert_eq!(c.endpoints[&SiteId(2)].view().unwrap().seq(), 3);
    assert!(c.stats.snapshot().minority_wedges >= 1);
    // Heal.  The wedged side's next tick gossips into its stale view; a primary-side
    // member answers with the latest commit (the bulletin); the commit excludes the
    // minority's local member, which requests a rejoin instead of installing.
    c.tick_all();
    c.pump(false);
    assert_eq!(c.rejoins[&SiteId(2)], vec![(SiteId(0), 4)]);
    assert_eq!(
        c.endpoints[&SiteId(2)].view().unwrap().seq(),
        3,
        "the divergent tail is never installed over"
    );
}

#[test]
fn an_even_split_has_exactly_one_winner_the_rank_zero_side() {
    let mut c = Cluster::new(4);
    c.exec(SiteId(0), |ep, _now, out| ep.create(member(0), out));
    for m in [1u16, 2, 3] {
        c.exec(SiteId(0), |ep, now, out| {
            ep.submit_join(now, member(m), None, out).unwrap();
        });
        c.pump(false);
    }
    for s in [0u16, 1, 2, 3] {
        assert_eq!(c.endpoints[&SiteId(s)].view().unwrap().seq(), 4, "site {s}");
    }
    c.stats.reset();
    // Cut: {0, 1} | {2, 3} — exactly half of the view on each side.
    c.exec(SiteId(2), |ep, now, out| {
        ep.report_failures(now, &[member(0), member(1)], out);
    });
    c.exec(SiteId(3), |ep, now, out| {
        ep.report_failures(now, &[member(0), member(1)], out);
    });
    c.exec(SiteId(0), |ep, now, out| {
        ep.report_failures(now, &[member(2), member(3)], out);
    });
    c.exec(SiteId(1), |ep, now, out| {
        ep.report_failures(now, &[member(2), member(3)], out);
    });
    let iso2 = c.endpoints.remove(&SiteId(2)).expect("endpoint exists");
    let iso3 = c.endpoints.remove(&SiteId(3)).expect("endpoint exists");
    c.pump(false);
    c.endpoints.insert(SiteId(2), iso2);
    c.endpoints.insert(SiteId(3), iso3);
    // The half holding the rank-0 member cuts the view ...
    for s in [0u16, 1] {
        let v = c.endpoints[&SiteId(s)].view().unwrap();
        assert_eq!(v.seq(), 5, "site {s}");
        assert_eq!(v.members, vec![member(0), member(1)]);
    }
    // ... and the other half wedges: an even split has one winner, never two.
    for s in [2u16, 3] {
        assert!(c.endpoints[&SiteId(s)].is_wedged(), "site {s}");
        assert_eq!(c.endpoints[&SiteId(s)].view().unwrap().seq(), 4, "site {s}");
        assert_eq!(c.stalls[&SiteId(s)], vec![(4, 2, 4)], "site {s}");
    }
    assert_eq!(c.stats.snapshot().minority_wedges, 2);
}

#[test]
fn without_the_fence_a_cut_splits_the_brain() {
    let mut c = Cluster::build_three_member_group_with(ProtoConfig {
        primary_partition: false,
        ..ProtoConfig::fast()
    });
    // Same cut as `majority_cuts_the_minority_which_rejoins_after_heal`, but with the
    // fence disabled the isolated site happily elects itself: two concurrent "primary"
    // views at the same sequence number with disjoint memberships.  This is the failure
    // mode the fence exists to prevent.
    c.exec(SiteId(2), |ep, now, out| {
        ep.report_failures(now, &[member(0), member(1)], out);
    });
    c.drop_channel(SiteId(0), SiteId(2));
    c.drop_channel(SiteId(1), SiteId(2));
    c.exec(SiteId(0), |ep, now, out| {
        ep.report_failures(now, &[member(2)], out);
    });
    c.exec(SiteId(1), |ep, now, out| {
        ep.report_failures(now, &[member(2)], out);
    });
    let isolated = c.endpoints.remove(&SiteId(2)).expect("endpoint exists");
    c.pump(false);
    c.endpoints.insert(SiteId(2), isolated);
    let majority = c.endpoints[&SiteId(0)].view().expect("view installed");
    let minority = c.endpoints[&SiteId(2)].view().expect("view installed");
    assert_eq!(majority.seq(), 4);
    assert_eq!(minority.seq(), 4, "same sequence number on both sides");
    assert_eq!(majority.members, vec![member(0), member(1)]);
    assert_eq!(minority.members, vec![member(2)], "disjoint memberships");
}
