//! Actions produced by a [`crate::endpoint::GroupEndpoint`].
//!
//! The endpoint is sans-io: it never sends packets or sets timers itself.  Every call that
//! advances the protocol appends [`EndpointOutput`] values to a caller-provided vector, and
//! the hosting protocol stack (in `vsync-core`) turns them into packets addressed to the peer
//! site's protocols process, application deliveries, or view-change notifications.

use vsync_msg::{Frame, Message};
use vsync_net::{MsgId, PacketKind, ProtocolKind};
use vsync_util::{GroupId, SiteId};

use crate::frontier::Frontier;
use crate::view::View;

/// An application-level message ready to be handed to the local members of a group.
#[derive(Clone, Debug)]
pub struct Delivery {
    /// The group the message was addressed to.
    pub group: GroupId,
    /// Unique id of the multicast.
    pub msg_id: MsgId,
    /// Sequence number of the view in which the message is delivered.
    pub view_seq: u64,
    /// The primitive that carried the message.
    pub protocol: ProtocolKind,
    /// The payload, including the unforgeable `@sender` and routing fields set by the
    /// sending stack.
    pub payload: Message,
}

/// A view change (or user GBCAST) delivered at the virtual-synchrony cut point.
#[derive(Clone, Debug)]
pub struct ViewEvent {
    /// The newly installed view.
    pub view: View,
    /// User GBCAST payloads delivered together with the view event, in a fixed order that is
    /// identical at every member.
    pub gbcasts: Vec<Message>,
    /// Per-origin sequence frontier of the pre-cut history (from the flush commit; empty
    /// for a founding view).  A state snapshot encoded while handling this event covers
    /// exactly the messages behind this frontier, so state-transfer tools tag their blocks
    /// with it and joining endpoints use it to suppress redelivery of covered messages.
    pub covered: Frontier,
}

/// One action requested by a group endpoint.
#[derive(Clone, Debug)]
pub enum EndpointOutput {
    /// Send a protocol message to the group endpoint at another site.
    Send {
        /// Destination site (its protocols process).
        dst_site: SiteId,
        /// Packet classification for statistics and the Figure 3 breakdown.
        kind: PacketKind,
        /// The protocol message in wire form.  A multicast fan-out emits one `Send` per
        /// peer site, all aliasing the same frame: the hosting stack turns each into a
        /// packet without copying the field tree.
        msg: Frame,
    },
    /// Deliver an application message to the local members of the group.
    Deliver(Delivery),
    /// Deliver a view change / GBCAST event to the local members of the group.
    ViewChange(ViewEvent),
    /// The endpoint refused to start or commit a view change because its component does
    /// not hold a majority of the current view (the primary-partition fence): it is now
    /// wedged, and stays wedged until the partition heals or suspicions are retracted.
    PartitionStalled {
        /// The group whose view change stalled.
        group: GroupId,
        /// The view the component failed to cut from.
        view_seq: u64,
        /// Unsuspected members of that view visible from this component.
        alive: usize,
        /// Total members eligible to vote (the view minus voluntary leavers).
        voters: usize,
    },
    /// A wedged (or excluded) member observed evidence of a newer primary view: its own
    /// history is a divergent tail.  The hosting stack must discard this endpoint and
    /// rejoin its local members through `contact`, receiving fresh state at the join cut.
    RejoinRequired {
        /// The group to rejoin.
        group: GroupId,
        /// The site whose traffic evidenced the newer primary view.
        contact: SiteId,
        /// The newer view sequence observed there.
        observed_seq: u64,
    },
}

impl EndpointOutput {
    /// Convenience predicate used by tests.
    pub fn is_delivery(&self) -> bool {
        matches!(self, EndpointOutput::Deliver(_))
    }

    /// Convenience predicate used by tests.
    pub fn is_view_change(&self) -> bool {
        matches!(self, EndpointOutput::ViewChange(_))
    }

    /// Convenience predicate used by tests.
    pub fn is_send(&self) -> bool {
        matches!(self, EndpointOutput::Send { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vsync_util::GroupId;

    #[test]
    fn predicates() {
        let d = EndpointOutput::Deliver(Delivery {
            group: GroupId(1),
            msg_id: MsgId::new(SiteId(0), 1),
            view_seq: 1,
            protocol: ProtocolKind::Cbcast,
            payload: Message::new(),
        });
        assert!(d.is_delivery());
        assert!(!d.is_send());
        assert!(!d.is_view_change());
    }
}
