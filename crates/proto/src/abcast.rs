//! ABCAST: totally ordered atomic multicast via two-phase priority agreement.
//!
//! "A commonly occurring situation involves a number of concurrently executing processes that
//! communicate with a shared distributed resource, whose internal state is sensitive to the
//! order in which requests arrive ...  This ordering requirement corresponds to the primitive
//! we call ABCAST, which delivers messages atomically and in the same order everywhere"
//! (paper Section 3.1).
//!
//! The protocol is the ISIS two-phase priority scheme:
//!
//! 1. the initiator multicasts the message; every destination places it on a holdback queue
//!    tagged *undeliverable* with a locally proposed priority, and returns the proposal;
//! 2. the initiator picks the maximum proposal (ties broken by proposer site) and multicasts
//!    the final priority; destinations mark the message *deliverable* and deliver queued
//!    messages in priority order as soon as no undeliverable message could precede them.
//!
//! If the initiator fails before completing phase two, the view-change flush finalises the
//! ordering on its behalf using the maximum of the proposals the survivors reported.

use std::collections::{BTreeMap, BTreeSet};

use vsync_msg::Message;
use vsync_net::MsgId;
use vsync_util::{FastHashMap, ProcessId, SiteId};

/// A totally ordered message ready for delivery to the local members.
#[derive(Clone, Debug, PartialEq)]
pub struct ReadyAb {
    /// Unique id of the multicast.
    pub id: MsgId,
    /// Application-level sender.
    pub sender: ProcessId,
    /// Final priority assigned to the message.
    pub priority: u64,
    /// Application payload.
    pub payload: Message,
}

/// A message in the ABCAST holdback queue.
#[derive(Clone, Debug)]
struct PendingAb {
    sender: ProcessId,
    payload: Message,
    /// Priority proposed locally (phase one).
    proposed: u64,
    /// Final priority plus tie-break site, once phase two completes.
    decided: Option<(u64, SiteId)>,
}

/// Proposals being collected by the initiator of an ABCAST.
#[derive(Clone, Debug)]
struct Collecting {
    awaiting: Vec<SiteId>,
    max_seen: u64,
    max_site: SiteId,
}

/// Per-view ABCAST state of one group endpoint.
///
/// Delivery order is maintained *incrementally*: instead of rescanning the whole holdback
/// queue for the minimum on every delivery (O(n) per message, O(n²) per drain), the state
/// keeps two ordered indexes that `on_data`/`decide` update in O(log n) —
///
/// * `ready` — decided messages keyed by `(final_priority, id)`, i.e. exactly the delivery
///   order;
/// * `undecided` — the undecided frontier keyed by `(proposed_priority, id)`.  A decided
///   message may be delivered iff its key precedes every undecided key, because a final
///   priority can only be `>=` the local proposal it replaces.
///
/// `drain` then pops from `ready` while its head precedes the head of `undecided`.
#[derive(Clone, Debug, Default)]
pub struct AbcastState {
    /// Logical priority clock; proposals are strictly increasing locally.
    priority_clock: u64,
    /// Messages received (phase one) and not yet delivered.  Order never comes from this
    /// map (the two indexes below own ordering), so O(1) lookup wins over a BTreeMap.
    pending: FastHashMap<MsgId, PendingAb>,
    /// Delivery index: decided-but-undelivered messages by `(final_priority, id)`.
    ready: BTreeSet<(u64, MsgId)>,
    /// Undecided frontier: messages awaiting phase two, by `(proposed_priority, id)`.
    undecided: BTreeSet<(u64, MsgId)>,
    /// Messages this endpoint initiated and is still collecting proposals for.
    collecting: BTreeMap<MsgId, Collecting>,
}

impl AbcastState {
    /// Creates empty state.  The holdback map is pre-sized so a burst of concurrent
    /// multicasts does not pay rehashing costs on the delivery path.
    pub fn new() -> Self {
        AbcastState {
            pending: FastHashMap::with_capacity_and_hasher(128, Default::default()),
            ..AbcastState::default()
        }
    }

    /// Resets the state for a new view.
    pub fn reset(&mut self) {
        self.priority_clock = 0;
        self.pending.clear();
        self.ready.clear();
        self.undecided.clear();
        self.collecting.clear();
    }

    /// Number of messages still waiting for ordering or delivery.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    fn next_priority(&mut self) -> u64 {
        self.priority_clock += 1;
        self.priority_clock
    }

    /// Phase one at the initiator: registers the outgoing message, records the initiator's
    /// own proposal, and lists the peer sites whose proposals are awaited.
    ///
    /// Returns `true` if the message is already fully ordered (single-site group).
    pub fn initiate(
        &mut self,
        id: MsgId,
        sender: ProcessId,
        payload: Message,
        my_site: SiteId,
        peer_sites: Vec<SiteId>,
    ) -> bool {
        let my_proposal = self.next_priority();
        self.pending.insert(
            id,
            PendingAb {
                sender,
                payload,
                proposed: my_proposal,
                decided: None,
            },
        );
        self.undecided.insert((my_proposal, id));
        if peer_sites.is_empty() {
            // Nobody else to ask: our proposal is final.
            self.decide(id, my_proposal, my_site);
            true
        } else {
            self.collecting.insert(
                id,
                Collecting {
                    awaiting: peer_sites,
                    max_seen: my_proposal,
                    max_site: my_site,
                },
            );
            false
        }
    }

    /// Phase one at a destination: stores the message and returns the priority to propose.
    /// Duplicate deliveries of the same id return the previously proposed priority.
    pub fn on_data(&mut self, id: MsgId, sender: ProcessId, payload: Message) -> u64 {
        match self.pending.entry(id) {
            std::collections::hash_map::Entry::Occupied(e) => e.get().proposed,
            std::collections::hash_map::Entry::Vacant(e) => {
                self.priority_clock += 1;
                let proposed = self.priority_clock;
                e.insert(PendingAb {
                    sender,
                    payload,
                    proposed,
                    decided: None,
                });
                self.undecided.insert((proposed, id));
                proposed
            }
        }
    }

    /// Phase two input at the initiator: records a proposal from `from_site`.
    ///
    /// Returns `Some((final_priority, tiebreak_site))` once every awaited site has answered;
    /// the caller must then multicast the decision (and apply it locally via
    /// [`AbcastState::decide`]).
    pub fn on_proposal(
        &mut self,
        id: MsgId,
        from_site: SiteId,
        proposed: u64,
    ) -> Option<(u64, SiteId)> {
        let c = self.collecting.get_mut(&id)?;
        c.awaiting.retain(|s| *s != from_site);
        if proposed > c.max_seen || (proposed == c.max_seen && from_site > c.max_site) {
            c.max_seen = proposed;
            c.max_site = from_site;
        }
        if c.awaiting.is_empty() {
            let decision = (c.max_seen, c.max_site);
            self.collecting.remove(&id);
            Some(decision)
        } else {
            None
        }
    }

    /// A peer site is no longer awaited (it failed); returns a decision if that completes the
    /// collection for any message.  Used when a view change races with an ongoing ABCAST.
    pub fn forget_site(&mut self, site: SiteId) -> Vec<(MsgId, u64, SiteId)> {
        let mut decisions = Vec::new();
        self.collecting.retain(|id, c| {
            c.awaiting.retain(|s| *s != site);
            if c.awaiting.is_empty() {
                decisions.push((*id, c.max_seen, c.max_site));
                false
            } else {
                true
            }
        });
        decisions
    }

    /// Phase two at a destination (or locally at the initiator): fixes the final priority.
    pub fn decide(&mut self, id: MsgId, final_priority: u64, tiebreak_site: SiteId) {
        if let Some(p) = self.pending.get_mut(&id) {
            match p.decided {
                Some((old, _)) => {
                    // A repeated decision (e.g. coordinator re-finalising during a flush)
                    // re-keys the delivery index.
                    self.ready.remove(&(old, id));
                }
                None => {
                    self.undecided.remove(&(p.proposed, id));
                }
            }
            p.decided = Some((final_priority, tiebreak_site));
            self.ready.insert((final_priority, id));
        }
        // The priority clock must never run behind a decided priority, otherwise a later
        // proposal could be ordered before an already-delivered message.
        if final_priority > self.priority_clock {
            self.priority_clock = final_priority;
        }
    }

    /// Returns true if the message is known but not yet delivered.
    pub fn is_pending(&self, id: &MsgId) -> bool {
        self.pending.contains_key(id)
    }

    /// The proposals this endpoint has outstanding, as `(id, proposed_priority)` pairs.
    /// Reported in flush acks so the coordinator can finalise orphaned ABCASTs.
    pub fn pending_proposals(&self) -> Vec<(MsgId, u64)> {
        // The undecided frontier *is* the answer; no need to filter the whole holdback queue.
        let mut out = Vec::with_capacity(self.undecided.len());
        out.extend(self.undecided.iter().map(|&(prop, id)| (id, prop)));
        out
    }

    /// The sender and payload of a message that is held but still awaiting phase two.
    ///
    /// Used by the flush path: a message can be *stable* (every site holds a copy, so the
    /// stability tracker no longer retains its wire form) yet still *undecided* (phase two
    /// never arrived because the initiator crashed).  The flush ack must then re-encode the
    /// message from the holdback queue, otherwise the coordinator cannot finalise it and
    /// the ABCAST is silently dropped at the view change.
    pub fn undecided_payload(&self, id: &MsgId) -> Option<(ProcessId, Message)> {
        self.pending
            .get(id)
            .filter(|p| p.decided.is_none())
            .map(|p| (p.sender, p.payload.clone()))
    }

    /// Delivers every message whose final priority is known and cannot be preceded by any
    /// still-undecided message.  Delivery order is `(priority, message id)`, identical at
    /// every member.
    pub fn drain(&mut self) -> Vec<ReadyAb> {
        let mut out = Vec::new();
        // Deliver the head of the `ready` index while no undecided message could precede it
        // (an undecided message's final priority can only be >= its proposal, so comparing
        // against the undecided head's proposal key is safe).
        while let Some(&(prio, id)) = self.ready.first() {
            if let Some(&frontier) = self.undecided.first() {
                if frontier < (prio, id) {
                    break;
                }
            }
            self.ready.pop_first();
            let p = self.pending.remove(&id).expect("pending entry");
            out.push(ReadyAb {
                id,
                sender: p.sender,
                priority: prio,
                payload: p.payload,
            });
        }
        out
    }

    /// Force-delivers everything still pending (used at the flush cut after the coordinator
    /// has assigned final priorities to every orphaned message).
    pub fn force_drain(&mut self) -> Vec<ReadyAb> {
        // Both indexes are already sorted by the best-known priority key, so the combined
        // order is a two-way merge — no re-collecting and re-sorting the holdback queue.
        let mut out = Vec::with_capacity(self.pending.len());
        let mut decided = std::mem::take(&mut self.ready).into_iter().peekable();
        let mut undecided = std::mem::take(&mut self.undecided).into_iter().peekable();
        loop {
            let take_decided = match (decided.peek(), undecided.peek()) {
                (Some(d), Some(u)) => d < u,
                (Some(_), None) => true,
                (None, Some(_)) => false,
                (None, None) => break,
            };
            let (prio, id) = if take_decided {
                decided.next().expect("peeked")
            } else {
                undecided.next().expect("peeked")
            };
            let p = self.pending.remove(&id).expect("pending entry");
            out.push(ReadyAb {
                id,
                sender: p.sender,
                priority: prio,
                payload: p.payload,
            });
        }
        debug_assert!(self.pending.is_empty());
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pid(site: u16) -> ProcessId {
        ProcessId::new(SiteId(site), 1)
    }

    fn id(site: u16, seq: u64) -> MsgId {
        MsgId::new(SiteId(site), seq)
    }

    #[test]
    fn single_site_group_orders_immediately() {
        let mut ab = AbcastState::new();
        let done = ab.initiate(
            id(0, 1),
            pid(0),
            Message::with_body(1u64),
            SiteId(0),
            vec![],
        );
        assert!(done);
        let delivered = ab.drain();
        assert_eq!(delivered.len(), 1);
        assert_eq!(delivered[0].id, id(0, 1));
    }

    #[test]
    fn two_phase_flow_delivers_after_all_proposals() {
        let mut ab = AbcastState::new();
        let done = ab.initiate(
            id(0, 1),
            pid(0),
            Message::with_body(1u64),
            SiteId(0),
            vec![SiteId(1), SiteId(2)],
        );
        assert!(!done);
        assert!(ab.drain().is_empty(), "not deliverable before the decision");
        assert!(ab.on_proposal(id(0, 1), SiteId(1), 5).is_none());
        let decision = ab
            .on_proposal(id(0, 1), SiteId(2), 3)
            .expect("all proposals in");
        assert_eq!(decision.0, 5, "final priority is the maximum proposal");
        ab.decide(id(0, 1), decision.0, decision.1);
        let delivered = ab.drain();
        assert_eq!(delivered.len(), 1);
        assert_eq!(delivered[0].priority, 5);
    }

    #[test]
    fn destinations_deliver_in_final_priority_order() {
        // Two concurrent ABCASTs seen by one destination in the "wrong" order.
        let mut ab = AbcastState::new();
        let p1 = ab.on_data(id(1, 1), pid(1), Message::with_body("first"));
        let p2 = ab.on_data(id(2, 1), pid(2), Message::with_body("second"));
        assert!(p2 > p1);
        // The second message's final priority is lower than the first's: it must deliver first.
        ab.decide(id(2, 1), p2, SiteId(2));
        // Not deliverable yet: message 1 is still undecided with a lower proposal.
        assert!(ab.drain().is_empty());
        ab.decide(id(1, 1), p2 + 3, SiteId(1));
        let delivered = ab.drain();
        assert_eq!(delivered.len(), 2);
        assert_eq!(delivered[0].id, id(2, 1));
        assert_eq!(delivered[1].id, id(1, 1));
    }

    #[test]
    fn duplicate_data_returns_same_proposal() {
        let mut ab = AbcastState::new();
        let p1 = ab.on_data(id(1, 1), pid(1), Message::with_body(1u64));
        let p2 = ab.on_data(id(1, 1), pid(1), Message::with_body(1u64));
        assert_eq!(p1, p2);
        assert_eq!(ab.pending_len(), 1);
    }

    #[test]
    fn priority_clock_never_runs_behind_decisions() {
        let mut ab = AbcastState::new();
        ab.on_data(id(1, 1), pid(1), Message::with_body(1u64));
        ab.decide(id(1, 1), 100, SiteId(1));
        let _ = ab.drain();
        // A new proposal must exceed the decided priority, otherwise total order could break.
        let p = ab.on_data(id(2, 1), pid(2), Message::with_body(2u64));
        assert!(p > 100);
    }

    #[test]
    fn forget_site_completes_collection() {
        let mut ab = AbcastState::new();
        ab.initiate(
            id(0, 1),
            pid(0),
            Message::with_body(1u64),
            SiteId(0),
            vec![SiteId(1), SiteId(2)],
        );
        ab.on_proposal(id(0, 1), SiteId(1), 9);
        let decisions = ab.forget_site(SiteId(2));
        assert_eq!(decisions.len(), 1);
        assert_eq!(decisions[0].1, 9);
    }

    #[test]
    fn pending_proposals_report_only_undecided_messages() {
        let mut ab = AbcastState::new();
        ab.on_data(id(1, 1), pid(1), Message::with_body(1u64));
        ab.on_data(id(2, 1), pid(2), Message::with_body(2u64));
        ab.decide(id(1, 1), 50, SiteId(1));
        let pending = ab.pending_proposals();
        assert_eq!(pending.len(), 1);
        assert_eq!(pending[0].0, id(2, 1));
    }

    #[test]
    fn force_drain_orders_by_best_known_priority() {
        let mut ab = AbcastState::new();
        ab.on_data(id(1, 1), pid(1), Message::with_body(1u64));
        ab.on_data(id(2, 1), pid(2), Message::with_body(2u64));
        ab.decide(id(2, 1), 1_000, SiteId(2));
        let drained = ab.force_drain();
        assert_eq!(drained.len(), 2);
        assert_eq!(drained[0].id, id(1, 1), "undecided low proposal first");
        assert_eq!(drained[1].id, id(2, 1));
        assert_eq!(ab.pending_len(), 0);
    }

    #[test]
    fn total_order_is_identical_across_simulated_destinations() {
        // Simulate three destinations receiving two concurrent ABCASTs in different orders,
        // then applying the same decisions: the delivery order must be identical.
        let decisions = [(id(1, 1), 7u64, SiteId(1)), (id(2, 1), 7u64, SiteId(2))];
        let mut orders = Vec::new();
        for arrival in [
            vec![(id(1, 1), pid(1)), (id(2, 1), pid(2))],
            vec![(id(2, 1), pid(2)), (id(1, 1), pid(1))],
        ] {
            let mut ab = AbcastState::new();
            for (mid, sender) in arrival {
                ab.on_data(mid, sender, Message::with_body(mid.seq));
            }
            for (mid, prio, site) in decisions {
                ab.decide(mid, prio, site);
            }
            let order: Vec<MsgId> = ab.drain().into_iter().map(|r| r.id).collect();
            orders.push(order);
        }
        assert_eq!(orders[0], orders[1]);
        assert_eq!(orders[0].len(), 2);
    }
}
