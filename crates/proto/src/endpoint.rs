//! The per-(site, group) protocol endpoint.
//!
//! In the ISIS architecture (paper Figure 1) every site runs a *protocols process* that
//! "implements the multicast primitives, handles process group addressing and does all
//! inter-site communication", keeping one block of ordering state per process group with
//! members at that site.  [`GroupEndpoint`] is that block of state: it composes the CBCAST
//! and ABCAST machines, the stability tracker, and the flush protocol that implements GBCAST
//! and virtually synchronous view changes.
//!
//! The endpoint is sans-io: every public method appends [`EndpointOutput`] actions to a
//! caller-supplied vector.  The hosting protocol stack (in `vsync-core`) owns one endpoint
//! per group and turns the outputs into packets and application deliveries.

use std::collections::BTreeSet;

use vsync_msg::{Frame, Message};
use vsync_net::{MsgId, PacketKind, ProtocolKind, SharedStats};
use vsync_util::{Duration, GroupId, ProcessId, Rank, Result, SimTime, SiteId, VsError};

use crate::abcast::AbcastState;
use crate::cbcast::{CbcastState, ReadyCb};
use crate::config::ProtoConfig;
use crate::flush::{stored_msg_id, FlushCoordinator, FlushParticipant, FlushRole};
use crate::frontier::Frontier;
use crate::messages::{ProtoMsg, StoredMsg};
use crate::output::{Delivery, EndpointOutput, ViewEvent};
use crate::stability::StabilityTracker;
use crate::view::View;

/// Gossip rounds an endpoint keeps probing for after it un-wedges without a view change
/// (see [`GroupEndpoint::maybe_unwedge`]): one immediate probe plus this many periodic
/// ones, so a lost probe cannot strand a healed minority in a stale view.
const STALE_VIEW_PROBES: u8 = 3;

/// A multicast buffered while a flush is in progress; it is re-issued in the next view.
#[derive(Clone, Debug)]
enum BufferedSend {
    Cb { sender: ProcessId, payload: Message },
    Ab { sender: ProcessId, payload: Message },
}

/// Protocol endpoint for one group at one site.
pub struct GroupEndpoint {
    group: GroupId,
    site: SiteId,
    cfg: ProtoConfig,
    stats: SharedStats,
    view: Option<View>,
    /// Member sites of the current view excluding this one, refreshed on view install.
    /// Cached so the per-multicast fan-out iterates a ready list instead of recomputing
    /// (and re-allocating) the site set from the member list on every send.
    peer_sites: Vec<SiteId>,
    /// Members of the current view hosted at this site (same caching rationale: read on
    /// every local delivery).
    local_members: Vec<ProcessId>,
    /// Sequence number of the previously installed view (0 if none).
    prev_view_seq: u64,
    /// Local members of the *previous* view.  Deliveries emitted at a flush cut are tagged
    /// with the view they were sent in; by the time the hosting stack routes them the new
    /// view is already installed, so it resolves recipients through
    /// [`GroupEndpoint::delivery_recipients`] — pre-cut messages go to the old view's local
    /// members (virtual synchrony: a message is delivered in the view it was sent in), and
    /// in particular never to a process that joined at the cut, whose snapshot already
    /// covers them.
    prev_local_members: Vec<ProcessId>,
    /// Scratch for CBCAST deliveries, reused across received packets.
    ready_scratch: Vec<ReadyCb>,
    next_msg_seq: u64,
    flush_attempt: u64,
    cb: CbcastState,
    ab: AbcastState,
    stab: StabilityTracker,
    delivered: BTreeSet<MsgId>,
    flush: Option<FlushRole>,
    /// Membership changes queued at (or forwarded to) the acting coordinator.
    pending_joins: Vec<ProcessId>,
    pending_leaves: Vec<ProcessId>,
    /// Members this site believes have failed (cleared when a view excluding them installs).
    suspected: BTreeSet<ProcessId>,
    /// The subset of `suspected` reported as *confirmed* crashes (explicit process-crash
    /// reports).  Confirmed suspicions are never retracted by later traffic; everything
    /// else in `suspected` came from timeouts and is withdrawn the moment the suspect
    /// speaks again (see [`GroupEndpoint::unsuspect_site`]).
    confirmed: BTreeSet<ProcessId>,
    /// True while the primary-partition fence blocks this endpoint from cutting a view:
    /// its component does not hold a majority of the current view.  A wedged endpoint
    /// never starts or completes a flush; it waits for the partition to heal (suspicions
    /// retracted, or evidence of a newer primary view triggering a rejoin).
    wedged: bool,
    /// Guards against emitting [`EndpointOutput::RejoinRequired`] more than once.
    rejoin_emitted: bool,
    /// Local members whose voluntary leave was submitted through this endpoint.  A commit
    /// excluding them is an *expected* departure, not evidence that the primary partition
    /// cut this site out.
    leaving_local: BTreeSet<ProcessId>,
    /// User GBCAST payloads queued for the next cut (only at the coordinator's site).
    pending_gbcasts: Vec<Message>,
    /// Application multicasts issued while a flush was in progress.
    buffered_sends: Vec<BufferedSend>,
    /// Protocol messages that belong to a view we have not installed yet (frames aliased,
    /// not copied, from the packets they arrived in).
    future_msgs: Vec<(SiteId, Frame)>,
    /// Wire form of the last installed flush commit, kept as a *bulletin*: when stale
    /// traffic arrives from a site that hosts no member of the current view (an excluded
    /// member whose commit copy was swallowed by a partition), re-sending this frame is
    /// what lets the healed minority discover the primary view and rejoin.
    last_commit: Option<Frame>,
    last_gossip: SimTime,
    /// Remaining gossip rounds forced after an un-wedge (see [`STALE_VIEW_PROBES`]).
    stale_probes: u8,
}

impl GroupEndpoint {
    /// Creates an endpoint with no view installed (a site about to create or join the group).
    pub fn new(group: GroupId, site: SiteId, cfg: ProtoConfig, stats: SharedStats) -> Self {
        GroupEndpoint {
            group,
            site,
            cfg,
            stats,
            view: None,
            peer_sites: Vec::new(),
            local_members: Vec::new(),
            prev_view_seq: 0,
            prev_local_members: Vec::new(),
            ready_scratch: Vec::new(),
            next_msg_seq: 0,
            flush_attempt: 0,
            cb: CbcastState::new(0),
            ab: AbcastState::new(),
            stab: StabilityTracker::new(site, vec![site]),
            delivered: BTreeSet::new(),
            flush: None,
            pending_joins: Vec::new(),
            pending_leaves: Vec::new(),
            suspected: BTreeSet::new(),
            confirmed: BTreeSet::new(),
            wedged: false,
            rejoin_emitted: false,
            leaving_local: BTreeSet::new(),
            pending_gbcasts: Vec::new(),
            buffered_sends: Vec::new(),
            future_msgs: Vec::new(),
            last_commit: None,
            last_gossip: SimTime::ZERO,
            stale_probes: 0,
        }
    }

    /// The group this endpoint serves.
    pub fn group(&self) -> GroupId {
        self.group
    }

    /// The site this endpoint runs on.
    pub fn site(&self) -> SiteId {
        self.site
    }

    /// The currently installed view, if any.
    pub fn view(&self) -> Option<&View> {
        self.view.as_ref()
    }

    /// Members of the current view hosted at this site.
    pub fn local_members(&self) -> &[ProcessId] {
        &self.local_members
    }

    /// True while a flush (view change / GBCAST) is in progress at this endpoint.
    pub fn is_flushing(&self) -> bool {
        self.flush.is_some()
    }

    /// True while the primary-partition fence has this endpoint wedged in a minority
    /// component (no view change can commit here until the partition heals).
    pub fn is_wedged(&self) -> bool {
        self.wedged
    }

    /// Number of members this endpoint currently suspects.
    pub fn suspected_len(&self) -> usize {
        self.suspected.len()
    }

    /// Creates the group: installs the founding view with `creator` as the only member.
    /// `creator` must live at this site.
    pub fn create(&mut self, creator: ProcessId, out: &mut Vec<EndpointOutput>) {
        self.create_at(creator, View::founding(self.group, creator).seq(), out);
    }

    /// Founds the group with the view sequence starting at `first_seq` instead of the
    /// default.  Used by total-failure reform: the elected site refounds the group at
    /// `authoritative last view + 1`, keeping the view-sequence line monotone across
    /// incarnations so recovery logs (and any later reform election) compare directly.
    pub fn create_at(&mut self, creator: ProcessId, first_seq: u64, out: &mut Vec<EndpointOutput>) {
        debug_assert_eq!(creator.site, self.site);
        let view = View::founding_at(self.group, creator, first_seq);
        self.install_view(view.clone());
        out.push(EndpointOutput::ViewChange(ViewEvent {
            view,
            gbcasts: Vec::new(),
            covered: Frontier::new(),
        }));
    }

    // -- Application-facing multicast operations --------------------------------------------

    /// Issues a CBCAST from a local member (or on behalf of a relayed external caller).
    pub fn cbcast(
        &mut self,
        _now: SimTime,
        sender: ProcessId,
        payload: Message,
        out: &mut Vec<EndpointOutput>,
    ) -> Result<MsgId> {
        if self.view.is_none() {
            return Err(VsError::NotAMember(self.group));
        }
        if self.flush.is_some() {
            // Not counted in the multicast statistics yet: the re-issue after the flush
            // commits goes through this method again and counts exactly once there.
            self.buffered_sends
                .push(BufferedSend::Cb { sender, payload });
            // The id is assigned when the buffered send is re-issued; report a provisional id.
            return Ok(MsgId::new(self.site, u64::MAX));
        }
        self.stats.count_multicast(ProtocolKind::Cbcast);
        // Borrow (never clone) the view: the per-multicast cost of the fast path must not
        // include copying the member list.
        let (rank, view_seq) = {
            let view = self.view.as_ref().expect("checked above");
            (self.rank_for_sender(view, sender)?, view.seq())
        };
        let id = self.alloc_msg_id();
        let vt = self.cb.stamp_send(rank);
        // Encode once; the stability buffer and every peer-site packet alias this frame.
        // The payload moves through the typed message and back out for the local delivery,
        // so the only payload copy made here is the one embedded in the wire frame.
        let proto = ProtoMsg::CbData {
            id,
            sender,
            sender_rank: rank as u64,
            view_seq,
            vt,
            payload,
        };
        let wire = proto.encode_frame(self.group);
        let ProtoMsg::CbData { payload, .. } = proto else {
            unreachable!("constructed as CbData above");
        };
        self.stab.record_local(
            id,
            StoredMsg {
                wire: wire.clone(),
                ab_priority: None,
            },
        );
        self.send_to_peers(PacketKind::Data, wire, out);
        // Deliver locally right away: the caller "can pretend that the message was delivered
        // to its destinations at the moment the CBCAST was issued" (Section 3.4).
        self.delivered.insert(id);
        self.emit_delivery(id, ProtocolKind::Cbcast, payload, out);
        Ok(id)
    }

    /// Issues an ABCAST from a local member (or on behalf of a relayed external caller).
    pub fn abcast(
        &mut self,
        _now: SimTime,
        sender: ProcessId,
        payload: Message,
        out: &mut Vec<EndpointOutput>,
    ) -> Result<MsgId> {
        let Some(view_seq) = self.view.as_ref().map(View::seq) else {
            return Err(VsError::NotAMember(self.group));
        };
        if self.flush.is_some() {
            // As in `cbcast`: counted once, at re-issue time, not here.
            self.buffered_sends
                .push(BufferedSend::Ab { sender, payload });
            return Ok(MsgId::new(self.site, u64::MAX));
        }
        self.stats.count_multicast(ProtocolKind::Abcast);
        let id = self.alloc_msg_id();
        // As in `cbcast`: move the payload through the typed message and back out, so the
        // only copy made is the one embedded in the wire frame.
        let proto = ProtoMsg::AbData {
            id,
            sender,
            view_seq,
            payload,
        };
        let wire = proto.encode_frame(self.group);
        let ProtoMsg::AbData { payload, .. } = proto else {
            unreachable!("constructed as AbData above");
        };
        self.stab.record_local(
            id,
            StoredMsg {
                wire: wire.clone(),
                ab_priority: None,
            },
        );
        let ordered = self
            .ab
            .initiate(id, sender, payload, self.site, self.peer_sites.clone());
        self.send_to_peers(PacketKind::Data, wire, out);
        if ordered {
            self.drain_abcasts(out);
        }
        Ok(id)
    }

    /// Issues a GBCAST: the payload is delivered at the next virtual-synchrony cut, ordered
    /// consistently with respect to every other event.
    pub fn gbcast(
        &mut self,
        now: SimTime,
        sender: ProcessId,
        payload: Message,
        out: &mut Vec<EndpointOutput>,
    ) -> Result<()> {
        let Some(view) = self.view.clone() else {
            return Err(VsError::NotAMember(self.group));
        };
        let Some(coord) = self.acting_coordinator() else {
            return Err(VsError::NoCoordinator(self.group));
        };
        if coord.site == self.site {
            self.pending_gbcasts.push(payload);
            self.start_flush_if_needed(now, out);
        } else {
            let wire = ProtoMsg::GbcastReq { sender, payload }.encode_frame(self.group);
            self.send_to_site(coord.site, PacketKind::Flush, wire, out);
            let _ = view;
        }
        Ok(())
    }

    // -- Membership operations ---------------------------------------------------------------

    /// Submits a join request for `joiner`.  Called on the site the joiner contacted; it is
    /// forwarded to the acting coordinator if that is elsewhere.
    pub fn submit_join(
        &mut self,
        now: SimTime,
        joiner: ProcessId,
        credentials: Option<String>,
        out: &mut Vec<EndpointOutput>,
    ) -> Result<()> {
        let Some(coord) = self.acting_coordinator() else {
            return Err(VsError::NoCoordinator(self.group));
        };
        if coord.site == self.site {
            if !self.pending_joins.contains(&joiner) {
                self.pending_joins.push(joiner);
            }
            self.start_flush_if_needed(now, out);
        } else {
            let wire = ProtoMsg::JoinReq {
                joiner,
                credentials,
            }
            .encode_frame(self.group);
            self.send_to_site(coord.site, PacketKind::Flush, wire, out);
        }
        Ok(())
    }

    /// Submits a voluntary leave for `member`.
    pub fn submit_leave(
        &mut self,
        now: SimTime,
        member: ProcessId,
        out: &mut Vec<EndpointOutput>,
    ) -> Result<()> {
        let Some(coord) = self.acting_coordinator() else {
            return Err(VsError::NoCoordinator(self.group));
        };
        if member.site == self.site {
            // Remember that this local member asked to go: the commit that excludes it is
            // an expected departure, not a primary partition cutting us out.
            self.leaving_local.insert(member);
        }
        if coord.site == self.site {
            if !self.pending_leaves.contains(&member) {
                self.pending_leaves.push(member);
            }
            self.start_flush_if_needed(now, out);
        } else {
            let wire = ProtoMsg::LeaveReq { member }.encode_frame(self.group);
            self.send_to_site(coord.site, PacketKind::Flush, wire, out);
        }
        Ok(())
    }

    /// Reports that `failed` processes are *suspected* to have crashed (timeout evidence:
    /// the site failure detector or the flush watchdog).  Called on every member site by
    /// the failure-detection layer; the site hosting the oldest surviving member initiates
    /// the view change.  A timeout suspicion is retractable: if the suspect speaks before
    /// the flush commits, [`GroupEndpoint::unsuspect_site`] withdraws it.
    pub fn report_failures(
        &mut self,
        now: SimTime,
        failed: &[ProcessId],
        out: &mut Vec<EndpointOutput>,
    ) {
        self.note_failures(now, failed, false, out);
    }

    /// Reports *confirmed* crashes (an explicit process-exit report, not a timeout).
    /// Confirmed suspicions are never retracted by later traffic.
    pub fn confirm_failures(
        &mut self,
        now: SimTime,
        failed: &[ProcessId],
        out: &mut Vec<EndpointOutput>,
    ) {
        self.note_failures(now, failed, true, out);
    }

    fn note_failures(
        &mut self,
        now: SimTime,
        failed: &[ProcessId],
        confirmed: bool,
        out: &mut Vec<EndpointOutput>,
    ) {
        let Some(view) = self.view.clone() else {
            return;
        };
        let mut newly = false;
        for f in failed {
            if view.contains(*f) {
                if self.suspected.insert(*f) {
                    newly = true;
                }
                if confirmed {
                    self.confirmed.insert(*f);
                }
            }
        }
        if !newly {
            return;
        }
        // Primary-partition fence, checked pre-emptively at every member: if the visible
        // component no longer holds a majority of the view, wedge instead of cutting —
        // the other side of the partition (which does) will install the next primary view.
        if !self.has_primary_majority(&view) {
            self.enter_wedge(view.seq(), out);
            return;
        }
        // Fully failed sites will never answer ABCAST proposals or flush requests.
        let failed_sites: Vec<SiteId> = view
            .member_sites()
            .into_iter()
            .filter(|s| {
                view.members_at(*s)
                    .iter()
                    .all(|m| self.suspected.contains(m))
            })
            .collect();
        for fs in &failed_sites {
            for (id, final_prio, tiebreak) in self.ab.forget_site(*fs) {
                self.finish_abcast_order(id, final_prio, tiebreak, out);
            }
        }
        // If the flush we were part of was being run by a now-failed member, forget it so the
        // next coordinator (possibly us) can take over.
        let initiator_failed = match &self.flush {
            Some(FlushRole::Participant(p)) => self.suspected.contains(&p.initiator),
            _ => false,
        };
        if initiator_failed {
            self.flush = None;
            self.flush_attempt += 1;
        }
        if let Some(FlushRole::Coordinator(c)) = &mut self.flush {
            let mut complete = false;
            for fs in &failed_sites {
                if c.forget_site(*fs) {
                    complete = true;
                }
            }
            if complete {
                self.complete_flush(now, out);
                return;
            }
        }
        self.start_flush_if_needed(now, out);
    }

    /// Withdraws every *timeout-based* suspicion of members hosted at `site`: the site
    /// spoke, so it cannot be dead.  Confirmed process crashes stay suspected.  Called by
    /// the hosting stack when its failure detector hears from a suspected site again, and
    /// internally on any protocol message — so a suspicion raised by a delay spike is
    /// retracted before it can force a needless view change.
    pub fn unsuspect_site(&mut self, now: SimTime, site: SiteId, out: &mut Vec<EndpointOutput>) {
        let cleared: Vec<ProcessId> = self
            .suspected
            .iter()
            .copied()
            .filter(|p| p.site == site && !self.confirmed.contains(p))
            .collect();
        if cleared.is_empty() {
            return;
        }
        for p in &cleared {
            self.suspected.remove(p);
        }
        self.stats.with(|s| {
            for _ in &cleared {
                s.count_suspicion_cleared();
            }
        });
        // If we are coordinating a flush that was about to exclude the retracted members,
        // abandon it: the next attempt (if anything is still pending) re-awaits their site
        // and builds the view from the corrected failure set.  If nothing else is pending,
        // no flush restarts and the needless view change never happens.
        if matches!(self.flush, Some(FlushRole::Coordinator(_))) {
            self.flush = None;
            self.flush_attempt += 1;
        }
        self.maybe_unwedge(out);
        self.start_flush_if_needed(now, out);
    }

    // -- Primary-partition fence ---------------------------------------------------------------

    /// Votes for the majority fence: `(alive, voters)` where voters are the current view's
    /// members minus voluntary leavers and minus *confirmed* crashes — a process whose
    /// exit was observed and reported cannot be running in a rival component, so it is no
    /// more partition evidence than a leaver.  Alive are the voters this endpoint does not
    /// suspect (all remaining suspicions are timeout-based, i.e. possibly a partition).
    fn majority_tally(&self, view: &View) -> (usize, usize) {
        let mut voters = 0usize;
        let mut alive = 0usize;
        for m in &view.members {
            if self.pending_leaves.contains(m) || self.confirmed.contains(m) {
                continue;
            }
            voters += 1;
            if !self.suspected.contains(m) {
                alive += 1;
            }
        }
        (alive, voters)
    }

    /// The primary-partition rule: a component may cut a new view from `view` only if it
    /// holds a strict majority of the voters, or exactly half of them *including the
    /// oldest voter* (the rank-0 tie-break, so an even split has exactly one winner).
    fn has_primary_majority(&self, view: &View) -> bool {
        if !self.cfg.primary_partition {
            return true;
        }
        let (alive, voters) = self.majority_tally(view);
        if voters == 0 || alive * 2 > voters {
            return true;
        }
        if alive * 2 == voters {
            // Exactly half: the half containing the oldest voter wins.
            return view
                .members
                .iter()
                .find(|m| !self.pending_leaves.contains(*m) && !self.confirmed.contains(*m))
                .map(|oldest| !self.suspected.contains(oldest))
                .unwrap_or(false);
        }
        false
    }

    /// Wedges the endpoint: abandons any flush role, counts the stall, and reports it.
    fn enter_wedge(&mut self, view_seq: u64, out: &mut Vec<EndpointOutput>) {
        if self.flush.take().is_some() {
            self.flush_attempt += 1;
        }
        let (alive, voters) = self
            .view
            .as_ref()
            .map(|v| self.majority_tally(v))
            .unwrap_or((0, 0));
        self.stats.with(|s| {
            s.count_partition_stall();
            if !self.wedged {
                s.count_minority_wedge();
            }
        });
        self.wedged = true;
        out.push(EndpointOutput::PartitionStalled {
            group: self.group,
            view_seq,
            alive,
            voters,
        });
    }

    /// Un-wedges the endpoint if retracted suspicions restored its majority.
    ///
    /// Retraction proves the suspected *sites* are alive again — not that this view is
    /// still current.  If the cut outlived the failure timeout, the far side already
    /// committed a view without us and, holding no member of ours, will never address us
    /// again; silently resuming in the stale view would strand this endpoint as a
    /// quiescent zombie.  So the transition out of a wedge always probes: gossip
    /// immediately and for [`STALE_VIEW_PROBES`] more rounds.  A peer still in this view
    /// reads the probe as ordinary stability traffic; a peer that moved on sees the stale
    /// view stamp and answers with the bulletin commit that triggers the rejoin.
    fn maybe_unwedge(&mut self, out: &mut Vec<EndpointOutput>) {
        if !self.wedged {
            return;
        }
        let Some(view) = &self.view else {
            return;
        };
        if !self.has_primary_majority(view) {
            return;
        }
        let view_seq = view.seq();
        self.wedged = false;
        self.stale_probes = STALE_VIEW_PROBES;
        if !self.peer_sites.is_empty() {
            self.send_stability_gossip(view_seq, out);
        }
    }

    /// A wedged (or excluded) member saw evidence of a newer primary view: request a
    /// rejoin through the site that evidenced it, at most once.
    fn require_rejoin(
        &mut self,
        contact: SiteId,
        observed_seq: u64,
        out: &mut Vec<EndpointOutput>,
    ) {
        if self.rejoin_emitted {
            return;
        }
        self.rejoin_emitted = true;
        out.push(EndpointOutput::RejoinRequired {
            group: self.group,
            contact,
            observed_seq,
        });
    }

    /// Answers stale traffic from a site that hosts no member of the current view by
    /// re-sending the latest flush commit.  Such a sender missed the cut that excluded it
    /// (its commit copy was swallowed by a partition); without the bulletin it would keep
    /// multicasting into its stale view forever and never learn it has to rejoin.  Senders
    /// that *are* current members just have old-view traffic in flight across a cut —
    /// normal, and ignored as before.
    fn bulletin_stale_sender(&mut self, from_site: SiteId, out: &mut Vec<EndpointOutput>) {
        let Some(view) = &self.view else {
            return;
        };
        if from_site == self.site || view.member_sites().contains(&from_site) {
            return;
        }
        if let Some(commit) = self.last_commit.clone() {
            self.send_to_site(from_site, PacketKind::Flush, commit, out);
        }
    }

    // -- Protocol message handling ------------------------------------------------------------

    /// Handles a protocol message from the endpoint at `from_site`.
    ///
    /// The wire form arrives as a shared [`Frame`]; decoding goes through the frame's memo
    /// ([`ProtoMsg::decode_frame`]), so a frame fanned out to N sites is parsed once in
    /// total, and the hosting stack's own pre-routing decode is never repeated here.
    pub fn on_message(
        &mut self,
        now: SimTime,
        from_site: SiteId,
        frame: &Frame,
        out: &mut Vec<EndpointOutput>,
    ) -> Result<()> {
        let (group, msg) = ProtoMsg::decode_frame(frame)?;
        if *group != self.group {
            return Err(VsError::Internal(format!(
                "message for {group} routed to endpoint of {}",
                self.group
            )));
        }
        // Whatever this message is, its sender site is alive: retract any timeout-based
        // suspicion of its members before acting, so a delayed-but-live site is never
        // excluded by a flush that commits after it already spoke again.
        self.unsuspect_site(now, from_site, out);
        match msg {
            ProtoMsg::CbData { view_seq, .. } | ProtoMsg::AbData { view_seq, .. } => {
                match self.view_position(*view_seq) {
                    ViewPosition::Current => self.handle_data(now, msg, frame, out),
                    ViewPosition::Future => {
                        self.future_msgs.push((from_site, frame.clone()));
                        // Data stamped with a view we never installed: while wedged this
                        // is proof a newer primary view exists on the far side.
                        if self.wedged {
                            self.require_rejoin(from_site, *view_seq, out);
                        }
                    }
                    ViewPosition::Past => self.bulletin_stale_sender(from_site, out),
                }
            }
            ProtoMsg::AbPropose {
                id,
                view_seq,
                proposed,
                proposer_site,
            } => {
                if self.view_position(*view_seq) == ViewPosition::Current {
                    if let Some((final_prio, tiebreak)) =
                        self.ab.on_proposal(*id, *proposer_site, *proposed)
                    {
                        self.finish_abcast_order(*id, final_prio, tiebreak, out);
                    }
                } else if self.view_position(*view_seq) == ViewPosition::Future {
                    self.future_msgs.push((from_site, frame.clone()));
                    if self.wedged {
                        self.require_rejoin(from_site, *view_seq, out);
                    }
                }
            }
            ProtoMsg::AbOrder {
                id,
                view_seq,
                final_priority,
                tiebreak_site,
            } => match self.view_position(*view_seq) {
                ViewPosition::Current => {
                    self.ab.decide(*id, *final_priority, *tiebreak_site);
                    self.stab.set_ab_priority(*id, *final_priority);
                    self.drain_abcasts(out);
                }
                ViewPosition::Future => {
                    self.future_msgs.push((from_site, frame.clone()));
                    if self.wedged {
                        self.require_rejoin(from_site, *view_seq, out);
                    }
                }
                ViewPosition::Past => self.bulletin_stale_sender(from_site, out),
            },
            ProtoMsg::JoinReq {
                joiner,
                credentials,
            } => {
                self.submit_join(now, *joiner, credentials.clone(), out)?;
            }
            ProtoMsg::LeaveReq { member } => {
                self.submit_leave(now, *member, out)?;
            }
            ProtoMsg::FailReport { failed } => {
                // Fail reports carry explicit process-exit notifications, not timeouts:
                // these suspicions are confirmed and never retracted by later traffic.
                let failed = failed.clone();
                self.confirm_failures(now, &failed, out);
            }
            ProtoMsg::GbcastReq { sender, payload } => {
                self.gbcast(now, *sender, payload.clone(), out)?;
            }
            ProtoMsg::FlushReq {
                target_seq,
                initiator,
                attempt,
            } => {
                self.handle_flush_req(now, *target_seq, *initiator, *attempt, out);
            }
            ProtoMsg::FlushAck {
                target_seq,
                from_site,
                stored,
            } => {
                self.handle_flush_ack(now, *target_seq, *from_site, stored.clone(), out);
            }
            ProtoMsg::FlushCommit {
                target_seq,
                view,
                deliver,
                covered,
                gbcasts,
            } => {
                self.apply_commit(
                    now,
                    *target_seq,
                    view.clone(),
                    deliver.clone(),
                    covered.clone(),
                    gbcasts.clone(),
                    true,
                    out,
                );
            }
            ProtoMsg::Stability {
                view_seq,
                from_site: gossip_site,
                ids,
            } => match self.view_position(*view_seq) {
                ViewPosition::Current => {
                    self.stab.on_gossip(*gossip_site, ids);
                }
                ViewPosition::Future => {
                    if self.wedged {
                        self.require_rejoin(from_site, *view_seq, out);
                    }
                }
                ViewPosition::Past => self.bulletin_stale_sender(from_site, out),
            },
            // Reform traffic is a site-level exchange handled by the hosting stack before
            // any endpoint exists (there is no group to route it to while the group is
            // dead); an operational endpoint simply ignores a stray copy.
            ProtoMsg::ReformSummary { .. } | ProtoMsg::ReformAlive { .. } => {}
        }
        Ok(())
    }

    /// Periodic maintenance: stability gossip and flush-timeout recovery.
    pub fn on_tick(&mut self, now: SimTime, out: &mut Vec<EndpointOutput>) {
        // Runs on every maintenance tick of every site: the idle path (nothing unstable,
        // no flush in progress) must not clone the view or allocate.
        let Some(view_seq) = self.view.as_ref().map(View::seq) else {
            return;
        };
        // Stability gossip.
        if now.saturating_since(self.last_gossip) >= self.cfg.stability_interval {
            self.last_gossip = now;
            // Gossip while there is anything to advertise — held copies *or* ack
            // tombstones: a site that stabilized a message before ever gossiping it must
            // still tell the origin, or the origin's ack set never completes (see
            // `stability::Tracked::stable_for`).  A wedged endpoint gossips even with
            // nothing to report: across a healed partition the stale view stamp makes a
            // primary-side member answer with the latest commit (the bulletin), which is
            // an idle minority's only way to learn it was cut out.  The same goes for the
            // probe rounds right after an un-wedge (see `maybe_unwedge`): heartbeats
            // retract suspicions the instant the cut heals, usually before this tick ever
            // fires in the wedged state, so the wedge alone cannot carry that burden.
            let probing = self.stale_probes > 0;
            if (self.stab.has_reportable() || self.wedged || probing) && !self.peer_sites.is_empty()
            {
                self.send_stability_gossip(view_seq, out);
                self.stale_probes = self.stale_probes.saturating_sub(1);
            }
            self.stab.note_gossip_round();
        }
        // Flush watchdog.
        let stalled = self
            .flush
            .as_ref()
            .map(|f| now.saturating_since(f.started_at()) > self.cfg.flush_timeout)
            .unwrap_or(false);
        if stalled {
            match self.flush.take() {
                Some(FlushRole::Coordinator(mut c)) => {
                    // Re-send the request to laggard sites.
                    c.started_at = now;
                    let req = ProtoMsg::FlushReq {
                        target_seq: c.target_seq,
                        initiator: self
                            .acting_coordinator()
                            .unwrap_or_else(|| ProcessId::new(self.site, 0)),
                        attempt: c.attempt,
                    }
                    .encode_frame(self.group);
                    for s in c.awaiting.iter().copied().collect::<Vec<_>>() {
                        self.send_to_site(s, PacketKind::Flush, req.clone(), out);
                    }
                    self.flush = Some(FlushRole::Coordinator(c));
                }
                Some(FlushRole::Participant(p)) => {
                    // The coordinator went quiet: treat it as failed and let the next oldest
                    // surviving member (possibly hosted here) take over.
                    self.suspected.insert(p.initiator);
                    self.flush_attempt = p.attempt + 1;
                    self.start_flush_if_needed(now, out);
                }
                None => {}
            }
        }
    }

    // -- Internal helpers ----------------------------------------------------------------------

    fn alloc_msg_id(&mut self) -> MsgId {
        self.next_msg_seq += 1;
        MsgId::new(self.site, self.next_msg_seq)
    }

    fn rank_for_sender(&self, view: &View, sender: ProcessId) -> Result<Rank> {
        if let Some(r) = view.rank_of(sender) {
            return Ok(r);
        }
        // Relayed external caller: stamp with the oldest local member's rank.
        view.members_at(self.site)
            .first()
            .and_then(|m| view.rank_of(*m))
            .ok_or(VsError::NotAMember(self.group))
    }

    fn acting_coordinator(&self) -> Option<ProcessId> {
        self.view
            .as_ref()?
            .members
            .iter()
            .copied()
            .find(|m| !self.suspected.contains(m))
    }

    fn view_position(&self, view_seq: u64) -> ViewPosition {
        match &self.view {
            None => ViewPosition::Future,
            Some(v) => {
                if view_seq == v.seq() {
                    ViewPosition::Current
                } else if view_seq < v.seq() {
                    ViewPosition::Past
                } else {
                    ViewPosition::Future
                }
            }
        }
    }

    fn send_to_site(
        &self,
        dst_site: SiteId,
        kind: PacketKind,
        msg: Frame,
        out: &mut Vec<EndpointOutput>,
    ) {
        out.push(EndpointOutput::Send {
            dst_site,
            kind,
            msg,
        });
    }

    /// Fans one wire frame out to every peer site of the current view.  Each `Send` aliases
    /// the same frame — the per-destination cost is a reference-count bump, not a copy of
    /// the field tree — and the destination list is the cached `peer_sites`, so nothing is
    /// recomputed per multicast.
    fn send_to_peers(&self, kind: PacketKind, msg: Frame, out: &mut Vec<EndpointOutput>) {
        for s in &self.peer_sites {
            out.push(EndpointOutput::Send {
                dst_site: *s,
                kind,
                msg: msg.clone(),
            });
        }
    }

    /// One round of stability gossip to every peer of the current view, stamped with
    /// `view_seq`.  Doubles as the stale-view probe: at a peer that committed a newer
    /// view the stamp reads as `ViewPosition::Past` and draws the bulletin commit back.
    fn send_stability_gossip(&mut self, view_seq: u64, out: &mut Vec<EndpointOutput>) {
        let ids = self.stab.local_ids();
        let wire = ProtoMsg::Stability {
            view_seq,
            from_site: self.site,
            ids,
        }
        .encode_frame(self.group);
        self.send_to_peers(PacketKind::Stability, wire, out);
    }

    fn emit_delivery(
        &mut self,
        id: MsgId,
        protocol: ProtocolKind,
        payload: Message,
        out: &mut Vec<EndpointOutput>,
    ) {
        let view_seq = self.view.as_ref().map(|v| v.seq()).unwrap_or(0);
        out.push(EndpointOutput::Deliver(Delivery {
            group: self.group,
            msg_id: id,
            view_seq,
            protocol,
            payload,
        }));
    }

    /// Handles a data-bearing message in the current view.  `msg` is the decoded view of
    /// `frame`; the stability buffer aliases the frame directly (no re-encode — the received
    /// wire form *is* the copy a flush would redistribute).
    fn handle_data(
        &mut self,
        _now: SimTime,
        msg: &ProtoMsg,
        frame: &Frame,
        out: &mut Vec<EndpointOutput>,
    ) {
        match msg {
            ProtoMsg::CbData {
                id,
                sender,
                sender_rank,
                vt,
                payload,
                ..
            } => {
                if self.delivered.contains(id) {
                    return;
                }
                self.stab.record_local(
                    *id,
                    StoredMsg {
                        wire: frame.clone(),
                        ab_priority: None,
                    },
                );
                let mut ready = std::mem::take(&mut self.ready_scratch);
                self.cb.receive_into(
                    ReadyCb {
                        id: *id,
                        sender: *sender,
                        sender_rank: *sender_rank as Rank,
                        vt: vt.clone(),
                        payload: payload.clone(),
                    },
                    &mut ready,
                );
                for r in ready.drain(..) {
                    if self.delivered.insert(r.id) {
                        self.emit_delivery(r.id, ProtocolKind::Cbcast, r.payload, out);
                    }
                }
                self.ready_scratch = ready;
            }
            ProtoMsg::AbData {
                id,
                sender,
                payload,
                view_seq,
            } => {
                if self.delivered.contains(id) {
                    return;
                }
                let proposed = self.ab.on_data(*id, *sender, payload.clone());
                self.stab.record_local(
                    *id,
                    StoredMsg {
                        wire: frame.clone(),
                        ab_priority: Some(proposed),
                    },
                );
                let propose = ProtoMsg::AbPropose {
                    id: *id,
                    view_seq: *view_seq,
                    proposed,
                    proposer_site: self.site,
                }
                .encode_frame(self.group);
                self.send_to_site(id.origin, PacketKind::Proposal, propose, out);
            }
            _ => unreachable!("handle_data only receives data messages"),
        }
    }

    fn finish_abcast_order(
        &mut self,
        id: MsgId,
        final_priority: u64,
        tiebreak: SiteId,
        out: &mut Vec<EndpointOutput>,
    ) {
        self.ab.decide(id, final_priority, tiebreak);
        self.stab.set_ab_priority(id, final_priority);
        let order = ProtoMsg::AbOrder {
            id,
            view_seq: self.view.as_ref().map(View::seq).unwrap_or(0),
            final_priority,
            tiebreak_site: tiebreak,
        }
        .encode_frame(self.group);
        self.send_to_peers(PacketKind::SetOrder, order, out);
        self.drain_abcasts(out);
    }

    fn drain_abcasts(&mut self, out: &mut Vec<EndpointOutput>) {
        for r in self.ab.drain() {
            if self.delivered.insert(r.id) {
                self.emit_delivery(r.id, ProtocolKind::Abcast, r.payload, out);
            }
        }
    }

    fn start_flush_if_needed(&mut self, now: SimTime, out: &mut Vec<EndpointOutput>) {
        if self.flush.is_some() {
            return;
        }
        let Some(view) = self.view.clone() else {
            return;
        };
        let has_changes = !self.pending_joins.is_empty()
            || !self.pending_leaves.is_empty()
            || !self.suspected.is_empty()
            || !self.pending_gbcasts.is_empty();
        if !has_changes {
            return;
        }
        // Primary-partition fence: never start cutting a view from inside a minority
        // component — wedge until the partition heals or the suspicions are retracted.
        if !self.has_primary_majority(&view) {
            self.enter_wedge(view.seq(), out);
            return;
        }
        self.wedged = false;
        let Some(coord) = self.acting_coordinator() else {
            return;
        };
        if coord.site != self.site {
            return;
        }
        self.stats.count_multicast(ProtocolKind::Gbcast);
        let target_seq = view.seq() + 1;
        let awaiting: BTreeSet<SiteId> = view
            .member_sites()
            .into_iter()
            .filter(|s| *s != self.site)
            .filter(|s| {
                view.members_at(*s)
                    .iter()
                    .any(|m| !self.suspected.contains(m))
            })
            .collect();
        let coordinator =
            FlushCoordinator::new(target_seq, self.flush_attempt, awaiting.clone(), now);
        self.flush = Some(FlushRole::Coordinator(coordinator));
        let req = ProtoMsg::FlushReq {
            target_seq,
            initiator: coord,
            attempt: self.flush_attempt,
        }
        .encode_frame(self.group);
        for s in &awaiting {
            self.send_to_site(*s, PacketKind::Flush, req.clone(), out);
        }
        if awaiting.is_empty() {
            self.complete_flush(now, out);
        }
    }

    /// Everything this endpoint must report in a flush ack (or, as coordinator, merge into
    /// the union directly): its unstable messages with outstanding ABCAST proposals
    /// overlaid, plus — when `ack_proposal_only` is enabled — *proposal-only* entries for
    /// ABCASTs that are stable but still undecided.  Stability means every site holds a
    /// copy, so the tracker has dropped the wire form; if the initiator then dies before
    /// phase two, the holdback queue is the only place the message still exists, and it is
    /// re-encoded from there so the flush coordinator can finalise the order.
    fn flush_report(&self, view_seq: u64) -> Vec<StoredMsg> {
        let mut stored = self.stab.unstable();
        let proposals = self.ab.pending_proposals();
        for s in &mut stored {
            if let Ok(id) = stored_msg_id(s) {
                if let Some((_, p)) = proposals.iter().find(|(pid, _)| *pid == id) {
                    s.ab_priority = Some(s.ab_priority.unwrap_or(0).max(*p));
                }
            }
        }
        if self.cfg.ack_proposal_only {
            let held: Vec<MsgId> = stored
                .iter()
                .filter_map(|s| stored_msg_id(s).ok())
                .collect();
            for (id, proposed) in proposals {
                if held.contains(&id) {
                    continue;
                }
                let Some((sender, payload)) = self.ab.undecided_payload(&id) else {
                    continue;
                };
                let wire = ProtoMsg::AbData {
                    id,
                    sender,
                    view_seq,
                    payload,
                }
                .encode_frame(self.group);
                stored.push(StoredMsg {
                    wire,
                    ab_priority: Some(proposed),
                });
            }
        }
        stored
    }

    fn handle_flush_req(
        &mut self,
        now: SimTime,
        target_seq: u64,
        initiator: ProcessId,
        attempt: u64,
        out: &mut Vec<EndpointOutput>,
    ) {
        let Some(view) = self.view.clone() else {
            return;
        };
        if target_seq != view.seq() + 1 {
            return;
        }
        // If we believed ourselves coordinator but an older member is also flushing, defer to
        // it (lower rank wins); otherwise ignore the request and let ours proceed.
        if let Some(FlushRole::Coordinator(_)) = &self.flush {
            let my_rank = self
                .acting_coordinator()
                .and_then(|c| view.rank_of(c))
                .unwrap_or(usize::MAX);
            let their_rank = view.rank_of(initiator).unwrap_or(usize::MAX);
            if my_rank <= their_rank {
                return;
            }
        }
        self.flush = Some(FlushRole::Participant(FlushParticipant {
            target_seq,
            initiator,
            attempt,
            started_at: now,
        }));
        // Report everything we have received in this view that might not be everywhere,
        // overlaying our outstanding ABCAST proposals.
        let stored = self.flush_report(view.seq());
        let ack = ProtoMsg::FlushAck {
            target_seq,
            from_site: self.site,
            stored,
        }
        .encode_frame(self.group);
        self.send_to_site(initiator.site, PacketKind::Flush, ack, out);
    }

    fn handle_flush_ack(
        &mut self,
        now: SimTime,
        target_seq: u64,
        from_site: SiteId,
        stored: Vec<StoredMsg>,
        out: &mut Vec<EndpointOutput>,
    ) {
        let complete = match &mut self.flush {
            Some(FlushRole::Coordinator(c)) if c.target_seq == target_seq => {
                c.absorb_ack(from_site, stored)
            }
            _ => false,
        };
        if complete {
            self.complete_flush(now, out);
        }
    }

    fn complete_flush(&mut self, now: SimTime, out: &mut Vec<EndpointOutput>) {
        let Some(FlushRole::Coordinator(mut c)) = self.flush.take() else {
            return;
        };
        let Some(view) = self.view.clone() else {
            return;
        };
        // Authoritative primary-partition fence: suspicions may have accumulated since
        // this flush started (forgotten sites complete a flush too), so re-check that we
        // still hold a majority of the view being cut before committing its successor.
        if !self.has_primary_majority(&view) {
            self.flush_attempt += 1;
            self.enter_wedge(view.seq(), out);
            return;
        }
        // Merge our own unstable messages and pending proposals into the union.
        let own = self.flush_report(view.seq());
        c.merge(own);
        // Build the new view.
        let departed: Vec<ProcessId> = self
            .suspected
            .iter()
            .copied()
            .chain(self.pending_leaves.iter().copied())
            .collect();
        let joined: Vec<ProcessId> = self.pending_joins.clone();
        let new_view = view.successor(&departed, &joined);
        let deliver = c.deliver_set();
        // Describe the cut as a per-origin frontier: everything redistributed by this
        // flush plus everything the coordinator already delivered in the old view.  A
        // snapshot taken while installing the committed view covers exactly this set, so
        // joiners use the frontier to suppress the redelivery of covered messages (their
        // effects arrive via state transfer instead — the exactly-once partition of
        // history that virtual synchrony promises a joiner).
        let mut covered = Frontier::new();
        for id in &self.delivered {
            covered.observe(*id);
        }
        for s in &deliver {
            if let Ok(id) = stored_msg_id(s) {
                covered.observe(id);
            }
        }
        let gbcasts = std::mem::take(&mut self.pending_gbcasts);
        self.pending_joins.clear();
        self.pending_leaves.clear();
        // Send the commit to every site that was in the old view or is in the new one.
        let mut dst_sites: Vec<SiteId> = view.member_sites();
        for s in new_view.member_sites() {
            if !dst_sites.contains(&s) {
                dst_sites.push(s);
            }
        }
        let commit = ProtoMsg::FlushCommit {
            target_seq: new_view.seq(),
            view: new_view.clone(),
            deliver: deliver.clone(),
            covered: covered.clone(),
            gbcasts: gbcasts.clone(),
        }
        .encode_frame(self.group);
        for s in dst_sites {
            if s != self.site {
                self.send_to_site(s, PacketKind::Flush, commit.clone(), out);
            }
        }
        self.apply_commit(
            now,
            new_view.seq(),
            new_view,
            deliver,
            covered,
            gbcasts,
            false,
            out,
        );
    }

    // One parameter per `FlushCommit` field plus the clock, sink, and relay flag; bundling
    // them into a struct would just restate the wire message.
    #[allow(clippy::too_many_arguments)]
    fn apply_commit(
        &mut self,
        now: SimTime,
        target_seq: u64,
        new_view: View,
        deliver: Vec<StoredMsg>,
        covered: Frontier,
        gbcasts: Vec<Message>,
        relay: bool,
        out: &mut Vec<EndpointOutput>,
    ) {
        if let Some(v) = &self.view {
            if target_seq <= v.seq() {
                return;
            }
        }
        // A commit whose new view excludes every local member that neither asked to leave
        // nor provably crashed is not ours to install: the primary partition cut us out (a
        // false suspicion that committed, or a minority wedge the majority flushed
        // around).  Everything we did past the last shared view is a divergent tail —
        // request a discard-and-rejoin instead of installing.
        let mut involuntary = self
            .local_members
            .iter()
            .filter(|m| !self.leaving_local.contains(m) && !self.confirmed.contains(m))
            .peekable();
        let cut_out = involuntary.peek().is_some() && !involuntary.any(|m| new_view.contains(*m));
        if cut_out {
            let contact = new_view.coordinator().map(|c| c.site).unwrap_or(self.site);
            self.require_rejoin(contact, target_seq, out);
            return;
        }
        // Relay the commit on first install (receivers only — the creator already sent it
        // everywhere).  Commits come from the acting coordinator, which may die with some
        // copies still on the wire; a commit that reaches only part of the membership would
        // split the view history, because the survivors that missed it take over the flush
        // and commit a *different* view at the same sequence number.  One hop per member
        // closes the gap: whoever installs re-sends the frame to every member site of the
        // old and new views, and later copies fail the sequence check above, so the relay
        // storm terminates after at most one send per member.
        let wire = ProtoMsg::FlushCommit {
            target_seq,
            view: new_view.clone(),
            deliver: deliver.clone(),
            covered: covered.clone(),
            gbcasts: gbcasts.clone(),
        }
        .encode_frame(self.group);
        if relay {
            let mut relay_sites: Vec<SiteId> = self
                .view
                .as_ref()
                .map(View::member_sites)
                .unwrap_or_default();
            for s in new_view.member_sites() {
                if !relay_sites.contains(&s) {
                    relay_sites.push(s);
                }
            }
            for s in relay_sites {
                if s != self.site {
                    self.send_to_site(s, PacketKind::Flush, wire.clone(), out);
                }
            }
        }
        // Keep the commit as the bulletin answered to stale traffic from excluded sites.
        self.last_commit = Some(wire);
        // A joining endpoint (no view installed: this site only enters the group at this
        // cut) must NOT apply the redistributed pre-cut messages: the state snapshot its
        // members receive is taken exactly at this cut and already covers them, so
        // delivering them here would double-apply (the bug that used to force every test
        // to settle until traffic was stable before joining).  Members of the old view,
        // by contrast, deliver whatever they are missing — that is the flush's job.
        let joining = self.view.is_none();
        // Deliver the agreed cut: everything in the set that we have not delivered yet.
        for stored in deliver {
            let Ok((_, proto)) = ProtoMsg::decode_frame(&stored.wire) else {
                continue;
            };
            match proto {
                ProtoMsg::CbData {
                    id,
                    sender,
                    sender_rank,
                    vt,
                    payload,
                    ..
                } => {
                    if self.delivered.contains(id) || (joining && covered.covers(*id)) {
                        continue;
                    }
                    let ready = self.cb.receive(ReadyCb {
                        id: *id,
                        sender: *sender,
                        sender_rank: *sender_rank as Rank,
                        vt: vt.clone(),
                        payload: payload.clone(),
                    });
                    for r in ready {
                        if self.delivered.insert(r.id) {
                            self.emit_delivery(r.id, ProtocolKind::Cbcast, r.payload, out);
                        }
                    }
                }
                ProtoMsg::AbData {
                    id,
                    sender,
                    payload,
                    ..
                } => {
                    if self.delivered.contains(id) || (joining && covered.covers(*id)) {
                        continue;
                    }
                    self.ab.on_data(*id, *sender, payload.clone());
                    let prio = stored.ab_priority.unwrap_or(u64::MAX / 2);
                    self.ab.decide(*id, prio, id.origin);
                }
                _ => {}
            }
        }
        self.drain_abcasts(out);
        // Anything still stuck had dependencies that vanished with their sender; deliver in a
        // deterministic order so every survivor sees the same thing.
        for r in self.cb.force_drain() {
            if self.delivered.insert(r.id) {
                self.emit_delivery(r.id, ProtocolKind::Cbcast, r.payload, out);
            }
        }
        for r in self.ab.force_drain() {
            if self.delivered.insert(r.id) {
                self.emit_delivery(r.id, ProtocolKind::Abcast, r.payload, out);
            }
        }
        // The cut is complete: install the view and deliver the view event plus any GBCASTs.
        // The event carries the cut's covered frontier so a state-transfer source encoding
        // its snapshot *while handling this event* can tag the blocks with exactly what the
        // snapshot includes.
        out.push(EndpointOutput::ViewChange(ViewEvent {
            view: new_view.clone(),
            gbcasts,
            covered,
        }));
        self.install_view(new_view.clone());
        // Any membership change reported during the flush that the new view did not cover
        // must trigger another round.
        self.suspected.retain(|p| new_view.contains(*p));
        self.confirmed.retain(|p| new_view.contains(*p));
        // A leave the new view processed is done; one still pending stays remembered.
        self.leaving_local.retain(|p| new_view.contains(*p));
        let pending_restart = !self.suspected.is_empty()
            || !self.pending_joins.is_empty()
            || !self.pending_leaves.is_empty()
            || !self.pending_gbcasts.is_empty();
        // Re-issue multicasts buffered while the flush was running.
        let buffered = std::mem::take(&mut self.buffered_sends);
        for b in buffered {
            match b {
                BufferedSend::Cb { sender, payload } => {
                    let _ = self.cbcast(now, sender, payload, out);
                }
                BufferedSend::Ab { sender, payload } => {
                    let _ = self.abcast(now, sender, payload, out);
                }
            }
        }
        // Process protocol messages that were waiting for this view.
        let future = std::mem::take(&mut self.future_msgs);
        for (from_site, wire) in future {
            let _ = self.on_message(now, from_site, &wire, out);
        }
        if pending_restart {
            self.start_flush_if_needed(now, out);
        }
    }

    fn install_view(&mut self, view: View) {
        let width = view.len();
        let member_sites = view.member_sites();
        self.peer_sites = member_sites
            .iter()
            .copied()
            .filter(|s| *s != self.site)
            .collect();
        // Keep the outgoing view's local members: deliveries emitted at the cut are tagged
        // with the old view's sequence number and must still route to *its* members (see
        // `delivery_recipients`).
        self.prev_view_seq = self.view.as_ref().map(View::seq).unwrap_or(0);
        self.prev_local_members = std::mem::take(&mut self.local_members);
        self.local_members = view.members_at(self.site);
        self.cb.reset(width);
        self.ab.reset();
        self.stab.reset(member_sites);
        self.delivered.clear();
        self.flush = None;
        self.flush_attempt = 0;
        // A committed view is primary by construction: any wedge episode ends here, and
        // with it the stale-view probing — this view is fresh by definition.
        self.wedged = false;
        self.stale_probes = 0;
        self.rejoin_emitted = false;
        self.view = Some(view);
    }

    /// The local members a delivery tagged with `view_seq` must be dispatched to.
    ///
    /// By the time the hosting stack routes the deliveries emitted at a flush cut, the new
    /// view is already installed, but those messages were sent in the *previous* view and
    /// virtual synchrony delivers them to its membership — in particular never to a member
    /// that joined at the cut (its state snapshot covers them).  Anything older than the
    /// previous view falls back to the current members: such deliveries cannot be emitted
    /// (the endpoint drops past-view traffic), so the fallback is never wrong in practice.
    pub fn delivery_recipients(&self, view_seq: u64) -> &[ProcessId] {
        match &self.view {
            Some(v) if v.seq() == view_seq => &self.local_members,
            _ if view_seq == self.prev_view_seq => &self.prev_local_members,
            _ => &self.local_members,
        }
    }

    /// Number of messages this endpoint has received in the current view that are not yet
    /// known stable (held for a potential flush redistribution).  Join-under-load tests use
    /// this to prove a join really raced unstable traffic.
    pub fn unstable_len(&self) -> usize {
        self.stab.held_len()
    }

    /// Test/diagnostic helper: number of messages delivered in the current view.
    pub fn delivered_count(&self) -> usize {
        self.delivered.len()
    }

    /// Returns a tick interval hint for the hosting stack.
    pub fn tick_interval(&self) -> Duration {
        self.cfg.stability_interval
    }
}

/// Where an incoming message's view sits relative to the installed one.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum ViewPosition {
    Past,
    Current,
    Future,
}

#[cfg(test)]
mod tests;
