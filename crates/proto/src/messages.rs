//! Wire format of the protocol messages exchanged between group endpoints.
//!
//! Every protocol message is carried inside a regular ISIS [`Message`] so the transport layer
//! (and the statistics that drive Table 1 / Figure 3) see realistic field-structured
//! payloads.  [`ProtoMsg`] is the typed view of those messages; `encode`/`decode` convert
//! between the two.

use vsync_msg::{Frame, Message};
use vsync_net::MsgId;
use vsync_util::{Address, GroupId, ProcessId, Result, SiteId, VectorClock, VsError};

use crate::frontier::Frontier;
use crate::view::View;

/// Thread-local counters of frame-level protocol encode/decode work on the packet path.
///
/// Only *uncached* work is counted: [`ProtoMsg::encode_frame`] calls and
/// [`ProtoMsg::decode_frame`] memo misses.  Tests use the deltas to pin the fan-out
/// invariant — a multicast performs one encode total and at most one parse per
/// (frame, receiving site) — without instrumenting release builds with shared atomics.
/// Thread-local because the simulator is single-threaded while `cargo test` runs tests on
/// parallel threads.
pub mod wire_stats {
    use std::cell::Cell;

    thread_local! {
        static ENCODES: Cell<u64> = const { Cell::new(0) };
        static DECODES: Cell<u64> = const { Cell::new(0) };
    }

    /// Wire frames encoded on this thread so far.
    pub fn frame_encodes() -> u64 {
        ENCODES.with(|c| c.get())
    }

    /// Protocol-message parses performed on this thread so far (memo hits excluded).
    pub fn frame_decodes() -> u64 {
        DECODES.with(|c| c.get())
    }

    pub(super) fn note_encode() {
        ENCODES.with(|c| c.set(c.get() + 1));
    }

    pub(super) fn note_decode() {
        DECODES.with(|c| c.set(c.get() + 1));
    }
}

/// A multicast message held by an endpoint (received but not yet known stable), in the form
/// it travels inside flush reports and commits.  The wire form is a shared [`Frame`], so
/// buffering a received multicast (or reporting it in a flush ack) aliases the packet's
/// frame instead of re-encoding the field tree.
#[derive(Clone, Debug, PartialEq)]
pub struct StoredMsg {
    /// The original data-bearing protocol message (`CbData` or `AbData`) in wire form.
    pub wire: Frame,
    /// For ABCAST messages: the priority this endpoint proposed (in an ack) or the final
    /// priority decided by the flush coordinator (in a commit).
    pub ab_priority: Option<u64>,
}

/// Typed protocol messages exchanged between the group endpoints of different sites.
#[derive(Clone, Debug, PartialEq)]
pub enum ProtoMsg {
    /// CBCAST data message.
    CbData {
        /// Unique id of the multicast.
        id: MsgId,
        /// The application-level sender.
        sender: ProcessId,
        /// Rank of the sender's endpoint in the view the message was sent in.
        sender_rank: u64,
        /// View sequence number the message was sent in.
        view_seq: u64,
        /// Vector timestamp governing causal delivery.
        vt: VectorClock,
        /// Application payload.
        payload: Message,
    },
    /// ABCAST phase one: the data-bearing transmission.
    AbData {
        /// Unique id of the multicast.
        id: MsgId,
        /// The application-level sender.
        sender: ProcessId,
        /// View sequence number the message was sent in.
        view_seq: u64,
        /// Application payload.
        payload: Message,
    },
    /// ABCAST phase one response: a destination proposes a priority.
    AbPropose {
        /// The multicast being ordered.
        id: MsgId,
        /// View sequence number.
        view_seq: u64,
        /// The proposed priority.
        proposed: u64,
        /// Site making the proposal (tie-break component).
        proposer_site: SiteId,
    },
    /// ABCAST phase two: the initiator announces the final priority.
    AbOrder {
        /// The multicast being ordered.
        id: MsgId,
        /// View sequence number.
        view_seq: u64,
        /// Final (maximum) priority.
        final_priority: u64,
        /// Tie-break site carried with the final priority.
        tiebreak_site: SiteId,
    },
    /// Request, sent to the group coordinator's site, to add a member.
    JoinReq {
        /// The process asking to join.
        joiner: ProcessId,
        /// Credentials checked by the protection tool before the join is admitted.
        credentials: Option<String>,
    },
    /// Request, sent to the group coordinator's site, to remove a member voluntarily.
    LeaveReq {
        /// The departing member.
        member: ProcessId,
    },
    /// Report, sent to the group coordinator's site, that members are believed failed.
    FailReport {
        /// The failed members.
        failed: Vec<ProcessId>,
    },
    /// A user-level GBCAST forwarded to the coordinator to be delivered at the next cut.
    GbcastReq {
        /// The application-level sender.
        sender: ProcessId,
        /// Payload to deliver, everywhere, at the same point relative to all other events.
        payload: Message,
    },
    /// Flush phase one: the coordinator asks every member site for its unstable state.
    FlushReq {
        /// Sequence number of the view this flush will install.
        target_seq: u64,
        /// The member coordinating the flush.
        initiator: ProcessId,
        /// Retry counter (a takeover after a coordinator failure bumps it).
        attempt: u64,
    },
    /// Flush phase two: a member site reports its unstable messages and pending proposals.
    FlushAck {
        /// Sequence number of the view being installed.
        target_seq: u64,
        /// The reporting site.
        from_site: SiteId,
        /// Messages received in the current view that are not known stable.
        stored: Vec<StoredMsg>,
    },
    /// Flush phase three: the coordinator distributes the agreed cut and the new view.
    FlushCommit {
        /// Sequence number of the view being installed.
        target_seq: u64,
        /// The new view.
        view: View,
        /// Messages every member must deliver (if it has not already) before the view event.
        deliver: Vec<StoredMsg>,
        /// Per-origin sequence frontier of the pre-cut history: every message covered by it
        /// is part of the state a snapshot taken at this cut includes.  Joining endpoints
        /// suppress redelivery of covered messages — their effects arrive via the state
        /// transfer instead, which is what keeps join-under-load exactly-once.
        covered: Frontier,
        /// User GBCAST payloads delivered at the cut, in this exact order.
        gbcasts: Vec<Message>,
    },
    /// Stability gossip: the ids this site has received in the current view.
    Stability {
        /// View sequence number the ids belong to.
        view_seq: u64,
        /// The reporting site.
        from_site: SiteId,
        /// Ids of messages received at that site.
        ids: Vec<MsgId>,
    },
    /// Total-failure reform: a restarting site summarises its recovery log so the group
    /// can elect the "last to fail" log as authoritative (paper Section 3.8).
    ReformSummary {
        /// The restarting site offering its log.
        from_site: SiteId,
        /// Highest view sequence number the log records (installed or marked).
        view_seq: u64,
        /// Per-origin delivery frontier the log covers (tie-break after view seq).
        covered: Frontier,
        /// Rank the summarising site's member held in its last logged view (second
        /// tie-break: lower rank = older member).
        rank: u64,
    },
    /// Total-failure reform: reply telling a restarting site that the group is in fact
    /// operational, so it must abandon the reform and rejoin through the normal
    /// join + state-transfer path instead.
    ReformAlive {
        /// A site currently hosting a live member, usable as the join contact.
        contact: SiteId,
    },
}

const TYPE_FIELD: &str = "@g-type";
const GROUP_FIELD: &str = "@g-group";
// Fixed field names (no per-call `format!`): message ids ride on every data, proposal and
// order message, so building their field names must not allocate.
const ID_ORIGIN: &str = "id-origin";
const ID_SEQ: &str = "id-seq";

fn put_msg_id(msg: &mut Message, id: MsgId) {
    msg.set(ID_ORIGIN, id.origin.0 as u64);
    msg.set(ID_SEQ, id.seq);
}

fn get_msg_id(msg: &Message) -> Result<MsgId> {
    let origin = msg.require_u64(ID_ORIGIN)?;
    let seq = msg.require_u64(ID_SEQ)?;
    Ok(MsgId::new(SiteId(origin as u16), seq))
}

fn put_process(msg: &mut Message, name: &str, p: ProcessId) {
    msg.set(name, p);
}

fn get_process(msg: &Message, name: &str) -> Result<ProcessId> {
    msg.require_addr(name)?
        .as_process()
        .ok_or_else(|| VsError::CodecError(format!("field {name:?} is not a process address")))
}

// Element field names for packed message lists.  Flush-era packing (`FlushAck` stored
// messages, `FlushCommit` deliver/gbcast lists) names one field per element; building
// `i{N}` through `format!` allocated a string per element per encode *and* per decode,
// which dominated the multi-group burst profile.  Small indices — the overwhelmingly
// common case — come from this static table; larger ones reuse one scratch buffer.
const IDX_NAMES: [&str; 64] = [
    "i0", "i1", "i2", "i3", "i4", "i5", "i6", "i7", "i8", "i9", "i10", "i11", "i12", "i13", "i14",
    "i15", "i16", "i17", "i18", "i19", "i20", "i21", "i22", "i23", "i24", "i25", "i26", "i27",
    "i28", "i29", "i30", "i31", "i32", "i33", "i34", "i35", "i36", "i37", "i38", "i39", "i40",
    "i41", "i42", "i43", "i44", "i45", "i46", "i47", "i48", "i49", "i50", "i51", "i52", "i53",
    "i54", "i55", "i56", "i57", "i58", "i59", "i60", "i61", "i62", "i63",
];

fn idx_name(i: usize, scratch: &mut String) -> &str {
    match IDX_NAMES.get(i) {
        Some(name) => name,
        None => {
            use std::fmt::Write as _;
            scratch.clear();
            let _ = write!(scratch, "i{i}");
            scratch
        }
    }
}

fn pack_msg_list(items: &[Message]) -> Message {
    let mut list = Message::with_field_capacity(items.len() + 1);
    list.set("n", items.len() as u64);
    let mut scratch = String::new();
    for (i, item) in items.iter().enumerate() {
        list.set(idx_name(i, &mut scratch), item.clone());
    }
    list
}

fn unpack_msg_list(list: &Message) -> Result<Vec<Message>> {
    let n = list.require_u64("n")? as usize;
    let mut items = Vec::with_capacity(n);
    let mut scratch = String::new();
    for i in 0..n {
        let name = idx_name(i, &mut scratch);
        let item = list
            .get_msg(name)
            .ok_or_else(|| VsError::CodecError(format!("missing list item i{i}")))?;
        items.push(item.clone());
    }
    Ok(items)
}

fn pack_stored(stored: &[StoredMsg]) -> Message {
    let items: Vec<Message> = stored
        .iter()
        .map(|s| {
            let mut m = Message::new();
            m.set("wire", s.wire.to_message());
            if let Some(p) = s.ab_priority {
                m.set("abp", p);
            }
            m
        })
        .collect();
    pack_msg_list(&items)
}

fn unpack_stored(list: &Message) -> Result<Vec<StoredMsg>> {
    unpack_msg_list(list)?
        .into_iter()
        .map(|m| {
            let wire = m
                .get_msg("wire")
                .ok_or_else(|| VsError::CodecError("stored message missing wire".into()))?
                .clone();
            Ok(StoredMsg {
                wire: Frame::new(wire),
                ab_priority: m.get_u64("abp"),
            })
        })
        .collect()
}

fn pack_ids(ids: &[MsgId]) -> Vec<u64> {
    let mut out = Vec::with_capacity(ids.len() * 2);
    for id in ids {
        out.push(id.origin.0 as u64);
        out.push(id.seq);
    }
    out
}

fn unpack_ids(raw: &[u64]) -> Vec<MsgId> {
    raw.chunks_exact(2)
        .map(|c| MsgId::new(SiteId(c[0] as u16), c[1]))
        .collect()
}

impl ProtoMsg {
    /// Human-readable tag used on the wire and in traces.
    pub fn type_tag(&self) -> &'static str {
        match self {
            ProtoMsg::CbData { .. } => "cb-data",
            ProtoMsg::AbData { .. } => "ab-data",
            ProtoMsg::AbPropose { .. } => "ab-propose",
            ProtoMsg::AbOrder { .. } => "ab-order",
            ProtoMsg::JoinReq { .. } => "join-req",
            ProtoMsg::LeaveReq { .. } => "leave-req",
            ProtoMsg::FailReport { .. } => "fail-report",
            ProtoMsg::GbcastReq { .. } => "gbcast-req",
            ProtoMsg::FlushReq { .. } => "flush-req",
            ProtoMsg::FlushAck { .. } => "flush-ack",
            ProtoMsg::FlushCommit { .. } => "flush-commit",
            ProtoMsg::Stability { .. } => "stability",
            ProtoMsg::ReformSummary { .. } => "reform-summary",
            ProtoMsg::ReformAlive { .. } => "reform-alive",
        }
    }

    /// Encodes the protocol message, tagging it with the group it belongs to.
    pub fn encode(&self, group: GroupId) -> Message {
        // Widest variant (CbData) carries 9 fields; pre-size so repeated `set` calls never
        // grow the field table.
        let mut m = Message::with_field_capacity(9);
        m.set(TYPE_FIELD, self.type_tag());
        m.set(GROUP_FIELD, group);
        match self {
            ProtoMsg::CbData {
                id,
                sender,
                sender_rank,
                view_seq,
                vt,
                payload,
            } => {
                put_msg_id(&mut m, *id);
                put_process(&mut m, "sender", *sender);
                m.set("sender-rank", *sender_rank);
                m.set("view-seq", *view_seq);
                m.set("vt", vt.entries().to_vec());
                m.set("payload", payload.clone());
            }
            ProtoMsg::AbData {
                id,
                sender,
                view_seq,
                payload,
            } => {
                put_msg_id(&mut m, *id);
                put_process(&mut m, "sender", *sender);
                m.set("view-seq", *view_seq);
                m.set("payload", payload.clone());
            }
            ProtoMsg::AbPropose {
                id,
                view_seq,
                proposed,
                proposer_site,
            } => {
                put_msg_id(&mut m, *id);
                m.set("view-seq", *view_seq);
                m.set("proposed", *proposed);
                m.set("proposer-site", proposer_site.0 as u64);
            }
            ProtoMsg::AbOrder {
                id,
                view_seq,
                final_priority,
                tiebreak_site,
            } => {
                put_msg_id(&mut m, *id);
                m.set("view-seq", *view_seq);
                m.set("final", *final_priority);
                m.set("tiebreak-site", tiebreak_site.0 as u64);
            }
            ProtoMsg::JoinReq {
                joiner,
                credentials,
            } => {
                put_process(&mut m, "joiner", *joiner);
                if let Some(c) = credentials {
                    m.set("credentials", c.as_str());
                }
            }
            ProtoMsg::LeaveReq { member } => {
                put_process(&mut m, "member", *member);
            }
            ProtoMsg::FailReport { failed } => {
                m.set(
                    "failed",
                    failed
                        .iter()
                        .map(|p| Address::Process(*p))
                        .collect::<Vec<_>>(),
                );
            }
            ProtoMsg::GbcastReq { sender, payload } => {
                put_process(&mut m, "sender", *sender);
                m.set("payload", payload.clone());
            }
            ProtoMsg::FlushReq {
                target_seq,
                initiator,
                attempt,
            } => {
                m.set("target-seq", *target_seq);
                put_process(&mut m, "initiator", *initiator);
                m.set("attempt", *attempt);
            }
            ProtoMsg::FlushAck {
                target_seq,
                from_site,
                stored,
            } => {
                m.set("target-seq", *target_seq);
                m.set("from-site", from_site.0 as u64);
                m.set("stored", pack_stored(stored));
            }
            ProtoMsg::FlushCommit {
                target_seq,
                view,
                deliver,
                covered,
                gbcasts,
            } => {
                m.set("target-seq", *target_seq);
                view.encode_into(&mut m, "view-");
                m.set("deliver", pack_stored(deliver));
                m.set("covered", covered.to_wire());
                m.set("gbcasts", pack_msg_list(gbcasts));
            }
            ProtoMsg::Stability {
                view_seq,
                from_site,
                ids,
            } => {
                m.set("view-seq", *view_seq);
                m.set("from-site", from_site.0 as u64);
                m.set("ids", pack_ids(ids));
            }
            ProtoMsg::ReformSummary {
                from_site,
                view_seq,
                covered,
                rank,
            } => {
                m.set("from-site", from_site.0 as u64);
                m.set("view-seq", *view_seq);
                m.set("covered", covered.to_wire());
                m.set("rank", *rank);
            }
            ProtoMsg::ReformAlive { contact } => {
                m.set("contact", contact.0 as u64);
            }
        }
        m
    }

    /// Encodes the protocol message into a shared wire [`Frame`] ready for fan-out: the
    /// sender encodes once, and every destination packet (plus the stability buffer) aliases
    /// the same frame.  This is the packet-path entry point counted by [`wire_stats`].
    pub fn encode_frame(&self, group: GroupId) -> Frame {
        wire_stats::note_encode();
        Frame::new(self.encode(group))
    }

    /// Decodes a protocol message from a wire frame, parsing **once per frame**: the result
    /// is memoized in the frame's shared memo slot, so when a multicast fans one frame out
    /// to N receivers only the first receiver pays for the parse and the rest borrow it.
    ///
    /// A debug assertion keeps the cache honest: the typed message must re-encode to exactly
    /// the wire form it was parsed from, otherwise a memo hit at a later receiver could
    /// diverge from what a fresh parse would have returned.
    pub fn decode_frame(frame: &Frame) -> Result<&(GroupId, ProtoMsg)> {
        if let Some(hit) = frame.memo_get::<(GroupId, ProtoMsg)>() {
            return Ok(hit);
        }
        wire_stats::note_decode();
        let decoded = ProtoMsg::decode(frame.message())?;
        debug_assert_eq!(
            &decoded.1.encode(decoded.0),
            frame.message(),
            "ProtoMsg wire round-trip diverged; the decode memo would be unsound"
        );
        frame
            .memo_get_or_init(|| decoded)
            .ok_or_else(|| VsError::Internal("frame memo slot held by a foreign type".to_owned()))
    }

    /// Decodes a protocol message, returning the group it belongs to alongside the message.
    pub fn decode(m: &Message) -> Result<(GroupId, ProtoMsg)> {
        let group = m
            .get_addr(GROUP_FIELD)
            .and_then(|a| a.as_group())
            .ok_or_else(|| VsError::CodecError("missing @g-group field".into()))?;
        let tag = m.require_str(TYPE_FIELD)?;
        let payload_of = |m: &Message| -> Result<Message> {
            m.get_msg("payload")
                .cloned()
                .ok_or_else(|| VsError::CodecError("missing payload".into()))
        };
        let msg = match tag {
            "cb-data" => ProtoMsg::CbData {
                id: get_msg_id(m)?,
                sender: get_process(m, "sender")?,
                sender_rank: m.require_u64("sender-rank")?,
                view_seq: m.require_u64("view-seq")?,
                vt: VectorClock::from_entries(m.get_u64_list("vt").unwrap_or_default().to_vec()),
                payload: payload_of(m)?,
            },
            "ab-data" => ProtoMsg::AbData {
                id: get_msg_id(m)?,
                sender: get_process(m, "sender")?,
                view_seq: m.require_u64("view-seq")?,
                payload: payload_of(m)?,
            },
            "ab-propose" => ProtoMsg::AbPropose {
                id: get_msg_id(m)?,
                view_seq: m.require_u64("view-seq")?,
                proposed: m.require_u64("proposed")?,
                proposer_site: SiteId(m.require_u64("proposer-site")? as u16),
            },
            "ab-order" => ProtoMsg::AbOrder {
                id: get_msg_id(m)?,
                view_seq: m.require_u64("view-seq")?,
                final_priority: m.require_u64("final")?,
                tiebreak_site: SiteId(m.require_u64("tiebreak-site")? as u16),
            },
            "join-req" => ProtoMsg::JoinReq {
                joiner: get_process(m, "joiner")?,
                credentials: m.get_str("credentials").map(str::to_owned),
            },
            "leave-req" => ProtoMsg::LeaveReq {
                member: get_process(m, "member")?,
            },
            "fail-report" => ProtoMsg::FailReport {
                failed: m
                    .get_addr_list("failed")
                    .unwrap_or_default()
                    .iter()
                    .filter_map(|a| a.as_process())
                    .collect(),
            },
            "gbcast-req" => ProtoMsg::GbcastReq {
                sender: get_process(m, "sender")?,
                payload: payload_of(m)?,
            },
            "flush-req" => ProtoMsg::FlushReq {
                target_seq: m.require_u64("target-seq")?,
                initiator: get_process(m, "initiator")?,
                attempt: m.require_u64("attempt")?,
            },
            "flush-ack" => ProtoMsg::FlushAck {
                target_seq: m.require_u64("target-seq")?,
                from_site: SiteId(m.require_u64("from-site")? as u16),
                stored: unpack_stored(
                    m.get_msg("stored")
                        .ok_or_else(|| VsError::CodecError("missing stored".into()))?,
                )?,
            },
            "flush-commit" => ProtoMsg::FlushCommit {
                target_seq: m.require_u64("target-seq")?,
                view: View::decode_from(m, "view-")
                    .ok_or_else(|| VsError::CodecError("missing view".into()))?,
                deliver: unpack_stored(
                    m.get_msg("deliver")
                        .ok_or_else(|| VsError::CodecError("missing deliver".into()))?,
                )?,
                // Required, like `deliver` and `gbcasts`: a commit whose frontier was lost
                // must fail loudly — decoding it as "covers nothing" would silently
                // re-enable double-application at joiners.
                covered: Frontier::from_wire(
                    m.get_u64_list("covered")
                        .ok_or_else(|| VsError::CodecError("missing covered".into()))?,
                ),
                gbcasts: unpack_msg_list(
                    m.get_msg("gbcasts")
                        .ok_or_else(|| VsError::CodecError("missing gbcasts".into()))?,
                )?,
            },
            "stability" => ProtoMsg::Stability {
                view_seq: m.require_u64("view-seq")?,
                from_site: SiteId(m.require_u64("from-site")? as u16),
                ids: unpack_ids(m.get_u64_list("ids").unwrap_or_default()),
            },
            "reform-summary" => ProtoMsg::ReformSummary {
                from_site: SiteId(m.require_u64("from-site")? as u16),
                view_seq: m.require_u64("view-seq")?,
                // Required: a summary whose frontier was lost would silently lose the
                // election tie-break and could crown the wrong log.
                covered: Frontier::from_wire(
                    m.get_u64_list("covered")
                        .ok_or_else(|| VsError::CodecError("missing covered".into()))?,
                ),
                rank: m.require_u64("rank")?,
            },
            "reform-alive" => ProtoMsg::ReformAlive {
                contact: SiteId(m.require_u64("contact")? as u16),
            },
            other => {
                return Err(VsError::CodecError(format!(
                    "unknown protocol message type {other:?}"
                )))
            }
        };
        Ok((group, msg))
    }

    /// Returns true if the encoded form of `m` looks like a protocol message.
    pub fn is_proto_message(m: &Message) -> bool {
        m.contains(TYPE_FIELD) && m.contains(GROUP_FIELD)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vsync_util::GroupId;

    fn p(site: u16, local: u32) -> ProcessId {
        ProcessId::new(SiteId(site), local)
    }

    fn roundtrip(msg: ProtoMsg) {
        let g = GroupId(42);
        let wire = msg.encode(g);
        assert!(ProtoMsg::is_proto_message(&wire));
        let (g2, back) = ProtoMsg::decode(&wire).expect("decode");
        assert_eq!(g2, g);
        assert_eq!(back, msg);
    }

    #[test]
    fn cb_data_roundtrip() {
        roundtrip(ProtoMsg::CbData {
            id: MsgId::new(SiteId(1), 7),
            sender: p(1, 3),
            sender_rank: 2,
            view_seq: 5,
            vt: VectorClock::from_entries(vec![1, 0, 3]),
            payload: Message::with_body("hello").with("price", 9000u64),
        });
    }

    #[test]
    fn ab_messages_roundtrip() {
        roundtrip(ProtoMsg::AbData {
            id: MsgId::new(SiteId(0), 1),
            sender: p(0, 1),
            view_seq: 1,
            payload: Message::with_body(5u64),
        });
        roundtrip(ProtoMsg::AbPropose {
            id: MsgId::new(SiteId(0), 1),
            view_seq: 1,
            proposed: 17,
            proposer_site: SiteId(3),
        });
        roundtrip(ProtoMsg::AbOrder {
            id: MsgId::new(SiteId(0), 1),
            view_seq: 1,
            final_priority: 21,
            tiebreak_site: SiteId(2),
        });
    }

    #[test]
    fn membership_messages_roundtrip() {
        roundtrip(ProtoMsg::JoinReq {
            joiner: p(2, 1),
            credentials: Some("let-me-in".into()),
        });
        roundtrip(ProtoMsg::JoinReq {
            joiner: p(2, 1),
            credentials: None,
        });
        roundtrip(ProtoMsg::LeaveReq { member: p(1, 1) });
        roundtrip(ProtoMsg::FailReport {
            failed: vec![p(1, 1), p(1, 2)],
        });
        roundtrip(ProtoMsg::GbcastReq {
            sender: p(0, 2),
            payload: Message::with_body("config-update"),
        });
    }

    #[test]
    fn flush_messages_roundtrip() {
        let stored = vec![
            StoredMsg {
                wire: ProtoMsg::CbData {
                    id: MsgId::new(SiteId(1), 9),
                    sender: p(1, 1),
                    sender_rank: 1,
                    view_seq: 3,
                    vt: VectorClock::from_entries(vec![0, 1]),
                    payload: Message::with_body("update"),
                }
                .encode_frame(GroupId(42)),
                ab_priority: None,
            },
            StoredMsg {
                wire: ProtoMsg::AbData {
                    id: MsgId::new(SiteId(0), 4),
                    sender: p(0, 1),
                    view_seq: 3,
                    payload: Message::with_body("queue-op"),
                }
                .encode_frame(GroupId(42)),
                ab_priority: Some(12),
            },
        ];
        roundtrip(ProtoMsg::FlushReq {
            target_seq: 4,
            initiator: p(0, 1),
            attempt: 0,
        });
        roundtrip(ProtoMsg::FlushAck {
            target_seq: 4,
            from_site: SiteId(1),
            stored: stored.clone(),
        });
        let view = View::founding(GroupId(42), p(0, 1)).successor(&[], &[p(1, 1)]);
        let mut covered = Frontier::new();
        covered.observe(MsgId::new(SiteId(1), 9));
        covered.observe(MsgId::new(SiteId(0), 4));
        roundtrip(ProtoMsg::FlushCommit {
            target_seq: 4,
            view: view.clone(),
            deliver: stored,
            covered,
            gbcasts: vec![Message::with_body("cfg")],
        });
        // An empty frontier (nothing unstable at the cut) also survives the wire.
        roundtrip(ProtoMsg::FlushCommit {
            target_seq: 4,
            view,
            deliver: Vec::new(),
            covered: Frontier::new(),
            gbcasts: Vec::new(),
        });
    }

    #[test]
    fn flush_commit_without_a_covered_frontier_is_rejected() {
        // A commit whose frontier was lost must fail loudly, not decode as "covers
        // nothing" (which would silently double-apply at joiners).
        let view = View::founding(GroupId(42), p(0, 1));
        let mut wire = ProtoMsg::FlushCommit {
            target_seq: 2,
            view,
            deliver: Vec::new(),
            covered: Frontier::new(),
            gbcasts: Vec::new(),
        }
        .encode(GroupId(42));
        assert!(ProtoMsg::decode(&wire).is_ok(), "intact commit decodes");
        wire.remove("covered");
        assert!(ProtoMsg::decode(&wire).is_err(), "lost frontier must error");
    }

    #[test]
    fn stability_roundtrip() {
        roundtrip(ProtoMsg::Stability {
            view_seq: 2,
            from_site: SiteId(3),
            ids: vec![MsgId::new(SiteId(0), 1), MsgId::new(SiteId(2), 8)],
        });
        roundtrip(ProtoMsg::Stability {
            view_seq: 2,
            from_site: SiteId(3),
            ids: vec![],
        });
    }

    #[test]
    fn reform_messages_roundtrip() {
        let mut covered = Frontier::new();
        covered.observe(MsgId::new(SiteId(0), 11));
        covered.observe(MsgId::new(SiteId(2), 4));
        roundtrip(ProtoMsg::ReformSummary {
            from_site: SiteId(2),
            view_seq: 9,
            covered,
            rank: 1,
        });
        // A log with no deliveries (views only) summarises with an empty frontier.
        roundtrip(ProtoMsg::ReformSummary {
            from_site: SiteId(0),
            view_seq: 1,
            covered: Frontier::new(),
            rank: 0,
        });
        roundtrip(ProtoMsg::ReformAlive { contact: SiteId(3) });
    }

    #[test]
    fn long_msg_lists_roundtrip_past_the_static_name_table() {
        // 80 elements: indices 0..63 use the static `i{N}` table, 64..79 the scratch path.
        let items: Vec<Message> = (0..80u64).map(Message::with_body).collect();
        let packed = pack_msg_list(&items);
        let back = unpack_msg_list(&packed).expect("unpack");
        assert_eq!(back, items);
        // The last static name and the first scratch-built name are both present.
        assert!(packed.get_msg("i63").is_some());
        assert!(packed.get_msg("i64").is_some());
    }

    #[test]
    fn decode_frame_parses_once_per_frame_and_counts_wire_work() {
        let msg = ProtoMsg::AbData {
            id: MsgId::new(SiteId(1), 2),
            sender: p(1, 1),
            view_seq: 1,
            payload: Message::with_body("fan-out"),
        };
        let encodes = wire_stats::frame_encodes();
        let decodes = wire_stats::frame_decodes();
        let frame = msg.encode_frame(GroupId(9));
        assert_eq!(wire_stats::frame_encodes() - encodes, 1);
        // N receivers alias the frame; only the first parse does work.
        let copies: Vec<_> = (0..4).map(|_| frame.clone()).collect();
        for c in &copies {
            let (g, back) = ProtoMsg::decode_frame(c).expect("decode");
            assert_eq!(*g, GroupId(9));
            assert_eq!(back, &msg);
        }
        assert_eq!(
            wire_stats::frame_decodes() - decodes,
            1,
            "one parse per frame, not per receiver"
        );
    }

    #[test]
    fn decode_frame_rejects_without_poisoning_the_counterpath() {
        let bogus = Frame::new(Message::with_body(1u64));
        assert!(ProtoMsg::decode_frame(&bogus).is_err());
        // A failed parse is not memoized; a later attempt re-reports the error.
        assert!(ProtoMsg::decode_frame(&bogus).is_err());
    }

    #[test]
    fn decode_rejects_non_protocol_messages() {
        assert!(!ProtoMsg::is_proto_message(&Message::with_body(1u64)));
        assert!(ProtoMsg::decode(&Message::with_body(1u64)).is_err());
        let mut m = Message::new();
        m.set(TYPE_FIELD, "bogus");
        m.set(GROUP_FIELD, GroupId(1));
        assert!(ProtoMsg::decode(&m).is_err());
    }
}
