//! Criterion benchmarks of the multicast primitives (the wall-clock cost of simulating the
//! protocols; the *virtual-time* results the paper reports come from the `repro` binary).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use vsync_bench::BenchCluster;
use vsync_core::{LatencyProfile, ProtocolKind};

fn bench_primitive_latency(c: &mut Criterion) {
    let mut group = c.benchmark_group("primitive_one_reply_call");
    group.sample_size(10);
    for (name, proto) in [
        ("cbcast", ProtocolKind::Cbcast),
        ("abcast", ProtocolKind::Abcast),
        ("gbcast", ProtocolKind::Gbcast),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &proto, |b, proto| {
            b.iter_batched(
                || BenchCluster::new(LatencyProfile::Modern, 3, 1),
                |mut cluster| cluster.latency_one_reply(*proto, 128),
                criterion::BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

fn bench_async_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("async_cbcast_burst");
    group.sample_size(10);
    for size in [100usize, 4_096] {
        group.bench_with_input(BenchmarkId::from_parameter(size), &size, |b, size| {
            b.iter_batched(
                || BenchCluster::new(LatencyProfile::Modern, 3, 1),
                |mut cluster| cluster.async_cbcast_throughput(*size, 8),
                criterion::BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

criterion_group!(benches, bench_primitive_latency, bench_async_throughput);
criterion_main!(benches);
