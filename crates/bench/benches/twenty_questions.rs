//! Criterion benchmark of the full twenty-questions request path (Section 5 workload) on the
//! fast profile: deploy once per batch, then measure query round-trips.

use criterion::{criterion_group, criterion_main, Criterion};
use vsync_apps::twenty::{Database, Op, Query, TwentyQuestions};
use vsync_core::{Duration, IsisSystem, LatencyProfile, SiteId};

fn bench_queries(c: &mut Criterion) {
    let mut group = c.benchmark_group("twenty_questions");
    group.sample_size(10);
    group.bench_function("vertical_query_roundtrip", |b| {
        b.iter_batched(
            || {
                let mut sys = IsisSystem::new(4, LatencyProfile::Modern);
                let sites: Vec<SiteId> = (0..3).map(SiteId).collect();
                let svc = TwentyQuestions::deploy(&mut sys, "twenty", &sites, 3, Database::demo());
                let client = sys.spawn(SiteId(3), |_| {});
                (sys, svc, client)
            },
            |(mut sys, svc, client)| {
                let q = Query::vertical("price", Op::Gt, "9000");
                svc.query(&mut sys, client, &q, Duration::from_secs(5))
            },
            criterion::BatchSize::SmallInput,
        );
    });
    group.bench_function("horizontal_query_roundtrip", |b| {
        b.iter_batched(
            || {
                let mut sys = IsisSystem::new(4, LatencyProfile::Modern);
                let sites: Vec<SiteId> = (0..3).map(SiteId).collect();
                let svc = TwentyQuestions::deploy(&mut sys, "twenty", &sites, 3, Database::demo());
                let client = sys.spawn(SiteId(3), |_| {});
                (sys, svc, client)
            },
            |(mut sys, svc, client)| {
                let q = Query::horizontal("price", Op::Gt, "9000");
                svc.query(&mut sys, client, &q, Duration::from_secs(5))
            },
            criterion::BatchSize::SmallInput,
        );
    });
    group.finish();
}

criterion_group!(benches, bench_queries);
criterion_main!(benches);
