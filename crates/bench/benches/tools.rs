//! Criterion benchmarks of the protocol building blocks used by every tool: the message
//! codec and the CBCAST / ABCAST ordering state machines.

use criterion::{criterion_group, criterion_main, Criterion};
use vsync_msg::{codec, Message};
use vsync_net::MsgId;
use vsync_proto::abcast::AbcastState;
use vsync_proto::cbcast::{CbcastState, ReadyCb};
use vsync_util::{ProcessId, SiteId, VectorClock};

fn bench_codec(c: &mut Criterion) {
    let msg = Message::new()
        .with("price", 9000u64)
        .with("color", "red")
        .with("blob", vec![0u8; 1024])
        .with(
            "members",
            vec![vsync_util::Address::Group(vsync_util::GroupId(7)); 4],
        );
    let encoded = codec::encode(&msg);
    c.bench_function("codec_encode_1k", |b| b.iter(|| codec::encode(&msg)));
    // The decode hot path: the borrowing view decode, as the stable-store log scan reads
    // entries.  The `_shared` and `_copy` variants keep the owned-over-shared-buffer and
    // fully-copying paths visible alongside it.
    c.bench_function("codec_decode_1k", |b| {
        b.iter(|| codec::decode_view(&encoded).unwrap())
    });
    c.bench_function("codec_decode_1k_shared", |b| {
        b.iter(|| codec::decode_shared(&encoded).unwrap())
    });
    c.bench_function("codec_decode_1k_copy", |b| {
        b.iter(|| codec::decode(&encoded).unwrap())
    });
}

fn bench_cbcast_delivery(c: &mut Criterion) {
    c.bench_function("cbcast_receive_drain_100", |b| {
        b.iter(|| {
            let mut cb = CbcastState::new(4);
            for i in 1..=100u64 {
                let ready = cb.receive(ReadyCb {
                    id: MsgId::new(SiteId(1), i),
                    sender: ProcessId::new(SiteId(1), 1),
                    sender_rank: 1,
                    vt: VectorClock::from_entries(vec![0, i, 0, 0]),
                    payload: Message::with_body(i),
                });
                assert_eq!(ready.len(), 1);
            }
            cb
        })
    });
}

fn bench_abcast_ordering(c: &mut Criterion) {
    c.bench_function("abcast_order_drain_100", |b| {
        b.iter(|| {
            let mut ab = AbcastState::new();
            for i in 1..=100u64 {
                let id = MsgId::new(SiteId(1), i);
                let p = ab.on_data(id, ProcessId::new(SiteId(1), 1), Message::with_body(i));
                ab.decide(id, p, SiteId(1));
            }
            let delivered = ab.drain();
            assert_eq!(delivered.len(), 100);
            delivered
        })
    });
}

criterion_group!(
    benches,
    bench_codec,
    bench_cbcast_delivery,
    bench_abcast_ordering
);
criterion_main!(benches);
