//! Argument parsing for the `repro` binary, split out so the dispatch is unit-testable:
//! an unknown experiment name must be a hard error (nonzero exit, usage on stderr), or CI
//! scripts can typo an experiment name and silently "pass" without measuring anything.

/// Usage string printed to stderr on a bad invocation.
pub const USAGE: &str = "usage: repro [table1 | figure2 | figure3 | section5 | ablation-order \
     | ablation-view [bg-msgs-per-member] | all [bg-msgs-per-member]]";

/// Default background CBCASTs per member for the view-change ablation (see
/// [`crate::ablation_view_change`]); with zero the ablation measures nothing.
pub const DEFAULT_VIEW_BACKGROUND: usize = 8;

/// A parsed `repro` invocation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Experiment {
    /// Table 1 — multicast overhead of toolkit routines.
    Table1,
    /// Figure 2 — throughput and latency vs message size.
    Figure2,
    /// Figure 3 — ABCAST execution-time breakdown.
    Figure3,
    /// Section 5 — twenty-questions aggregate rates.
    Section5,
    /// Ablation — two-phase ABCAST vs fixed sequencer.
    AblationOrder,
    /// Ablation — view-change latency vs group size, with background traffic.
    AblationView {
        /// Unstable CBCASTs injected per member before the join.
        background_per_member: usize,
    },
    /// Every experiment in sequence.
    All {
        /// Background traffic for the view-change ablation leg.
        background_per_member: usize,
    },
}

/// Parses `repro` arguments (program name excluded).  Returns the experiment to run, or an
/// error message (including the usage line) for stderr — in which case the caller must exit
/// nonzero.
pub fn parse(args: &[String]) -> Result<Experiment, String> {
    let what = args.first().map(String::as_str).unwrap_or("all");
    let background = |idx: usize| -> Result<usize, String> {
        match args.get(idx) {
            None => Ok(DEFAULT_VIEW_BACKGROUND),
            Some(raw) => raw
                .parse::<usize>()
                .map_err(|_| format!("bad background message count {raw:?}\n{USAGE}")),
        }
    };
    let exp = match what {
        "table1" => Experiment::Table1,
        "figure2" => Experiment::Figure2,
        "figure3" => Experiment::Figure3,
        "section5" => Experiment::Section5,
        "ablation-order" => Experiment::AblationOrder,
        "ablation-view" => Experiment::AblationView {
            background_per_member: background(1)?,
        },
        "all" => Experiment::All {
            background_per_member: background(1)?,
        },
        other => return Err(format!("unknown experiment {other:?}\n{USAGE}")),
    };
    let max_args = match exp {
        Experiment::AblationView { .. } | Experiment::All { .. } => 2,
        _ => 1,
    };
    if args.len() > max_args {
        return Err(format!("unexpected argument {:?}\n{USAGE}", args[max_args]));
    }
    Ok(exp)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn known_experiments_parse() {
        assert_eq!(parse(&argv(&["table1"])), Ok(Experiment::Table1));
        assert_eq!(parse(&argv(&["figure2"])), Ok(Experiment::Figure2));
        assert_eq!(parse(&argv(&["figure3"])), Ok(Experiment::Figure3));
        assert_eq!(parse(&argv(&["section5"])), Ok(Experiment::Section5));
        assert_eq!(
            parse(&argv(&["ablation-order"])),
            Ok(Experiment::AblationOrder)
        );
    }

    #[test]
    fn no_args_means_all_with_default_background() {
        assert_eq!(
            parse(&[]),
            Ok(Experiment::All {
                background_per_member: DEFAULT_VIEW_BACKGROUND
            })
        );
    }

    #[test]
    fn ablation_view_accepts_a_background_count() {
        assert_eq!(
            parse(&argv(&["ablation-view"])),
            Ok(Experiment::AblationView {
                background_per_member: DEFAULT_VIEW_BACKGROUND
            })
        );
        assert_eq!(
            parse(&argv(&["ablation-view", "32"])),
            Ok(Experiment::AblationView {
                background_per_member: 32
            })
        );
    }

    #[test]
    fn unknown_experiment_is_an_error_with_usage() {
        let err = parse(&argv(&["bogus"])).expect_err("unknown name must fail");
        assert!(err.contains("bogus"));
        assert!(
            err.contains("usage:"),
            "error carries the usage line: {err}"
        );
    }

    #[test]
    fn malformed_background_count_is_an_error() {
        let err = parse(&argv(&["ablation-view", "lots"])).expect_err("bad count");
        assert!(err.contains("lots"));
        assert!(err.contains("usage:"));
    }

    #[test]
    fn trailing_garbage_is_an_error() {
        assert!(parse(&argv(&["table1", "extra"])).is_err());
        assert!(parse(&argv(&["ablation-view", "4", "extra"])).is_err());
    }
}
