//! Measurement harness reproducing the paper's evaluation (Section 7).
//!
//! The functions here build simulated clusters with the `Paper1987` latency profile (10 ms
//! intra-site hop, 16 ms inter-site packet, 4 KiB fragmentation — the constants the paper
//! reports) and measure the same quantities the paper plots:
//!
//! * [`table1`] — multicasts required by each toolkit routine (Table 1);
//! * [`figure2`] — asynchronous CBCAST throughput and CBCAST/ABCAST/GBCAST latency versus
//!   message size (Figure 2);
//! * [`figure3`] — the breakdown of an ABCAST's execution time into link traversals and
//!   processing (Figure 3);
//! * [`section5`] — the twenty-questions aggregate query/update rates (Section 5 summary);
//! * [`ablation_ordering`] — ISIS two-phase ABCAST versus a fixed-sequencer baseline;
//! * [`ablation_view_change`] — view-change (GBCAST flush) latency versus group size.

pub mod baseline;
pub mod cli;

use std::cell::RefCell;
use std::rc::Rc;

use vsync_apps::twenty::{Database, Op, Query, TwentyQuestions};
use vsync_core::{
    Address, Duration, EntryId, IsisSystem, LatencyProfile, Message, ProcessId, ProtocolKind,
    ReplyWanted, SiteId,
};
use vsync_net::NetStats;
use vsync_proto::sequencer::{abcast_inter_site_hops, sequencer_inter_site_hops};

/// Entry used by the benchmark member processes.
pub const BENCH_ENTRY: EntryId = EntryId(70);

/// One row of a reproduced table.
#[derive(Clone, Debug)]
pub struct Row {
    /// Row label (tool routine, message size, ...).
    pub label: String,
    /// Column values, already formatted.
    pub values: Vec<String>,
}

/// A reproduced table or figure (as a data series).
#[derive(Clone, Debug)]
pub struct Report {
    /// Table / figure title.
    pub title: String,
    /// Column headers.
    pub columns: Vec<String>,
    /// Rows.
    pub rows: Vec<Row>,
}

impl Report {
    /// Renders the report as a Markdown table.
    pub fn to_markdown(&self) -> String {
        let mut s = format!("### {}\n\n", self.title);
        s.push_str(&format!("| {} |\n", self.columns.join(" | ")));
        s.push_str(&format!(
            "|{}|\n",
            self.columns
                .iter()
                .map(|_| "---")
                .collect::<Vec<_>>()
                .join("|")
        ));
        for r in &self.rows {
            s.push_str(&format!("| {} | {} |\n", r.label, r.values.join(" | ")));
        }
        s
    }
}

/// A benchmark cluster: a group with one member per site plus a co-located client, running
/// under the given latency profile.
pub struct BenchCluster {
    /// The simulated system.
    pub sys: IsisSystem,
    /// The group spanning all member sites.
    pub gid: vsync_core::GroupId,
    /// Group members, one per site, in rank order.
    pub members: Vec<ProcessId>,
    /// A client process co-located with the rank-0 member (so one reply is always local, as
    /// in the paper's latency measurements).
    pub local_client: ProcessId,
    /// Count of payload bytes delivered at remote members (for throughput runs).
    pub delivered_bytes: Rc<RefCell<u64>>,
}

impl BenchCluster {
    /// Builds a cluster of `num_sites` sites with one echo member per site.
    pub fn new(profile: LatencyProfile, num_sites: usize, seed: u64) -> Self {
        let mut sys = IsisSystem::builder(num_sites)
            .profile(profile)
            .seed(seed)
            .build();
        let delivered_bytes = Rc::new(RefCell::new(0u64));
        let mut members = Vec::new();
        let gid = sys.allocate_group_id();
        for i in 0..num_sites {
            let counter = delivered_bytes.clone();
            let pid = sys.spawn(SiteId(i as u16), move |b| {
                b.on_entry(BENCH_ENTRY, move |ctx, msg| {
                    if let Some(bytes) = msg.get_bytes("payload") {
                        *counter.borrow_mut() += bytes.len() as u64;
                    }
                    if msg.get_bool("want-reply").unwrap_or(false) {
                        ctx.reply(msg, Message::with_body(1u64));
                    }
                });
            });
            if i == 0 {
                sys.create_group_with_id("bench", gid, pid);
            } else {
                sys.join_and_wait(gid, pid, None, Duration::from_secs(60))
                    .expect("bench member join");
            }
            members.push(pid);
        }
        let local_client = sys.spawn(SiteId(0), |_| {});
        sys.run_ms(100);
        BenchCluster {
            sys,
            gid,
            members,
            local_client,
            delivered_bytes,
        }
    }

    /// Latency seen by the sender for one multicast of `size` bytes when one (local) reply is
    /// requested — the quantity plotted in Figure 2(b-d).
    pub fn latency_one_reply(&mut self, protocol: ProtocolKind, size: usize) -> Duration {
        let payload = Message::new()
            .with("payload", vec![0u8; size])
            .with("want-reply", true);
        let start = self.sys.now();
        let outcome = self.sys.client_call(
            self.local_client,
            vec![Address::Group(self.gid)],
            BENCH_ENTRY,
            payload,
            protocol,
            ReplyWanted::One,
            Duration::from_secs(120),
        );
        assert!(
            outcome.error.is_none(),
            "bench call failed: {:?}",
            outcome.error
        );
        self.sys.now() - start
    }

    /// Asynchronous CBCAST throughput in bytes/second for messages of `size` bytes:
    /// the sender issues `count` multicasts back-to-back and we measure until every remote
    /// member has received them all (Figure 2(a)).
    pub fn async_cbcast_throughput(&mut self, size: usize, count: usize) -> f64 {
        *self.delivered_bytes.borrow_mut() = 0;
        let remote_members = self.members.len() - 1;
        let expected = (size * count * remote_members) as u64;
        let start = self.sys.now();
        for _ in 0..count {
            let payload = Message::new().with("payload", vec![0u8; size]);
            self.sys.client_send(
                self.members[0],
                self.gid,
                BENCH_ENTRY,
                payload,
                ProtocolKind::Cbcast,
            );
        }
        let bytes = self.delivered_bytes.clone();
        let ok = self
            .sys
            .run_until_condition(Duration::from_secs(600), move |_s| {
                *bytes.borrow() >= expected
            });
        assert!(ok, "throughput run never completed");
        let elapsed = (self.sys.now() - start).as_secs_f64().max(1e-9);
        (size * count) as f64 / elapsed
    }
}

/// A benchmark cluster hosting several independent groups, each spanning every site.
///
/// Exercises the engine burst path when one site's protocols process serves multiple
/// `GroupEndpoint`s at once — the fan-out frames of different groups interleave in the
/// event queue and the per-tick group sweep touches every endpoint.
pub struct MultiGroupCluster {
    /// The simulated system.
    pub sys: IsisSystem,
    /// One group id per group, in creation order.
    pub gids: Vec<vsync_core::GroupId>,
    /// The rank-0 (sending) member of each group.
    pub senders: Vec<ProcessId>,
    /// Count of payload bytes delivered at remote members, across all groups.
    pub delivered_bytes: Rc<RefCell<u64>>,
}

impl MultiGroupCluster {
    /// Builds `num_groups` groups over `num_sites` sites with one member per (group, site).
    /// Group creators rotate around the sites so coordination load is spread.
    pub fn new(profile: LatencyProfile, num_sites: usize, num_groups: usize, seed: u64) -> Self {
        let mut sys = IsisSystem::builder(num_sites)
            .profile(profile)
            .seed(seed)
            .build();
        let delivered_bytes = Rc::new(RefCell::new(0u64));
        let mut gids = Vec::new();
        let mut senders = Vec::new();
        for g in 0..num_groups {
            let gid = sys.allocate_group_id();
            let creator_site = g % num_sites;
            let mut creator = None;
            for offset in 0..num_sites {
                let site = SiteId(((creator_site + offset) % num_sites) as u16);
                let counter = delivered_bytes.clone();
                // Only members remote from the group's sender count: the sender's own
                // (instant) local delivery must not satisfy the completion condition.
                let is_remote = offset != 0;
                let pid = sys.spawn(site, move |b| {
                    b.on_entry(BENCH_ENTRY, move |_ctx, msg| {
                        if !is_remote {
                            return;
                        }
                        if let Some(bytes) = msg.get_bytes("payload") {
                            *counter.borrow_mut() += bytes.len() as u64;
                        }
                    });
                });
                if offset == 0 {
                    sys.create_group_with_id(&format!("bench-{g}"), gid, pid);
                    creator = Some(pid);
                } else {
                    sys.join_and_wait(gid, pid, None, Duration::from_secs(60))
                        .expect("multi-group member join");
                }
            }
            gids.push(gid);
            senders.push(creator.expect("creator spawned"));
        }
        sys.run_ms(100);
        MultiGroupCluster {
            sys,
            gids,
            senders,
            delivered_bytes,
        }
    }

    /// Sends `count` asynchronous CBCASTs of `size` bytes into *every* group (round-robin
    /// across groups, so the per-site event queue interleaves the fan-outs) and runs until
    /// every remote member of every group received them all.  Returns aggregate bytes/s.
    pub fn burst_throughput(&mut self, size: usize, count: usize) -> f64 {
        *self.delivered_bytes.borrow_mut() = 0;
        let remote_members = self.sys.sites().len() - 1;
        let total_msgs = count * self.gids.len();
        let expected = (size * total_msgs * remote_members) as u64;
        let start = self.sys.now();
        for round in 0..count {
            for (gid, sender) in self.gids.iter().zip(&self.senders) {
                let payload = Message::new()
                    .with("payload", vec![0u8; size])
                    .with("round", round as u64);
                self.sys
                    .client_send(*sender, *gid, BENCH_ENTRY, payload, ProtocolKind::Cbcast);
            }
        }
        let bytes = self.delivered_bytes.clone();
        let ok = self
            .sys
            .run_until_condition(Duration::from_secs(600), move |_s| {
                *bytes.borrow() >= expected
            });
        assert!(ok, "multi-group burst never completed");
        let elapsed = (self.sys.now() - start).as_secs_f64().max(1e-9);
        (size * total_msgs) as f64 / elapsed
    }
}

/// Reproduces Table 1: multicasts required per toolkit routine.
pub fn table1() -> Report {
    use vsync_tools::{ConfigTool, NewsService, ReplicatedData, SemaphoreTool, UpdateOrdering};

    let mut sys = IsisSystem::builder(4)
        .profile(LatencyProfile::Modern)
        .seed(7)
        .build();
    let gid = sys.allocate_group_id();
    let mut members = Vec::new();
    for i in 0..3u16 {
        let data = ReplicatedData::new(gid, EntryId(60), UpdateOrdering::Causal);
        let cfg = ConfigTool::new(gid, EntryId(61));
        let sem = SemaphoreTool::new(gid, EntryId(62));
        sem.define("mutex", 1);
        let news = NewsService::new(gid, EntryId(63));
        let (d, c, s, n) = (data.clone(), cfg.clone(), sem.clone(), news.clone());
        let pid = sys.spawn(SiteId(i), move |b| {
            d.attach(b);
            c.attach(b);
            s.attach(b);
            n.attach(b);
            b.on_entry(BENCH_ENTRY, |ctx, msg| {
                ctx.reply(msg, Message::with_body(1u64));
            });
        });
        if i == 0 {
            sys.create_group_with_id("t1", gid, pid);
        } else {
            sys.join_and_wait(gid, pid, None, Duration::from_secs(30))
                .unwrap();
        }
        members.push(pid);
    }
    let client = sys.spawn(SiteId(3), |_| {});
    sys.run_ms(200);

    let mut rows = Vec::new();
    let mut measure =
        |sys: &mut IsisSystem, label: &str, paper: &str, op: &mut dyn FnMut(&mut IsisSystem)| {
            let before = sys.stats();
            op(sys);
            sys.run_ms(400);
            let delta = sys.stats().delta_since(&before);
            rows.push(Row {
                label: label.to_owned(),
                values: vec![paper.to_owned(), delta.multicast_summary()],
            });
        };

    measure(
        &mut sys,
        "group RPC, 1 reply (bcast + reply)",
        "multicast + replies",
        &mut |sys| {
            let _ = sys.client_call(
                client,
                vec![Address::Group(gid)],
                BENCH_ENTRY,
                Message::new().with("want-reply", true),
                ProtocolKind::Cbcast,
                ReplyWanted::One,
                Duration::from_secs(10),
            );
        },
    );
    measure(&mut sys, "reply(msg)", "1 async CBCAST", &mut |sys| {
        // Isolated: a member replies to a synthesized request.
        let _ = sys.client_call(
            client,
            vec![Address::Process(members[0])],
            BENCH_ENTRY,
            Message::new().with("want-reply", true),
            ProtocolKind::Cbcast,
            ReplyWanted::One,
            Duration::from_secs(10),
        );
    });
    measure(&mut sys, "pg_lookup(name)", "1 local RPC", &mut |sys| {
        let _ = sys.lookup(SiteId(3), "t1");
    });
    let joiner_holder: Rc<RefCell<Option<ProcessId>>> = Rc::new(RefCell::new(None));
    let jh = joiner_holder.clone();
    measure(
        &mut sys,
        "pg_join(gid)",
        "1 CBCAST + 1 GBCAST + reply",
        &mut |sys| {
            let joiner = sys.spawn(SiteId(3), |_| {});
            sys.join_and_wait(gid, joiner, None, Duration::from_secs(30))
                .unwrap();
            *jh.borrow_mut() = Some(joiner);
        },
    );
    measure(&mut sys, "pg_leave(gid)", "1 GBCAST", &mut |sys| {
        let joiner = joiner_holder.borrow().unwrap();
        let _ = sys.leave_and_wait(gid, joiner, Duration::from_secs(30));
    });
    measure(
        &mut sys,
        "replicated update (async mode)",
        "1 async CBCAST or 1 ABCAST",
        &mut |sys| {
            sys.client_send(
                members[0],
                gid,
                EntryId(60),
                Message::new().with("rd-item", "x").with("rd-value", 1u64),
                ProtocolKind::Cbcast,
            );
        },
    );
    measure(
        &mut sys,
        "replicated read (by manager)",
        "no cost",
        &mut |_sys| {
            // A local read involves no communication at all.
        },
    );
    measure(
        &mut sys,
        "semaphore P (mutual exclusion)",
        "1 ABCAST, all replies",
        &mut |sys| {
            sys.client_send(
                members[0],
                gid,
                EntryId(62),
                Message::new()
                    .with("sem-name", "mutex")
                    .with("sem-op", "P")
                    .with("sem-proc", members[0]),
                ProtocolKind::Abcast,
            );
        },
    );
    measure(
        &mut sys,
        "semaphore V (release)",
        "1 async CBCAST",
        &mut |sys| {
            sys.client_send(
                members[0],
                gid,
                EntryId(62),
                Message::new()
                    .with("sem-name", "mutex")
                    .with("sem-op", "V")
                    .with("sem-proc", members[0]),
                ProtocolKind::Abcast,
            );
        },
    );
    measure(
        &mut sys,
        "conf_update(item, value)",
        "1 GBCAST",
        &mut |sys| {
            sys.client_send(
                members[1],
                gid,
                EntryId(61),
                Message::new().with("cfg-item", "n").with("cfg-value", 3u64),
                ProtocolKind::Gbcast,
            );
        },
    );
    measure(&mut sys, "conf_read(item)", "no cost", &mut |_sys| {});
    measure(
        &mut sys,
        "news post(subject, msg)",
        "1 async CBCAST or ABCAST",
        &mut |sys| {
            sys.client_send(
                members[2],
                gid,
                EntryId(63),
                Message::with_body(1u64).with("news-subject", "alerts"),
                ProtocolKind::Abcast,
            );
        },
    );

    Report {
        title: "Table 1 — multicast overhead of selected toolkit routines".to_owned(),
        columns: vec![
            "Tool routine".into(),
            "Paper (multicasts required)".into(),
            "Measured".into(),
        ],
        rows,
    }
}

/// Reproduces Figure 2: asynchronous CBCAST throughput and one-reply latency of the three
/// primitives, as a function of message size.
pub fn figure2(sizes: &[usize]) -> Report {
    let mut rows = Vec::new();
    for &size in sizes {
        let mut cluster = BenchCluster::new(LatencyProfile::Paper1987, 4, 11);
        let throughput = cluster.async_cbcast_throughput(size, 8);
        let cb = cluster.latency_one_reply(ProtocolKind::Cbcast, size);
        let ab = cluster.latency_one_reply(ProtocolKind::Abcast, size);
        let gb = cluster.latency_one_reply(ProtocolKind::Gbcast, size);
        rows.push(Row {
            label: format!("{size} B"),
            values: vec![
                format!("{:.0}", throughput),
                format!("{:.1}", cb.as_millis_f64()),
                format!("{:.1}", ab.as_millis_f64()),
                format!("{:.1}", gb.as_millis_f64()),
            ],
        });
    }
    Report {
        title: "Figure 2 — async CBCAST throughput (bytes/s) and one-reply latency (ms) vs message size (1987 profile)"
            .to_owned(),
        columns: vec![
            "Message size".into(),
            "async CBCAST throughput (B/s)".into(),
            "CBCAST latency (ms)".into(),
            "ABCAST latency (ms)".into(),
            "GBCAST latency (ms)".into(),
        ],
        rows,
    }
}

/// Splits a measured ABCAST latency into its Figure 3 components — inter-site link
/// traversals, intra-site hops, and protocol processing — reconciled so that every
/// component is non-negative and the three sum exactly to the measured total.
///
/// The analytic link/hop budgets (3 × 16 ms inter-site, 2 × 10 ms intra-site under the 1987
/// profile) are *upper bounds*: when the measured total comes in under budget (packets that
/// overlap in time), the budgets are truncated in order rather than reporting a negative
/// processing residual.
pub fn figure3_breakdown(total_ms: f64) -> (f64, f64, f64) {
    const LINK_BUDGET_MS: f64 = 48.0;
    const HOP_BUDGET_MS: f64 = 20.0;
    let total = total_ms.max(0.0);
    let link = total.min(LINK_BUDGET_MS);
    let hops = (total - link).min(HOP_BUDGET_MS);
    let processing = total - link - hops;
    (link, hops, processing)
}

/// Reproduces Figure 3: where the time of an ABCAST goes.
pub fn figure3() -> Report {
    // Measure the delivery latency of an ABCAST at a remote member under the 1987 profile.
    let delivered_at = Rc::new(RefCell::new(None));
    let mut sys = IsisSystem::builder(3)
        .profile(LatencyProfile::Paper1987)
        .seed(3)
        .build();
    let gid = sys.allocate_group_id();
    let mut members = Vec::new();
    for i in 0..3u16 {
        let slot = delivered_at.clone();
        let pid = sys.spawn(SiteId(i), move |b| {
            b.on_entry(BENCH_ENTRY, move |ctx, _msg| {
                if ctx.me().site == SiteId(2) && slot.borrow().is_none() {
                    *slot.borrow_mut() = Some(ctx.now());
                }
            });
        });
        if i == 0 {
            sys.create_group_with_id("fig3", gid, pid);
        } else {
            sys.join_and_wait(gid, pid, None, Duration::from_secs(60))
                .unwrap();
        }
        members.push(pid);
    }
    sys.run_ms(200);
    let start = sys.now();
    sys.client_send(
        members[0],
        gid,
        BENCH_ENTRY,
        Message::with_body(1u64),
        ProtocolKind::Abcast,
    );
    let slot = delivered_at.clone();
    sys.run_until_condition(Duration::from_secs(30), move |_s| slot.borrow().is_some());
    let delivered = delivered_at.borrow().expect("abcast delivered remotely");
    let total = (delivered - start).as_millis_f64();

    // Analytical decomposition with the paper's constants: 3 inter-site traversals at 16 ms
    // plus intra-site hops at 10 ms and per-packet processing, reconciled against the
    // measured total so components are non-negative and sum to it.
    let (link, hops, processing) = figure3_breakdown(total);
    let rows = vec![
        Row {
            label: "inter-site link traversals (<= 3 x 16 ms)".into(),
            values: vec![format!("{link:.1}")],
        },
        Row {
            label: "intra-site hops (client->stack, stack->member)".into(),
            values: vec![format!("{hops:.1}")],
        },
        Row {
            label: "protocol processing (packets x cpu)".into(),
            values: vec![format!("{processing:.1}")],
        },
        Row {
            label: "TOTAL measured latency to remote delivery".into(),
            values: vec![format!("{total:.1}")],
        },
        Row {
            label: "paper: ~70 ms before remote delivery (3 inter-site messages)".into(),
            values: vec!["70.0".into()],
        },
    ];
    Report {
        title: "Figure 3 — breakdown of ABCAST execution time (1987 profile, ms)".to_owned(),
        columns: vec!["Component".into(), "Time (ms)".into()],
        rows,
    }
}

/// Reproduces the Section 5 summary: twenty-questions aggregate query and update rates on
/// four sites under the 1987 profile.
pub fn section5(queries: usize, updates: usize) -> Report {
    let mut sys = IsisSystem::builder(5)
        .profile(LatencyProfile::Paper1987)
        .seed(5)
        .build();
    let sites: Vec<SiteId> = (0..4).map(SiteId).collect();
    let svc = TwentyQuestions::deploy(&mut sys, "twenty", &sites, 4, Database::demo());
    let client = sys.spawn(SiteId(4), |_| {});
    sys.run_ms(500);

    // Queries: alternate vertical and horizontal, measuring virtual time.
    let q_start = sys.now();
    for i in 0..queries {
        let q = if i % 2 == 0 {
            Query::vertical("price", Op::Gt, "9000")
        } else {
            Query::horizontal("color", Op::Eq, "blue")
        };
        let answers = svc.query(&mut sys, client, &q, Duration::from_secs(60));
        assert!(!answers.is_empty(), "query {i} got no answers");
    }
    let q_elapsed = (sys.now() - q_start).as_secs_f64();
    let q_rate = queries as f64 / q_elapsed.max(1e-9);

    // Updates (GBCAST).
    let u_start = sys.now();
    for i in 0..updates {
        svc.update(
            &mut sys,
            client,
            vec![
                ("object".into(), "car".into()),
                ("price".into(), format!("{}", 50_000 + i)),
            ],
        );
        sys.run_ms(250);
    }
    let expect = 10 + updates;
    sys.run_until_condition(Duration::from_secs(120), |_s| {
        svc.replica_sizes().iter().all(|n| *n >= expect)
    });
    let u_elapsed = (sys.now() - u_start).as_secs_f64();
    let u_rate = updates as f64 / u_elapsed.max(1e-9);

    Report {
        title: "Section 5 — twenty questions aggregate rates (4 sites, 1987 profile)".to_owned(),
        columns: vec!["Metric".into(), "Paper".into(), "Measured".into()],
        rows: vec![
            Row {
                label: "queries per second".into(),
                values: vec!["~30".into(), format!("{q_rate:.1}")],
            },
            Row {
                label: "replicated updates per second".into(),
                values: vec!["~5".into(), format!("{u_rate:.1}")],
            },
        ],
    }
}

/// Ablation: the ISIS decentralised two-phase ABCAST against a fixed-sequencer baseline, in
/// inter-site hops on the critical path and measured latency.
pub fn ablation_ordering() -> Report {
    let mut cluster = BenchCluster::new(LatencyProfile::Paper1987, 4, 13);
    let ab_latency = cluster.latency_one_reply(ProtocolKind::Abcast, 100);
    let params = vsync_core::NetParams::paper1987();
    let seq_remote_sender = sequencer_inter_site_hops(SiteId(1), SiteId(0)) as f64
        * params.inter_site_delay.as_millis_f64();
    let seq_local_sender = sequencer_inter_site_hops(SiteId(0), SiteId(0)) as f64
        * params.inter_site_delay.as_millis_f64();
    let ab_hops = abcast_inter_site_hops(SiteId(0), SiteId(1)) as f64
        * params.inter_site_delay.as_millis_f64();
    Report {
        title: "Ablation — ISIS two-phase ABCAST vs fixed-sequencer total order".to_owned(),
        columns: vec![
            "Variant".into(),
            "Inter-site link time to remote delivery (ms)".into(),
            "Notes".into(),
        ],
        rows: vec![
            Row {
                label: "ISIS ABCAST (measured, sender-side latency incl. local reply)".into(),
                values: vec![
                    format!("{:.1}", ab_latency.as_millis_f64()),
                    "decentralised; no hot spot".into(),
                ],
            },
            Row {
                label: "ISIS ABCAST (analytic, 3 inter-site hops)".into(),
                values: vec![
                    format!("{ab_hops:.1}"),
                    "phase 1 + proposal + phase 2".into(),
                ],
            },
            Row {
                label: "Sequencer, sender co-located with sequencer".into(),
                values: vec![
                    format!("{seq_local_sender:.1}"),
                    "1 hop; sequencer is a bottleneck".into(),
                ],
            },
            Row {
                label: "Sequencer, remote sender".into(),
                values: vec![
                    format!("{seq_remote_sender:.1}"),
                    "2 hops; extra forward to sequencer".into(),
                ],
            },
        ],
    }
}

/// Ablation: GBCAST / view-change latency as a function of group size.
///
/// `background_per_member` asynchronous CBCASTs are injected from every member immediately
/// before the join, so the flush has a real unstable-message union to collect and resend:
/// the paper's point is that view-change cost grows with the amount of in-flight traffic,
/// and with zero background the simulator's parallel flush fan-out reports a flat latency
/// regardless of group size.
pub fn ablation_view_change(sizes: &[usize], background_per_member: usize) -> Report {
    let mut rows = Vec::new();
    for &n in sizes {
        let mut cluster = BenchCluster::new(LatencyProfile::Paper1987, n, 17);
        // Unstable background traffic: sent but deliberately not run to stability before
        // the join triggers the flush.
        for member in cluster.members.clone() {
            for i in 0..background_per_member {
                cluster.sys.client_send(
                    member,
                    cluster.gid,
                    BENCH_ENTRY,
                    Message::new().with("payload", vec![0u8; 256]).with("bg", i),
                    ProtocolKind::Cbcast,
                );
            }
        }
        let start = cluster.sys.now();
        let joiner = cluster.sys.spawn(SiteId(0), |_| {});
        cluster
            .sys
            .join_and_wait(cluster.gid, joiner, None, Duration::from_secs(120))
            .expect("join");
        let elapsed = cluster.sys.now() - start;
        rows.push(Row {
            label: format!("{n} member sites"),
            values: vec![format!("{:.1}", elapsed.as_millis_f64())],
        });
    }
    Report {
        title: format!(
            "Ablation — view change (GBCAST flush) latency vs group size \
             ({background_per_member} unstable CBCASTs/member, 1987 profile)"
        ),
        columns: vec![
            "Group size".into(),
            "Join-to-view-installed latency (ms)".into(),
        ],
        rows,
    }
}

/// Convenience for the repro binary: multicast counter snapshot as a table.
pub fn stats_report(title: &str, stats: &NetStats) -> Report {
    Report {
        title: title.to_owned(),
        columns: vec!["Counter".into(), "Value".into()],
        rows: vec![
            Row {
                label: "multicasts".into(),
                values: vec![stats.multicast_summary()],
            },
            Row {
                label: "packets sent".into(),
                values: vec![stats.packets_sent.to_string()],
            },
            Row {
                label: "inter-site packets".into(),
                values: vec![stats.inter_site_packets.to_string()],
            },
            Row {
                label: "bytes sent".into(),
                values: vec![stats.bytes_sent.to_string()],
            },
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_markdown_rendering() {
        let r = Report {
            title: "T".into(),
            columns: vec!["a".into(), "b".into()],
            rows: vec![Row {
                label: "x".into(),
                values: vec!["1".into()],
            }],
        };
        let md = r.to_markdown();
        assert!(md.contains("### T"));
        assert!(md.contains("| a | b |"));
        assert!(md.contains("| x | 1 |"));
    }

    #[test]
    fn figure3_components_are_nonnegative_and_sum_to_total() {
        // Totals straddling both analytic budgets (48 ms link, 20 ms hops), including the
        // regime that used to yield a negative "protocol processing" residual.
        for total in [0.0, 10.0, 47.9, 48.0, 51.6, 68.0, 70.0, 123.4] {
            let (link, hops, processing) = figure3_breakdown(total);
            assert!(
                link >= 0.0 && hops >= 0.0 && processing >= 0.0,
                "total {total}: ({link}, {hops}, {processing})"
            );
            assert!(
                (link + hops + processing - total).abs() < 1e-9,
                "components must sum to the total: {total} vs {}",
                link + hops + processing
            );
            assert!(link <= 48.0 && hops <= 20.0, "budgets are upper bounds");
        }
        // A healthy 1987-profile measurement attributes the full budgets.
        let (link, hops, processing) = figure3_breakdown(75.0);
        assert_eq!((link, hops), (48.0, 20.0));
        assert!((processing - 7.0).abs() < 1e-9);
    }

    #[test]
    fn multi_group_cluster_delivers_every_burst_in_every_group() {
        let mut c = MultiGroupCluster::new(LatencyProfile::Modern, 3, 2, 1);
        assert_eq!(c.gids.len(), 2);
        let tp = c.burst_throughput(256, 2);
        assert!(tp > 0.0);
        // size * count * groups * remote members, every byte accounted for.
        assert_eq!(*c.delivered_bytes.borrow(), 256 * 2 * 2 * 2);
    }

    #[test]
    fn bench_cluster_latency_shapes_hold() {
        // Smoke-test with the fast profile so the unit test stays quick: ABCAST latency must
        // exceed CBCAST latency (it needs the ordering round), and throughput must be finite.
        let mut cluster = BenchCluster::new(LatencyProfile::Modern, 3, 1);
        let cb = cluster.latency_one_reply(ProtocolKind::Cbcast, 64);
        let ab = cluster.latency_one_reply(ProtocolKind::Abcast, 64);
        assert!(
            ab >= cb,
            "ABCAST ({ab:?}) should not be faster than CBCAST ({cb:?})"
        );
        let tp = cluster.async_cbcast_throughput(256, 4);
        assert!(tp > 0.0);
    }
}
