//! Machine-readable benchmark baselines (`BENCH_*.json`).
//!
//! The criterion shim prints human-readable per-iteration times; this module is the
//! machine-readable counterpart used by CI and by the checked-in `BENCH_*.json` history at
//! the repository root.  Each record carries the benchmark name, nanoseconds per operation,
//! operations per second, and — for benchmarks that push a known number of messages through
//! a protocol state machine per operation — a derived messages-per-second rate, so hot-path
//! regressions show up as a diff in a single file.
//!
//! The JSON is written by hand (no serde_json in the offline workspace); the schema is
//! deliberately flat:
//!
//! ```json
//! {
//!   "schema": "vsync-bench-baseline/v1",
//!   "records": [
//!     {"name": "abcast_order_drain_100", "ns_per_op": 12345.6,
//!      "ops_per_sec": 81004.1, "messages_per_op": 100, "messages_per_sec": 8100412.3}
//!   ]
//! }
//! ```

use std::fmt::Write as _;
use std::time::Instant;

/// Identifies the JSON layout; bump when fields change meaning.
pub const SCHEMA: &str = "vsync-bench-baseline/v1";

/// One measured benchmark.
#[derive(Clone, Debug)]
pub struct BenchRecord {
    /// Benchmark name (matches the criterion bench id where one exists).
    pub name: String,
    /// Mean wall-clock nanoseconds per operation.
    pub ns_per_op: f64,
    /// Operations per second (1e9 / `ns_per_op`).
    pub ops_per_sec: f64,
    /// Messages processed per operation, when the benchmark is message-shaped.
    pub messages_per_op: Option<u64>,
    /// Messages per second (`ops_per_sec * messages_per_op`).
    pub messages_per_sec: Option<f64>,
}

/// A set of benchmark records destined for one `BENCH_*.json` file.
#[derive(Clone, Debug, Default)]
pub struct Baseline {
    /// The measured records, in run order.
    pub records: Vec<BenchRecord>,
}

impl Baseline {
    /// Creates an empty baseline.
    pub fn new() -> Self {
        Baseline::default()
    }

    /// Measures `routine` over `iters` timed iterations (after `iters / 10`, minimum one,
    /// untimed warmup calls — enough to populate caches and let CPU frequency settle so the
    /// first record in a run is not cold-start noise) and appends the record.
    /// `messages_per_op` is the number of protocol messages one call of `routine` pushes
    /// through the system, if that is a meaningful unit for the benchmark.
    pub fn measure(
        &mut self,
        name: &str,
        iters: u64,
        messages_per_op: Option<u64>,
        mut routine: impl FnMut(),
    ) -> &BenchRecord {
        assert!(iters > 0, "at least one timed iteration");
        for _ in 0..(iters / 10).max(1) {
            routine();
        }
        let start = Instant::now();
        for _ in 0..iters {
            routine();
        }
        let elapsed = start.elapsed();
        let ns_per_op = elapsed.as_nanos() as f64 / iters as f64;
        let ops_per_sec = if ns_per_op > 0.0 {
            1e9 / ns_per_op
        } else {
            f64::INFINITY
        };
        self.records.push(BenchRecord {
            name: name.to_owned(),
            ns_per_op,
            ops_per_sec,
            messages_per_op,
            messages_per_sec: messages_per_op.map(|m| ops_per_sec * m as f64),
        });
        println!(
            "{name:<32} {ns_per_op:>14.1} ns/op  {ops_per_sec:>14.1} ops/s{}",
            match messages_per_op {
                Some(m) => format!("  {:>14.0} msgs/s", ops_per_sec * m as f64),
                None => String::new(),
            }
        );
        self.records.last().expect("record just pushed")
    }

    /// Renders the baseline as pretty-printed JSON.  Non-finite rates (a routine faster
    /// than the timer resolution yields infinite ops/s) serialize as `null` — JSON has no
    /// `inf` token.
    pub fn to_json(&self) -> String {
        fn num(v: f64) -> String {
            if v.is_finite() {
                format!("{v:.1}")
            } else {
                "null".to_owned()
            }
        }
        let mut s = String::new();
        s.push_str("{\n");
        let _ = writeln!(s, "  \"schema\": {:?},", SCHEMA);
        s.push_str("  \"records\": [\n");
        for (i, r) in self.records.iter().enumerate() {
            let _ = write!(
                s,
                "    {{\"name\": {:?}, \"ns_per_op\": {}, \"ops_per_sec\": {}",
                r.name,
                num(r.ns_per_op),
                num(r.ops_per_sec)
            );
            if let (Some(m), Some(mps)) = (r.messages_per_op, r.messages_per_sec) {
                let _ = write!(
                    s,
                    ", \"messages_per_op\": {m}, \"messages_per_sec\": {}",
                    num(mps)
                );
            }
            s.push('}');
            if i + 1 < self.records.len() {
                s.push(',');
            }
            s.push('\n');
        }
        s.push_str("  ]\n}\n");
        s
    }

    /// Writes the JSON to `path`.
    pub fn write(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_json())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_runs_warmup_plus_iters_and_derives_rates() {
        let mut b = Baseline::new();
        let mut count = 0u64;
        let r = b.measure("counting", 5, Some(10), || count += 1).clone();
        assert_eq!(count, 6, "warmup + 5 timed iterations");
        assert_eq!(r.name, "counting");
        assert!(r.ns_per_op >= 0.0);
        assert_eq!(r.messages_per_op, Some(10));
        let mps = r.messages_per_sec.expect("message rate derived");
        assert!((mps - r.ops_per_sec * 10.0).abs() < 1e-6);
    }

    #[test]
    fn json_layout_is_stable() {
        let mut b = Baseline::new();
        b.measure("a", 1, None, || {});
        b.measure("b", 1, Some(100), || {});
        let json = b.to_json();
        assert!(json.contains("\"schema\": \"vsync-bench-baseline/v1\""));
        assert!(json.contains("\"name\": \"a\""));
        assert!(json.contains("\"messages_per_op\": 100"));
        // Exactly one trailing comma between the two records, none after the last.
        assert_eq!(json.matches("},\n").count(), 1);
    }

    #[test]
    fn non_finite_rates_serialize_as_null() {
        let mut b = Baseline::new();
        b.records.push(BenchRecord {
            name: "instant".to_owned(),
            ns_per_op: 0.0,
            ops_per_sec: f64::INFINITY,
            messages_per_op: Some(10),
            messages_per_sec: Some(f64::INFINITY),
        });
        let json = b.to_json();
        assert!(json.contains("\"ops_per_sec\": null"));
        assert!(json.contains("\"messages_per_sec\": null"));
        assert!(!json.contains("inf"), "no bare inf token: {json}");
    }
}
