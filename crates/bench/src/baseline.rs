//! Machine-readable benchmark baselines (`BENCH_*.json`).
//!
//! The criterion shim prints human-readable per-iteration times; this module is the
//! machine-readable counterpart used by CI and by the checked-in `BENCH_*.json` history at
//! the repository root.  Each record carries the benchmark name, nanoseconds per operation,
//! operations per second, and — for benchmarks that push a known number of messages through
//! a protocol state machine per operation — a derived messages-per-second rate, so hot-path
//! regressions show up as a diff in a single file.
//!
//! The JSON is written by hand (no serde_json in the offline workspace); the schema is
//! deliberately flat:
//!
//! ```json
//! {
//!   "schema": "vsync-bench-baseline/v1",
//!   "records": [
//!     {"name": "abcast_order_drain_100", "ns_per_op": 12345.6,
//!      "ops_per_sec": 81004.1, "messages_per_op": 100, "messages_per_sec": 8100412.3}
//!   ]
//! }
//! ```

use std::fmt::Write as _;
use std::time::Instant;

/// Identifies the JSON layout; bump when fields change meaning.
pub const SCHEMA: &str = "vsync-bench-baseline/v1";

/// One measured benchmark.
#[derive(Clone, Debug)]
pub struct BenchRecord {
    /// Benchmark name (matches the criterion bench id where one exists).
    pub name: String,
    /// Mean wall-clock nanoseconds per operation.
    pub ns_per_op: f64,
    /// Operations per second (1e9 / `ns_per_op`).
    pub ops_per_sec: f64,
    /// Messages processed per operation, when the benchmark is message-shaped.
    pub messages_per_op: Option<u64>,
    /// Messages per second (`ops_per_sec * messages_per_op`).
    pub messages_per_sec: Option<f64>,
}

/// A set of benchmark records destined for one `BENCH_*.json` file.
#[derive(Clone, Debug, Default)]
pub struct Baseline {
    /// The measured records, in run order.
    pub records: Vec<BenchRecord>,
}

impl Baseline {
    /// Creates an empty baseline.
    pub fn new() -> Self {
        Baseline::default()
    }

    /// Measures `routine` over `iters` timed iterations (after `iters / 10`, minimum one,
    /// untimed warmup calls — enough to populate caches and let CPU frequency settle so the
    /// first record in a run is not cold-start noise) and appends the record.
    /// `messages_per_op` is the number of protocol messages one call of `routine` pushes
    /// through the system, if that is a meaningful unit for the benchmark.
    ///
    /// The timed iterations are split into up to five equal batches and the record keeps
    /// the *fastest batch's* mean.  CI runners and shared dev machines suffer load spikes
    /// that inflate a single long mean arbitrarily; the fastest batch tracks the
    /// undisturbed cost of the routine, which is the quantity the `BENCH_*.json`
    /// trajectory compares across PRs.
    pub fn measure(
        &mut self,
        name: &str,
        iters: u64,
        messages_per_op: Option<u64>,
        mut routine: impl FnMut(),
    ) -> &BenchRecord {
        assert!(iters > 0, "at least one timed iteration");
        for _ in 0..(iters / 10).max(1) {
            routine();
        }
        let batches = iters.min(5);
        let per_batch = iters / batches;
        let mut timed = 0;
        let mut ns_per_op = f64::INFINITY;
        for batch in 0..batches {
            // The last batch absorbs the remainder so exactly `iters` iterations run.
            let count = if batch == batches - 1 {
                iters - timed
            } else {
                per_batch
            };
            timed += count;
            let start = Instant::now();
            for _ in 0..count {
                routine();
            }
            let batch_ns = start.elapsed().as_nanos() as f64 / count as f64;
            ns_per_op = ns_per_op.min(batch_ns);
        }
        let ops_per_sec = if ns_per_op > 0.0 {
            1e9 / ns_per_op
        } else {
            f64::INFINITY
        };
        self.records.push(BenchRecord {
            name: name.to_owned(),
            ns_per_op,
            ops_per_sec,
            messages_per_op,
            messages_per_sec: messages_per_op.map(|m| ops_per_sec * m as f64),
        });
        println!(
            "{name:<32} {ns_per_op:>14.1} ns/op  {ops_per_sec:>14.1} ops/s{}",
            match messages_per_op {
                Some(m) => format!("  {:>14.0} msgs/s", ops_per_sec * m as f64),
                None => String::new(),
            }
        );
        self.records.last().expect("record just pushed")
    }

    /// Renders the baseline as pretty-printed JSON.  Non-finite rates (a routine faster
    /// than the timer resolution yields infinite ops/s) serialize as `null` — JSON has no
    /// `inf` token.
    pub fn to_json(&self) -> String {
        fn num(v: f64) -> String {
            if v.is_finite() {
                format!("{v:.1}")
            } else {
                "null".to_owned()
            }
        }
        let mut s = String::new();
        s.push_str("{\n");
        let _ = writeln!(s, "  \"schema\": {:?},", SCHEMA);
        s.push_str("  \"records\": [\n");
        for (i, r) in self.records.iter().enumerate() {
            let _ = write!(
                s,
                "    {{\"name\": {:?}, \"ns_per_op\": {}, \"ops_per_sec\": {}",
                r.name,
                num(r.ns_per_op),
                num(r.ops_per_sec)
            );
            if let (Some(m), Some(mps)) = (r.messages_per_op, r.messages_per_sec) {
                let _ = write!(
                    s,
                    ", \"messages_per_op\": {m}, \"messages_per_sec\": {}",
                    num(mps)
                );
            }
            s.push('}');
            if i + 1 < self.records.len() {
                s.push(',');
            }
            s.push('\n');
        }
        s.push_str("  ]\n}\n");
        s
    }

    /// Writes the JSON to `path`.
    pub fn write(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_json())
    }
}

/// Parses the `(name, ns_per_op)` pairs out of a `BENCH_*.json` file written by
/// [`Baseline::write`].  A hand-rolled scanner (no serde_json in the offline workspace)
/// that relies only on the writer's stable one-record-per-line layout; records with a
/// `null` rate (routine faster than the timer) are skipped.
pub fn parse_records(json: &str) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    for line in json.lines() {
        let Some(name_at) = line.find("\"name\": \"") else {
            continue;
        };
        let rest = &line[name_at + "\"name\": \"".len()..];
        let Some(name_end) = rest.find('"') else {
            continue;
        };
        let name = &rest[..name_end];
        let Some(ns_at) = line.find("\"ns_per_op\": ") else {
            continue;
        };
        let rest = &line[ns_at + "\"ns_per_op\": ".len()..];
        let num: String = rest
            .chars()
            .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-')
            .collect();
        if let Ok(v) = num.parse::<f64>() {
            out.push((name.to_owned(), v));
        }
    }
    out
}

/// Renders a Markdown delta table between two baselines (the checked-in reference and a
/// fresh run).  Regressions are flagged with a warning marker but never fail anything —
/// CI prints this into the job summary so drift is visible, while shared-runner noise
/// cannot break the build.
pub fn render_delta_table(old_label: &str, old: &[(String, f64)], new: &[(String, f64)]) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "### Bench delta vs `{old_label}` (warn-only)\n");
    s.push_str("| benchmark | baseline ns/op | current ns/op | delta |\n");
    s.push_str("|---|---|---|---|\n");
    for (name, new_ns) in new {
        match old.iter().find(|(n, _)| n == name) {
            Some((_, old_ns)) if *old_ns > 0.0 => {
                let ratio = new_ns / old_ns;
                let delta_pct = (ratio - 1.0) * 100.0;
                // > +25% slower earns a warning; bench noise on shared runners makes a
                // tighter threshold cry wolf.
                let marker = if ratio > 1.25 { " ⚠ regression" } else { "" };
                let _ = writeln!(
                    s,
                    "| {name} | {old_ns:.1} | {new_ns:.1} | {delta_pct:+.1}%{marker} |"
                );
            }
            _ => {
                let _ = writeln!(s, "| {name} | — | {new_ns:.1} | new |");
            }
        }
    }
    for (name, old_ns) in old {
        if !new.iter().any(|(n, _)| n == name) {
            let _ = writeln!(s, "| {name} | {old_ns:.1} | — | removed |");
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_runs_warmup_plus_iters_and_derives_rates() {
        let mut b = Baseline::new();
        let mut count = 0u64;
        let r = b.measure("counting", 5, Some(10), || count += 1).clone();
        assert_eq!(count, 6, "warmup + 5 timed iterations");
        assert_eq!(r.name, "counting");
        assert!(r.ns_per_op >= 0.0);
        assert_eq!(r.messages_per_op, Some(10));
        let mps = r.messages_per_sec.expect("message rate derived");
        assert!((mps - r.ops_per_sec * 10.0).abs() < 1e-6);
    }

    #[test]
    fn json_layout_is_stable() {
        let mut b = Baseline::new();
        b.measure("a", 1, None, || {});
        b.measure("b", 1, Some(100), || {});
        let json = b.to_json();
        assert!(json.contains("\"schema\": \"vsync-bench-baseline/v1\""));
        assert!(json.contains("\"name\": \"a\""));
        assert!(json.contains("\"messages_per_op\": 100"));
        // Exactly one trailing comma between the two records, none after the last.
        assert_eq!(json.matches("},\n").count(), 1);
    }

    #[test]
    fn parse_records_round_trips_the_writer() {
        let mut b = Baseline::new();
        b.measure("alpha", 1, None, || {});
        b.measure("beta", 1, Some(8), || {});
        let parsed = parse_records(&b.to_json());
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[0].0, "alpha");
        assert_eq!(parsed[1].0, "beta");
        assert!(parsed.iter().all(|(_, ns)| *ns >= 0.0));
    }

    #[test]
    fn delta_table_flags_regressions_and_membership_changes() {
        let old = vec![("same".to_owned(), 100.0), ("gone".to_owned(), 5.0)];
        let new = vec![
            ("same".to_owned(), 140.0),
            ("fresh".to_owned(), 7.0),
            ("same2".to_owned(), 0.0),
        ];
        let old2 = {
            let mut o = old.clone();
            o.push(("same2".to_owned(), 10.0));
            o
        };
        let table = render_delta_table("BENCH_old.json", &old2, &new);
        assert!(table.contains("⚠ regression"), "{table}");
        assert!(table.contains("| fresh | — | 7.0 | new |"), "{table}");
        assert!(table.contains("| gone | 5.0 | — | removed |"), "{table}");
        assert!(table.contains("+40.0%"), "{table}");
    }

    #[test]
    fn non_finite_rates_serialize_as_null() {
        let mut b = Baseline::new();
        b.records.push(BenchRecord {
            name: "instant".to_owned(),
            ns_per_op: 0.0,
            ops_per_sec: f64::INFINITY,
            messages_per_op: Some(10),
            messages_per_sec: Some(f64::INFINITY),
        });
        let json = b.to_json();
        assert!(json.contains("\"ops_per_sec\": null"));
        assert!(json.contains("\"messages_per_sec\": null"));
        assert!(!json.contains("inf"), "no bare inf token: {json}");
    }
}
