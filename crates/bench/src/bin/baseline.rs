//! Emits a machine-readable `BENCH_*.json` baseline of the wall-clock hot paths.
//!
//! ```text
//! cargo run -p vsync-bench --release --bin baseline                 # full iterations
//! cargo run -p vsync-bench --release --bin baseline -- --quick     # CI smoke run
//! cargo run -p vsync-bench --release --bin baseline -- --out BENCH_now.json
//! cargo run -p vsync-bench --release --bin baseline -- --diff BENCH_pr3_after.json BENCH_now.json
//! ```
//!
//! The benchmarks mirror the criterion benches in `benches/tools.rs` (same names, same
//! workloads) plus end-to-end engine workloads, but write their results as JSON so CI can
//! archive them and so the repository can keep a `BENCH_*.json` trajectory across PRs.
//! `--diff OLD NEW` compares two such files and prints a Markdown delta table (regressions
//! are flagged, never fatal); CI appends it to the job summary.

use vsync_bench::baseline::{parse_records, render_delta_table, Baseline};
use vsync_bench::{BenchCluster, MultiGroupCluster};
use vsync_core::LatencyProfile;
use vsync_msg::{codec, Message};
use vsync_net::MsgId;
use vsync_proto::abcast::AbcastState;
use vsync_proto::cbcast::{CbcastState, ReadyCb};
use vsync_util::{ProcessId, SiteId, VectorClock};

fn codec_message() -> Message {
    Message::new()
        .with("price", 9000u64)
        .with("color", "red")
        .with("blob", vec![0u8; 1024])
        .with(
            "members",
            vec![vsync_util::Address::Group(vsync_util::GroupId(7)); 4],
        )
}

fn abcast_round(n: u64) -> Vec<vsync_proto::abcast::ReadyAb> {
    let mut ab = AbcastState::new();
    for i in 1..=n {
        let id = MsgId::new(SiteId(1), i);
        let p = ab.on_data(id, ProcessId::new(SiteId(1), 1), Message::with_body(i));
        ab.decide(id, p, SiteId(1));
    }
    let delivered = ab.drain();
    assert_eq!(delivered.len(), n as usize);
    delivered
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if let Some(i) = args.iter().position(|a| a == "--diff") {
        let (Some(old_path), Some(new_path)) = (args.get(i + 1), args.get(i + 2)) else {
            eprintln!("--diff requires two files\nusage: baseline --diff OLD.json NEW.json");
            std::process::exit(2);
        };
        let read = |p: &str| {
            std::fs::read_to_string(p).unwrap_or_else(|e| {
                eprintln!("cannot read {p}: {e}");
                std::process::exit(2);
            })
        };
        let old = parse_records(&read(old_path));
        let new = parse_records(&read(new_path));
        print!("{}", render_delta_table(old_path, &old, &new));
        return;
    }
    let quick = args.iter().any(|a| a == "--quick");
    let out = match args.iter().position(|a| a == "--out") {
        None => "BENCH_baseline.json".to_owned(),
        Some(i) => match args.get(i + 1) {
            Some(path) if !path.starts_with("--") => path.clone(),
            _ => {
                eprintln!("--out requires a file path\nusage: baseline [--quick] [--out FILE]");
                std::process::exit(2);
            }
        },
    };

    // Iteration counts: enough to stabilise the fastest-batch mean in a full run, small
    // enough that the quick (CI smoke) run finishes in a couple of seconds.
    let (fast, slow) = if quick { (200, 5) } else { (20_000, 50) };

    let mut b = Baseline::new();

    let msg = codec_message();
    let encoded = codec::encode(&msg);
    b.measure("codec_encode_1k", fast, Some(1), || {
        std::hint::black_box(codec::encode(&msg));
    });
    b.measure("codec_decode_1k", fast, Some(1), || {
        std::hint::black_box(codec::decode_view(&encoded).unwrap());
    });
    b.measure("codec_decode_1k_shared", fast, Some(1), || {
        std::hint::black_box(codec::decode_shared(&encoded).unwrap());
    });
    b.measure("codec_decode_1k_copy", fast, Some(1), || {
        std::hint::black_box(codec::decode(&encoded).unwrap());
    });

    b.measure("cbcast_receive_drain_100", fast / 20, Some(100), || {
        let mut cb = CbcastState::new(4);
        for i in 1..=100u64 {
            let ready = cb.receive(ReadyCb {
                id: MsgId::new(SiteId(1), i),
                sender: ProcessId::new(SiteId(1), 1),
                sender_rank: 1,
                vt: VectorClock::from_entries(vec![0, i, 0, 0]),
                payload: Message::with_body(i),
            });
            assert_eq!(ready.len(), 1);
        }
        std::hint::black_box(cb);
    });

    b.measure("abcast_order_drain_100", fast / 20, Some(100), || {
        std::hint::black_box(abcast_round(100));
    });
    b.measure("abcast_order_drain_1000", fast / 200, Some(1_000), || {
        std::hint::black_box(abcast_round(1_000));
    });

    // End-to-end engine workloads: build a three-site cluster and push an async CBCAST
    // burst through it.  This exercises `net::engine` dispatch, `core::stack` routing and
    // the protocol state machines together, so dispatch-path regressions are visible even
    // when the pure state-machine benches above stay flat.
    b.measure("engine_cluster_burst_4k", slow, Some(8), || {
        let mut cluster = BenchCluster::new(LatencyProfile::Modern, 3, 1);
        let tp = cluster.async_cbcast_throughput(4096, 8);
        assert!(tp > 0.0);
        std::hint::black_box(tp);
    });
    // Same shape at 16× the payload: 64 KiB messages fragment on the wire, so this scales
    // the byte-handling half of the path (frame sharing, fragmentation model) while the
    // event count stays fixed.  The shared-frame fan-out must hold its win here too.
    b.measure("engine_cluster_burst_64k", slow, Some(8), || {
        let mut cluster = BenchCluster::new(LatencyProfile::Modern, 3, 2);
        let tp = cluster.async_cbcast_throughput(65_536, 8);
        assert!(tp > 0.0);
        std::hint::black_box(tp);
    });
    // Multi-group burst: four groups over three sites, eight messages per group issued
    // round-robin, so each site's protocols process interleaves the fan-out frames of four
    // endpoints in one event queue (the calendar queue's bursty-bucket case).
    b.measure("engine_multi_group_burst", slow, Some(32), || {
        let mut cluster = MultiGroupCluster::new(LatencyProfile::Modern, 3, 4, 3);
        let tp = cluster.burst_throughput(1024, 8);
        assert!(tp > 0.0);
        std::hint::black_box(tp);
    });
    // Threaded-runtime throughput: 4 sites on 4 OS threads × 2 groups spanning all of
    // them, 64 async CBCASTs per group — 512 real application deliveries per operation,
    // with packets crossing lock-protected channels in wire form.  One operation includes
    // cluster setup (spawns, joins) and teardown, so the recorded ns/op and msgs/s track
    // the *end-to-end scenario* (regressions in join latency, channel wakeups or shutdown
    // all move it); the delivery window alone is printed separately below so the
    // steady-state rate stays visible too.
    let rt_iters = if quick { 1 } else { 5 };
    b.measure("rt_throughput_4x2", rt_iters, Some(512), || {
        let report = vsync_rt::rt_throughput(4, 2, 64);
        assert_eq!(
            report.delivered, report.expected,
            "threaded run lost deliveries"
        );
        std::hint::black_box(&report);
    });
    // One extra (untimed) run to report the delivery-window rate, which excludes setup.
    let window = vsync_rt::rt_throughput(4, 2, 64);
    println!(
        "  (rt_throughput_4x2 delivery window alone: {:.0} deliveries/s)",
        window.deliveries_per_sec
    );

    let path = std::path::Path::new(&out);
    b.write(path).expect("write baseline JSON");
    println!("\nwrote {}", path.display());
}
