//! Regenerates every table and figure of the paper's evaluation.
//!
//! ```text
//! cargo run -p vsync-bench --release --bin repro                    # everything
//! cargo run -p vsync-bench --release --bin repro -- table1
//! cargo run -p vsync-bench --release --bin repro -- figure2
//! cargo run -p vsync-bench --release --bin repro -- figure3
//! cargo run -p vsync-bench --release --bin repro -- section5
//! cargo run -p vsync-bench --release --bin repro -- ablation-order
//! cargo run -p vsync-bench --release --bin repro -- ablation-view 16   # bg msgs/member
//! ```
//!
//! Unknown experiment names print the usage to stderr and exit nonzero, so CI scripts
//! cannot silently pass a typo'd invocation.

use vsync_bench::cli::{self, Experiment};
use vsync_bench::{ablation_ordering, ablation_view_change, figure2, figure3, section5, table1};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let exp = match cli::parse(&args) {
        Ok(exp) => exp,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };
    let sizes = [10usize, 100, 1_000, 10_000];
    let view_sizes = [2usize, 4, 8, 16];

    match exp {
        Experiment::Table1 => println!("{}", table1().to_markdown()),
        Experiment::Figure2 => println!("{}", figure2(&sizes).to_markdown()),
        Experiment::Figure3 => println!("{}", figure3().to_markdown()),
        Experiment::Section5 => println!("{}", section5(20, 5).to_markdown()),
        Experiment::AblationOrder => println!("{}", ablation_ordering().to_markdown()),
        Experiment::AblationView {
            background_per_member,
        } => println!(
            "{}",
            ablation_view_change(&view_sizes, background_per_member).to_markdown()
        ),
        Experiment::All {
            background_per_member,
        } => {
            println!("{}", table1().to_markdown());
            println!("{}", figure2(&sizes).to_markdown());
            println!("{}", figure3().to_markdown());
            println!("{}", section5(20, 5).to_markdown());
            println!("{}", ablation_ordering().to_markdown());
            println!(
                "{}",
                ablation_view_change(&view_sizes, background_per_member).to_markdown()
            );
        }
    }
}
