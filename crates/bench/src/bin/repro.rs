//! Regenerates every table and figure of the paper's evaluation.
//!
//! ```text
//! cargo run -p vsync-bench --release --bin repro            # everything
//! cargo run -p vsync-bench --release --bin repro -- table1
//! cargo run -p vsync-bench --release --bin repro -- figure2
//! cargo run -p vsync-bench --release --bin repro -- figure3
//! cargo run -p vsync-bench --release --bin repro -- section5
//! cargo run -p vsync-bench --release --bin repro -- ablation-order
//! cargo run -p vsync-bench --release --bin repro -- ablation-view
//! ```

use vsync_bench::{ablation_ordering, ablation_view_change, figure2, figure3, section5, table1};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let what = args.first().map(String::as_str).unwrap_or("all");
    let sizes = [10usize, 100, 1_000, 10_000];

    let run_table1 = || println!("{}", table1().to_markdown());
    let run_figure2 = || println!("{}", figure2(&sizes).to_markdown());
    let run_figure3 = || println!("{}", figure3().to_markdown());
    let run_section5 = || println!("{}", section5(20, 5).to_markdown());
    let run_ab_order = || println!("{}", ablation_ordering().to_markdown());
    let run_ab_view = || println!("{}", ablation_view_change(&[2, 4, 8, 16]).to_markdown());

    match what {
        "table1" => run_table1(),
        "figure2" => run_figure2(),
        "figure3" => run_figure3(),
        "section5" => run_section5(),
        "ablation-order" => run_ab_order(),
        "ablation-view" => run_ab_view(),
        "all" => {
            run_table1();
            run_figure2();
            run_figure3();
            run_section5();
            run_ab_order();
            run_ab_view();
        }
        other => {
            eprintln!("unknown experiment {other:?}; expected table1 | figure2 | figure3 | section5 | ablation-order | ablation-view | all");
            std::process::exit(2);
        }
    }
}
