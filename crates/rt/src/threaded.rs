//! The multi-threaded in-process backend: one OS thread per site.
//!
//! Topology: a shared [`Router`] holds one channel [`crate::chan::Sender`] per live site
//! behind a `parking_lot::RwLock`; each node's thread owns the matching receiver inside its
//! [`ThreadedTransport`] and parks in [`Node::run`] until traffic or a timer deadline wakes
//! it.  Packets cross threads in wire form ([`WirePacket`]), so every `Rc`-based protocol
//! structure stays strictly thread-local — ownership of all mutable state is per-thread by
//! construction, and the only shared state is the router table and the channel queues, both
//! lock-protected.
//!
//! Time is wall-clock: [`Router::now`] maps `Instant::now()` onto microseconds since
//! cluster start, the same [`vsync_util::SimTime`] axis the simulator uses, so the protocol
//! stacks run unmodified.
//!
//! Failure injection: [`ThreadedCluster::kill_site`] drops the site's channel sender.  The
//! node drains whatever was already queued (a crash is never instantaneous on a real
//! network either), then observes the disconnect and exits — abandoning its pending timers,
//! exactly like a fail-stop site.  Subsequent sends to the site are silently dropped at the
//! router, and [`ThreadedCluster::spawn_site`] on the empty slot models site recovery.
//! Link-level faults (delay / loss / reordering) are injected by the sending transport
//! according to a [`FaultPlan`].  Partitions ([`crate::faults::LinkFaults`]) live on the
//! router: [`ThreadedCluster::set_link_faults`] swaps the shared cut table, and each
//! sending transport consults it before handing a packet to the router — a cut link drops
//! the packet at the sender, exactly where the simulator drops it.

use std::collections::{BinaryHeap, VecDeque};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

use parking_lot::RwLock;

use vsync_net::{Packet, SiteHandler};
use vsync_util::{DetRng, Duration, FastHashMap, ProcessId, SimTime, SiteId};

use crate::chan::{self, Receiver, Recv, Sender};
use crate::faults::{FaultPlan, LinkFaults};
use crate::transport::{Event, InvokeFn, Node, Transport};
use crate::wire::WirePacket;

/// A message on a node's channel.
enum NodeMsg {
    /// A packet from another node, in wire form.
    Packet(WirePacket),
    /// A control-plane closure to run on the node's thread.
    Invoke(InvokeFn),
}

/// The shared routing table: clock origin plus one sender per live site.
pub struct Router {
    start: Instant,
    slots: RwLock<Vec<Option<Sender<NodeMsg>>>>,
    /// Current link-level partition table, swapped whole by [`ThreadedCluster::set_link_faults`].
    links: RwLock<LinkFaults>,
    /// Fast-path flag: `true` iff `links` has any cut or extra delay.  Senders check this
    /// with a relaxed-cost atomic load so a fully-healed cluster never takes the read lock.
    links_active: AtomicBool,
}

impl Router {
    fn new(num_sites: usize) -> Self {
        Router {
            start: Instant::now(),
            slots: RwLock::new((0..num_sites).map(|_| None).collect()),
            links: RwLock::new(LinkFaults::none()),
            links_active: AtomicBool::new(false),
        }
    }

    fn set_links(&self, links: LinkFaults) {
        let active = !links.is_clear();
        *self.links.write() = links;
        self.links_active.store(active, Ordering::Release);
    }

    /// `true` if the current partition table cuts the `src -> dst` link.
    fn link_blocks(&self, src: SiteId, dst: SiteId) -> bool {
        self.links_active.load(Ordering::Acquire) && self.links.read().blocks(src, dst)
    }

    /// Extra one-way delay currently charged to surviving cross-site links.
    fn link_extra_delay(&self) -> Duration {
        if self.links_active.load(Ordering::Acquire) {
            self.links.read().extra_delay()
        } else {
            Duration::ZERO
        }
    }

    /// Microseconds since cluster start, on the same axis as simulated time.
    pub fn now(&self) -> SimTime {
        SimTime(self.start.elapsed().as_micros() as u64)
    }

    /// Maps a cluster timestamp back onto the wall clock (for channel wait deadlines).
    fn instant_of(&self, t: SimTime) -> Instant {
        self.start + std::time::Duration::from_micros(t.0)
    }

    /// Sends to a site's channel; `false` (message dropped) if the site is down.
    fn send_to(&self, site: SiteId, msg: NodeMsg) -> bool {
        match self.slots.read().get(site.index()) {
            Some(Some(tx)) => tx.send(msg),
            _ => false,
        }
    }

    fn is_up(&self, site: SiteId) -> bool {
        matches!(self.slots.read().get(site.index()), Some(Some(_)))
    }
}

/// A pending local timer, min-ordered by `(due, seq)`.
struct TimerEntry {
    due: SimTime,
    seq: u64,
    token: u64,
}

/// A cross-node packet held until its delivery instant, min-ordered by `(due, seq)`.
struct HeldPacket {
    due: SimTime,
    seq: u64,
    wire: WirePacket,
}

macro_rules! min_heap_order {
    ($ty:ident) => {
        impl PartialEq for $ty {
            fn eq(&self, other: &Self) -> bool {
                self.due == other.due && self.seq == other.seq
            }
        }
        impl Eq for $ty {}
        impl PartialOrd for $ty {
            fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
                Some(self.cmp(other))
            }
        }
        impl Ord for $ty {
            fn cmp(&self, other: &Self) -> std::cmp::Ordering {
                // Reversed: BinaryHeap is a max-heap and we want the earliest entry on top.
                (other.due, other.seq).cmp(&(self.due, self.seq))
            }
        }
    };
}

min_heap_order!(TimerEntry);
min_heap_order!(HeldPacket);

/// The per-node transport of the threaded backend.  Constructed *inside* the node's thread
/// (it holds thread-local `Rc`-based packets in its loopback queue, so it is deliberately
/// never sent across threads).
pub struct ThreadedTransport {
    site: SiteId,
    router: Arc<Router>,
    rx: Receiver<NodeMsg>,
    faults: FaultPlan,
    rng: DetRng,
    timers: BinaryHeap<TimerEntry>,
    held: BinaryHeap<HeldPacket>,
    /// Same-site loopback: local traffic never crosses the wire (or the codec).
    local: VecDeque<Packet>,
    /// Latest promised delivery instant per (src, dst) channel, so injected jitter cannot
    /// reorder a channel that the network model would keep FIFO (mirrors
    /// `NetworkModel::channel_front`); deliberate reordering bypasses the clamp.
    channel_front: FastHashMap<(ProcessId, ProcessId), SimTime>,
    seq: u64,
}

impl ThreadedTransport {
    fn new(
        site: SiteId,
        router: Arc<Router>,
        rx: Receiver<NodeMsg>,
        faults: FaultPlan,
        seed: u64,
    ) -> Self {
        ThreadedTransport {
            site,
            router,
            rx,
            faults,
            rng: DetRng::new(seed),
            timers: BinaryHeap::new(),
            held: BinaryHeap::new(),
            local: VecDeque::new(),
            channel_front: FastHashMap::default(),
            seq: 0,
        }
    }

    fn next_seq(&mut self) -> u64 {
        self.seq += 1;
        self.seq
    }

    /// Files an incoming channel message; packets wait in the held heap until due.
    fn accept(&mut self, msg: NodeMsg) -> Option<Event> {
        match msg {
            NodeMsg::Packet(wire) => {
                let entry = HeldPacket {
                    due: wire.deliver_at,
                    seq: self.next_seq(),
                    wire,
                };
                self.held.push(entry);
                None
            }
            NodeMsg::Invoke(f) => Some(Event::Invoke(f)),
        }
    }

    /// Pops whichever of (due timer, due held packet) comes first, if any is due at `now`.
    fn pop_due(&mut self, now: SimTime) -> Option<Event> {
        loop {
            let timer_due = self.timers.peek().map(|t| t.due);
            let packet_due = self.held.peek().map(|p| p.due);
            match (timer_due, packet_due) {
                (Some(td), pd) if td <= now && pd.map(|p| td <= p).unwrap_or(true) => {
                    let t = self.timers.pop().expect("peeked");
                    return Some(Event::Timer(t.token));
                }
                (_, Some(pd)) if pd <= now => {
                    let p = self.held.pop().expect("peeked");
                    match p.wire.into_packet() {
                        Ok(pkt) => return Some(Event::Packet(pkt)),
                        // An undecodable wire packet is dropped like a corrupt datagram.
                        Err(_) => continue,
                    }
                }
                _ => return None,
            }
        }
    }

    /// The earliest future deadline among pending timers and held packets.
    fn next_deadline(&self) -> Option<SimTime> {
        let t = self.timers.peek().map(|t| t.due);
        let p = self.held.peek().map(|p| p.due);
        match (t, p) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }
}

impl Transport for ThreadedTransport {
    fn site(&self) -> SiteId {
        self.site
    }

    fn now(&self) -> SimTime {
        self.router.now()
    }

    fn send(&mut self, pkt: Packet) {
        if pkt.dst.site == self.site {
            self.local.push_back(pkt);
            return;
        }
        // Partition table: a cut link swallows the packet at the sender, like the sim.
        // Control-plane `NodeMsg::Invoke` traffic never passes through here, so harness
        // queries keep working across a partition.
        if self.router.link_blocks(self.site, pkt.dst.site) {
            return;
        }
        let decision = self.faults.decide(&mut self.rng);
        let mut deliver_at = self.now() + decision.extra + self.router.link_extra_delay();
        let key = (pkt.src, pkt.dst);
        if decision.reordered {
            // Deliberately reordered: bypass the FIFO clamp *and leave it untouched*, so
            // packets sent later keep their earlier delivery instants and can overtake.
            // Folding this packet's (inflated) instant into the clamp would push every
            // later packet behind it and quietly restore FIFO.
        } else if let Some(front) = self.channel_front.get_mut(&key) {
            if deliver_at < *front {
                deliver_at = *front;
            } else {
                *front = deliver_at;
            }
        } else {
            self.channel_front.insert(key, deliver_at);
        }
        let wire = WirePacket::from_packet(&pkt, deliver_at);
        self.router.send_to(pkt.dst.site, NodeMsg::Packet(wire));
    }

    fn set_timer(&mut self, after: Duration, token: u64) {
        let entry = TimerEntry {
            due: self.now() + after,
            seq: self.next_seq(),
            token,
        };
        self.timers.push(entry);
    }

    fn recv(&mut self, block: bool) -> Option<Event> {
        loop {
            if let Some(pkt) = self.local.pop_front() {
                return Some(Event::Packet(pkt));
            }
            if let Some(ev) = self.pop_due(self.now()) {
                return Some(ev);
            }
            if !block {
                // Pull in whatever already sits on the channel (it may be immediately
                // due), but never wait.
                match self.rx.try_recv() {
                    Recv::Item(msg) => {
                        if let Some(ev) = self.accept(msg) {
                            return Some(ev);
                        }
                    }
                    Recv::TimedOut | Recv::Disconnected => return None,
                }
                continue;
            }
            let deadline = self.next_deadline().map(|t| self.router.instant_of(t));
            match self.rx.recv_deadline(deadline) {
                Recv::Item(msg) => {
                    if let Some(ev) = self.accept(msg) {
                        return Some(ev);
                    }
                }
                // A deadline passed: loop around and fire the now-due timer/packet.
                Recv::TimedOut => {}
                // Disconnected from the cluster: exit even though timers may be pending —
                // a crashed site's timers die with it.
                Recv::Disconnected => return None,
            }
        }
    }
}

/// Final accounting returned by a node's thread.
#[derive(Clone, Copy, Debug)]
pub struct NodeReport {
    /// The site the node ran.
    pub site: SiteId,
    /// Events (packets, timers, invokes) dispatched into the handler.
    pub events: u64,
}

/// A cluster of nodes, one OS thread each.
pub struct ThreadedCluster {
    router: Arc<Router>,
    faults: FaultPlan,
    seed: u64,
    spawned: u64,
    handles: Vec<Option<JoinHandle<NodeReport>>>,
    reports: Vec<NodeReport>,
}

impl ThreadedCluster {
    /// Creates a cluster shell with `num_sites` empty slots.  Sites start when
    /// [`ThreadedCluster::spawn_site`] installs a handler factory.
    pub fn new(num_sites: usize, faults: FaultPlan, seed: u64) -> Self {
        ThreadedCluster {
            router: Arc::new(Router::new(num_sites)),
            faults,
            seed,
            spawned: 0,
            handles: (0..num_sites).map(|_| None).collect(),
            reports: Vec::new(),
        }
    }

    /// Number of site slots.
    pub fn num_sites(&self) -> usize {
        self.handles.len()
    }

    /// Microseconds since cluster start.
    pub fn now(&self) -> SimTime {
        self.router.now()
    }

    /// True if the site currently has a live node.
    pub fn site_is_up(&self, site: SiteId) -> bool {
        self.router.is_up(site)
    }

    /// Starts a node for `site` on its own OS thread.  `make` runs *on that thread* and
    /// builds the site's handler (so `Rc`-based stack state never crosses threads); only
    /// the factory itself must be `Send`.  Panics if the slot is already occupied.
    pub fn spawn_site<F>(&mut self, site: SiteId, make: F)
    where
        F: FnOnce(SimTime) -> Box<dyn SiteHandler> + Send + 'static,
    {
        let idx = site.index();
        assert!(idx < self.handles.len(), "site {site:?} out of range");
        assert!(
            !self.site_is_up(site) && self.handles[idx].is_none(),
            "site {site:?} already has a live node"
        );
        let (tx, rx) = chan::channel();
        self.router.slots.write()[idx] = Some(tx);
        self.spawned += 1;
        // Per-incarnation fault seed: deterministic per node, distinct across recoveries.
        let seed = self
            .seed
            .wrapping_add((idx as u64 + 1).wrapping_mul(0x9E37_79B9))
            .wrapping_add(self.spawned << 32);
        let router = self.router.clone();
        let faults = self.faults;
        let handle = std::thread::Builder::new()
            .name(format!("vsync-node-{}", site.0))
            .spawn(move || {
                let transport = ThreadedTransport::new(site, router, rx, faults, seed);
                let now = transport.now();
                let mut node = Node::new(transport, make(now));
                node.start();
                let events = node.run();
                NodeReport { site, events }
            })
            .expect("spawn node thread");
        self.handles[idx] = Some(handle);
    }

    /// Injects a control-plane closure into a node's event loop.  Returns `false` if the
    /// site is down (the closure is dropped, like any packet to a crashed site).
    pub fn invoke(&self, site: SiteId, f: InvokeFn) -> bool {
        self.router.send_to(site, NodeMsg::Invoke(f))
    }

    /// Installs a link-level partition table; [`LinkFaults::none`] heals all links.
    /// Takes effect for packets sent after the call; packets already queued or held at
    /// the receiver still arrive (a real cut cannot recall in-flight datagrams either).
    pub fn set_link_faults(&self, links: LinkFaults) {
        self.router.set_links(links);
    }

    /// The currently installed partition table.
    pub fn link_faults(&self) -> LinkFaults {
        self.router.links.read().clone()
    }

    /// Crashes a site: its channel closes, the node drains its backlog, observes the
    /// disconnect and exits; pending timers die with it.  Blocks until the thread has
    /// finished and returns its report.  No-op returning `None` if the site is down.
    pub fn kill_site(&mut self, site: SiteId) -> Option<NodeReport> {
        let idx = site.index();
        // Dropping the slot's sender is the kill: the receiver observes the disconnect
        // once its queue drains and the run loop exits.
        self.router.slots.write().get_mut(idx)?.take()?;
        let handle = self.handles.get_mut(idx)?.take()?;
        match handle.join() {
            Ok(report) => {
                self.reports.push(report);
                Some(report)
            }
            Err(payload) => {
                // Re-raise a node-thread panic — unless this join runs during an unwind
                // (e.g. `Drop` after a failed test assertion), where a second panic would
                // abort the process and eat the original failure message.
                if std::thread::panicking() {
                    eprintln!("node thread for {site:?} panicked (suppressed: already unwinding)");
                    None
                } else {
                    std::panic::resume_unwind(payload)
                }
            }
        }
    }

    /// Stops every live node and returns the reports of all nodes this cluster ever ran.
    pub fn shutdown(mut self) -> Vec<NodeReport> {
        self.shutdown_all();
        std::mem::take(&mut self.reports)
    }

    fn shutdown_all(&mut self) {
        for i in 0..self.handles.len() {
            self.kill_site(SiteId(i as u16));
        }
    }
}

impl Drop for ThreadedCluster {
    fn drop(&mut self) {
        // Never leak node threads: a dropped cluster (test failure, early return) still
        // closes every channel and joins every thread.
        self.shutdown_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::any::Any;
    use std::sync::mpsc;
    use vsync_msg::Message;
    use vsync_net::{Outbox, PacketKind};

    /// Echoes every "ping" back to its sender and reports everything it sees.
    struct Echo {
        me: SiteId,
        seen: mpsc::Sender<(SiteId, String)>,
    }

    impl SiteHandler for Echo {
        fn on_start(&mut self, _now: SimTime, out: &mut Outbox) {
            out.set_timer(Duration::from_millis(1), 7);
        }
        fn on_packet(&mut self, _now: SimTime, pkt: Packet, out: &mut Outbox) {
            let body = pkt.payload.get_str("body").unwrap_or("").to_owned();
            if body == "ping" {
                out.send(Packet::new(
                    pkt.dst,
                    pkt.src,
                    PacketKind::Reply,
                    Message::with_body("pong"),
                ));
            }
            let _ = self.seen.send((self.me, body));
        }
        fn on_timer(&mut self, _now: SimTime, token: u64, _out: &mut Outbox) {
            let _ = self.seen.send((self.me, format!("timer{token}")));
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    fn echo_cluster(n: usize) -> (ThreadedCluster, mpsc::Receiver<(SiteId, String)>) {
        let (tx, rx) = mpsc::channel();
        let mut cluster = ThreadedCluster::new(n, FaultPlan::none(), 11);
        for i in 0..n {
            let tx = tx.clone();
            cluster.spawn_site(SiteId(i as u16), move |_now| {
                Box::new(Echo {
                    me: SiteId(i as u16),
                    seen: tx,
                })
            });
        }
        (cluster, rx)
    }

    fn wait_for(rx: &mpsc::Receiver<(SiteId, String)>, what: &str) -> Option<(SiteId, String)> {
        let deadline = Instant::now() + std::time::Duration::from_secs(5);
        while Instant::now() < deadline {
            if let Ok(ev) = rx.recv_timeout(std::time::Duration::from_millis(50)) {
                if ev.1 == what {
                    return Some(ev);
                }
            }
        }
        None
    }

    #[test]
    fn ping_pong_crosses_threads() {
        let (cluster, rx) = echo_cluster(2);
        let a = ProcessId::new(SiteId(0), 1);
        let b = ProcessId::new(SiteId(1), 1);
        assert!(cluster.invoke(
            SiteId(0),
            Box::new(move |_h, _now, out| {
                out.send(Packet::new(
                    a,
                    b,
                    PacketKind::Data,
                    Message::with_body("ping"),
                ));
            })
        ));
        let ping = wait_for(&rx, "ping").expect("site 1 saw the ping");
        assert_eq!(ping.0, SiteId(1));
        let pong = wait_for(&rx, "pong").expect("site 0 saw the pong");
        assert_eq!(pong.0, SiteId(0));
        let reports = cluster.shutdown();
        assert_eq!(reports.len(), 2);
        assert!(reports.iter().all(|r| r.events > 0));
    }

    #[test]
    fn timers_fire_on_real_threads() {
        let (cluster, rx) = echo_cluster(1);
        assert!(wait_for(&rx, "timer7").is_some(), "start timer fired");
        drop(cluster);
    }

    #[test]
    fn killed_sites_drop_traffic_and_recovery_restores_it() {
        let (mut cluster, rx) = echo_cluster(2);
        assert!(wait_for(&rx, "timer7").is_some());
        let report = cluster.kill_site(SiteId(1)).expect("was up");
        assert_eq!(report.site, SiteId(1));
        assert!(!cluster.site_is_up(SiteId(1)));
        // Sends toward the dead site are dropped at the router.
        let a = ProcessId::new(SiteId(0), 1);
        let b = ProcessId::new(SiteId(1), 1);
        assert!(cluster.invoke(
            SiteId(0),
            Box::new(move |_h, _now, out| {
                out.send(Packet::new(
                    a,
                    b,
                    PacketKind::Data,
                    Message::with_body("ping"),
                ));
            })
        ));
        assert!(!cluster.invoke(SiteId(1), Box::new(|_h, _n, _o| {})));
        // Recovery: a fresh node occupies the slot and answers again.
        let (tx2, rx2) = mpsc::channel();
        cluster.spawn_site(SiteId(1), move |_now| {
            Box::new(Echo {
                me: SiteId(1),
                seen: tx2,
            })
        });
        assert!(cluster.site_is_up(SiteId(1)));
        assert!(cluster.invoke(
            SiteId(0),
            Box::new(move |_h, _now, out| {
                out.send(Packet::new(
                    a,
                    b,
                    PacketKind::Data,
                    Message::with_body("ping"),
                ));
            })
        ));
        assert!(wait_for(&rx2, "ping").is_some(), "recovered node receives");
        drop(rx);
    }

    #[test]
    fn cut_links_swallow_packets_and_heal_restores_them() {
        let (cluster, rx) = echo_cluster(2);
        let a = ProcessId::new(SiteId(0), 1);
        let b = ProcessId::new(SiteId(1), 1);
        let ping = move |cluster: &ThreadedCluster, body: &'static str| {
            assert!(cluster.invoke(
                SiteId(0),
                Box::new(move |_h, _now, out| {
                    out.send(Packet::new(
                        a,
                        b,
                        PacketKind::Data,
                        Message::with_body(body),
                    ));
                })
            ));
        };
        cluster.set_link_faults(LinkFaults::partition(&[vec![SiteId(0)], vec![SiteId(1)]]));
        ping(&cluster, "cut-ping");
        // Invoke still works across the cut (control plane), but the packet is dropped.
        std::thread::sleep(std::time::Duration::from_millis(100));
        assert!(
            rx.try_iter().all(|(_, body)| body != "cut-ping"),
            "packet across a cut link must be swallowed"
        );
        cluster.set_link_faults(LinkFaults::none());
        ping(&cluster, "heal-ping");
        assert!(
            wait_for(&rx, "heal-ping").is_some(),
            "healed link delivers again"
        );
        drop(cluster);
    }

    #[test]
    fn one_way_cut_blocks_one_direction_only() {
        let (cluster, rx) = echo_cluster(2);
        let a = ProcessId::new(SiteId(0), 1);
        let b = ProcessId::new(SiteId(1), 1);
        // 0 -> 1 is cut; 1 -> 0 still works.
        cluster.set_link_faults(LinkFaults::one_way(&[SiteId(0)], &[SiteId(1)]));
        assert!(cluster.invoke(
            SiteId(1),
            Box::new(move |_h, _now, out| {
                out.send(Packet::new(
                    b,
                    a,
                    PacketKind::Data,
                    Message::with_body("ping"),
                ));
            })
        ));
        // Site 0 hears the ping, but its pong dies on the cut 0 -> 1 link.
        let got = wait_for(&rx, "ping").expect("reverse direction stays open");
        assert_eq!(got.0, SiteId(0));
        std::thread::sleep(std::time::Duration::from_millis(100));
        assert!(
            rx.try_iter()
                .all(|(site, body)| !(site == SiteId(1) && body == "pong")),
            "pong must be swallowed by the one-way cut"
        );
        drop(cluster);
    }

    #[test]
    fn reorder_injection_actually_reorders() {
        let (tx, rx) = mpsc::channel();
        let mut cluster = ThreadedCluster::new(
            2,
            // ~30% of packets skip the FIFO clamp and are held 3 ms extra, long past the
            // sub-millisecond spacing of a burst — they must land out of order.
            FaultPlan::none().with_reorder(0.3, Duration::from_millis(3)),
            21,
        );
        for i in 0..2 {
            let tx = tx.clone();
            cluster.spawn_site(SiteId(i as u16), move |_now| {
                Box::new(Echo {
                    me: SiteId(i as u16),
                    seen: tx,
                })
            });
        }
        let a = ProcessId::new(SiteId(0), 1);
        let b = ProcessId::new(SiteId(1), 1);
        cluster.invoke(
            SiteId(0),
            Box::new(move |_h, _now, out| {
                for i in 0..30u64 {
                    out.send(Packet::new(
                        a,
                        b,
                        PacketKind::Data,
                        Message::with_body(format!("m{i:02}")),
                    ));
                }
            }),
        );
        let mut got = Vec::new();
        let deadline = Instant::now() + std::time::Duration::from_secs(5);
        while got.len() < 30 && Instant::now() < deadline {
            if let Ok((site, body)) = rx.recv_timeout(std::time::Duration::from_millis(50)) {
                if site == SiteId(1) && body.starts_with('m') {
                    got.push(body);
                }
            }
        }
        let want: Vec<String> = (0..30).map(|i| format!("m{i:02}")).collect();
        let mut sorted = got.clone();
        sorted.sort();
        assert_eq!(sorted, want, "every packet still delivered exactly once");
        assert_ne!(
            got, want,
            "with reorder injection the arrival order must differ"
        );
    }

    #[test]
    fn jittered_channels_still_deliver_in_fifo_order() {
        // Heavy jitter, but no deliberate reordering: the per-channel clamp must keep one
        // sender's stream in order.
        let (tx, rx) = mpsc::channel();
        let mut cluster = ThreadedCluster::new(
            2,
            FaultPlan::none().with_jitter(Duration::from_millis(2)),
            5,
        );
        for i in 0..2 {
            let tx = tx.clone();
            cluster.spawn_site(SiteId(i as u16), move |_now| {
                Box::new(Echo {
                    me: SiteId(i as u16),
                    seen: tx,
                })
            });
        }
        let a = ProcessId::new(SiteId(0), 1);
        let b = ProcessId::new(SiteId(1), 1);
        cluster.invoke(
            SiteId(0),
            Box::new(move |_h, _now, out| {
                for i in 0..20u64 {
                    out.send(Packet::new(
                        a,
                        b,
                        PacketKind::Data,
                        Message::with_body(format!("m{i}")),
                    ));
                }
            }),
        );
        let mut got = Vec::new();
        let deadline = Instant::now() + std::time::Duration::from_secs(5);
        while got.len() < 20 && Instant::now() < deadline {
            if let Ok((site, body)) = rx.recv_timeout(std::time::Duration::from_millis(50)) {
                if site == SiteId(1) && body.starts_with('m') {
                    got.push(body);
                }
            }
        }
        let want: Vec<String> = (0..20).map(|i| format!("m{i}")).collect();
        assert_eq!(got, want, "per-channel FIFO under jitter");
    }
}
