//! A blocking MPSC channel built on the vendored `parking_lot` mutex.
//!
//! This is the inter-node wire of the threaded backend: every node owns one [`Receiver`] and
//! the router holds one [`Sender`] per live node.  The queue itself sits behind a
//! `parking_lot::Mutex` (the shim vendored under `shims/`, API-compatible with the real
//! crate), and blocking uses `std::thread::park` / `unpark` — the same primitive real
//! channel implementations use — so a parked node costs nothing until traffic or a timer
//! deadline wakes it.
//!
//! Shutdown semantics mirror a crashed network interface rather than an error-propagating
//! RPC pipe:
//!
//! * sending to a channel whose receiver is gone silently drops the message and reports
//!   `false` — exactly what happens to a packet addressed to a crashed site;
//! * a receiver whose senders are all gone gets [`Recv::Disconnected`] once the queue is
//!   drained, which is how a node learns it has been disconnected from the cluster and
//!   should exit (even if it still has timers pending).

use std::collections::VecDeque;
use std::sync::Arc;
use std::thread::{self, Thread};
use std::time::Instant;

use parking_lot::Mutex;

/// Outcome of a receive attempt.
pub enum Recv<T> {
    /// An item was dequeued.
    Item(T),
    /// The deadline passed (or the call was non-blocking) with nothing queued.
    TimedOut,
    /// Every sender is gone and the queue is drained; nothing will ever arrive.
    Disconnected,
}

struct State<T> {
    queue: VecDeque<T>,
    /// The parked receiver thread, registered just before it parks so a sender can wake it.
    waiting: Option<Thread>,
    receiver_alive: bool,
    senders: usize,
}

struct Inner<T> {
    state: Mutex<State<T>>,
}

/// The sending half; cloneable, shareable across threads.
pub struct Sender<T> {
    inner: Arc<Inner<T>>,
}

/// The receiving half; exactly one per channel.
pub struct Receiver<T> {
    inner: Arc<Inner<T>>,
}

/// Creates a channel.
pub fn channel<T>() -> (Sender<T>, Receiver<T>) {
    let inner = Arc::new(Inner {
        state: Mutex::new(State {
            queue: VecDeque::new(),
            waiting: None,
            receiver_alive: true,
            senders: 1,
        }),
    });
    (
        Sender {
            inner: inner.clone(),
        },
        Receiver { inner },
    )
}

impl<T> Sender<T> {
    /// Enqueues an item, waking the receiver if it is parked.  Returns `false` (dropping
    /// the item) if the receiver is gone.
    pub fn send(&self, item: T) -> bool {
        let waiter = {
            let mut st = self.inner.state.lock();
            if !st.receiver_alive {
                return false;
            }
            st.queue.push_back(item);
            st.waiting.take()
        };
        if let Some(t) = waiter {
            t.unpark();
        }
        true
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.inner.state.lock().senders += 1;
        Sender {
            inner: self.inner.clone(),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let waiter = {
            let mut st = self.inner.state.lock();
            st.senders -= 1;
            if st.senders == 0 {
                st.waiting.take()
            } else {
                None
            }
        };
        // The last sender wakes the receiver so it observes the disconnect promptly.
        if let Some(t) = waiter {
            t.unpark();
        }
    }
}

impl<T> Receiver<T> {
    /// Non-blocking receive.
    pub fn try_recv(&self) -> Recv<T> {
        let mut st = self.inner.state.lock();
        match st.queue.pop_front() {
            Some(item) => Recv::Item(item),
            None if st.senders == 0 => Recv::Disconnected,
            None => Recv::TimedOut,
        }
    }

    /// Blocking receive.  Waits until an item arrives, every sender disconnects, or the
    /// `deadline` (if any) passes.  `None` means wait indefinitely.
    pub fn recv_deadline(&self, deadline: Option<Instant>) -> Recv<T> {
        loop {
            let now = {
                let mut st = self.inner.state.lock();
                if let Some(item) = st.queue.pop_front() {
                    return Recv::Item(item);
                }
                if st.senders == 0 {
                    return Recv::Disconnected;
                }
                let now = Instant::now();
                if let Some(d) = deadline {
                    if now >= d {
                        return Recv::TimedOut;
                    }
                }
                // Register for wakeup *before* releasing the lock: a sender that enqueues
                // after this point will see the handle and unpark us, and an unpark that
                // races our park just makes park return immediately.
                st.waiting = Some(thread::current());
                now
            };
            match deadline {
                None => thread::park(),
                Some(d) => thread::park_timeout(d - now),
            }
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut st = self.inner.state.lock();
        st.receiver_alive = false;
        st.queue.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn items_flow_in_fifo_order() {
        let (tx, rx) = channel();
        assert!(tx.send(1));
        assert!(tx.send(2));
        assert!(matches!(rx.try_recv(), Recv::Item(1)));
        assert!(matches!(rx.try_recv(), Recv::Item(2)));
        assert!(matches!(rx.try_recv(), Recv::TimedOut));
    }

    #[test]
    fn send_to_a_dropped_receiver_reports_false() {
        let (tx, rx) = channel();
        drop(rx);
        assert!(!tx.send(1));
    }

    #[test]
    fn receiver_observes_disconnect_after_draining() {
        let (tx, rx) = channel();
        tx.send(7);
        drop(tx);
        assert!(matches!(rx.try_recv(), Recv::Item(7)));
        assert!(matches!(rx.try_recv(), Recv::Disconnected));
        assert!(matches!(rx.recv_deadline(None), Recv::Disconnected));
    }

    #[test]
    fn blocking_receive_wakes_on_cross_thread_send() {
        let (tx, rx) = channel();
        let t = thread::spawn(move || {
            thread::sleep(Duration::from_millis(10));
            tx.send(42u64);
        });
        match rx.recv_deadline(Some(Instant::now() + Duration::from_secs(5))) {
            Recv::Item(v) => assert_eq!(v, 42),
            _ => panic!("expected the sent item"),
        }
        t.join().unwrap();
    }

    #[test]
    fn deadline_expires_without_traffic() {
        let (_tx, rx) = channel::<u64>();
        let start = Instant::now();
        let r = rx.recv_deadline(Some(start + Duration::from_millis(20)));
        assert!(matches!(r, Recv::TimedOut));
        assert!(start.elapsed() >= Duration::from_millis(20));
    }

    #[test]
    fn last_sender_drop_wakes_a_parked_receiver() {
        let (tx, rx) = channel::<u64>();
        let t = thread::spawn(move || {
            thread::sleep(Duration::from_millis(10));
            drop(tx);
        });
        let r = rx.recv_deadline(Some(Instant::now() + Duration::from_secs(5)));
        assert!(matches!(r, Recv::Disconnected));
        t.join().unwrap();
    }
}
