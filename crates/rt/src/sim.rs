//! The discrete-event simulation backend behind the [`Transport`] trait.
//!
//! This is `net::engine`'s machinery — the [`CalendarQueue`] event loop and the
//! [`NetworkModel`] latency/loss/fragmentation model — re-hosted behind the per-node
//! [`Transport`] interface, so the *same* [`Node`] driver that runs on an OS thread in the
//! threaded backend runs here under a deterministic scheduler.  Virtual time, seeded
//! randomness and single-threaded execution make every run exactly reproducible, which is
//! what the cross-backend conformance tests lean on: prove a property here, then check the
//! threaded backend preserves it under real concurrency.
//!
//! (The original [`vsync_net::Engine`] remains the tuned fast path for the legacy
//! [`vsync_core::IsisSystem`] harness; this module is the trait-shaped equivalent new code
//! should target.  Both are thin drivers over the same `net` components.)

use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;

use vsync_net::{CalendarQueue, NetworkModel, Outbox, Packet, SharedStats, SiteHandler};
use vsync_util::{Duration, NetParams, SimTime, SiteId};

use crate::faults::LinkFaults;
use crate::transport::{Event, Node, Transport};

/// An event in the shared calendar queue.
enum SimEv {
    /// A packet en route to its destination site.
    Pkt(Packet),
    /// A timer armed by a site; `epoch` guards against firing on a later incarnation.
    Timer {
        site: SiteId,
        token: u64,
        epoch: u64,
    },
}

/// State shared by every [`SimTransport`] of one cluster (single-threaded, hence `Rc`).
struct SimCore {
    now: SimTime,
    queue: CalendarQueue<SimEv>,
    net: NetworkModel,
    /// Per-site incarnation counters; bumped on kill so stale timers are discarded.
    epochs: Vec<u64>,
    stats: SharedStats,
    /// Link-level faults (partitions, delay spikes), consulted at every send.
    links: LinkFaults,
}

/// The simulated per-node transport: sends plan deliveries through the network model into
/// the shared calendar queue; receives pop from a per-node inbox the scheduler fills.
pub struct SimTransport {
    site: SiteId,
    core: Rc<RefCell<SimCore>>,
    inbox: Rc<RefCell<VecDeque<Event>>>,
}

impl Transport for SimTransport {
    fn site(&self) -> SiteId {
        self.site
    }

    fn now(&self) -> SimTime {
        self.core.borrow().now
    }

    fn send(&mut self, pkt: Packet) {
        let mut core = self.core.borrow_mut();
        let now = core.now;
        // A cut link swallows the packet at the sender, like a send racing a crash: no
        // retransmission charge, no arrival, no trace of it in the calendar.
        if !core.links.is_clear() {
            if core.links.blocks(pkt.src.site, pkt.dst.site) {
                return;
            }
            if pkt.src.site != pkt.dst.site && core.links.extra_delay() > Duration::ZERO {
                let extra = core.links.extra_delay();
                let plan = core.net.plan_delivery(now, &pkt);
                core.queue.push(plan.arrival + extra, SimEv::Pkt(pkt));
                return;
            }
        }
        let plan = core.net.plan_delivery(now, &pkt);
        core.queue.push(plan.arrival, SimEv::Pkt(pkt));
    }

    fn set_timer(&mut self, after: Duration, token: u64) {
        let mut core = self.core.borrow_mut();
        let at = core.now + after;
        let epoch = core.epochs[self.site.index()];
        core.queue.push(
            at,
            SimEv::Timer {
                site: self.site,
                token,
                epoch,
            },
        );
    }

    fn recv(&mut self, _block: bool) -> Option<Event> {
        // The scheduler guarantees readiness: blocking would never have to wait.
        self.inbox.borrow_mut().pop_front()
    }
}

/// A simulated cluster of [`Node`]s sharing one calendar queue and network model.
pub struct SimCluster {
    core: Rc<RefCell<SimCore>>,
    nodes: Vec<Option<Node<SimTransport>>>,
    inboxes: Vec<Rc<RefCell<VecDeque<Event>>>>,
    events_processed: u64,
}

impl SimCluster {
    /// Creates a cluster with `num_sites` empty slots.
    pub fn new(num_sites: usize, params: NetParams, seed: u64) -> Self {
        let stats = SharedStats::new();
        let core = SimCore {
            now: SimTime::ZERO,
            queue: CalendarQueue::new(),
            net: NetworkModel::new(params, stats.clone(), seed),
            epochs: vec![0; num_sites],
            stats,
            links: LinkFaults::none(),
        };
        SimCluster {
            core: Rc::new(RefCell::new(core)),
            nodes: (0..num_sites).map(|_| None).collect(),
            inboxes: (0..num_sites)
                .map(|_| Rc::new(RefCell::new(VecDeque::new())))
                .collect(),
            events_processed: 0,
        }
    }

    /// Number of site slots.
    pub fn num_sites(&self) -> usize {
        self.nodes.len()
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.core.borrow().now
    }

    /// The cluster-wide statistics counters (shared with the network model; pass a clone
    /// into handlers that count multicasts and deliveries).
    pub fn stats(&self) -> SharedStats {
        self.core.borrow().stats.clone()
    }

    /// Events dispatched so far (progress measure, mirrors `Engine::events_processed`).
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// True if the site currently has a node installed.
    pub fn site_is_up(&self, site: SiteId) -> bool {
        self.nodes
            .get(site.index())
            .map(|n| n.is_some())
            .unwrap_or(false)
    }

    /// Installs (or replaces, on recovery) the node for `site` and runs its start hook.
    /// Replacing a live node retires the old incarnation first, so its pending timers can
    /// never fire into the replacement handler (same epoch discipline as a kill).
    pub fn install(&mut self, site: SiteId, handler: Box<dyn SiteHandler>) {
        let idx = site.index();
        assert!(idx < self.nodes.len(), "site {site:?} out of range");
        if self.nodes[idx].is_some() {
            self.core.borrow_mut().epochs[idx] += 1;
        }
        let transport = SimTransport {
            site,
            core: self.core.clone(),
            inbox: self.inboxes[idx].clone(),
        };
        self.inboxes[idx].borrow_mut().clear();
        let mut node = Node::new(transport, handler);
        node.start();
        self.nodes[idx] = Some(node);
    }

    /// Replaces the link-fault table (partitions / delay spikes) effective immediately.
    /// Packets already in the calendar are not recalled — like real routers, a cut stops
    /// *new* traffic; what is in flight lands.
    pub fn set_link_faults(&mut self, links: LinkFaults) {
        self.core.borrow_mut().links = links;
    }

    /// The link-fault table currently in force.
    pub fn link_faults(&self) -> LinkFaults {
        self.core.borrow().links.clone()
    }

    /// Crashes a site: the node is dropped, its pending timers are invalidated through the
    /// epoch counter, and in-flight packets toward it will be discarded on arrival.
    pub fn kill(&mut self, site: SiteId) {
        let idx = site.index();
        if let Some(slot) = self.nodes.get_mut(idx) {
            *slot = None;
            self.core.borrow_mut().epochs[idx] += 1;
            self.inboxes[idx].borrow_mut().clear();
        }
    }

    /// Crashes a site *and* drops its not-yet-delivered outbound packets, modelling a crash
    /// whose final sends die on the wire (or in an unflushed kernel buffer).  This is the
    /// adversarial kill crash-instant fuzzing wants: a plain [`SimCluster::kill`] lets every
    /// packet the site ever emitted arrive, so a multi-packet exchange such as a state
    /// transfer can never be observed half-done.
    pub fn kill_dropping_outbound(&mut self, site: SiteId) {
        self.kill(site);
        self.core
            .borrow_mut()
            .queue
            .retain(|ev| !matches!(ev, SimEv::Pkt(pkt) if pkt.src.site == site));
    }

    /// Runs `f` against a site's concrete handler at the current virtual time, flushing
    /// whatever actions it records.  `None` if the site is down or the type mismatches.
    pub fn with_node<H: SiteHandler, R>(
        &mut self,
        site: SiteId,
        f: impl FnOnce(&mut H, SimTime, &mut Outbox) -> R,
    ) -> Option<R> {
        self.nodes.get_mut(site.index())?.as_mut()?.with_handler(f)
    }

    /// Runs the event loop until the queue empties or virtual time would pass `limit`.
    /// Returns the number of events processed.
    pub fn run_until(&mut self, limit: SimTime) -> u64 {
        let mut processed = 0;
        loop {
            let popped = {
                let mut core = self.core.borrow_mut();
                match core.queue.next_time() {
                    Some(at) if at <= limit => {
                        let (at, ev) = core.queue.pop().expect("peeked");
                        if at > core.now {
                            core.now = at;
                        }
                        Some(ev)
                    }
                    _ => None,
                }
            };
            let Some(ev) = popped else { break };
            processed += 1;
            self.events_processed += 1;
            match ev {
                SimEv::Pkt(pkt) => {
                    let idx = pkt.dst.site.index();
                    if let Some(node) = self.nodes.get_mut(idx).and_then(|n| n.as_mut()) {
                        self.inboxes[idx].borrow_mut().push_back(Event::Packet(pkt));
                        node.poll();
                    }
                }
                SimEv::Timer { site, token, epoch } => {
                    let idx = site.index();
                    let live = self.core.borrow().epochs[idx] == epoch;
                    if live {
                        if let Some(node) = self.nodes.get_mut(idx).and_then(|n| n.as_mut()) {
                            self.inboxes[idx]
                                .borrow_mut()
                                .push_back(Event::Timer(token));
                            node.poll();
                        }
                    }
                }
            }
        }
        let mut core = self.core.borrow_mut();
        if core.now < limit {
            core.now = limit;
        }
        processed
    }

    /// Runs for `d` of virtual time from the current instant.
    pub fn run_for(&mut self, d: Duration) -> u64 {
        let target = self.now() + d;
        self.run_until(target)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::any::Any;
    use vsync_msg::Message;
    use vsync_net::PacketKind;
    use vsync_util::ProcessId;

    struct Echo {
        received: Vec<(SimTime, String)>,
        timers: Vec<u64>,
    }

    impl Echo {
        fn boxed() -> Box<dyn SiteHandler> {
            Box::new(Echo {
                received: Vec::new(),
                timers: Vec::new(),
            })
        }
    }

    impl SiteHandler for Echo {
        fn on_start(&mut self, _now: SimTime, out: &mut Outbox) {
            out.set_timer(Duration::from_millis(5), 1);
        }
        fn on_packet(&mut self, now: SimTime, pkt: Packet, out: &mut Outbox) {
            let body = pkt.payload.get_str("body").unwrap_or("").to_owned();
            self.received.push((now, body.clone()));
            if body == "ping" {
                out.send(Packet::new(
                    pkt.dst,
                    pkt.src,
                    PacketKind::Reply,
                    Message::with_body("pong"),
                ));
            }
        }
        fn on_timer(&mut self, _now: SimTime, token: u64, _out: &mut Outbox) {
            self.timers.push(token);
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    fn two_sites() -> SimCluster {
        let mut c = SimCluster::new(2, NetParams::paper1987(), 7);
        c.install(SiteId(0), Echo::boxed());
        c.install(SiteId(1), Echo::boxed());
        c
    }

    #[test]
    fn ping_pong_obeys_the_latency_model() {
        let mut c = two_sites();
        let a = ProcessId::new(SiteId(0), 0);
        let b = ProcessId::new(SiteId(1), 0);
        c.with_node::<Echo, _>(SiteId(0), |_h, _now, out| {
            out.send(Packet::new(
                a,
                b,
                PacketKind::Data,
                Message::with_body("ping"),
            ));
        });
        c.run_until(SimTime(200_000));
        let ping = c
            .with_node::<Echo, _>(SiteId(1), |h, _n, _o| h.received.clone())
            .unwrap();
        let pong = c
            .with_node::<Echo, _>(SiteId(0), |h, _n, _o| h.received.clone())
            .unwrap();
        assert_eq!(ping.len(), 1);
        assert_eq!(pong.len(), 1);
        // The 1987 profile charges at least 16 ms per inter-site hop.
        assert!(ping[0].0.as_millis_f64() >= 16.0);
        assert!(pong[0].0.as_millis_f64() >= 32.0);
    }

    #[test]
    fn timers_fire_and_epochs_gate_stale_ones() {
        let mut c = two_sites();
        c.run_until(SimTime(50_000));
        let timers = c
            .with_node::<Echo, _>(SiteId(0), |h, _n, _o| h.timers.clone())
            .unwrap();
        assert_eq!(timers, vec![1]);
        // Kill and recover before the (already-armed) start timer of the old incarnation
        // would fire again; the new node sees only its own timer.
        c.kill(SiteId(1));
        assert!(!c.site_is_up(SiteId(1)));
        c.install(SiteId(1), Echo::boxed());
        c.run_until(SimTime(100_000));
        let timers = c
            .with_node::<Echo, _>(SiteId(1), |h, _n, _o| h.timers.clone())
            .unwrap();
        assert_eq!(timers, vec![1], "exactly the fresh incarnation's timer");
    }

    #[test]
    fn killed_sites_discard_in_flight_traffic() {
        let mut c = two_sites();
        let a = ProcessId::new(SiteId(0), 0);
        let b = ProcessId::new(SiteId(1), 0);
        c.with_node::<Echo, _>(SiteId(0), |_h, _now, out| {
            out.send(Packet::new(
                a,
                b,
                PacketKind::Data,
                Message::with_body("ping"),
            ));
        });
        c.kill(SiteId(1));
        c.run_until(SimTime(1_000_000));
        let got = c
            .with_node::<Echo, _>(SiteId(0), |h, _n, _o| h.received.len())
            .unwrap();
        assert_eq!(got, 0, "no pong from a dead site");
    }

    #[test]
    fn hard_kill_drops_in_flight_outbound_packets() {
        let mut c = two_sites();
        let a = ProcessId::new(SiteId(0), 0);
        let b = ProcessId::new(SiteId(1), 0);
        c.with_node::<Echo, _>(SiteId(0), |_h, _now, out| {
            for i in 0..5u64 {
                out.send(Packet::new(a, b, PacketKind::Data, Message::with_body(i)));
            }
        });
        c.kill_dropping_outbound(SiteId(0));
        c.run_until(SimTime(1_000_000));
        let got = c
            .with_node::<Echo, _>(SiteId(1), |h, _n, _o| h.received.len())
            .unwrap();
        assert_eq!(
            got, 0,
            "a hard-killed site's in-flight sends die on the wire"
        );
    }

    #[test]
    fn cut_links_swallow_packets_and_heal_restores_them() {
        let mut c = two_sites();
        let a = ProcessId::new(SiteId(0), 0);
        let b = ProcessId::new(SiteId(1), 0);
        c.set_link_faults(LinkFaults::partition(&[vec![SiteId(0)], vec![SiteId(1)]]));
        c.with_node::<Echo, _>(SiteId(0), |_h, _now, out| {
            out.send(Packet::new(
                a,
                b,
                PacketKind::Data,
                Message::with_body("ping"),
            ));
        });
        c.run_until(SimTime(500_000));
        let got = c
            .with_node::<Echo, _>(SiteId(1), |h, _n, _o| h.received.len())
            .unwrap();
        assert_eq!(got, 0, "a cut link swallows the packet");

        c.set_link_faults(LinkFaults::none());
        c.with_node::<Echo, _>(SiteId(0), |_h, _now, out| {
            out.send(Packet::new(
                a,
                b,
                PacketKind::Data,
                Message::with_body("ping"),
            ));
        });
        c.run_until(SimTime(1_000_000));
        let got = c
            .with_node::<Echo, _>(SiteId(1), |h, _n, _o| h.received.len())
            .unwrap();
        assert_eq!(got, 1, "healed links deliver again");
    }

    #[test]
    fn one_way_cut_blocks_one_direction_only() {
        let mut c = two_sites();
        let a = ProcessId::new(SiteId(0), 0);
        let b = ProcessId::new(SiteId(1), 0);
        // Site 0 cannot reach site 1, but replies (1 -> 0) flow.
        c.set_link_faults(LinkFaults::one_way(&[SiteId(0)], &[SiteId(1)]));
        c.with_node::<Echo, _>(SiteId(1), |_h, _now, out| {
            out.send(Packet::new(
                b,
                a,
                PacketKind::Data,
                Message::with_body("ping"),
            ));
        });
        c.run_until(SimTime(500_000));
        let at_zero = c
            .with_node::<Echo, _>(SiteId(0), |h, _n, _o| h.received.len())
            .unwrap();
        assert_eq!(at_zero, 1, "1 -> 0 still delivers");
        let at_one = c
            .with_node::<Echo, _>(SiteId(1), |h, _n, _o| h.received.len())
            .unwrap();
        assert_eq!(at_one, 0, "the pong (0 -> 1) died on the cut link");
    }

    #[test]
    fn delay_spikes_slow_surviving_links() {
        let run = |spike: Duration| {
            let mut c = two_sites();
            let a = ProcessId::new(SiteId(0), 0);
            let b = ProcessId::new(SiteId(1), 0);
            c.set_link_faults(LinkFaults::none().with_extra_delay(spike));
            c.with_node::<Echo, _>(SiteId(0), |_h, _now, out| {
                out.send(Packet::new(
                    a,
                    b,
                    PacketKind::Data,
                    Message::with_body("ping"),
                ));
            });
            c.run_until(SimTime(5_000_000));
            c.with_node::<Echo, _>(SiteId(1), |h, _n, _o| h.received[0].0)
                .unwrap()
        };
        let base = run(Duration::ZERO);
        let spiked = run(Duration::from_millis(100));
        assert!(
            spiked >= base + Duration::from_millis(100),
            "spike adds at least its latency: base {base:?}, spiked {spiked:?}"
        );
    }

    #[test]
    fn same_seed_same_schedule() {
        let run = |seed: u64| {
            let mut c = SimCluster::new(2, NetParams::modern().with_loss(0.1), seed);
            c.install(SiteId(0), Echo::boxed());
            c.install(SiteId(1), Echo::boxed());
            let a = ProcessId::new(SiteId(0), 0);
            let b = ProcessId::new(SiteId(1), 0);
            c.with_node::<Echo, _>(SiteId(0), |_h, _now, out| {
                for i in 0..10u64 {
                    out.send(Packet::new(a, b, PacketKind::Data, Message::with_body(i)));
                }
            });
            c.run_until(SimTime(1_000_000));
            c.with_node::<Echo, _>(SiteId(1), |h, _n, _o| h.received.clone())
                .unwrap()
        };
        assert_eq!(run(9), run(9), "identical seeds replay identically");
    }
}
