//! Partition-safety invariant checker.
//!
//! Partition tests on both backends record one [`MemberTimeline`] per group member: every
//! view the member installed (seq + membership) and every application-level delivery it
//! applied, tagged with the view seq it was delivered in.  [`PartitionInvariants`] then
//! replays the timelines and asserts the properties a primary-partition membership service
//! must never lose, regardless of where the nemesis cut the network:
//!
//! 1. **No two concurrent primary views** — if any two members installed a view with the
//!    same seq, they installed the *same membership*.  A split-brain (each side of a cut
//!    installing its own view `k+1`) shows up as two installs of one seq with different
//!    member sets and fails here.
//! 2. **Monotonic views** — each member's installed view seqs strictly increase, including
//!    across a wedge / heal / rejoin cycle.
//! 3. **Convergence** — every recorded delivery log is duplicate-free and all logs are
//!    identical, i.e. after the heal the members agree on one total order with no message
//!    applied twice (the exactly-once `log-replayed + snapshot + applies == total`
//!    bookkeeping is asserted by the tests themselves; the checker pins the orders).
//!
//! The checker is deliberately backend-agnostic plain data: the sim and threaded suites
//! (and the fuzzers) build timelines from their observation mirrors and call
//! [`PartitionInvariants::check_all`].

use std::collections::BTreeMap;

use vsync_util::ProcessId;

/// One member's observed history: installed views plus view-tagged deliveries.
#[derive(Clone, Debug, Default)]
pub struct MemberTimeline {
    /// A label for error messages (typically the member's `ProcessId` rendering).
    pub label: String,
    /// Installed views in install order: `(view_seq, membership)`.
    pub views: Vec<(u64, Vec<ProcessId>)>,
    /// Applied deliveries in apply order: `(view_seq at delivery, message key)`.
    pub deliveries: Vec<(u64, String)>,
}

impl MemberTimeline {
    /// A fresh timeline for the labelled member.
    pub fn new(label: impl Into<String>) -> Self {
        MemberTimeline {
            label: label.into(),
            views: Vec::new(),
            deliveries: Vec::new(),
        }
    }

    /// Records a view install.
    pub fn install(&mut self, seq: u64, mut members: Vec<ProcessId>) {
        members.sort();
        self.views.push((seq, members));
    }

    /// Records an applied delivery.
    pub fn deliver(&mut self, view_seq: u64, key: impl Into<String>) {
        self.deliveries.push((view_seq, key.into()));
    }
}

/// A violated partition invariant, with enough context to debug the failing seed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum InvariantViolation {
    /// Two members installed the same view seq with different memberships: split-brain.
    ConflictingViews {
        seq: u64,
        member_a: String,
        view_a: Vec<ProcessId>,
        member_b: String,
        view_b: Vec<ProcessId>,
    },
    /// A member's installed view seqs went backwards (or repeated).
    NonMonotonicViews {
        member: String,
        prev: u64,
        next: u64,
    },
    /// A member applied the same message key twice.
    DuplicateDelivery { member: String, key: String },
    /// Two members' delivery logs differ (first divergence index, or length mismatch).
    DivergentOrders {
        member_a: String,
        member_b: String,
        index: usize,
    },
}

impl std::fmt::Display for InvariantViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InvariantViolation::ConflictingViews {
                seq,
                member_a,
                view_a,
                member_b,
                view_b,
            } => write!(
                f,
                "split-brain: view seq {seq} installed as {view_a:?} at {member_a} \
                 but {view_b:?} at {member_b}"
            ),
            InvariantViolation::NonMonotonicViews { member, prev, next } => write!(
                f,
                "non-monotonic views at {member}: seq {next} installed after {prev}"
            ),
            InvariantViolation::DuplicateDelivery { member, key } => {
                write!(f, "duplicate delivery of {key:?} at {member}")
            }
            InvariantViolation::DivergentOrders {
                member_a,
                member_b,
                index,
            } => write!(
                f,
                "delivery logs of {member_a} and {member_b} diverge at index {index}"
            ),
        }
    }
}

/// Replays recorded [`MemberTimeline`]s and checks the partition invariants.
#[derive(Clone, Debug, Default)]
pub struct PartitionInvariants {
    timelines: Vec<MemberTimeline>,
}

impl PartitionInvariants {
    /// An empty checker; [`record`](Self::record) timelines into it.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one member's timeline.
    pub fn record(&mut self, timeline: MemberTimeline) {
        self.timelines.push(timeline);
    }

    /// The recorded timelines (for diagnostics).
    pub fn timelines(&self) -> &[MemberTimeline] {
        &self.timelines
    }

    /// Invariants 1 + 2: one membership per view seq across all members, and strictly
    /// increasing view seqs per member.
    pub fn check_no_split_brain(&self) -> Result<(), InvariantViolation> {
        let mut by_seq: BTreeMap<u64, (&str, &Vec<ProcessId>)> = BTreeMap::new();
        for t in &self.timelines {
            let mut prev: Option<u64> = None;
            for (seq, members) in &t.views {
                if let Some(p) = prev {
                    if *seq <= p {
                        return Err(InvariantViolation::NonMonotonicViews {
                            member: t.label.clone(),
                            prev: p,
                            next: *seq,
                        });
                    }
                }
                prev = Some(*seq);
                match by_seq.get(seq) {
                    Some((label, known)) if *known != members => {
                        return Err(InvariantViolation::ConflictingViews {
                            seq: *seq,
                            member_a: (*label).to_owned(),
                            view_a: (*known).clone(),
                            member_b: t.label.clone(),
                            view_b: members.clone(),
                        });
                    }
                    Some(_) => {}
                    None => {
                        by_seq.insert(*seq, (t.label.as_str(), members));
                    }
                }
            }
        }
        Ok(())
    }

    /// Invariant 3: every delivery log is duplicate-free and all logs are identical.
    pub fn check_convergence(&self) -> Result<(), InvariantViolation> {
        for t in &self.timelines {
            let mut seen = std::collections::BTreeSet::new();
            for (_vs, key) in &t.deliveries {
                if !seen.insert(key.as_str()) {
                    return Err(InvariantViolation::DuplicateDelivery {
                        member: t.label.clone(),
                        key: key.clone(),
                    });
                }
            }
        }
        if let Some(first) = self.timelines.first() {
            for t in &self.timelines[1..] {
                let keys_a: Vec<&str> = first.deliveries.iter().map(|(_, k)| k.as_str()).collect();
                let keys_b: Vec<&str> = t.deliveries.iter().map(|(_, k)| k.as_str()).collect();
                if keys_a != keys_b {
                    let index = keys_a
                        .iter()
                        .zip(keys_b.iter())
                        .position(|(a, b)| a != b)
                        .unwrap_or_else(|| keys_a.len().min(keys_b.len()));
                    return Err(InvariantViolation::DivergentOrders {
                        member_a: first.label.clone(),
                        member_b: t.label.clone(),
                        index,
                    });
                }
            }
        }
        Ok(())
    }

    /// All invariants; the first violation found, if any.
    pub fn check_all(&self) -> Result<(), InvariantViolation> {
        self.check_no_split_brain()?;
        self.check_convergence()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vsync_util::SiteId;

    fn p(site: u16, local: u32) -> ProcessId {
        ProcessId::new(SiteId(site), local)
    }

    #[test]
    fn agreeing_timelines_pass() {
        let mut inv = PartitionInvariants::new();
        for site in 0..3u16 {
            let mut t = MemberTimeline::new(format!("m{site}"));
            t.install(1, vec![p(0, 1), p(1, 1), p(2, 1)]);
            t.install(2, vec![p(0, 1), p(1, 1)]);
            t.deliver(1, "a");
            t.deliver(2, "b");
            inv.record(t);
        }
        assert_eq!(inv.check_all(), Ok(()));
    }

    #[test]
    fn split_brain_is_detected() {
        let mut inv = PartitionInvariants::new();
        let mut a = MemberTimeline::new("majority");
        a.install(1, vec![p(0, 1), p(1, 1), p(2, 1)]);
        a.install(2, vec![p(0, 1), p(1, 1)]);
        let mut b = MemberTimeline::new("minority");
        b.install(1, vec![p(0, 1), p(1, 1), p(2, 1)]);
        // The minority installed its own view 2, excluding the majority: split-brain.
        b.install(2, vec![p(2, 1)]);
        inv.record(a);
        inv.record(b);
        match inv.check_no_split_brain() {
            Err(InvariantViolation::ConflictingViews { seq: 2, .. }) => {}
            other => panic!("expected ConflictingViews, got {other:?}"),
        }
    }

    #[test]
    fn view_seqs_must_increase() {
        let mut inv = PartitionInvariants::new();
        let mut t = MemberTimeline::new("m");
        t.install(3, vec![p(0, 1)]);
        t.install(3, vec![p(0, 1)]);
        inv.record(t);
        assert!(matches!(
            inv.check_no_split_brain(),
            Err(InvariantViolation::NonMonotonicViews {
                prev: 3,
                next: 3,
                ..
            })
        ));
    }

    #[test]
    fn duplicate_and_divergent_deliveries_are_detected() {
        let mut dup = PartitionInvariants::new();
        let mut t = MemberTimeline::new("m");
        t.deliver(1, "x");
        t.deliver(1, "x");
        dup.record(t);
        assert!(matches!(
            dup.check_convergence(),
            Err(InvariantViolation::DuplicateDelivery { .. })
        ));

        let mut div = PartitionInvariants::new();
        let mut a = MemberTimeline::new("a");
        a.deliver(1, "x");
        a.deliver(1, "y");
        let mut b = MemberTimeline::new("b");
        b.deliver(1, "y");
        b.deliver(1, "x");
        div.record(a);
        div.record(b);
        assert!(matches!(
            div.check_convergence(),
            Err(InvariantViolation::DivergentOrders { index: 0, .. })
        ));
    }
}
