//! Fault injection for the threaded backend.
//!
//! The discrete-event simulator injects delay, loss and reordering through
//! [`vsync_net::NetworkModel`]; real threads need the same knobs or the failure-scenario
//! tests could only run under simulation.  A [`FaultPlan`] is evaluated by the *sending*
//! transport for every cross-node packet, producing an extra delivery delay (and possibly
//! an exemption from the per-channel FIFO clamp, which is what lets later packets overtake).
//!
//! Loss follows the simulator's model exactly: the channel stays reliable — the paper's
//! system "tolerates message loss, but not partitioning", i.e. lost packets are recovered by
//! retransmission — so a "dropped" packet is charged one retransmission timeout per lost
//! attempt instead of disappearing.  Disappearing messages are modelled where the paper
//! models them: by crashing whole sites ([`crate::threaded::ThreadedCluster::kill_site`]).
//!
//! Decisions are drawn from a deterministic RNG seeded per node, so a node's *sequence* of
//! fault decisions is reproducible even though thread interleaving is not (see the
//! "where determinism ends" section of ARCHITECTURE.md).

use vsync_util::{DetRng, Duration, SiteId};

/// What the fault injector decided for one packet.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultDecision {
    /// Extra one-way delay beyond "now".
    pub extra: Duration,
    /// Whether the packet skips the per-channel FIFO clamp (deliberate reordering).
    pub reordered: bool,
}

/// Configurable delay / loss / reordering injection for the threaded backend.
#[derive(Clone, Copy, Debug)]
pub struct FaultPlan {
    /// Fixed one-way delay added to every cross-node packet.
    pub delay: Duration,
    /// Extra uniformly distributed delay in `[0, jitter)`.
    pub jitter: Duration,
    /// Probability that a packet attempt is lost and recovered by retransmission.
    pub drop_probability: f64,
    /// Timeout charged per lost attempt.
    pub retransmit_timeout: Duration,
    /// Probability that a packet is deliberately reordered: it bypasses the FIFO clamp and
    /// is additionally held for `reorder_extra`, letting packets sent after it arrive first.
    pub reorder_probability: f64,
    /// Extra hold applied to reordered packets.
    pub reorder_extra: Duration,
}

impl FaultPlan {
    /// No injected faults: packets arrive as fast as the channels carry them, in FIFO
    /// order per (src, dst) channel.
    pub fn none() -> Self {
        FaultPlan {
            delay: Duration::ZERO,
            jitter: Duration::ZERO,
            drop_probability: 0.0,
            retransmit_timeout: Duration::from_millis(5),
            reorder_probability: 0.0,
            reorder_extra: Duration::ZERO,
        }
    }

    /// A mildly adversarial LAN: sub-millisecond delay and jitter, occasional loss
    /// (recovered by retransmission) and reordering.  Used by the failure-scenario tests.
    pub fn lan() -> Self {
        FaultPlan {
            delay: Duration::from_micros(100),
            jitter: Duration::from_micros(400),
            drop_probability: 0.01,
            retransmit_timeout: Duration::from_millis(2),
            reorder_probability: 0.02,
            reorder_extra: Duration::from_millis(1),
        }
    }

    /// Sets the fixed delay.
    pub fn with_delay(mut self, d: Duration) -> Self {
        self.delay = d;
        self
    }

    /// Sets the jitter bound.
    pub fn with_jitter(mut self, d: Duration) -> Self {
        self.jitter = d;
        self
    }

    /// Sets the loss probability (clamped to `[0, 0.999]`).
    pub fn with_drop(mut self, p: f64) -> Self {
        self.drop_probability = p.clamp(0.0, 0.999);
        self
    }

    /// Sets the reorder probability (clamped to `[0, 1]`) and the extra hold.
    pub fn with_reorder(mut self, p: f64, extra: Duration) -> Self {
        self.reorder_probability = p.clamp(0.0, 1.0);
        self.reorder_extra = extra;
        self
    }

    /// Decides one packet's fate.
    pub fn decide(&self, rng: &mut DetRng) -> FaultDecision {
        let mut extra = self.delay;
        if self.jitter > Duration::ZERO {
            extra += Duration::from_micros(rng.next_below(self.jitter.as_micros()));
        }
        if self.drop_probability > 0.0 {
            // Same shape as NetworkModel: each lost attempt costs one retransmission
            // timeout, capped so a pathological probability cannot stall forever.
            let mut attempts = 0u64;
            while rng.chance(self.drop_probability) && attempts < 16 {
                attempts += 1;
            }
            extra += self.retransmit_timeout.saturating_mul(attempts);
        }
        let reordered = self.reorder_probability > 0.0 && rng.chance(self.reorder_probability);
        if reordered {
            extra += self.reorder_extra;
        }
        FaultDecision { extra, reordered }
    }
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::none()
    }
}

/// One site's appointment with death in a [`CrashSchedule`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ScheduledKill {
    /// The site to kill.
    pub site: SiteId,
    /// When to kill it, relative to the start of the schedule.
    pub after: Duration,
}

/// A coordinated crash of many sites: who dies, in what order, spread over what window.
///
/// The total-failure tests need *every* member of a group dead — but "the last site to
/// fail" (the log the reform protocol must elect, paper Section 3.8) depends entirely on
/// the kill order and spacing, so the schedule is a first-class, seedable object rather
/// than a loop in each test.  Executed by `IsisHarness::run_crash_schedule` on either
/// backend; kills are held in non-decreasing `after` order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CrashSchedule {
    kills: Vec<ScheduledKill>,
}

impl CrashSchedule {
    /// Kills every site at the same instant (no site outlives another by more than
    /// scheduling noise — the degenerate case where log election falls to tie-breaks).
    pub fn simultaneous(sites: impl IntoIterator<Item = SiteId>) -> Self {
        CrashSchedule {
            kills: sites
                .into_iter()
                .map(|site| ScheduledKill {
                    site,
                    after: Duration::ZERO,
                })
                .collect(),
        }
    }

    /// Kills sites one by one, `gap` apart, in the order given — the listed last site is
    /// the last to fail, so its log should win the reform election.
    pub fn staggered(sites: impl IntoIterator<Item = SiteId>, gap: Duration) -> Self {
        CrashSchedule {
            kills: sites
                .into_iter()
                .enumerate()
                .map(|(i, site)| ScheduledKill {
                    site,
                    after: gap.saturating_mul(i as u64),
                })
                .collect(),
        }
    }

    /// [`staggered`](Self::staggered) in a deterministically shuffled order: the fuzz
    /// tests draw many kill orders from many seeds without hand-writing permutations.
    pub fn shuffled(sites: impl IntoIterator<Item = SiteId>, gap: Duration, seed: u64) -> Self {
        let mut order: Vec<SiteId> = sites.into_iter().collect();
        DetRng::new(seed).shuffle(&mut order);
        CrashSchedule::staggered(order, gap)
    }

    /// Fully explicit offsets (e.g. a kill timed to land inside a compaction window).
    /// Sorted into execution order; the order of equal offsets is preserved.
    pub fn at_offsets(kills: impl IntoIterator<Item = (SiteId, Duration)>) -> Self {
        let mut kills: Vec<ScheduledKill> = kills
            .into_iter()
            .map(|(site, after)| ScheduledKill { site, after })
            .collect();
        kills.sort_by_key(|k| k.after);
        CrashSchedule { kills }
    }

    /// The kills in execution order.
    pub fn kills(&self) -> &[ScheduledKill] {
        &self.kills
    }

    /// The sites in kill order (the last entry is the "last to fail").
    pub fn order(&self) -> Vec<SiteId> {
        self.kills.iter().map(|k| k.site).collect()
    }

    /// Offset of the final kill: how long the whole schedule takes to execute.
    pub fn window(&self) -> Duration {
        self.kills.last().map(|k| k.after).unwrap_or(Duration::ZERO)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_faults_means_no_delay_and_no_reorder() {
        let mut rng = DetRng::new(1);
        for _ in 0..100 {
            let d = FaultPlan::none().decide(&mut rng);
            assert_eq!(d.extra, Duration::ZERO);
            assert!(!d.reordered);
        }
    }

    #[test]
    fn jitter_stays_within_its_bound() {
        let plan = FaultPlan::none()
            .with_delay(Duration::from_micros(100))
            .with_jitter(Duration::from_micros(50));
        let mut rng = DetRng::new(2);
        for _ in 0..200 {
            let d = plan.decide(&mut rng);
            assert!(d.extra >= Duration::from_micros(100));
            assert!(d.extra < Duration::from_micros(150));
        }
    }

    #[test]
    fn loss_charges_retransmission_timeouts() {
        let plan = FaultPlan::none().with_drop(0.9);
        let mut rng = DetRng::new(3);
        let delayed = (0..200)
            .filter(|_| plan.decide(&mut rng).extra > Duration::ZERO)
            .count();
        assert!(delayed > 100, "90% loss must delay most packets: {delayed}");
    }

    #[test]
    fn crash_schedules_order_and_window() {
        let sites: Vec<SiteId> = (0..4).map(SiteId).collect();
        let all = CrashSchedule::simultaneous(sites.clone());
        assert_eq!(all.window(), Duration::ZERO);
        assert_eq!(all.order(), sites);

        let gap = Duration::from_millis(50);
        let st = CrashSchedule::staggered(sites.clone(), gap);
        assert_eq!(st.window(), Duration::from_millis(150));
        assert_eq!(st.order().last(), Some(&SiteId(3)));

        // Shuffles are deterministic per seed and vary across seeds.
        let a = CrashSchedule::shuffled(sites.clone(), gap, 9);
        assert_eq!(a, CrashSchedule::shuffled(sites.clone(), gap, 9));
        let distinct = (0..16)
            .map(|seed| CrashSchedule::shuffled(sites.clone(), gap, seed).order())
            .collect::<std::collections::BTreeSet<_>>();
        assert!(distinct.len() > 1, "16 seeds never changed the kill order");

        // Explicit offsets execute in time order regardless of argument order.
        let ex = CrashSchedule::at_offsets([
            (SiteId(1), Duration::from_millis(20)),
            (SiteId(0), Duration::from_millis(5)),
        ]);
        assert_eq!(ex.order(), vec![SiteId(0), SiteId(1)]);
    }

    #[test]
    fn decisions_are_deterministic_per_seed() {
        let plan = FaultPlan::lan();
        let run = |seed| {
            let mut rng = DetRng::new(seed);
            (0..64).map(|_| plan.decide(&mut rng)).collect::<Vec<_>>()
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43));
    }
}
