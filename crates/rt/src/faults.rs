//! Fault injection for the runtime backends.
//!
//! The discrete-event simulator injects delay, loss and reordering through
//! [`vsync_net::NetworkModel`]; real threads need the same knobs or the failure-scenario
//! tests could only run under simulation.  A [`FaultPlan`] is evaluated by the *sending*
//! transport for every cross-node packet, producing an extra delivery delay (and possibly
//! an exemption from the per-channel FIFO clamp, which is what lets later packets overtake).
//!
//! Loss follows the simulator's model exactly: the channel stays reliable — the paper's
//! system "tolerates message loss, but not partitioning", i.e. lost packets are recovered by
//! retransmission — so a "dropped" packet is charged one retransmission timeout per lost
//! attempt instead of disappearing.  Disappearing messages are modelled where the paper
//! models them: by crashing whole sites ([`crate::threaded::ThreadedCluster::kill_site`]).
//!
//! *Partitions* go beyond the paper's fail-stop model: the quote above was true of ISIS
//! in 1987, but this system no longer inherits the limitation.  [`LinkFaults`] cuts
//! site-to-site links (symmetric or one-way) so traffic genuinely disappears instead of
//! being retransmitted, and a [`NemesisSchedule`] composes timed partition / heal / crash /
//! delay-spike events the way [`CrashSchedule`] composes coordinated kills.  Both backends
//! honor the cut at the sending side; the protocol layer's primary-partition rule (see
//! `vsync-proto`'s endpoint) turns a cut into a wedged minority rather than split-brain.
//!
//! Decisions are drawn from a deterministic RNG seeded per node, so a node's *sequence* of
//! fault decisions is reproducible even though thread interleaving is not (see the
//! "where determinism ends" section of ARCHITECTURE.md).

use std::collections::BTreeSet;

use vsync_util::{DetRng, Duration, SiteId};

/// What the fault injector decided for one packet.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultDecision {
    /// Extra one-way delay beyond "now".
    pub extra: Duration,
    /// Whether the packet skips the per-channel FIFO clamp (deliberate reordering).
    pub reordered: bool,
}

/// Configurable delay / loss / reordering injection for the threaded backend.
#[derive(Clone, Copy, Debug)]
pub struct FaultPlan {
    /// Fixed one-way delay added to every cross-node packet.
    pub delay: Duration,
    /// Extra uniformly distributed delay in `[0, jitter)`.
    pub jitter: Duration,
    /// Probability that a packet attempt is lost and recovered by retransmission.
    pub drop_probability: f64,
    /// Timeout charged per lost attempt.
    pub retransmit_timeout: Duration,
    /// Probability that a packet is deliberately reordered: it bypasses the FIFO clamp and
    /// is additionally held for `reorder_extra`, letting packets sent after it arrive first.
    pub reorder_probability: f64,
    /// Extra hold applied to reordered packets.
    pub reorder_extra: Duration,
}

impl FaultPlan {
    /// No injected faults: packets arrive as fast as the channels carry them, in FIFO
    /// order per (src, dst) channel.
    pub fn none() -> Self {
        FaultPlan {
            delay: Duration::ZERO,
            jitter: Duration::ZERO,
            drop_probability: 0.0,
            retransmit_timeout: Duration::from_millis(5),
            reorder_probability: 0.0,
            reorder_extra: Duration::ZERO,
        }
    }

    /// A mildly adversarial LAN: sub-millisecond delay and jitter, occasional loss
    /// (recovered by retransmission) and reordering.  Used by the failure-scenario tests.
    pub fn lan() -> Self {
        FaultPlan {
            delay: Duration::from_micros(100),
            jitter: Duration::from_micros(400),
            drop_probability: 0.01,
            retransmit_timeout: Duration::from_millis(2),
            reorder_probability: 0.02,
            reorder_extra: Duration::from_millis(1),
        }
    }

    /// Sets the fixed delay.
    pub fn with_delay(mut self, d: Duration) -> Self {
        self.delay = d;
        self
    }

    /// Sets the jitter bound.
    pub fn with_jitter(mut self, d: Duration) -> Self {
        self.jitter = d;
        self
    }

    /// Sets the loss probability (clamped to `[0, 0.999]`).
    pub fn with_drop(mut self, p: f64) -> Self {
        self.drop_probability = p.clamp(0.0, 0.999);
        self
    }

    /// Sets the reorder probability (clamped to `[0, 1]`) and the extra hold.
    pub fn with_reorder(mut self, p: f64, extra: Duration) -> Self {
        self.reorder_probability = p.clamp(0.0, 1.0);
        self.reorder_extra = extra;
        self
    }

    /// Decides one packet's fate.
    pub fn decide(&self, rng: &mut DetRng) -> FaultDecision {
        let mut extra = self.delay;
        if self.jitter > Duration::ZERO {
            extra += Duration::from_micros(rng.next_below(self.jitter.as_micros()));
        }
        if self.drop_probability > 0.0 {
            // Same shape as NetworkModel: each lost attempt costs one retransmission
            // timeout, capped so a pathological probability cannot stall forever.
            let mut attempts = 0u64;
            while rng.chance(self.drop_probability) && attempts < 16 {
                attempts += 1;
            }
            extra += self.retransmit_timeout.saturating_mul(attempts);
        }
        let reordered = self.reorder_probability > 0.0 && rng.chance(self.reorder_probability);
        if reordered {
            extra += self.reorder_extra;
        }
        FaultDecision { extra, reordered }
    }
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::none()
    }
}

/// One site's appointment with death in a [`CrashSchedule`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ScheduledKill {
    /// The site to kill.
    pub site: SiteId,
    /// When to kill it, relative to the start of the schedule.
    pub after: Duration,
}

/// A coordinated crash of many sites: who dies, in what order, spread over what window.
///
/// The total-failure tests need *every* member of a group dead — but "the last site to
/// fail" (the log the reform protocol must elect, paper Section 3.8) depends entirely on
/// the kill order and spacing, so the schedule is a first-class, seedable object rather
/// than a loop in each test.  Executed by `IsisHarness::run_crash_schedule` on either
/// backend; kills are held in non-decreasing `after` order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CrashSchedule {
    kills: Vec<ScheduledKill>,
}

impl CrashSchedule {
    /// Kills every site at the same instant (no site outlives another by more than
    /// scheduling noise — the degenerate case where log election falls to tie-breaks).
    pub fn simultaneous(sites: impl IntoIterator<Item = SiteId>) -> Self {
        CrashSchedule {
            kills: sites
                .into_iter()
                .map(|site| ScheduledKill {
                    site,
                    after: Duration::ZERO,
                })
                .collect(),
        }
    }

    /// Kills sites one by one, `gap` apart, in the order given — the listed last site is
    /// the last to fail, so its log should win the reform election.
    pub fn staggered(sites: impl IntoIterator<Item = SiteId>, gap: Duration) -> Self {
        CrashSchedule {
            kills: sites
                .into_iter()
                .enumerate()
                .map(|(i, site)| ScheduledKill {
                    site,
                    after: gap.saturating_mul(i as u64),
                })
                .collect(),
        }
    }

    /// [`staggered`](Self::staggered) in a deterministically shuffled order: the fuzz
    /// tests draw many kill orders from many seeds without hand-writing permutations.
    pub fn shuffled(sites: impl IntoIterator<Item = SiteId>, gap: Duration, seed: u64) -> Self {
        let mut order: Vec<SiteId> = sites.into_iter().collect();
        DetRng::new(seed).shuffle(&mut order);
        CrashSchedule::staggered(order, gap)
    }

    /// Fully explicit offsets (e.g. a kill timed to land inside a compaction window).
    /// Sorted into execution order; the order of equal offsets is preserved.
    pub fn at_offsets(kills: impl IntoIterator<Item = (SiteId, Duration)>) -> Self {
        let mut kills: Vec<ScheduledKill> = kills
            .into_iter()
            .map(|(site, after)| ScheduledKill { site, after })
            .collect();
        kills.sort_by_key(|k| k.after);
        CrashSchedule { kills }
    }

    /// The kills in execution order.
    pub fn kills(&self) -> &[ScheduledKill] {
        &self.kills
    }

    /// The sites in kill order (the last entry is the "last to fail").
    pub fn order(&self) -> Vec<SiteId> {
        self.kills.iter().map(|k| k.site).collect()
    }

    /// Offset of the final kill: how long the whole schedule takes to execute.
    pub fn window(&self) -> Duration {
        self.kills.last().map(|k| k.after).unwrap_or(Duration::ZERO)
    }
}

/// The current state of the cluster's links: which directed site pairs drop packets, and
/// how much extra latency every surviving inter-site packet pays.
///
/// A cut is *directional* — `(src, dst)` present means packets from `src` to `dst`
/// disappear — so asymmetric failures (A hears B, B does not hear A) are expressible.
/// Both backends consult the table at the sending transport, which is where the simulator
/// plans deliveries and where the threaded router hands a packet to the destination
/// channel: a cut packet is simply never submitted, exactly like a mid-flight crash.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct LinkFaults {
    /// Directed (src, dst) site pairs whose packets are dropped.
    cut: BTreeSet<(SiteId, SiteId)>,
    /// Extra one-way latency added to surviving inter-site packets (a delay spike).
    extra_delay: Duration,
}

impl LinkFaults {
    /// Healthy links: nothing cut, no extra delay.
    pub fn none() -> Self {
        LinkFaults::default()
    }

    /// Cuts the cluster into the given components: every link between sites in
    /// *different* components is cut in both directions; links within a component stay up.
    /// Sites not listed in any component keep all their links (they can still talk to
    /// every side — useful for modelling a partial cut).
    pub fn partition(components: &[Vec<SiteId>]) -> Self {
        let mut faults = LinkFaults::default();
        for (i, a) in components.iter().enumerate() {
            for b in components.iter().skip(i + 1) {
                for &x in a {
                    for &y in b {
                        faults.cut.insert((x, y));
                        faults.cut.insert((y, x));
                    }
                }
            }
        }
        faults
    }

    /// Cuts links one way only: packets from any site in `from` to any site in `to`
    /// disappear, while the reverse direction keeps working.
    pub fn one_way(from: &[SiteId], to: &[SiteId]) -> Self {
        let mut faults = LinkFaults::default();
        for &x in from {
            for &y in to {
                if x != y {
                    faults.cut.insert((x, y));
                }
            }
        }
        faults
    }

    /// Adds an extra one-way latency to every surviving inter-site packet.
    pub fn with_extra_delay(mut self, d: Duration) -> Self {
        self.extra_delay = d;
        self
    }

    /// True if packets from `src` to `dst` are currently dropped.
    pub fn blocks(&self, src: SiteId, dst: SiteId) -> bool {
        src != dst && !self.cut.is_empty() && self.cut.contains(&(src, dst))
    }

    /// The extra latency surviving inter-site packets currently pay.
    pub fn extra_delay(&self) -> Duration {
        self.extra_delay
    }

    /// True if the table injects nothing at all (the hot-path fast case).
    pub fn is_clear(&self) -> bool {
        self.cut.is_empty() && self.extra_delay == Duration::ZERO
    }
}

/// One timed step of a [`NemesisSchedule`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum NemesisEvent {
    /// Replace the link table with a symmetric partition into the given components.
    Partition { components: Vec<Vec<SiteId>> },
    /// Replace the link table with a one-way cut: `from` can no longer reach `to`.
    OneWayCut { from: Vec<SiteId>, to: Vec<SiteId> },
    /// Restore every link and clear any delay spike.
    Heal,
    /// Kill a site outright (composes partition scenarios with real crashes).
    Crash { site: SiteId },
    /// Add `extra` latency to every surviving inter-site packet from now on
    /// (`Duration::ZERO` ends the spike).  Cuts currently in force are kept.
    DelaySpike { extra: Duration },
}

/// One appointment in a [`NemesisSchedule`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ScheduledNemesis {
    /// When the event fires, relative to the start of the schedule.
    pub after: Duration,
    /// What happens.
    pub event: NemesisEvent,
}

/// A composed sequence of timed network faults: partitions, heals, crashes and delay
/// spikes, the way [`CrashSchedule`] composes coordinated kills.
///
/// Executed by `IsisHarness::run_nemesis` on either backend.  Each `Partition` /
/// `OneWayCut` event *replaces* the link table (carrying any active delay spike forward),
/// `Heal` clears everything, and `DelaySpike` adjusts only the latency component — so a
/// schedule reads as a sequence of network states, not a diff algebra.  Events are held in
/// non-decreasing `after` order.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct NemesisSchedule {
    events: Vec<ScheduledNemesis>,
}

impl NemesisSchedule {
    /// An empty schedule; chain [`at`](Self::at) to populate it.
    pub fn new() -> Self {
        NemesisSchedule::default()
    }

    /// Appends an event at `after` (kept sorted; equal offsets preserve insertion order).
    pub fn at(mut self, after: Duration, event: NemesisEvent) -> Self {
        let idx = self
            .events
            .iter()
            .position(|e| e.after > after)
            .unwrap_or(self.events.len());
        self.events.insert(idx, ScheduledNemesis { after, event });
        self
    }

    /// The common shape: cut the cluster into `components` at `cut_at`, heal at `heal_at`.
    pub fn partition_window(
        cut_at: Duration,
        heal_at: Duration,
        components: Vec<Vec<SiteId>>,
    ) -> Self {
        NemesisSchedule::new()
            .at(cut_at, NemesisEvent::Partition { components })
            .at(heal_at.max(cut_at), NemesisEvent::Heal)
    }

    /// A one-way cut from `from` to `to` over the same window shape.
    pub fn one_way_window(
        cut_at: Duration,
        heal_at: Duration,
        from: Vec<SiteId>,
        to: Vec<SiteId>,
    ) -> Self {
        NemesisSchedule::new()
            .at(cut_at, NemesisEvent::OneWayCut { from, to })
            .at(heal_at.max(cut_at), NemesisEvent::Heal)
    }

    /// A delay spike of `extra` per packet between `start` and `end` (no links cut).
    pub fn delay_spike_window(start: Duration, end: Duration, extra: Duration) -> Self {
        NemesisSchedule::new()
            .at(start, NemesisEvent::DelaySpike { extra })
            .at(
                end.max(start),
                NemesisEvent::DelaySpike {
                    extra: Duration::ZERO,
                },
            )
    }

    /// The events in execution order.
    pub fn events(&self) -> &[ScheduledNemesis] {
        &self.events
    }

    /// Offset of the final event: how long the whole schedule takes to execute.
    pub fn window(&self) -> Duration {
        self.events
            .last()
            .map(|e| e.after)
            .unwrap_or(Duration::ZERO)
    }

    /// Folds one event into a running link table, returning `true` if the table changed
    /// (crashes leave it untouched — the runtime handles those directly).
    pub fn apply_to_links(event: &NemesisEvent, links: &mut LinkFaults) -> bool {
        match event {
            NemesisEvent::Partition { components } => {
                *links = LinkFaults::partition(components).with_extra_delay(links.extra_delay);
                true
            }
            NemesisEvent::OneWayCut { from, to } => {
                *links = LinkFaults::one_way(from, to).with_extra_delay(links.extra_delay);
                true
            }
            NemesisEvent::Heal => {
                *links = LinkFaults::none();
                true
            }
            NemesisEvent::DelaySpike { extra } => {
                links.extra_delay = *extra;
                true
            }
            NemesisEvent::Crash { .. } => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_faults_means_no_delay_and_no_reorder() {
        let mut rng = DetRng::new(1);
        for _ in 0..100 {
            let d = FaultPlan::none().decide(&mut rng);
            assert_eq!(d.extra, Duration::ZERO);
            assert!(!d.reordered);
        }
    }

    #[test]
    fn jitter_stays_within_its_bound() {
        let plan = FaultPlan::none()
            .with_delay(Duration::from_micros(100))
            .with_jitter(Duration::from_micros(50));
        let mut rng = DetRng::new(2);
        for _ in 0..200 {
            let d = plan.decide(&mut rng);
            assert!(d.extra >= Duration::from_micros(100));
            assert!(d.extra < Duration::from_micros(150));
        }
    }

    #[test]
    fn loss_charges_retransmission_timeouts() {
        let plan = FaultPlan::none().with_drop(0.9);
        let mut rng = DetRng::new(3);
        let delayed = (0..200)
            .filter(|_| plan.decide(&mut rng).extra > Duration::ZERO)
            .count();
        assert!(delayed > 100, "90% loss must delay most packets: {delayed}");
    }

    #[test]
    fn crash_schedules_order_and_window() {
        let sites: Vec<SiteId> = (0..4).map(SiteId).collect();
        let all = CrashSchedule::simultaneous(sites.clone());
        assert_eq!(all.window(), Duration::ZERO);
        assert_eq!(all.order(), sites);

        let gap = Duration::from_millis(50);
        let st = CrashSchedule::staggered(sites.clone(), gap);
        assert_eq!(st.window(), Duration::from_millis(150));
        assert_eq!(st.order().last(), Some(&SiteId(3)));

        // Shuffles are deterministic per seed and vary across seeds.
        let a = CrashSchedule::shuffled(sites.clone(), gap, 9);
        assert_eq!(a, CrashSchedule::shuffled(sites.clone(), gap, 9));
        let distinct = (0..16)
            .map(|seed| CrashSchedule::shuffled(sites.clone(), gap, seed).order())
            .collect::<std::collections::BTreeSet<_>>();
        assert!(distinct.len() > 1, "16 seeds never changed the kill order");

        // Explicit offsets execute in time order regardless of argument order.
        let ex = CrashSchedule::at_offsets([
            (SiteId(1), Duration::from_millis(20)),
            (SiteId(0), Duration::from_millis(5)),
        ]);
        assert_eq!(ex.order(), vec![SiteId(0), SiteId(1)]);
    }

    #[test]
    fn partitions_cut_across_components_only() {
        let links = LinkFaults::partition(&[vec![SiteId(0), SiteId(1)], vec![SiteId(2)]]);
        // Across components, both directions.
        assert!(links.blocks(SiteId(0), SiteId(2)));
        assert!(links.blocks(SiteId(2), SiteId(0)));
        assert!(links.blocks(SiteId(1), SiteId(2)));
        // Within a component, nothing.
        assert!(!links.blocks(SiteId(0), SiteId(1)));
        assert!(!links.blocks(SiteId(1), SiteId(0)));
        // A site outside every component keeps its links.
        assert!(!links.blocks(SiteId(0), SiteId(3)));
        assert!(!links.blocks(SiteId(3), SiteId(2)));
        // Self-traffic is never cut.
        assert!(!links.blocks(SiteId(2), SiteId(2)));
    }

    #[test]
    fn one_way_cuts_are_directional() {
        let links = LinkFaults::one_way(&[SiteId(0)], &[SiteId(1), SiteId(2)]);
        assert!(links.blocks(SiteId(0), SiteId(1)));
        assert!(links.blocks(SiteId(0), SiteId(2)));
        assert!(!links.blocks(SiteId(1), SiteId(0)));
        assert!(!links.blocks(SiteId(2), SiteId(0)));
        assert!(!links.blocks(SiteId(1), SiteId(2)));
    }

    #[test]
    fn nemesis_schedule_orders_events_and_folds_links() {
        let spike = Duration::from_millis(5);
        let sched = NemesisSchedule::new()
            .at(Duration::from_millis(100), NemesisEvent::Heal)
            .at(
                Duration::from_millis(20),
                NemesisEvent::Partition {
                    components: vec![vec![SiteId(0)], vec![SiteId(1)]],
                },
            )
            .at(
                Duration::from_millis(50),
                NemesisEvent::DelaySpike { extra: spike },
            );
        assert_eq!(sched.window(), Duration::from_millis(100));
        let offsets: Vec<Duration> = sched.events().iter().map(|e| e.after).collect();
        assert_eq!(
            offsets,
            vec![
                Duration::from_millis(20),
                Duration::from_millis(50),
                Duration::from_millis(100)
            ]
        );

        let mut links = LinkFaults::none();
        NemesisSchedule::apply_to_links(&sched.events()[0].event, &mut links);
        assert!(links.blocks(SiteId(0), SiteId(1)));
        NemesisSchedule::apply_to_links(&sched.events()[1].event, &mut links);
        assert!(links.blocks(SiteId(0), SiteId(1)), "spike keeps the cut");
        assert_eq!(links.extra_delay(), spike);
        // A new partition carries the spike forward.
        NemesisSchedule::apply_to_links(
            &NemesisEvent::Partition {
                components: vec![vec![SiteId(0), SiteId(1)], vec![SiteId(2)]],
            },
            &mut links,
        );
        assert!(!links.blocks(SiteId(0), SiteId(1)));
        assert_eq!(links.extra_delay(), spike);
        NemesisSchedule::apply_to_links(&sched.events()[2].event, &mut links);
        assert!(links.is_clear(), "heal clears cuts and the spike");

        // Crashes do not touch the link table.
        assert!(!NemesisSchedule::apply_to_links(
            &NemesisEvent::Crash { site: SiteId(1) },
            &mut links
        ));
    }

    #[test]
    fn nemesis_window_helpers() {
        let cut = Duration::from_millis(10);
        let heal = Duration::from_millis(90);
        let p =
            NemesisSchedule::partition_window(cut, heal, vec![vec![SiteId(0)], vec![SiteId(1)]]);
        assert_eq!(p.events().len(), 2);
        assert!(matches!(
            p.events()[0].event,
            NemesisEvent::Partition { .. }
        ));
        assert!(matches!(p.events()[1].event, NemesisEvent::Heal));

        let o = NemesisSchedule::one_way_window(cut, heal, vec![SiteId(0)], vec![SiteId(1)]);
        assert!(matches!(
            o.events()[0].event,
            NemesisEvent::OneWayCut { .. }
        ));

        let d = NemesisSchedule::delay_spike_window(cut, heal, Duration::from_millis(3));
        assert!(
            matches!(d.events()[1].event, NemesisEvent::DelaySpike { extra } if extra == Duration::ZERO)
        );
    }

    #[test]
    fn decisions_are_deterministic_per_seed() {
        let plan = FaultPlan::lan();
        let run = |seed| {
            let mut rng = DetRng::new(seed);
            (0..64).map(|_| plan.decide(&mut rng)).collect::<Vec<_>>()
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43));
    }
}
