//! The [`Transport`] abstraction and the [`Node`] driver loop.
//!
//! A transport is everything a site's protocol stack needs from the outside world: a local
//! clock, a way to send [`Packet`]s toward other sites, a timer service, and a source of
//! incoming events.  The stack itself ([`SiteHandler`]) stays sans-io — it reacts to packets
//! and timers by recording actions in an [`Outbox`] — and the [`Node`] loop is the one piece
//! of glue that pumps transport events into the handler and flushes the outbox back into the
//! transport.
//!
//! Two backends implement the trait:
//!
//! * [`crate::sim::SimTransport`] — the discrete-event simulation: deterministic virtual
//!   time, a shared calendar queue, the [`vsync_net::NetworkModel`] latency/loss model.
//! * [`crate::threaded::ThreadedTransport`] — real OS threads: wall-clock time, packets
//!   serialized across lock-protected channels, fault injection at the sending side.
//!
//! Because both backends drive the *same* `Node::handle` path, anything proven about the
//! protocol stack under the simulator (ordering, view agreement, flush atomicity) carries
//! over structurally to the threaded runtime; what changes is only where events come from
//! and how time advances.

use vsync_net::{Outbox, Packet, SiteHandler};
use vsync_util::{Duration, SimTime, SiteId};

/// An event delivered to a node by its transport.
pub enum Event {
    /// A packet addressed to a process on this node's site.
    Packet(Packet),
    /// A timer armed earlier by this node has fired.
    Timer(u64),
    /// A control-plane closure injected from outside the node (the runtime equivalent of
    /// [`vsync_net::Engine::with_site`]: "a client calls the toolkit now").
    Invoke(InvokeFn),
}

/// A closure injected into a node's event loop.  It runs on the node's thread with
/// exclusive access to the handler, so external callers never share the stack's state;
/// results travel back over whatever channel the closure captured.
pub type InvokeFn = Box<dyn FnOnce(&mut dyn SiteHandler, SimTime, &mut Outbox) + Send>;

/// Boxes a closure as an [`InvokeFn`].  Going through this helper (rather than `Box::new`
/// at the call site) lets the compiler infer the closure as higher-ranked over the borrow
/// lifetimes, which a bare `Box::new(...) as InvokeFn` coercion cannot.
pub fn invoke_fn(
    f: impl FnOnce(&mut dyn SiteHandler, SimTime, &mut Outbox) + Send + 'static,
) -> InvokeFn {
    Box::new(f)
}

/// What a node needs from its environment: clock, egress, timers, and an event source.
pub trait Transport {
    /// The site this transport serves.
    fn site(&self) -> SiteId;

    /// The current time.  Virtual for the simulation, microseconds since cluster start for
    /// the threaded backend — the protocol stacks only ever compare and add, so the same
    /// state machines run on both.
    fn now(&self) -> SimTime;

    /// Submits a packet for delivery.  Same-site traffic loops back locally; cross-site
    /// traffic goes through the backend's network (simulated links or inter-thread
    /// channels), which decides when — and, under fault injection, in what order — it
    /// arrives.
    fn send(&mut self, pkt: Packet);

    /// Arms a timer that fires `after` from now, identified by `token`.
    fn set_timer(&mut self, after: Duration, token: u64);

    /// Returns the next event ready for this node.
    ///
    /// With `block` the call waits until an event is ready and returns `None` only when the
    /// transport is closed for good (every sender gone — the node should exit).  Without
    /// `block` it returns `None` as soon as nothing is ready right now.
    fn recv(&mut self, block: bool) -> Option<Event>;
}

/// The driver loop that owns one site's protocol stack and its transport.
///
/// The loop is deliberately tiny: receive an event, dispatch it into the handler, flush the
/// recorded actions back into the transport.  The simulation calls [`Node::poll`] from its
/// scheduler; the threaded backend parks in [`Node::run`] on its own OS thread.
pub struct Node<T: Transport> {
    transport: T,
    handler: Box<dyn SiteHandler>,
    out: Outbox,
    events: u64,
}

impl<T: Transport> Node<T> {
    /// Creates a node.  Call [`Node::start`] before pumping events so the handler can arm
    /// its initial timers.
    pub fn new(transport: T, handler: Box<dyn SiteHandler>) -> Self {
        let mut out = Outbox::new();
        // Nodes normally do not collect traces: the threaded backend has no global trace
        // sink, and handlers using `trace_with` should skip the formatting entirely.
        // `VSYNC_RT_TRACE=1` flips them on and streams every line to stderr (interleaved
        // across node threads, each line prefixed by its site) — the only way to watch a
        // protocol exchange unfold on the OS-scheduled backend.
        out.set_trace_collection(std::env::var_os("VSYNC_RT_TRACE").is_some());
        Node {
            transport,
            handler,
            out,
            events: 0,
        }
    }

    /// The site this node runs.
    pub fn site(&self) -> SiteId {
        self.transport.site()
    }

    /// The transport's current time.
    pub fn now(&self) -> SimTime {
        self.transport.now()
    }

    /// Number of events dispatched into the handler so far.
    pub fn events_handled(&self) -> u64 {
        self.events
    }

    /// Runs the handler's `on_start` hook and flushes its actions.
    pub fn start(&mut self) {
        let now = self.transport.now();
        self.handler.on_start(now, &mut self.out);
        self.flush();
    }

    /// Dispatches one event into the handler and flushes the recorded actions.
    pub fn handle(&mut self, ev: Event) {
        let now = self.transport.now();
        match ev {
            Event::Packet(pkt) => self.handler.on_packet(now, pkt, &mut self.out),
            Event::Timer(token) => self.handler.on_timer(now, token, &mut self.out),
            Event::Invoke(f) => f(self.handler.as_mut(), now, &mut self.out),
        }
        self.events += 1;
        self.flush();
    }

    /// Drains every event that is ready *right now* (non-blocking); returns how many were
    /// handled.  This is the entry point the simulation scheduler uses after routing events
    /// into the node's inbox.
    pub fn poll(&mut self) -> u64 {
        let mut n = 0;
        while let Some(ev) = self.transport.recv(false) {
            self.handle(ev);
            n += 1;
        }
        n
    }

    /// Blocks on the transport until it closes, dispatching every event.  This is the body
    /// of a threaded node's OS thread.  Returns the total number of events handled.
    pub fn run(&mut self) -> u64 {
        while let Some(ev) = self.transport.recv(true) {
            self.handle(ev);
        }
        self.events
    }

    /// Runs `f` against the concrete handler (downcast like
    /// [`vsync_net::Engine::with_site`]), then flushes whatever actions it recorded.
    /// Returns `None` if the concrete type does not match.
    pub fn with_handler<H: SiteHandler, R>(
        &mut self,
        f: impl FnOnce(&mut H, SimTime, &mut Outbox) -> R,
    ) -> Option<R> {
        let now = self.transport.now();
        let result = self
            .handler
            .as_any_mut()
            .downcast_mut::<H>()
            .map(|h| f(h, now, &mut self.out));
        self.flush();
        result
    }

    /// Turns the outbox's recorded actions into transport calls, retaining the buffers.
    fn flush(&mut self) {
        for pkt in self.out.drain_sends() {
            self.transport.send(pkt);
        }
        for (after, token) in self.out.drain_timers() {
            self.transport.set_timer(after, token);
        }
        // With `VSYNC_RT_TRACE` set the collected lines stream to stderr; otherwise traces
        // are off (see `Node::new`), but a handler may have pushed some through the eager
        // `trace` path — drop them rather than let the buffer grow unbounded.
        if self.out.traces_enabled() {
            let now = self.transport.now();
            for line in self.out.drain_traces() {
                eprintln!("[rt {now:?}] {line}");
            }
        } else {
            self.out.drain_traces();
        }
    }
}
