//! The `rt_throughput` workload: end-to-end delivery rate over the threaded backend.
//!
//! N sites × M groups, each group spanning every site with one member per site, all under
//! concurrent asynchronous CBCAST load injected round-robin through the members.  The
//! measured quantity is *application deliveries per second of wall-clock time* — each sent
//! message is delivered once per member, so `sites × groups × msgs` handler invocations
//! must land before the clock stops.  This is the first benchmark in the repository where
//! the protocol stacks run on real concurrent threads and pay real synchronization costs
//! (channel locks, park/unpark, cross-thread codec round-trips) instead of simulated ones.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use vsync_core::{Message, ProcessId, ProtocolKind};
use vsync_proto::ProtoConfig;
use vsync_util::{Duration, EntryId, SiteId};

use crate::faults::FaultPlan;
use crate::harness::{IsisHarness, ThreadedRuntime};

/// Entry bound by the throughput members.
pub const THROUGHPUT_ENTRY: EntryId = EntryId(71);

/// Result of one throughput run.
#[derive(Clone, Copy, Debug)]
pub struct ThroughputReport {
    /// Application deliveries that landed (`sites × groups × msgs` when none were lost).
    pub delivered: u64,
    /// Deliveries expected.
    pub expected: u64,
    /// Wall-clock seconds from first send to last delivery (or timeout).
    pub elapsed_secs: f64,
    /// Deliveries per second.
    pub deliveries_per_sec: f64,
}

/// Runs the workload: builds the cluster and groups, blasts `msgs_per_group` CBCASTs into
/// every group round-robin across member sites, and waits until every delivery lands (or
/// 30 s pass).  Setup (spawns, joins) is excluded from the measured window.
pub fn rt_throughput(num_sites: usize, groups: usize, msgs_per_group: usize) -> ThroughputReport {
    assert!(num_sites > 0 && groups > 0 && msgs_per_group > 0);
    let rt = ThreadedRuntime::new(
        num_sites,
        ThreadedRuntime::fast_local_config(),
        ProtoConfig::fast(),
        FaultPlan::none(),
        0xC0FFEE,
    );
    let mut h = IsisHarness::new(rt);
    let delivered = Arc::new(AtomicU64::new(0));

    let mut group_ids = Vec::with_capacity(groups);
    let mut group_members: Vec<Vec<ProcessId>> = Vec::with_capacity(groups);
    for g in 0..groups {
        let members: Vec<ProcessId> = (0..num_sites)
            .map(|s| {
                let d = delivered.clone();
                h.spawn(SiteId(s as u16), move |b| {
                    b.on_entry(THROUGHPUT_ENTRY, move |_ctx, _msg| {
                        d.fetch_add(1, Ordering::Relaxed);
                    });
                })
            })
            .collect();
        let gid = h.create_group(&format!("tput-{g}"), members[0]);
        for m in &members[1..] {
            h.join_and_wait(gid, *m, None, Duration::from_secs(20))
                .expect("throughput join");
        }
        group_ids.push(gid);
        group_members.push(members);
    }

    let expected = (num_sites * groups * msgs_per_group) as u64;
    let start = Instant::now();
    for i in 0..msgs_per_group {
        for g in 0..groups {
            let sender = group_members[g][i % num_sites];
            h.client_send(
                sender,
                group_ids[g],
                THROUGHPUT_ENTRY,
                Message::with_body(i as u64),
                ProtocolKind::Cbcast,
            );
        }
    }
    let deadline = std::time::Duration::from_secs(30);
    while delivered.load(Ordering::Relaxed) < expected && start.elapsed() < deadline {
        std::thread::sleep(std::time::Duration::from_micros(200));
    }
    let elapsed_secs = start.elapsed().as_secs_f64();
    let got = delivered.load(Ordering::Relaxed);
    h.rt.shutdown();
    ThroughputReport {
        delivered: got,
        expected,
        elapsed_secs,
        deliveries_per_sec: got as f64 / elapsed_secs.max(1e-9),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_throughput_run_delivers_everything() {
        let r = rt_throughput(2, 1, 8);
        assert_eq!(r.delivered, r.expected, "every delivery must land");
        assert!(r.deliveries_per_sec > 0.0);
    }
}
