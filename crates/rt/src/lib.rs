//! Runtime backends for the vsync stack: the step from "reproduction" to "system".
//!
//! Everything below `vsync-core` is sans-io: protocol endpoints and site stacks react to
//! packets and timers by recording actions in an outbox.  Until this crate existed, the only
//! thing that could *drive* them was the single-threaded discrete-event simulator in
//! `vsync-net`.  This crate decouples the stack from the simulator behind a small
//! [`Transport`] abstraction and ships two interchangeable backends:
//!
//! * [`sim`] — the simulation, re-hosted behind the trait: deterministic virtual time, the
//!   same calendar queue and network model the legacy engine uses.  Properties are proved
//!   here.
//! * [`threaded`] — one OS thread per site; packets are serialized through the toolkit
//!   codec and flow over lock-protected channels (`parking_lot` mutexes), with configurable
//!   delay / loss / reordering injection at the sending side.  Properties are *exercised
//!   under real concurrency* here.
//!
//! Layering:
//!
//! * [`transport`] — the [`Transport`] trait and the [`Node`] driver loop both backends
//!   share.
//! * [`chan`] — the blocking MPSC channel (parking_lot mutex + thread parking) that serves
//!   as the threaded backend's wire.
//! * [`wire`] — packet serialization for thread-boundary crossings; keeps every `Rc`-based
//!   protocol structure provably thread-local.
//! * [`faults`] — fault injection: delay / loss / reorder plans for the threaded backend,
//!   link-level partitions ([`LinkFaults`]) honored by both backends, and timed
//!   partition / heal / crash / delay-spike schedules ([`NemesisSchedule`]).
//! * [`harness`] — backend-generic stack construction and toolkit operations
//!   ([`IsisHarness`]), so scenarios (including the cross-backend conformance tests) are
//!   written once.
//! * [`invariants`] — the partition-safety checker: replays per-member view logs and
//!   view-tagged delivery logs, asserting no two concurrent primary views and post-heal
//!   convergence to identical duplicate-free delivery orders.
//! * [`throughput`] — the `rt_throughput` benchmark workload (N threads × M groups).
//!
//! Determinism ends at the threaded backend's scheduler: fault *decisions* stay seeded and
//! reproducible per node, but thread interleaving is the operating system's.  The
//! conformance suite therefore checks *invariants* (identical per-group delivery orders
//! relative to views) rather than identical schedules — see ARCHITECTURE.md's "Runtime"
//! section.

pub mod chan;
pub mod faults;
pub mod harness;
pub mod invariants;
pub mod sim;
pub mod threaded;
pub mod throughput;
pub mod transport;
pub mod wire;

pub use faults::{
    CrashSchedule, FaultDecision, FaultPlan, LinkFaults, NemesisEvent, NemesisSchedule,
    ScheduledKill, ScheduledNemesis,
};
pub use harness::{IsisHarness, IsisRuntime, SimRuntime, StackJob, ThreadedRuntime};
pub use invariants::{InvariantViolation, MemberTimeline, PartitionInvariants};
pub use sim::{SimCluster, SimTransport};
pub use threaded::{NodeReport, ThreadedCluster, ThreadedTransport};
pub use throughput::{rt_throughput, ThroughputReport, THROUGHPUT_ENTRY};
pub use transport::{Event, InvokeFn, Node, Transport};
pub use wire::WirePacket;
