//! Serialized packets for thread-boundary crossings.
//!
//! Inside one node everything is single-threaded and packets alias refcounted
//! [`vsync_msg::Frame`]s (`Rc`-based, deliberately `!Send`).  At the boundary between nodes
//! the threaded backend does what a real network stack does: it encodes the message into
//! owned wire bytes with the toolkit codec, ships those across the channel, and decodes
//! into a fresh frame on the receiving node.  This keeps every `Rc` strictly thread-local —
//! the compiler, not convention, enforces that no protocol state is shared between nodes —
//! and means the threaded runtime exercises the same codec a socket-backed transport will.

use bytes::Bytes;
use vsync_msg::{codec, Frame};
use vsync_net::{Packet, PacketKind};
use vsync_util::{ProcessId, Result, SimTime};

/// A packet in wire form, ready to cross a thread (or, later, socket) boundary.
pub struct WirePacket {
    /// Sending process.
    pub src: ProcessId,
    /// Receiving process.
    pub dst: ProcessId,
    /// Classification (carried out-of-band like a real header would).
    pub kind: PacketKind,
    /// Earliest instant the receiving transport may deliver the packet.  The sending side
    /// folds link delay and fault injection into this, so the receiver just holds the
    /// packet until the instant passes.
    pub deliver_at: SimTime,
    /// The codec-encoded payload.  `Bytes` is `Arc`-backed, so handing the buffer to the
    /// channel moves a pointer, not the payload (one encode, zero extra copies).
    bytes: Bytes,
}

impl WirePacket {
    /// Encodes a packet's payload into owned bytes.
    ///
    /// The encode goes through the frame's wire cache ([`Frame::wire_bytes`]): a multicast
    /// fan-out emits one packet per destination site, all aliasing the same frame, so the
    /// field tree is serialized once and every further destination clones a refcounted
    /// buffer.  Before the cache this path re-encoded the same frame once per site — the
    /// dominant cross-thread cost of the threaded burst path.
    pub fn from_packet(pkt: &Packet, deliver_at: SimTime) -> Self {
        WirePacket {
            src: pkt.src,
            dst: pkt.dst,
            kind: pkt.kind,
            deliver_at,
            bytes: pkt.payload.wire_bytes(),
        }
    }

    /// Size of the encoded payload in bytes.
    pub fn wire_len(&self) -> usize {
        self.bytes.len()
    }

    /// Decodes back into a packet with a fresh local frame.
    pub fn into_packet(self) -> Result<Packet> {
        let msg = codec::decode(&self.bytes)?;
        Ok(Packet::new(self.src, self.dst, self.kind, Frame::new(msg)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vsync_msg::Message;
    use vsync_util::SiteId;

    #[test]
    fn packets_roundtrip_through_wire_form() {
        let src = ProcessId::new(SiteId(0), 1);
        let dst = ProcessId::new(SiteId(1), 2);
        let msg = Message::with_body("payload").with("seq", 7u64);
        let pkt = Packet::new(src, dst, PacketKind::Data, msg.clone());
        let wp = WirePacket::from_packet(&pkt, SimTime(123));
        assert_eq!(wp.deliver_at, SimTime(123));
        assert!(wp.wire_len() > 0);
        let back = wp.into_packet().expect("decode");
        assert_eq!(back.src, src);
        assert_eq!(back.dst, dst);
        assert_eq!(back.kind, PacketKind::Data);
        assert_eq!(back.payload.message(), &msg);
    }

    #[test]
    fn multicast_fanout_encodes_the_frame_once() {
        use vsync_msg::frame::wire_cache;
        // One frame, fanned out to four destination sites — exactly what the threaded
        // backend's per-site `send` loop produces for a multicast.
        let frame = Frame::new(Message::with_body("burst").with("n", 4u64));
        let src = ProcessId::new(SiteId(0), 0);
        let packets: Vec<Packet> = (1..=4u16)
            .map(|s| {
                Packet::new(
                    src,
                    ProcessId::new(SiteId(s), 0),
                    PacketKind::Data,
                    frame.clone(),
                )
            })
            .collect();
        let before = wire_cache::encodes();
        let wires: Vec<WirePacket> = packets
            .iter()
            .map(|p| WirePacket::from_packet(p, SimTime(1)))
            .collect();
        assert_eq!(
            wire_cache::encodes() - before,
            1,
            "one codec encode per frame, not per destination site"
        );
        // Every destination still receives the identical, decodable payload.
        for wp in wires {
            assert!(wp.wire_len() > 0);
            let back = wp.into_packet().expect("decode");
            assert_eq!(back.payload.message(), frame.message());
        }
    }

    #[test]
    fn corrupt_bytes_fail_to_decode() {
        let wp = WirePacket {
            src: ProcessId::new(SiteId(0), 1),
            dst: ProcessId::new(SiteId(1), 1),
            kind: PacketKind::Data,
            deliver_at: SimTime::ZERO,
            bytes: Bytes::from(vec![0xFF, 0x00, 0x01]),
        };
        assert!(wp.into_packet().is_err());
    }
}
