//! Backend-generic construction and driving of ISIS protocol stacks.
//!
//! [`IsisRuntime`] is the small surface a test, example or benchmark needs to run a cluster
//! of [`SiteStack`]s on *any* backend: schedule a closure against a site's stack, let time
//! pass, and crash/recover sites.  [`SimRuntime`] implements it over the deterministic
//! [`SimCluster`]; [`ThreadedRuntime`] over real OS threads.  [`IsisHarness`] then builds
//! the familiar toolkit operations (spawn, `pg_create`/`pg_join`, multicast, group RPC) on
//! top of that surface once, so the same scenario — including the cross-backend conformance
//! suite — runs unchanged on both.
//!
//! The threaded implementation answers queries by round-tripping a closure through the
//! node's event loop and an `mpsc` reply channel; the simulated one executes it
//! synchronously at the current virtual time.  Everything shipped into a stack job must be
//! `Send`: plain data, [`Message`]s (whose byte values are `Arc`-backed) and channel
//! senders all qualify, while `Rc`-based protocol state cannot leave its node even by
//! accident.

use std::sync::mpsc;

use vsync_core::process::ReplyCallback;
use vsync_core::{
    Address, Message, ProcessBuilder, ProtectionPolicy, ProtocolKind, ReplyWanted, RpcOutcome,
    SiteStack, StackConfig, ToolCtx, View,
};
use vsync_net::{NetStats, Outbox, SharedStats};
use vsync_proto::ProtoConfig;
use vsync_util::{
    Duration, EntryId, GroupId, NetParams, ProcessId, Result, SimTime, SiteId, VsError,
};

use crate::faults::{CrashSchedule, FaultPlan, LinkFaults, NemesisEvent, NemesisSchedule};
use crate::sim::SimCluster;
use crate::threaded::{NodeReport, ThreadedCluster};
use crate::transport::invoke_fn;

/// A closure scheduled against one site's protocol stack.
pub type StackJob = Box<dyn FnOnce(&mut SiteStack, SimTime, &mut Outbox) + Send>;

/// The backend surface the harness drives: stack access, time, and failure injection.
pub trait IsisRuntime {
    /// Number of sites in the cluster.
    fn num_sites(&self) -> usize;

    /// The backend's current time (virtual or wall-clock microseconds since start).
    fn now(&self) -> SimTime;

    /// Schedules `job` to run with exclusive access to the site's stack.  Simulated
    /// backends run it synchronously; threaded backends enqueue it into the node's event
    /// loop.  Returns `false` (dropping the job) if the site is down.
    fn with_stack_job(&mut self, site: SiteId, job: StackJob) -> bool;

    /// Lets roughly `d` of backend time pass (runs the event loop / sleeps).
    fn advance(&mut self, d: Duration);

    /// Crashes a site (fail-stop).
    fn kill_site(&mut self, site: SiteId);

    /// Recovers a crashed site with a fresh, empty protocols process.
    fn recover_site(&mut self, site: SiteId);

    /// True if the site is currently operational.
    fn site_is_up(&self, site: SiteId) -> bool;

    /// Installs a link-level partition table ([`LinkFaults::none`] heals every link).
    fn set_link_faults(&mut self, links: LinkFaults);
}

// ---------------------------------------------------------------------------------------
// Simulated backend
// ---------------------------------------------------------------------------------------

/// [`IsisRuntime`] over the deterministic [`SimCluster`].
pub struct SimRuntime {
    cluster: SimCluster,
    all_sites: Vec<SiteId>,
    stack_cfg: StackConfig,
    proto_cfg: ProtoConfig,
}

impl SimRuntime {
    /// Builds a simulated cluster with one protocols process per site.
    pub fn new(
        num_sites: usize,
        params: NetParams,
        stack_cfg: StackConfig,
        proto_cfg: ProtoConfig,
        seed: u64,
    ) -> Self {
        let cluster = SimCluster::new(num_sites, params, seed);
        let all_sites: Vec<SiteId> = (0..num_sites as u16).map(SiteId).collect();
        let mut rt = SimRuntime {
            cluster,
            all_sites: all_sites.clone(),
            stack_cfg,
            proto_cfg,
        };
        for s in all_sites {
            rt.install_stack(s);
        }
        rt
    }

    fn install_stack(&mut self, site: SiteId) {
        let stack = SiteStack::new(
            site,
            self.all_sites.clone(),
            self.stack_cfg,
            self.proto_cfg,
            self.cluster.stats(),
        );
        self.cluster.install(site, Box::new(stack));
    }

    /// Cluster-wide statistics snapshot.
    pub fn stats(&self) -> NetStats {
        self.cluster.stats().snapshot()
    }

    /// The underlying cluster (event counts, direct node access).
    pub fn cluster(&self) -> &SimCluster {
        &self.cluster
    }

    /// Kills a site *and* drops its in-flight outbound packets (see
    /// [`SimCluster::kill_dropping_outbound`]) — the kill the crash-instant fuzz tests use,
    /// so a crash can truncate a multi-packet exchange such as a state transfer.
    pub fn kill_site_dropping_outbound(&mut self, site: SiteId) {
        self.cluster.kill_dropping_outbound(site);
    }
}

impl IsisRuntime for SimRuntime {
    fn num_sites(&self) -> usize {
        self.cluster.num_sites()
    }

    fn now(&self) -> SimTime {
        self.cluster.now()
    }

    fn with_stack_job(&mut self, site: SiteId, job: StackJob) -> bool {
        self.cluster
            .with_node::<SiteStack, _>(site, |stack, now, out| job(stack, now, out))
            .is_some()
    }

    fn advance(&mut self, d: Duration) {
        self.cluster.run_for(d);
    }

    fn kill_site(&mut self, site: SiteId) {
        self.cluster.kill(site);
    }

    fn recover_site(&mut self, site: SiteId) {
        self.install_stack(site);
    }

    fn site_is_up(&self, site: SiteId) -> bool {
        self.cluster.site_is_up(site)
    }

    fn set_link_faults(&mut self, links: LinkFaults) {
        self.cluster.set_link_faults(links);
    }
}

// ---------------------------------------------------------------------------------------
// Threaded backend
// ---------------------------------------------------------------------------------------

/// [`IsisRuntime`] over real OS threads ([`ThreadedCluster`]).
pub struct ThreadedRuntime {
    cluster: ThreadedCluster,
    all_sites: Vec<SiteId>,
    stack_cfg: StackConfig,
    proto_cfg: ProtoConfig,
}

impl ThreadedRuntime {
    /// Builds a threaded cluster with one protocols process per site, each on its own OS
    /// thread with its own statistics counters (no cross-thread counter contention).
    pub fn new(
        num_sites: usize,
        stack_cfg: StackConfig,
        proto_cfg: ProtoConfig,
        faults: FaultPlan,
        seed: u64,
    ) -> Self {
        let mut rt = ThreadedRuntime {
            cluster: ThreadedCluster::new(num_sites, faults, seed),
            all_sites: (0..num_sites as u16).map(SiteId).collect(),
            stack_cfg,
            proto_cfg,
        };
        for s in rt.all_sites.clone() {
            rt.spawn_stack(s);
        }
        rt
    }

    /// Stack timers suited to in-process threads: fast enough that lifecycle tests finish
    /// in tens of milliseconds of wall-clock, with a failure timeout generous enough that
    /// scheduler stalls on a loaded machine do not read as site crashes.
    pub fn fast_local_config() -> StackConfig {
        StackConfig {
            tick_interval: Duration::from_millis(2),
            heartbeat_interval: Duration::from_millis(10),
            failure_timeout: Duration::from_millis(300),
            rpc_timeout: Duration::from_millis(1500),
            reform_timeout: Duration::from_millis(1200),
        }
    }

    fn spawn_stack(&mut self, site: SiteId) {
        let all = self.all_sites.clone();
        let stack_cfg = self.stack_cfg;
        let proto_cfg = self.proto_cfg;
        self.cluster.spawn_site(site, move |_now| {
            Box::new(SiteStack::new(
                site,
                all,
                stack_cfg,
                proto_cfg,
                SharedStats::new(),
            ))
        });
    }

    /// Cluster-wide statistics: merges every live node's counters (each node counts on its
    /// own thread; see [`NetStats::merge`]).
    pub fn stats(&mut self) -> NetStats {
        let mut total = NetStats::new();
        for site in self.all_sites.clone() {
            let (tx, rx) = mpsc::channel();
            let sent = self.cluster.invoke(
                site,
                invoke_fn(move |h, _now, _out| {
                    if let Some(stack) = h.as_any_mut().downcast_mut::<SiteStack>() {
                        let _ = tx.send(stack.stats().snapshot());
                    }
                }),
            );
            if sent {
                if let Ok(snap) = rx.recv_timeout(std::time::Duration::from_secs(5)) {
                    total.merge(&snap);
                }
            }
        }
        total
    }

    /// Stops every node and returns the per-node reports.
    pub fn shutdown(self) -> Vec<NodeReport> {
        self.cluster.shutdown()
    }
}

impl IsisRuntime for ThreadedRuntime {
    fn num_sites(&self) -> usize {
        self.cluster.num_sites()
    }

    fn now(&self) -> SimTime {
        self.cluster.now()
    }

    fn with_stack_job(&mut self, site: SiteId, job: StackJob) -> bool {
        self.cluster.invoke(
            site,
            invoke_fn(move |h, now, out| {
                if let Some(stack) = h.as_any_mut().downcast_mut::<SiteStack>() {
                    job(stack, now, out);
                }
            }),
        )
    }

    fn advance(&mut self, d: Duration) {
        std::thread::sleep(std::time::Duration::from_micros(d.as_micros()));
    }

    fn kill_site(&mut self, site: SiteId) {
        self.cluster.kill_site(site);
    }

    fn recover_site(&mut self, site: SiteId) {
        self.spawn_stack(site);
    }

    fn site_is_up(&self, site: SiteId) -> bool {
        self.cluster.site_is_up(site)
    }

    fn set_link_faults(&mut self, links: LinkFaults) {
        self.cluster.set_link_faults(links);
    }
}

// ---------------------------------------------------------------------------------------
// The generic harness
// ---------------------------------------------------------------------------------------

/// Toolkit-level operations over any [`IsisRuntime`]: the backend-generic equivalent of
/// [`vsync_core::IsisSystem`].
pub struct IsisHarness<R: IsisRuntime> {
    /// The underlying runtime, reachable for backend-specific calls.
    pub rt: R,
    next_group: u64,
    next_local: Vec<u32>,
}

impl<R: IsisRuntime> IsisHarness<R> {
    /// Wraps a runtime.
    pub fn new(rt: R) -> Self {
        let next_local = vec![1; rt.num_sites()];
        IsisHarness {
            rt,
            next_group: 0,
            next_local,
        }
    }

    /// The sites of the cluster.
    pub fn sites(&self) -> Vec<SiteId> {
        (0..self.rt.num_sites() as u16).map(SiteId).collect()
    }

    /// Drives the runtime in 1 ms steps until `poll` yields a value or `max_wait` of
    /// runtime time passes.  The single pacing loop behind [`IsisHarness::query`],
    /// [`IsisHarness::client_call`] and [`IsisHarness::wait_until`], so their
    /// step/deadline bookkeeping cannot drift apart.
    fn drive<T>(
        &mut self,
        max_wait: Duration,
        mut poll: impl FnMut(&mut Self) -> Option<T>,
    ) -> Option<T> {
        let step = Duration::from_millis(1);
        let mut waited = Duration::ZERO;
        loop {
            if let Some(v) = poll(self) {
                return Some(v);
            }
            if waited >= max_wait {
                return None;
            }
            self.rt.advance(step);
            waited += step;
        }
    }

    /// Runs `f` against a site's stack and waits (driving the runtime) for its result.
    /// `None` if the site is down or the job was lost to a crash.
    pub fn query<T: Send + 'static>(
        &mut self,
        site: SiteId,
        f: impl FnOnce(&mut SiteStack, SimTime, &mut Outbox) -> T + Send + 'static,
    ) -> Option<T> {
        let (tx, rx) = mpsc::channel();
        let sent = self.rt.with_stack_job(
            site,
            Box::new(move |stack, now, out| {
                let _ = tx.send(f(stack, now, out));
            }),
        );
        if !sent {
            return None;
        }
        self.drive(Duration::from_secs(10), |_h| match rx.try_recv() {
            Ok(v) => Some(Some(v)),
            // The job died with its node: no result will ever come.
            Err(mpsc::TryRecvError::Disconnected) => Some(None),
            Err(mpsc::TryRecvError::Empty) => None,
        })
        .flatten()
    }

    /// Spawns a client process at `site`.  The `configure` closure runs on the site's node
    /// (thread) to build the handlers, so handler state never crosses threads.
    pub fn spawn(
        &mut self,
        site: SiteId,
        configure: impl FnOnce(&mut ProcessBuilder) + Send + 'static,
    ) -> ProcessId {
        let local = self.next_local[site.index()];
        self.next_local[site.index()] += 1;
        let pid = ProcessId::new(site, local);
        let sent = self.rt.with_stack_job(
            site,
            Box::new(move |stack, _now, _out| {
                let mut b = ProcessBuilder::new(pid);
                configure(&mut b);
                stack.add_process(b.build());
            }),
        );
        // Mirrors `IsisSystem::spawn`'s "site is up" expectation: returning a pid for a
        // process that was silently never created only defers the failure to a confusing
        // join/RPC timeout later.
        assert!(sent, "spawn at {site:?}: site is down");
        pid
    }

    /// Pre-allocates a group id (for tools that must know it before the group exists).
    pub fn allocate_group_id(&mut self) -> GroupId {
        self.next_group += 1;
        GroupId(self.next_group)
    }

    /// Creates a group with `creator` as founding member; registers the name everywhere.
    pub fn create_group(&mut self, name: &str, creator: ProcessId) -> GroupId {
        let gid = self.allocate_group_id();
        self.create_group_with_id(name, gid, creator);
        gid
    }

    /// Creates a group using a pre-allocated id.
    pub fn create_group_with_id(&mut self, name: &str, gid: GroupId, creator: ProcessId) {
        let n = name.to_owned();
        self.query(creator.site, move |stack, _now, out| {
            stack.set_policy(gid, ProtectionPolicy::open());
            stack.create_group(&n, gid, creator, out);
        });
        for s in self.sites() {
            let n = name.to_owned();
            self.rt.with_stack_job(
                s,
                Box::new(move |stack, _now, _out| {
                    stack.register_group(&n, gid, vec![creator.site]);
                }),
            );
        }
    }

    /// The view a site currently has of a group.
    pub fn view_of(&mut self, site: SiteId, gid: GroupId) -> Option<View> {
        self.query(site, move |stack, _now, _out| stack.view_of(gid).cloned())
            .flatten()
    }

    /// Number of multicasts `site` has received in the group's current view that are not
    /// yet known stable (a flush would redistribute them).  Works on both backends; the
    /// join-under-load tests read it right before a join to prove the join races in-flight
    /// traffic.
    pub fn unstable_count(&mut self, site: SiteId, gid: GroupId) -> usize {
        self.query(site, move |stack, _now, _out| stack.unstable_count(gid))
            .unwrap_or(0)
    }

    /// Submits a join and drives the runtime until the joiner appears in its site's view.
    pub fn join_and_wait(
        &mut self,
        gid: GroupId,
        joiner: ProcessId,
        credentials: Option<String>,
        max_wait: Duration,
    ) -> Result<()> {
        let submitted = self
            .query(joiner.site, move |stack, _now, out| {
                stack.join_group(gid, joiner, credentials, out)
            })
            .ok_or(VsError::NoSuchProcess(joiner))?;
        submitted?;
        let ok = self.wait_until(max_wait, |h| {
            h.view_of(joiner.site, gid)
                .map(|v| v.contains(joiner))
                .unwrap_or(false)
        });
        if ok {
            Ok(())
        } else {
            Err(VsError::Timeout(format!("join of {joiner} to {gid}")))
        }
    }

    /// Fire-and-forget multicast from `caller` (dropped silently if its site crashed).
    pub fn client_send(
        &mut self,
        caller: ProcessId,
        dest: impl Into<Address>,
        entry: EntryId,
        payload: Message,
        protocol: ProtocolKind,
    ) {
        let dest = dest.into();
        self.rt.with_stack_job(
            caller.site,
            Box::new(move |stack, _now, out| {
                stack.issue_call(
                    caller,
                    vec![dest],
                    entry,
                    payload,
                    protocol,
                    ReplyWanted::None,
                    None,
                    out,
                );
            }),
        );
    }

    /// Group RPC from outside a handler: multicasts and drives the runtime until reply
    /// collection completes or `max_wait` passes.
    #[allow(clippy::too_many_arguments)]
    pub fn client_call(
        &mut self,
        caller: ProcessId,
        dests: Vec<Address>,
        entry: EntryId,
        payload: Message,
        protocol: ProtocolKind,
        wanted: ReplyWanted,
        max_wait: Duration,
    ) -> RpcOutcome {
        let (tx, rx) = mpsc::channel();
        let sent = self.rt.with_stack_job(
            caller.site,
            Box::new(move |stack, _now, out| {
                let callback: ReplyCallback =
                    Box::new(move |_ctx: &mut ToolCtx<'_>, outcome: RpcOutcome| {
                        let _ = tx.send(outcome);
                    });
                stack.issue_call(
                    caller,
                    dests,
                    entry,
                    payload,
                    protocol,
                    wanted,
                    Some(callback),
                    out,
                );
            }),
        );
        let failed = |why: &str| RpcOutcome {
            replies: Vec::new(),
            responders: Vec::new(),
            error: Some(VsError::Timeout(why.into())),
        };
        if !sent {
            return failed("caller site is down");
        }
        self.drive(max_wait, |_h| match rx.try_recv() {
            Ok(outcome) => Some(outcome),
            // The reply sender died without an outcome: the caller's site crashed (or
            // dropped the callback), so no outcome can ever arrive — fail immediately
            // instead of sleeping out the deadline.
            Err(mpsc::TryRecvError::Disconnected) => {
                Some(failed("caller crashed before the call completed"))
            }
            Err(mpsc::TryRecvError::Empty) => None,
        })
        .unwrap_or_else(|| failed("client call never completed"))
    }

    /// Executes a coordinated crash schedule: kills each listed site at its offset,
    /// letting runtime time pass between kills so the spacing (which decides who fails
    /// last, and therefore whose log a later reform must elect) is real on both backends.
    pub fn run_crash_schedule(&mut self, schedule: &CrashSchedule) {
        let mut elapsed = Duration::ZERO;
        for k in schedule.kills() {
            if k.after > elapsed {
                self.rt.advance(Duration::from_micros(
                    k.after.as_micros() - elapsed.as_micros(),
                ));
                elapsed = k.after;
            }
            self.rt.kill_site(k.site);
        }
    }

    /// Executes a nemesis schedule: folds each timed partition / heal / delay-spike event
    /// into the runtime's link-fault table and kills sites for `Crash` events, letting
    /// runtime time pass between events.  Returns with the *final* table still installed —
    /// callers that want a healed cluster end their schedule with [`NemesisEvent::Heal`].
    pub fn run_nemesis(&mut self, schedule: &NemesisSchedule) {
        let mut elapsed = Duration::ZERO;
        let mut links = LinkFaults::none();
        for ev in schedule.events() {
            if ev.after > elapsed {
                self.rt.advance(Duration::from_micros(
                    ev.after.as_micros() - elapsed.as_micros(),
                ));
                elapsed = ev.after;
            }
            if NemesisSchedule::apply_to_links(&ev.event, &mut links) {
                self.rt.set_link_faults(links.clone());
            } else if let NemesisEvent::Crash { site } = ev.event {
                self.rt.kill_site(site);
            }
        }
    }

    /// Respawns every dead site with a fresh, empty protocols process (no group state —
    /// recovery happens above, from each site's durable log).
    pub fn respawn_all(&mut self) {
        for s in self.sites() {
            if !self.rt.site_is_up(s) {
                self.rt.recover_site(s);
            }
        }
    }

    /// Polls the total-failure reform election at one site, advancing it against the
    /// site's clock.  `None` when the site is down or no reform runs there (including
    /// after the reform completed — a view install clears it).
    pub fn reform_status(
        &mut self,
        site: SiteId,
        gid: GroupId,
    ) -> Option<vsync_core::ReformStatus> {
        self.query(site, move |stack, _now, out| stack.reform_status(gid, out))
            .flatten()
    }

    /// Drives the runtime in 1 ms steps until `cond` holds or `max_wait` of runtime time
    /// passes; returns whether the condition was met.
    pub fn wait_until(
        &mut self,
        max_wait: Duration,
        mut cond: impl FnMut(&mut Self) -> bool,
    ) -> bool {
        self.drive(max_wait, |h| cond(h).then_some(())).is_some()
    }

    /// Lets `d` of runtime time pass.
    pub fn settle(&mut self, d: Duration) {
        self.rt.advance(d);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    const ECHO: EntryId = EntryId(40);

    fn sim_harness(n: usize) -> IsisHarness<SimRuntime> {
        let params = NetParams::modern();
        IsisHarness::new(SimRuntime::new(
            n,
            params,
            StackConfig::from_params(&params),
            ProtoConfig::fast(),
            42,
        ))
    }

    #[test]
    fn sim_group_formation_and_rpc_through_the_harness() {
        let mut h = sim_harness(3);
        let members: Vec<ProcessId> = (0..3)
            .map(|i| {
                h.spawn(SiteId(i), |b| {
                    b.on_entry(ECHO, |ctx, msg| {
                        ctx.reply(
                            msg,
                            Message::with_body(msg.get_u64("body").unwrap_or(0) + 1),
                        );
                    });
                })
            })
            .collect();
        let gid = h.create_group("svc", members[0]);
        for m in &members[1..] {
            h.join_and_wait(gid, *m, None, Duration::from_secs(5))
                .expect("join");
        }
        let v = h.view_of(SiteId(0), gid).expect("view");
        assert_eq!(v.members, members);
        let client = h.spawn(SiteId(2), |_| {});
        let outcome = h.client_call(
            client,
            vec![Address::Group(gid)],
            ECHO,
            Message::with_body(9u64),
            ProtocolKind::Cbcast,
            ReplyWanted::Count(3),
            Duration::from_secs(5),
        );
        assert!(outcome.error.is_none(), "rpc failed: {:?}", outcome.error);
        let mut got: Vec<u64> = outcome
            .replies
            .iter()
            .filter_map(|r| r.get_u64("body"))
            .collect();
        got.sort_unstable();
        assert_eq!(got, vec![10, 10, 10]);
    }

    #[test]
    fn sim_crash_shrinks_the_view_through_the_harness() {
        let mut h = sim_harness(3);
        let members: Vec<ProcessId> = (0..3).map(|i| h.spawn(SiteId(i), |_| {})).collect();
        let gid = h.create_group("shrink", members[0]);
        for m in &members[1..] {
            h.join_and_wait(gid, *m, None, Duration::from_secs(5))
                .expect("join");
        }
        h.rt.kill_site(SiteId(2));
        let ok = h.wait_until(Duration::from_secs(10), |h| {
            h.view_of(SiteId(0), gid)
                .map(|v| v.len() == 2)
                .unwrap_or(false)
        });
        assert!(ok, "survivors never installed the two-member view");
    }

    #[test]
    fn threaded_group_formation_and_multicast() {
        let mut h = IsisHarness::new(ThreadedRuntime::new(
            3,
            ThreadedRuntime::fast_local_config(),
            ProtoConfig::fast(),
            FaultPlan::none(),
            7,
        ));
        let delivered = Arc::new(AtomicU64::new(0));
        let members: Vec<ProcessId> = (0..3)
            .map(|i| {
                let d = delivered.clone();
                h.spawn(SiteId(i), move |b| {
                    b.on_entry(ECHO, move |_ctx, _msg| {
                        d.fetch_add(1, Ordering::Relaxed);
                    });
                })
            })
            .collect();
        let gid = h.create_group("tsvc", members[0]);
        for m in &members[1..] {
            h.join_and_wait(gid, *m, None, Duration::from_secs(10))
                .expect("threaded join");
        }
        for i in 0..4u64 {
            h.client_send(
                members[(i % 3) as usize],
                gid,
                ECHO,
                Message::with_body(i),
                ProtocolKind::Cbcast,
            );
        }
        let ok = h.wait_until(Duration::from_secs(10), |_| {
            delivered.load(Ordering::Relaxed) >= 12
        });
        assert!(
            ok,
            "12 deliveries expected, saw {}",
            delivered.load(Ordering::Relaxed)
        );
        let stats = h.rt.stats();
        assert!(stats.deliveries >= 12);
    }
}
