//! Property tests pinning the calendar event queue to a binary-heap reference model.
//!
//! The engine's old queue was a `BinaryHeap` ordered by `(time, insertion sequence)`; the
//! calendar queue must pop in exactly that order for *every* interleaving of pushes and
//! pops, or the simulator's determinism (and the virtual-synchrony property tests built on
//! it) silently breaks.  Schedules here are driven by the deterministic RNG across many
//! seeds and deliberately pile events onto shared instants — the burst case the calendar
//! exists to make cheap — and interleave pops mid-schedule so drained-and-reoccupied
//! instants are exercised.

use std::any::Any;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

use vsync_net::{CalendarQueue, Engine, Outbox, Packet, SiteHandler};
use vsync_util::{DetRng, Duration, NetParams, SimTime, SiteId};

/// Reference model: the exact ordering contract of the engine's previous queue.
#[derive(Default)]
struct HeapModel {
    heap: BinaryHeap<Reverse<(SimTime, u64)>>,
    seq: u64,
    items: Vec<(SimTime, u64, u32)>,
}

impl HeapModel {
    fn push(&mut self, at: SimTime, item: u32) {
        self.seq += 1;
        self.heap.push(Reverse((at, self.seq)));
        self.items.push((at, self.seq, item));
    }

    fn pop(&mut self) -> Option<(SimTime, u32)> {
        let Reverse((at, seq)) = self.heap.pop()?;
        let idx = self
            .items
            .iter()
            .position(|(a, s, _)| *a == at && *s == seq)
            .expect("heap entry has a payload");
        let (_, _, item) = self.items.remove(idx);
        Some((at, item))
    }
}

#[test]
fn pop_order_matches_the_heap_reference_across_random_schedules() {
    for seed in 0..200u64 {
        let mut rng = DetRng::new(seed);
        let mut calendar: CalendarQueue<u32> = CalendarQueue::new();
        let mut model = HeapModel::default();
        // A small instant domain forces heavy same-instant collisions; interleaved pops
        // exercise buckets that drain and then re-fill.
        let instants: u64 = 1 + rng.next_below(8);
        let ops = 64 + rng.next_below(192);
        let mut item = 0u32;
        for _ in 0..ops {
            if rng.chance(0.35) && !calendar.is_empty() {
                let got = calendar.pop();
                let want = model.pop();
                assert_eq!(got, want, "seed {seed}: pop diverged mid-schedule");
            } else {
                let at = SimTime(rng.next_below(instants) * 1_000);
                calendar.push(at, item);
                model.push(at, item);
                item += 1;
            }
            assert_eq!(
                calendar.len(),
                model.items.len(),
                "seed {seed}: len diverged"
            );
            assert_eq!(
                calendar.next_time(),
                model.heap.peek().map(|Reverse((at, _))| *at),
                "seed {seed}: next_time diverged"
            );
        }
        // Drain both to the end: the full remaining order must agree.
        loop {
            let got = calendar.pop();
            let want = model.pop();
            assert_eq!(got, want, "seed {seed}: drain diverged");
            if got.is_none() {
                break;
            }
        }
    }
}

/// Records every callback with its time, so the test can check cross-kind ordering.
struct Recorder {
    log: std::rc::Rc<std::cell::RefCell<Vec<(SimTime, String)>>>,
}

impl SiteHandler for Recorder {
    fn on_packet(&mut self, now: SimTime, pkt: Packet, _out: &mut Outbox) {
        let body = pkt.payload.get_str("body").unwrap_or("?").to_owned();
        self.log.borrow_mut().push((now, format!("pkt:{body}")));
    }

    fn on_timer(&mut self, now: SimTime, token: u64, _out: &mut Outbox) {
        self.log.borrow_mut().push((now, format!("timer:{token}")));
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// Crash-epoch interleaving at one instant: timers armed by a crashed incarnation must be
/// dropped even when the crash, the stale timer and a fresh incarnation's timer all occupy
/// the *same* calendar bucket, and the surviving events must fire in insertion order.
#[test]
fn same_instant_crash_epoch_interleaving_drops_only_stale_timers() {
    use vsync_msg::Message;
    use vsync_util::ProcessId;

    let log = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
    let mut eng = Engine::new(2, NetParams::instant(), 7);
    eng.install_site(SiteId(0), Box::new(Recorder { log: log.clone() }));
    eng.install_site(SiteId(1), Box::new(Recorder { log: log.clone() }));

    // Site 1 arms a timer for t=5ms, the engine schedules site 1's crash at the same
    // instant *after* the timer (insertion order: timer first — it fires, then the crash).
    eng.with_site::<Recorder, _>(SiteId(1), |_h, _now, out| {
        out.set_timer(Duration::from_millis(5), 41);
    });
    eng.schedule_crash(SimTime(5_000), SiteId(1));
    // Site 0 arms a timer at the same instant, after the crash event: still fires (site 0
    // is unaffected), proving the bucket keeps FIFO across kinds.
    eng.with_site::<Recorder, _>(SiteId(0), |_h, _now, out| {
        out.set_timer(Duration::from_millis(5), 42);
    });
    // A stale timer of site 1 at a later instant: armed pre-crash, must be dropped.
    eng.with_site::<Recorder, _>(SiteId(1), |_h, _now, out| {
        out.set_timer(Duration::from_millis(7), 43);
    });
    eng.run_until(SimTime(6_000));
    // Recover site 1 with a fresh incarnation whose timer lands on the same instant as the
    // stale one; only the fresh incarnation's timer may fire.
    eng.recover_site(SiteId(1), Box::new(Recorder { log: log.clone() }));
    eng.with_site::<Recorder, _>(SiteId(1), |_h, _now, out| {
        out.set_timer(Duration::from_micros(1_000), 44);
    });
    // And traffic to the dead-then-recovered site at one instant is delivered exactly once.
    let a = ProcessId::new(SiteId(0), 0);
    let b = ProcessId::new(SiteId(1), 0);
    eng.with_site::<Recorder, _>(SiteId(0), |_h, _now, out| {
        out.send(Packet::new(
            a,
            b,
            vsync_net::PacketKind::Data,
            Message::with_body("post-recovery"),
        ));
    });
    eng.run_until(SimTime(20_000));

    let entries: Vec<String> = log
        .borrow()
        .iter()
        .map(|(t, s)| format!("{}:{s}", t.0))
        .collect();
    assert!(
        entries.contains(&"5000:timer:41".to_owned()),
        "pre-crash same-instant timer fires before the crash: {entries:?}"
    );
    assert!(
        entries.contains(&"5000:timer:42".to_owned()),
        "other site's same-instant timer fires: {entries:?}"
    );
    assert!(
        !entries.iter().any(|e| e.ends_with("timer:43")),
        "stale timer of the crashed incarnation must be dropped: {entries:?}"
    );
    assert!(
        entries.contains(&"7000:timer:44".to_owned()),
        "fresh incarnation's timer at the reoccupied instant fires: {entries:?}"
    );
    assert_eq!(
        entries.iter().filter(|e| e.contains("pkt:")).count(),
        1,
        "post-recovery packet delivered exactly once: {entries:?}"
    );
}
