//! Heartbeat-based failure detection with an adaptive timeout.
//!
//! The paper (Section 3.7): "ISIS provides a site-monitoring facility that can trigger
//! actions when a site or process fails or a site recovers.  Site and process failures are
//! clean events ... The failed entity will have to undergo recovery even if it was actually
//! experiencing a transient communication problem that looked like a failure.  The ISIS
//! failure detector adaptively adjusts the timeout interval to avoid treating an overloaded
//! site as having failed."
//!
//! [`FailureDetector`] is the sans-io core of that facility: each site runs one instance,
//! feeds it incoming heartbeats and clock ticks, and acts on the suspicion events it emits.
//! The conversion of a suspicion into a *clean, system-wide* failure event is done by the
//! group membership layer (a GBCAST view change), not here.

use std::collections::BTreeMap;

use vsync_util::{Duration, SimTime, SiteId};

/// Per-peer bookkeeping.
#[derive(Clone, Debug)]
struct PeerState {
    last_heard: SimTime,
    /// Smoothed inter-arrival estimate, seeded from the configured heartbeat interval.
    smoothed_interval: Duration,
    /// Whether the peer is currently considered operational.
    alive: bool,
}

/// A heartbeat failure detector with an adaptive timeout.
#[derive(Clone, Debug)]
pub struct FailureDetector {
    me: SiteId,
    heartbeat_interval: Duration,
    base_timeout: Duration,
    /// Multiplier applied to the smoothed inter-arrival time to obtain the timeout.
    safety_factor: f64,
    peers: BTreeMap<SiteId, PeerState>,
}

/// A change of opinion about a peer site.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Verdict {
    /// The peer stopped responding and is now suspected of having failed.
    Suspected(SiteId),
    /// A previously suspected peer has been heard from again.
    ///
    /// ISIS converts suspicions into fail-stop events, so the membership layer treats this as
    /// a *recovery of a new incarnation*, never as "the failure never happened".
    HeardAgain(SiteId),
}

impl FailureDetector {
    /// Creates a detector for site `me` monitoring `peers`.
    pub fn new(
        me: SiteId,
        peers: impl IntoIterator<Item = SiteId>,
        heartbeat_interval: Duration,
        base_timeout: Duration,
        now: SimTime,
    ) -> Self {
        let peers = peers
            .into_iter()
            .filter(|p| *p != me)
            .map(|p| {
                (
                    p,
                    PeerState {
                        last_heard: now,
                        smoothed_interval: heartbeat_interval,
                        alive: true,
                    },
                )
            })
            .collect();
        FailureDetector {
            me,
            heartbeat_interval,
            base_timeout,
            safety_factor: 4.0,
            peers,
        }
    }

    /// The site this detector runs on.
    pub fn me(&self) -> SiteId {
        self.me
    }

    /// The heartbeat period this detector expects (and should itself send at).
    pub fn heartbeat_interval(&self) -> Duration {
        self.heartbeat_interval
    }

    /// Starts monitoring an additional peer (e.g. a site that just recovered).
    pub fn add_peer(&mut self, peer: SiteId, now: SimTime) {
        if peer == self.me {
            return;
        }
        self.peers.entry(peer).or_insert(PeerState {
            last_heard: now,
            smoothed_interval: self.heartbeat_interval,
            alive: true,
        });
    }

    /// Stops monitoring a peer (e.g. after the membership layer has excluded it).
    pub fn remove_peer(&mut self, peer: SiteId) {
        self.peers.remove(&peer);
    }

    /// Sites currently believed operational.
    pub fn alive_peers(&self) -> Vec<SiteId> {
        self.peers
            .iter()
            .filter(|(_, s)| s.alive)
            .map(|(p, _)| *p)
            .collect()
    }

    /// Returns true if the peer is currently believed operational (unknown peers are not).
    pub fn is_alive(&self, peer: SiteId) -> bool {
        self.peers.get(&peer).map(|s| s.alive).unwrap_or(false)
    }

    /// Current timeout applied to a peer, reflecting the adaptive estimate.
    pub fn timeout_for(&self, peer: SiteId) -> Duration {
        match self.peers.get(&peer) {
            Some(state) => {
                let adaptive = state.smoothed_interval.mul_f64(self.safety_factor);
                if adaptive > self.base_timeout {
                    adaptive
                } else {
                    self.base_timeout
                }
            }
            None => self.base_timeout,
        }
    }

    /// Feeds a heartbeat (or any message, since any traffic proves liveness) from `peer`.
    pub fn on_heartbeat(&mut self, peer: SiteId, now: SimTime) -> Option<Verdict> {
        let state = self.peers.get_mut(&peer)?;
        let gap = now.saturating_since(state.last_heard);
        // Exponentially weighted moving average of the observed inter-arrival time; an
        // overloaded peer whose heartbeats slow down therefore earns a longer timeout.
        let smoothed =
            Duration::from_micros((state.smoothed_interval.as_micros() * 7 + gap.as_micros()) / 8);
        state.smoothed_interval = if smoothed < self.heartbeat_interval {
            self.heartbeat_interval
        } else {
            smoothed
        };
        state.last_heard = now;
        if !state.alive {
            state.alive = true;
            Some(Verdict::HeardAgain(peer))
        } else {
            None
        }
    }

    /// Checks all peers against their timeouts; returns newly suspected sites.  Runs on
    /// every maintenance tick of every site, so the healthy path (nobody suspected) must
    /// not allocate: the timeout is computed inline per peer and the verdict vector only
    /// allocates when a suspicion actually fires.
    pub fn tick(&mut self, now: SimTime) -> Vec<Verdict> {
        let mut verdicts = Vec::new();
        let base = self.base_timeout;
        let safety = self.safety_factor;
        for (peer, state) in self.peers.iter_mut() {
            if !state.alive {
                continue;
            }
            let adaptive = state.smoothed_interval.mul_f64(safety);
            let timeout = if adaptive > base { adaptive } else { base };
            if now.saturating_since(state.last_heard) > timeout {
                state.alive = false;
                verdicts.push(Verdict::Suspected(*peer));
            }
        }
        verdicts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn detector() -> FailureDetector {
        FailureDetector::new(
            SiteId(0),
            [SiteId(0), SiteId(1), SiteId(2)],
            Duration::from_millis(100),
            Duration::from_millis(500),
            SimTime::ZERO,
        )
    }

    #[test]
    fn does_not_monitor_itself() {
        let d = detector();
        assert!(!d.is_alive(SiteId(0)));
        assert_eq!(d.alive_peers(), vec![SiteId(1), SiteId(2)]);
    }

    #[test]
    fn healthy_peers_are_never_suspected() {
        let mut d = detector();
        let mut now = SimTime::ZERO;
        for _ in 0..50 {
            now += Duration::from_millis(100);
            assert!(d.on_heartbeat(SiteId(1), now).is_none());
            assert!(d.on_heartbeat(SiteId(2), now).is_none());
            assert!(d.tick(now).is_empty());
        }
        assert!(d.is_alive(SiteId(1)));
        assert!(d.is_alive(SiteId(2)));
    }

    #[test]
    fn silent_peer_is_suspected_after_timeout() {
        let mut d = detector();
        let mut now = SimTime::ZERO;
        // Site 1 keeps talking, site 2 goes silent.
        for _ in 0..20 {
            now += Duration::from_millis(100);
            d.on_heartbeat(SiteId(1), now);
        }
        let verdicts = d.tick(now);
        assert_eq!(verdicts, vec![Verdict::Suspected(SiteId(2))]);
        assert!(!d.is_alive(SiteId(2)));
        // Suspicion is reported exactly once.
        assert!(d
            .tick(now + Duration::from_secs(10))
            .contains(&Verdict::Suspected(SiteId(1))));
    }

    #[test]
    fn heard_again_after_suspicion_is_reported() {
        let mut d = detector();
        let now = SimTime::ZERO + Duration::from_secs(10);
        let v = d.tick(now);
        assert_eq!(v.len(), 2, "both peers silent for 10s are suspected");
        let back = d.on_heartbeat(SiteId(1), now + Duration::from_millis(1));
        assert_eq!(back, Some(Verdict::HeardAgain(SiteId(1))));
        assert!(d.is_alive(SiteId(1)));
    }

    #[test]
    fn timeout_adapts_to_slow_heartbeats() {
        let mut d = detector();
        let initial = d.timeout_for(SiteId(1));
        // Site 1 is overloaded: heartbeats arrive every 400 ms instead of every 100 ms.
        let mut now = SimTime::ZERO;
        for _ in 0..30 {
            now += Duration::from_millis(400);
            d.on_heartbeat(SiteId(1), now);
        }
        let adapted = d.timeout_for(SiteId(1));
        assert!(
            adapted > initial,
            "timeout should grow: initial {initial:?}, adapted {adapted:?}"
        );
        // And the slow-but-alive peer is not suspected at its own pace.
        now += Duration::from_millis(400);
        d.on_heartbeat(SiteId(1), now);
        let verdicts = d.tick(now);
        assert!(!verdicts.contains(&Verdict::Suspected(SiteId(1))));
    }

    #[test]
    fn add_and_remove_peers() {
        let mut d = detector();
        d.add_peer(SiteId(5), SimTime::ZERO);
        assert!(d.is_alive(SiteId(5)));
        d.remove_peer(SiteId(5));
        assert!(!d.is_alive(SiteId(5)));
        // Adding self is a no-op.
        d.add_peer(SiteId(0), SimTime::ZERO);
        assert!(!d.is_alive(SiteId(0)));
    }
}
