//! A calendar queue for the discrete-event engine.
//!
//! The engine's event queue used to be a `BinaryHeap` ordered by `(time, sequence)`.  Its
//! dominant workload is bursty: a multicast fan-out or reply storm schedules dozens of
//! events at the *same instant* (identical arrival time under a zero-jitter profile, or the
//! batched same-site deliveries the outbox planner produces), and each of those paid a full
//! O(log n) sift on push *and* pop.
//!
//! [`CalendarQueue`] is a calendar keyed by [`SimTime`]: one FIFO bucket per occupied
//! instant, plus a min-heap over the *distinct* instants only.  Scheduling another event at
//! an already-occupied instant — the common burst case — is an O(1) push onto that
//! instant's bucket; the heap is touched once per instant, not once per event.  Popping
//! drains the earliest bucket front-to-back, so the delivered order is exactly the
//! `(time, insertion sequence)` order of the old heap.
//!
//! Invariants (pinned by `tests/calendar_props.rs` against a `BinaryHeap` reference model):
//!
//! * every instant in the heap has a non-empty bucket, and appears in the heap exactly once;
//! * `pop` returns events in ascending time, FIFO within one instant;
//! * `len` counts queued events, not buckets.
//!
//! Drained bucket allocations are recycled through a small spare pool, so steady-state
//! operation allocates nothing.

use std::cmp::Reverse;
use std::collections::hash_map::Entry;
use std::collections::{BinaryHeap, VecDeque};

use vsync_util::{FastHashMap, SimTime};

/// Upper bound on recycled bucket allocations kept around between instants.
const MAX_SPARE_BUCKETS: usize = 32;

/// A time-ordered event queue with O(1) amortized scheduling at occupied instants and FIFO
/// order within an instant.
#[derive(Debug)]
pub struct CalendarQueue<T> {
    /// Min-heap of the distinct occupied instants (each exactly once).
    instants: BinaryHeap<Reverse<SimTime>>,
    /// FIFO bucket per occupied instant; never empty while its instant is in the heap.
    /// Keyed with the toolkit's id hasher — timestamps are trusted internal values and the
    /// map is touched on every push and pop.
    buckets: FastHashMap<SimTime, VecDeque<T>>,
    /// Drained bucket allocations available for reuse.
    spare: Vec<VecDeque<T>>,
    len: usize,
}

impl<T> Default for CalendarQueue<T> {
    fn default() -> Self {
        CalendarQueue::new()
    }
}

impl<T> CalendarQueue<T> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        CalendarQueue {
            instants: BinaryHeap::new(),
            buckets: FastHashMap::default(),
            spare: Vec::new(),
            len: 0,
        }
    }

    /// Number of queued events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no events are queued.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The earliest occupied instant, if any (the time `pop` would return next).
    pub fn next_time(&self) -> Option<SimTime> {
        self.instants.peek().map(|r| r.0)
    }

    /// Schedules `item` at `at`.  O(1) when the instant already has a bucket; one heap push
    /// otherwise.
    pub fn push(&mut self, at: SimTime, item: T) {
        match self.buckets.entry(at) {
            Entry::Occupied(bucket) => bucket.into_mut().push_back(item),
            Entry::Vacant(slot) => {
                let mut bucket = self.spare.pop().unwrap_or_default();
                bucket.push_back(item);
                slot.insert(bucket);
                self.instants.push(Reverse(at));
            }
        }
        self.len += 1;
    }

    /// Drops every queued event for which `keep` returns false, preserving time order and
    /// FIFO order within each instant.  O(n); used by fault injection (a hard-killed site's
    /// in-flight sends die on the wire), not on the steady-state path.
    pub fn retain(&mut self, mut keep: impl FnMut(&T) -> bool) {
        let mut removed = 0usize;
        self.buckets.retain(|_, bucket| {
            let before = bucket.len();
            bucket.retain(|item| keep(item));
            removed += before - bucket.len();
            !bucket.is_empty()
        });
        if removed > 0 {
            self.len -= removed;
            // Instants whose buckets emptied must leave the heap; each survivor appears in
            // `buckets` exactly once, so rebuilding from the keys preserves the invariant.
            self.instants = self.buckets.keys().map(|t| Reverse(*t)).collect();
        }
    }

    /// Removes and returns the earliest event: ascending time, FIFO within an instant.
    pub fn pop(&mut self) -> Option<(SimTime, T)> {
        let at = self.next_time()?;
        let bucket = self
            .buckets
            .get_mut(&at)
            .expect("every heap instant has a bucket");
        let item = bucket.pop_front().expect("bucket in the heap is non-empty");
        if bucket.is_empty() {
            let drained = self.buckets.remove(&at).expect("bucket present");
            if self.spare.len() < MAX_SPARE_BUCKETS {
                self.spare.push(drained);
            }
            self.instants.pop();
        }
        self.len -= 1;
        Some((at, item))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order_fifo_within_an_instant() {
        let mut q = CalendarQueue::new();
        q.push(SimTime(20), "late");
        q.push(SimTime(10), "a");
        q.push(SimTime(10), "b");
        q.push(SimTime(5), "first");
        q.push(SimTime(10), "c");
        assert_eq!(q.len(), 5);
        assert_eq!(q.next_time(), Some(SimTime(5)));
        let order: Vec<&str> = std::iter::from_fn(|| q.pop()).map(|(_, v)| v).collect();
        assert_eq!(order, vec!["first", "a", "b", "c", "late"]);
        assert!(q.is_empty());
        assert_eq!(q.next_time(), None);
    }

    #[test]
    fn interleaved_push_pop_keeps_the_heap_deduplicated() {
        let mut q = CalendarQueue::new();
        q.push(SimTime(10), 1);
        assert_eq!(q.pop(), Some((SimTime(10), 1)));
        // Re-occupying a drained instant must re-register it exactly once.
        q.push(SimTime(10), 2);
        q.push(SimTime(10), 3);
        assert_eq!(q.pop(), Some((SimTime(10), 2)));
        q.push(SimTime(10), 4);
        assert_eq!(q.pop(), Some((SimTime(10), 3)));
        assert_eq!(q.pop(), Some((SimTime(10), 4)));
        assert_eq!(q.pop(), None);
        assert_eq!(q.len(), 0);
    }

    #[test]
    fn retain_preserves_order_and_heap_invariants() {
        let mut q = CalendarQueue::new();
        q.push(SimTime(5), 50);
        q.push(SimTime(10), 100);
        q.push(SimTime(10), 101);
        q.push(SimTime(20), 200);
        q.retain(|v| *v % 2 == 0);
        assert_eq!(q.len(), 3);
        // The instant whose bucket emptied entirely must be gone from the heap too.
        q.retain(|v| *v != 200);
        assert_eq!(q.len(), 2);
        let order: Vec<u64> = std::iter::from_fn(|| q.pop()).map(|(_, v)| v).collect();
        assert_eq!(order, vec![50, 100]);
        assert_eq!(q.next_time(), None);
        // Retaining everything on an empty queue is a no-op.
        q.retain(|_| true);
        assert!(q.is_empty());
    }

    #[test]
    fn bucket_allocations_are_recycled() {
        let mut q = CalendarQueue::new();
        for round in 0..10u64 {
            q.push(SimTime(round), round);
            q.pop();
        }
        assert!(
            q.spare.len() <= MAX_SPARE_BUCKETS && !q.spare.is_empty(),
            "drained buckets return to the spare pool"
        );
    }
}
