//! The inter-process datagram exchanged through the simulated LAN.

use std::fmt;

use serde::{Deserialize, Serialize};
use vsync_msg::{Frame, Message};
use vsync_util::{ProcessId, SiteId};

/// Globally unique identifier of a multicast message.
///
/// Ids are allocated by the protocol endpoint at the *origin site*, so `(origin, seq)` never
/// repeats even when the same logical message is retransmitted, forwarded or re-broadcast
/// during a flush.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct MsgId {
    /// Site whose protocol endpoint assigned the id.
    pub origin: SiteId,
    /// Monotonic per-origin sequence number.
    pub seq: u64,
}

impl MsgId {
    /// Creates a message id.
    pub fn new(origin: SiteId, seq: u64) -> Self {
        MsgId { origin, seq }
    }
}

impl fmt::Debug for MsgId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "m{}:{}", self.origin.0, self.seq)
    }
}

/// Coarse classification of a packet, used by the statistics layer and by the Figure 3
/// breakdown (which distinguishes protocol phases of an ABCAST).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum PacketKind {
    /// First phase of a multicast (the data-bearing transmission).
    Data,
    /// An ABCAST priority proposal returning to the initiator.
    Proposal,
    /// The second-phase ordering decision of an ABCAST.
    SetOrder,
    /// Flush / view-change control traffic (GBCAST).
    Flush,
    /// A point-to-point reply to a group RPC.
    Reply,
    /// Failure-detector heartbeat.
    Heartbeat,
    /// Stability gossip (delivery acknowledgement vectors).
    Stability,
    /// State-transfer block (simulated TCP bulk channel).
    Transfer,
    /// Anything else (namespace lookups, tool-internal control traffic, ...).
    Control,
}

/// An addressed message in flight between two processes.
///
/// Packets always name concrete processes; group expansion happens in the protocol layer
/// before packets are handed to the network.  The payload is a shared [`Frame`]: a multicast
/// fan-out builds one frame and every destination packet aliases it, so cloning a packet (or
/// addressing the same message to N destinations) never deep-copies the field tree.  Readers
/// reach the message through `Deref` (`pkt.payload.get_str(..)`); a handler that wants to
/// *edit* its copy goes through [`Packet::payload_mut`], which is copy-on-write.
#[derive(Clone, Debug)]
pub struct Packet {
    /// Sending process.
    pub src: ProcessId,
    /// Receiving process.
    pub dst: ProcessId,
    /// Classification for statistics and tracing.
    pub kind: PacketKind,
    /// The payload frame (shared across the packets of one fan-out).
    pub payload: Frame,
}

impl Packet {
    /// Creates a packet.  Accepts a bare [`Message`] (wrapped in a fresh frame) or an
    /// existing [`Frame`] to alias.
    pub fn new(
        src: ProcessId,
        dst: ProcessId,
        kind: PacketKind,
        payload: impl Into<Frame>,
    ) -> Self {
        Packet {
            src,
            dst,
            kind,
            payload: payload.into(),
        }
    }

    /// Mutable access to this packet's payload, copy-on-write: if other packets alias the
    /// same frame the message is cloned first, so the edit is invisible to them.
    pub fn payload_mut(&mut self) -> &mut Message {
        self.payload.make_mut()
    }

    /// True if source and destination live on the same site.
    pub fn is_intra_site(&self) -> bool {
        self.src.site == self.dst.site
    }

    /// Approximate wire size of the packet (payload plus a small header).
    pub fn wire_size(&self) -> usize {
        self.payload.encoded_len() + 32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn msg_id_ordering_is_by_origin_then_seq() {
        let a = MsgId::new(SiteId(0), 5);
        let b = MsgId::new(SiteId(0), 6);
        let c = MsgId::new(SiteId(1), 0);
        assert!(a < b);
        assert!(b < c);
        assert_eq!(format!("{a:?}"), "m0:5");
    }

    #[test]
    fn packet_site_locality() {
        let s0p = ProcessId::new(SiteId(0), 0);
        let s0q = ProcessId::new(SiteId(0), 1);
        let s1p = ProcessId::new(SiteId(1), 0);
        let local = Packet::new(s0p, s0q, PacketKind::Data, Message::new());
        let remote = Packet::new(s0p, s1p, PacketKind::Data, Message::new());
        assert!(local.is_intra_site());
        assert!(!remote.is_intra_site());
    }

    #[test]
    fn shared_payload_edits_are_copy_on_write() {
        let frame = vsync_msg::Frame::new(Message::with_body("original"));
        let mut a = Packet::new(
            ProcessId::new(SiteId(0), 0),
            ProcessId::new(SiteId(1), 0),
            PacketKind::Data,
            frame.clone(),
        );
        let b = Packet::new(
            ProcessId::new(SiteId(0), 0),
            ProcessId::new(SiteId(2), 0),
            PacketKind::Data,
            frame,
        );
        a.payload_mut().set("body", "edited");
        assert_eq!(a.payload.get_str("body"), Some("edited"));
        assert_eq!(
            b.payload.get_str("body"),
            Some("original"),
            "the aliasing packet must not observe the edit"
        );
    }

    #[test]
    fn wire_size_includes_header() {
        let p = Packet::new(
            ProcessId::new(SiteId(0), 0),
            ProcessId::new(SiteId(1), 0),
            PacketKind::Data,
            Message::with_body(vec![0u8; 1000]),
        );
        assert!(p.wire_size() > 1000);
    }
}
