//! The network substrate for the vsync reproduction of ISIS.
//!
//! The paper measured ISIS on four SUN 3/50 workstations on a 10 Mbit Ethernet; we substitute
//! a **deterministic discrete-event simulated LAN** whose latency model uses exactly the
//! constants the paper reports (10 ms intra-site hop, 16 ms inter-site packet, 4 KiB
//! fragmentation — Section 7, Figure 3), plus configurable packet loss recovered by
//! retransmission (the paper's system "tolerates message loss, but not partitioning").
//!
//! The crate provides:
//!
//! * [`packet`] — the inter-process datagram exchanged between sites.
//! * [`stats`] — counters used to regenerate Table 1 (multicasts per toolkit routine) and the
//!   message-count aspects of Figure 3.
//! * [`model`] — the latency / loss / fragmentation model.
//! * [`calendar`] — the bucketed calendar queue backing the engine's event loop.
//! * [`engine`] — the discrete-event simulator: virtual clock, per-site handlers, timers,
//!   crash and recovery injection.
//! * [`fail`] — the heartbeat failure detector with adaptive timeouts (paper Section 3.7).

pub mod calendar;
pub mod engine;
pub mod fail;
pub mod model;
pub mod packet;
pub mod stats;

pub use calendar::CalendarQueue;
pub use engine::{Engine, Outbox, SiteHandler};
pub use fail::FailureDetector;
pub use model::NetworkModel;
pub use packet::{MsgId, Packet, PacketKind};
pub use stats::{NetStats, ProtocolKind, SharedStats};
