//! The latency / loss / fragmentation model of the simulated LAN.
//!
//! Given a packet, the model decides *when* it arrives at its destination and how much
//! traffic it generated.  The constants come from [`NetParams`]; the `Paper1987` profile uses
//! the figures the paper reports (10 ms intra-site hop, 16 ms per inter-site packet, 4 KiB
//! fragments, 10 Mbit/s shared medium).
//!
//! Loss is modelled at the packet level on inter-site links and recovered by a simple
//! stop-and-wait retransmission at the transport layer; rather than simulating every ack we
//! charge the delivery time with one retransmission-timeout per lost attempt, which yields
//! the same observable behaviour (reliable delivery, occasional latency spikes, extra
//! packets counted in the statistics).  Delivery between a given pair of processes is FIFO,
//! like the TCP-style channels ISIS used between sites.

use vsync_util::{Duration, FastHashMap, NetParams, ProcessId, SimTime};

use crate::packet::Packet;
use crate::stats::SharedStats;
use vsync_util::DetRng;

/// The outcome of submitting a packet to the network.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DeliveryPlan {
    /// When the destination site receives the last fragment.
    pub arrival: SimTime,
    /// Number of physical packets (fragments plus retransmissions) used.
    pub physical_packets: u64,
}

/// The simulated LAN.
pub struct NetworkModel {
    params: NetParams,
    stats: SharedStats,
    rng: DetRng,
    /// Last scheduled arrival per (src, dst) pair, to preserve FIFO channel semantics.
    /// Touched once per planned packet; keyed with the toolkit's id hasher.
    channel_front: FastHashMap<(ProcessId, ProcessId), SimTime>,
}

impl NetworkModel {
    /// Creates a network model with the given parameters, statistics sink and RNG seed.
    pub fn new(params: NetParams, stats: SharedStats, seed: u64) -> Self {
        NetworkModel {
            params,
            stats,
            rng: DetRng::new(seed),
            channel_front: FastHashMap::default(),
        }
    }

    /// Returns the configured parameters.
    pub fn params(&self) -> &NetParams {
        &self.params
    }

    /// Replaces the parameters (used by benches that sweep latency profiles).
    pub fn set_params(&mut self, params: NetParams) {
        self.params = params;
    }

    /// Plans the delivery of `packet` submitted at time `now`.
    ///
    /// The returned [`DeliveryPlan`] gives the arrival time of the complete message at the
    /// destination process and the number of physical packets consumed.  Statistics are
    /// updated as a side effect.
    pub fn plan_delivery(&mut self, now: SimTime, packet: &Packet) -> DeliveryPlan {
        let size = packet.wire_size();
        let inter_site = !packet.is_intra_site();
        let fragments = if inter_site {
            self.params.fragments_for(size) as u64
        } else {
            1
        };

        let base_delay = if inter_site {
            self.params.inter_site_delay
        } else {
            self.params.intra_site_delay
        };

        // Serialization: every fragment must be clocked onto the medium.
        let serialization = self.params.serialization_delay(size);
        // Per-packet CPU charge at the sending and receiving protocol stacks.
        let cpu = self.params.cpu_per_packet.saturating_mul(fragments);

        // Loss and retransmission (inter-site only; the intra-site path is a local pipe).
        let mut physical = fragments;
        let mut retransmit_penalty = Duration::ZERO;
        if inter_site && self.params.loss_probability > 0.0 {
            for _ in 0..fragments {
                let mut attempts = 0u64;
                while self.rng.chance(self.params.loss_probability) && attempts < 16 {
                    attempts += 1;
                }
                if attempts > 0 {
                    physical += attempts;
                    retransmit_penalty += self.params.retransmit_timeout.saturating_mul(attempts);
                    self.stats.with(|s| {
                        for _ in 0..attempts {
                            s.count_retransmission();
                        }
                    });
                }
            }
        }

        let mut arrival = now + base_delay + serialization + cpu + retransmit_penalty;

        // FIFO per (src, dst) channel: never deliver *before* a previously submitted packet.
        // Equal arrival instants are allowed — the event queue breaks timestamp ties in
        // submission order, which both preserves FIFO and lets the engine deliver a burst to
        // one site as a single batched event.
        let key = (packet.src, packet.dst);
        if let Some(front) = self.channel_front.get(&key) {
            if arrival < *front {
                arrival = *front;
            }
        }
        self.channel_front.insert(key, arrival);

        self.stats.with(|s| {
            s.count_packet(packet.kind, inter_site, fragments, size as u64);
        });

        DeliveryPlan {
            arrival,
            physical_packets: physical,
        }
    }

    /// Forgets FIFO channel state involving a crashed process so a later incarnation starts
    /// with a clean channel.
    pub fn forget_process(&mut self, process: ProcessId) {
        self.channel_front
            .retain(|(src, dst), _| !src.same_slot(&process) && !dst.same_slot(&process));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::PacketKind;
    use vsync_msg::Message;
    use vsync_util::SiteId;

    fn mk_packet(size: usize, same_site: bool) -> Packet {
        let src = ProcessId::new(SiteId(0), 0);
        let dst = if same_site {
            ProcessId::new(SiteId(0), 1)
        } else {
            ProcessId::new(SiteId(1), 0)
        };
        Packet::new(
            src,
            dst,
            PacketKind::Data,
            Message::with_body(vec![0u8; size]),
        )
    }

    #[test]
    fn intra_site_is_faster_than_inter_site() {
        let stats = SharedStats::new();
        let mut net = NetworkModel::new(NetParams::paper1987(), stats, 1);
        let local = net.plan_delivery(SimTime::ZERO, &mk_packet(100, true));
        let remote = net.plan_delivery(SimTime::ZERO, &mk_packet(100, false));
        assert!(local.arrival < remote.arrival);
        // Paper constants: 10 ms local hop vs 16 ms remote packet.
        assert!(local.arrival.as_millis_f64() >= 10.0);
        assert!(remote.arrival.as_millis_f64() >= 16.0);
    }

    #[test]
    fn large_messages_fragment_and_slow_down() {
        let stats = SharedStats::new();
        let mut net = NetworkModel::new(NetParams::paper1987(), stats.clone(), 1);
        let small = net.plan_delivery(SimTime::ZERO, &mk_packet(1_000, false));
        let big = net.plan_delivery(SimTime::ZERO, &mk_packet(10_000, false));
        assert!(
            big.arrival > small.arrival,
            "10 KiB must be slower than 1 KiB"
        );
        assert!(
            big.physical_packets >= 3,
            "10 KiB fragments into >= 3 packets of 4 KiB"
        );
        let snap = stats.snapshot();
        assert!(snap.fragments_sent >= 2);
    }

    #[test]
    fn fifo_per_channel_is_preserved() {
        let stats = SharedStats::new();
        let mut net = NetworkModel::new(NetParams::paper1987(), stats, 1);
        // Submit a big (slow) packet first and a small one immediately after on the same
        // channel: the small one must not overtake it (arriving at the same instant is
        // allowed; the event queue then delivers in submission order).
        let first = net.plan_delivery(SimTime::ZERO, &mk_packet(100_000, false));
        let second = net.plan_delivery(SimTime::ZERO, &mk_packet(10, false));
        assert!(second.arrival >= first.arrival);
    }

    #[test]
    fn different_channels_can_overtake() {
        let stats = SharedStats::new();
        let mut net = NetworkModel::new(NetParams::paper1987(), stats, 1);
        let slow = net.plan_delivery(SimTime::ZERO, &mk_packet(100_000, false));
        let other = Packet::new(
            ProcessId::new(SiteId(2), 0),
            ProcessId::new(SiteId(1), 0),
            PacketKind::Data,
            Message::with_body(1u64),
        );
        let fast = net.plan_delivery(SimTime::ZERO, &other);
        assert!(fast.arrival < slow.arrival);
    }

    #[test]
    fn loss_adds_retransmissions_but_still_delivers() {
        let stats = SharedStats::new();
        let mut net = NetworkModel::new(NetParams::paper1987().with_loss(0.5), stats.clone(), 42);
        let mut extra = 0;
        for i in 0..200 {
            let mut p = mk_packet(100, false);
            // Use distinct channels so FIFO does not conflate the measurements.
            p.src = ProcessId::new(SiteId(0), i as u32 + 10);
            let plan = net.plan_delivery(SimTime::ZERO, &p);
            extra += plan.physical_packets - 1;
            assert!(plan.arrival > SimTime::ZERO, "always delivered eventually");
        }
        assert!(
            extra > 20,
            "with 50% loss many retransmissions must happen, got {extra}"
        );
        assert!(stats.snapshot().retransmissions > 20);
    }

    #[test]
    fn forget_process_clears_channel_state() {
        let stats = SharedStats::new();
        let mut net = NetworkModel::new(NetParams::paper1987(), stats, 1);
        let p = mk_packet(100_000, false);
        net.plan_delivery(SimTime::ZERO, &p);
        assert!(!net.channel_front.is_empty());
        net.forget_process(p.src);
        assert!(net.channel_front.is_empty());
    }
}
