//! The discrete-event simulation engine.
//!
//! The engine owns one [`SiteHandler`] per site (the analogue of the paper's per-site
//! "protocols process" plus the client processes it serves — see Figure 1), a virtual clock,
//! an event queue, and the [`NetworkModel`].  Handlers are sans-io state machines: they react
//! to packets and timers by recording actions in an [`Outbox`], and the engine turns those
//! actions into future events.  Everything is deterministic given the RNG seed, which is what
//! makes the virtual-synchrony invariants property-testable.
//!
//! Site crashes and recoveries are injected through [`Engine::kill_site`] and
//! [`Engine::recover_site`]; a crashed site silently discards packets and timers, exactly the
//! fail-stop behaviour the paper assumes (Section 2.1).

use std::any::Any;

use vsync_util::{Duration, NetParams, SimTime, SiteId};

use crate::calendar::CalendarQueue;
use crate::model::NetworkModel;
use crate::packet::Packet;
use crate::stats::SharedStats;

/// A per-site event handler: the site's protocol stack together with the processes it hosts.
pub trait SiteHandler: Any {
    /// Called once when the site starts (or restarts after recovery).
    fn on_start(&mut self, _now: SimTime, _out: &mut Outbox) {}

    /// Called when a packet addressed to a process on this site arrives.
    fn on_packet(&mut self, now: SimTime, pkt: Packet, out: &mut Outbox);

    /// Called when a timer set by this site fires.
    fn on_timer(&mut self, now: SimTime, token: u64, out: &mut Outbox);

    /// Downcasting hook so harnesses can reach their concrete site runtime.
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

/// Actions a handler wants the engine to perform.
pub struct Outbox {
    sends: Vec<Packet>,
    timers: Vec<(Duration, u64)>,
    traces: Vec<String>,
    /// Whether trace lines are kept.  The engine propagates its own setting here so
    /// handlers using [`Outbox::trace_with`] skip even the string formatting when traces
    /// are not being collected.
    collect_traces: bool,
}

impl Default for Outbox {
    fn default() -> Self {
        Outbox {
            sends: Vec::new(),
            timers: Vec::new(),
            traces: Vec::new(),
            // A free-standing outbox (handler unit tests) records traces; inside an engine
            // the engine's opt-in setting overrides this before every dispatch.
            collect_traces: true,
        }
    }
}

impl Outbox {
    /// Creates an empty outbox.
    pub fn new() -> Self {
        Outbox::default()
    }

    /// Queues a packet for transmission.
    pub fn send(&mut self, pkt: Packet) {
        self.sends.push(pkt);
    }

    /// Requests a timer callback `after` from now, identified by `token`.
    pub fn set_timer(&mut self, after: Duration, token: u64) {
        self.timers.push((after, token));
    }

    /// Records a trace line (collected by the engine when trace collection is enabled).
    /// Prefer [`Outbox::trace_with`] on hot paths: it skips building the string entirely
    /// when traces are off.
    pub fn trace(&mut self, line: impl Into<String>) {
        if self.collect_traces {
            self.traces.push(line.into());
        }
    }

    /// Records a lazily-built trace line; `make` runs only if traces are being collected,
    /// so disabled tracing costs one branch instead of a `format!` allocation.
    pub fn trace_with(&mut self, make: impl FnOnce() -> String) {
        if self.collect_traces {
            self.traces.push(make());
        }
    }

    /// True if trace lines are currently being kept (lets handlers gate extra diagnostic
    /// work beyond the line itself).
    pub fn traces_enabled(&self) -> bool {
        self.collect_traces
    }

    /// Returns true if no actions were recorded.
    pub fn is_empty(&self) -> bool {
        self.sends.is_empty() && self.timers.is_empty() && self.traces.is_empty()
    }

    /// Enables or disables trace collection on a free-standing outbox.  Inside an
    /// [`Engine`] this is overridden before every dispatch; runtime drivers outside the
    /// engine (the `vsync-rt` node loop) configure it once at construction.
    pub fn set_trace_collection(&mut self, on: bool) {
        self.collect_traces = on;
    }

    /// Drains the queued packet sends.  Used by runtime drivers that flush a dispatch's
    /// actions into a transport; the buffer's capacity is retained for reuse.
    pub fn drain_sends(&mut self) -> std::vec::Drain<'_, Packet> {
        self.sends.drain(..)
    }

    /// Drains the queued timer requests (`(after, token)` pairs).
    pub fn drain_timers(&mut self) -> std::vec::Drain<'_, (Duration, u64)> {
        self.timers.drain(..)
    }

    /// Drains the recorded trace lines.
    pub fn drain_traces(&mut self) -> std::vec::Drain<'_, String> {
        self.traces.drain(..)
    }
}

enum EventKind {
    Packet(Packet),
    /// A run of packets for the *same destination site* arriving at the *same instant*,
    /// delivered in one handler dispatch.  Produced when a multicast fan-out or reply burst
    /// plans several deliveries to one site at an identical timestamp; popping one event
    /// instead of N keeps the heap small and reuses a single outbox for the whole run.
    PacketBatch(Vec<Packet>),
    Timer {
        site: SiteId,
        token: u64,
        /// Site epoch at the time the timer was armed; timers belonging to a crashed
        /// incarnation are silently discarded.
        epoch: u64,
    },
    Crash(SiteId),
}

struct SiteSlot {
    handler: Option<Box<dyn SiteHandler>>,
    up: bool,
    /// Incremented on every crash so events belonging to a dead incarnation can be dropped.
    epoch: u64,
}

/// The discrete-event simulator.
pub struct Engine {
    now: SimTime,
    /// Calendar queue: one FIFO bucket per occupied instant, so scheduling into a burst
    /// (the dominant workload) is O(1) instead of an O(log n) heap sift per event.  Pop
    /// order — ascending time, insertion order within an instant — matches the old
    /// `(time, sequence)` binary heap exactly; `net/tests/calendar_props.rs` pins this.
    queue: CalendarQueue<EventKind>,
    sites: Vec<SiteSlot>,
    net: NetworkModel,
    stats: SharedStats,
    traces: Vec<(SimTime, String)>,
    /// Trace collection is opt-in ([`Engine::set_trace_collection`]): the repro harness and
    /// benches process millions of events and would otherwise pay for strings they discard.
    collect_traces: bool,
    events_processed: u64,
    /// One outbox reused across every dispatch, so steady-state event processing performs
    /// no per-event vector allocations.
    scratch: Outbox,
    /// Scratch for delivery planning in `apply_outbox` (same reuse rationale).
    plan_scratch: Vec<(SimTime, Packet)>,
}

impl Engine {
    /// Creates an engine with `num_sites` empty site slots.
    pub fn new(num_sites: usize, params: NetParams, seed: u64) -> Self {
        let stats = SharedStats::new();
        let net = NetworkModel::new(params, stats.clone(), seed);
        let sites = (0..num_sites)
            .map(|_| SiteSlot {
                handler: None,
                up: false,
                epoch: 0,
            })
            .collect();
        Engine {
            now: SimTime::ZERO,
            queue: CalendarQueue::new(),
            sites,
            net,
            stats,
            traces: Vec::new(),
            collect_traces: false,
            events_processed: 0,
            scratch: Outbox::new(),
            plan_scratch: Vec::new(),
        }
    }

    /// Enables or disables trace collection (off by default; see [`Engine::traces`]).
    pub fn set_trace_collection(&mut self, on: bool) {
        self.collect_traces = on;
    }

    /// The current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of site slots.
    pub fn num_sites(&self) -> usize {
        self.sites.len()
    }

    /// The shared statistics counters.
    pub fn stats(&self) -> SharedStats {
        self.stats.clone()
    }

    /// Number of events processed so far (useful as a progress/liveness measure in tests).
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Trace lines emitted by handlers, with the time they were emitted.  Empty unless
    /// [`Engine::set_trace_collection`] enabled collection before the events ran.
    pub fn traces(&self) -> &[(SimTime, String)] {
        &self.traces
    }

    /// Returns true if the site is currently up.
    pub fn site_is_up(&self, site: SiteId) -> bool {
        self.sites
            .get(site.index())
            .map(|s| s.up && s.handler.is_some())
            .unwrap_or(false)
    }

    /// Installs the handler for a site and marks it up, invoking `on_start`.
    pub fn install_site(&mut self, site: SiteId, handler: Box<dyn SiteHandler>) {
        let idx = site.index();
        assert!(idx < self.sites.len(), "site {site:?} out of range");
        let epoch = self.sites[idx].epoch;
        self.sites[idx] = SiteSlot {
            handler: Some(handler),
            up: true,
            epoch,
        };
        self.dispatch(site, |h, now, out| h.on_start(now, out));
    }

    /// Crashes a site immediately: its handler is dropped and all traffic to it is discarded
    /// until [`Engine::recover_site`] installs a fresh handler.
    pub fn kill_site(&mut self, site: SiteId) {
        if let Some(slot) = self.sites.get_mut(site.index()) {
            slot.up = false;
            slot.handler = None;
            slot.epoch += 1;
        }
    }

    /// Schedules a site crash at a future time (failure injection for tests and benches).
    pub fn schedule_crash(&mut self, at: SimTime, site: SiteId) {
        self.push_event(at, EventKind::Crash(site));
    }

    /// Recovers a site by installing a fresh handler (typically rebuilt from stable storage).
    pub fn recover_site(&mut self, site: SiteId, handler: Box<dyn SiteHandler>) {
        self.install_site(site, handler);
    }

    /// Gives mutable access to a site's concrete handler, running at the current time, and
    /// processes whatever actions the call records.  This is how harnesses inject work
    /// ("client calls the toolkit at time T").
    ///
    /// Returns `None` if the site is down or the concrete type does not match.
    pub fn with_site<H: SiteHandler, R>(
        &mut self,
        site: SiteId,
        f: impl FnOnce(&mut H, SimTime, &mut Outbox) -> R,
    ) -> Option<R> {
        let idx = site.index();
        if idx >= self.sites.len() || !self.sites[idx].up {
            return None;
        }
        let mut handler = self.sites[idx].handler.take()?;
        let mut out = std::mem::take(&mut self.scratch);
        out.collect_traces = self.collect_traces;
        let now = self.now;
        let result = handler
            .as_any_mut()
            .downcast_mut::<H>()
            .map(|h| f(h, now, &mut out));
        self.sites[idx].handler = Some(handler);
        self.apply_outbox(site, &mut out);
        self.scratch = out;
        result
    }

    /// Runs the event loop until the queue is exhausted or virtual time would pass `limit`.
    /// Returns the number of events processed.
    pub fn run_until(&mut self, limit: SimTime) -> u64 {
        let mut processed = 0;
        while let Some(at) = self.queue.next_time() {
            if at > limit {
                break;
            }
            let (at, kind) = self.queue.pop().expect("peeked");
            self.now = at.max(self.now);
            self.process(kind);
            processed += 1;
            self.events_processed += 1;
        }
        if self.now < limit {
            self.now = limit;
        }
        processed
    }

    /// Runs for `d` of virtual time from the current instant.
    pub fn run_for(&mut self, d: Duration) -> u64 {
        let target = self.now + d;
        self.run_until(target)
    }

    /// Runs until no events remain or `limit` is reached, whichever comes first.
    /// Periodic timers (heartbeats) mean the queue rarely empties, so a limit is mandatory.
    pub fn run_until_quiescent(&mut self, limit: SimTime) -> u64 {
        self.run_until(limit)
    }

    fn push_event(&mut self, at: SimTime, kind: EventKind) {
        let at = at.max(self.now);
        self.queue.push(at, kind);
    }

    fn process(&mut self, kind: EventKind) {
        match kind {
            EventKind::Packet(pkt) => {
                let site = pkt.dst.site;
                if self.site_is_up(site) {
                    self.dispatch(site, |h, now, out| h.on_packet(now, pkt, out));
                }
            }
            EventKind::PacketBatch(pkts) => {
                let site = pkts[0].dst.site;
                if self.site_is_up(site) {
                    self.dispatch(site, |h, now, out| {
                        for pkt in pkts {
                            h.on_packet(now, pkt, out);
                        }
                    });
                }
            }
            EventKind::Timer { site, token, epoch } => {
                let current_epoch = self.sites.get(site.index()).map(|s| s.epoch);
                if self.site_is_up(site) && current_epoch == Some(epoch) {
                    self.dispatch(site, |h, now, out| h.on_timer(now, token, out));
                }
            }
            EventKind::Crash(site) => {
                self.kill_site(site);
            }
        }
    }

    fn dispatch(
        &mut self,
        site: SiteId,
        f: impl FnOnce(&mut dyn SiteHandler, SimTime, &mut Outbox),
    ) {
        let idx = site.index();
        let Some(mut handler) = self.sites.get_mut(idx).and_then(|s| s.handler.take()) else {
            return;
        };
        let mut out = std::mem::take(&mut self.scratch);
        out.collect_traces = self.collect_traces;
        f(handler.as_mut(), self.now, &mut out);
        if let Some(slot) = self.sites.get_mut(idx) {
            // Only put the handler back if the site was not killed while we held it.
            if slot.up {
                slot.handler = Some(handler);
            }
        }
        self.apply_outbox(site, &mut out);
        self.scratch = out;
    }

    /// Converts a dispatch's recorded actions into queued events, draining (not consuming)
    /// the outbox so its buffers can be reused by the next dispatch.
    fn apply_outbox(&mut self, origin: SiteId, out: &mut Outbox) {
        for line in out.traces.drain(..) {
            self.traces.push((self.now, line));
        }
        let epoch = self.sites.get(origin.index()).map(|s| s.epoch).unwrap_or(0);
        for (after, token) in out.timers.drain(..) {
            let at = self.now + after;
            self.push_event(
                at,
                EventKind::Timer {
                    site: origin,
                    token,
                    epoch,
                },
            );
        }
        // Plan every send, then queue runs of adjacent packets that arrive at the same site
        // at the same instant as one batch event.  Only *adjacent* sends are merged: they
        // would have been popped as consecutive events anyway (same arrival time, increasing
        // seq, nothing can sort between them), so batching preserves event order exactly.
        let mut planned = std::mem::take(&mut self.plan_scratch);
        planned.extend(out.sends.drain(..).map(|pkt| {
            let plan = self.net.plan_delivery(self.now, &pkt);
            (plan.arrival, pkt)
        }));
        let mut run = planned.drain(..).peekable();
        while let Some((at, pkt)) = run.next() {
            let site = pkt.dst.site;
            let same_slot =
                move |other: &(SimTime, Packet)| other.0 == at && other.1.dst.site == site;
            if run.peek().map(same_slot).unwrap_or(false) {
                let mut batch = vec![pkt];
                while run.peek().map(same_slot).unwrap_or(false) {
                    batch.push(run.next().expect("peeked").1);
                }
                self.push_event(at, EventKind::PacketBatch(batch));
            } else {
                self.push_event(at, EventKind::Packet(pkt));
            }
        }
        drop(run);
        self.plan_scratch = planned;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::PacketKind;
    use vsync_msg::Message;
    use vsync_util::ProcessId;

    /// A site that counts what it sees and echoes every data packet back to its sender.
    struct Echo {
        me: SiteId,
        received: Vec<(SimTime, String)>,
        timers: Vec<u64>,
    }

    impl Echo {
        fn new(me: SiteId) -> Self {
            Echo {
                me,
                received: Vec::new(),
                timers: Vec::new(),
            }
        }
    }

    impl SiteHandler for Echo {
        fn on_start(&mut self, _now: SimTime, out: &mut Outbox) {
            out.set_timer(Duration::from_millis(5), 1);
        }

        fn on_packet(&mut self, now: SimTime, pkt: Packet, out: &mut Outbox) {
            let body = pkt.payload.get_str("body").unwrap_or("").to_owned();
            self.received.push((now, body.clone()));
            if body == "ping" {
                let reply = Packet::new(
                    pkt.dst,
                    pkt.src,
                    PacketKind::Reply,
                    Message::with_body("pong"),
                );
                out.send(reply);
            }
        }

        fn on_timer(&mut self, _now: SimTime, token: u64, _out: &mut Outbox) {
            self.timers.push(token);
            let _ = self.me;
        }

        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    fn two_site_engine() -> Engine {
        let mut eng = Engine::new(2, NetParams::paper1987(), 7);
        eng.install_site(SiteId(0), Box::new(Echo::new(SiteId(0))));
        eng.install_site(SiteId(1), Box::new(Echo::new(SiteId(1))));
        eng
    }

    #[test]
    fn ping_pong_round_trip_obeys_link_delays() {
        let mut eng = two_site_engine();
        let a = ProcessId::new(SiteId(0), 0);
        let b = ProcessId::new(SiteId(1), 0);
        eng.with_site::<Echo, _>(SiteId(0), |_h, _now, out| {
            out.send(Packet::new(
                a,
                b,
                PacketKind::Data,
                Message::with_body("ping"),
            ));
        });
        eng.run_until(SimTime(200_000));
        // Site 1 saw the ping, site 0 saw the pong.
        let pong_time = eng
            .with_site::<Echo, _>(SiteId(0), |h, _now, _out| h.received.clone())
            .unwrap();
        let ping_time = eng
            .with_site::<Echo, _>(SiteId(1), |h, _now, _out| h.received.clone())
            .unwrap();
        assert_eq!(ping_time.len(), 1);
        assert_eq!(pong_time.len(), 1);
        assert_eq!(ping_time[0].1, "ping");
        assert_eq!(pong_time[0].1, "pong");
        // Each inter-site hop costs at least 16 ms in the 1987 profile.
        assert!(ping_time[0].0.as_millis_f64() >= 16.0);
        assert!(pong_time[0].0.as_millis_f64() >= 32.0);
    }

    #[test]
    fn timers_fire_and_on_start_runs() {
        let mut eng = two_site_engine();
        eng.run_until(SimTime(100_000));
        let timers = eng
            .with_site::<Echo, _>(SiteId(0), |h, _now, _out| h.timers.clone())
            .unwrap();
        assert_eq!(timers, vec![1]);
    }

    #[test]
    fn crashed_sites_drop_traffic() {
        let mut eng = two_site_engine();
        let a = ProcessId::new(SiteId(0), 0);
        let b = ProcessId::new(SiteId(1), 0);
        eng.kill_site(SiteId(1));
        eng.with_site::<Echo, _>(SiteId(0), |_h, _now, out| {
            out.send(Packet::new(
                a,
                b,
                PacketKind::Data,
                Message::with_body("ping"),
            ));
        });
        eng.run_until(SimTime(1_000_000));
        assert!(!eng.site_is_up(SiteId(1)));
        // No pong ever came back.
        let got = eng
            .with_site::<Echo, _>(SiteId(0), |h, _now, _out| h.received.len())
            .unwrap();
        assert_eq!(got, 0);
    }

    #[test]
    fn recovery_installs_a_fresh_handler() {
        let mut eng = two_site_engine();
        eng.kill_site(SiteId(1));
        assert!(!eng.site_is_up(SiteId(1)));
        eng.recover_site(SiteId(1), Box::new(Echo::new(SiteId(1))));
        assert!(eng.site_is_up(SiteId(1)));
        // The fresh handler re-armed its start timer.
        eng.run_until(SimTime(50_000));
        let timers = eng
            .with_site::<Echo, _>(SiteId(1), |h, _now, _out| h.timers.clone())
            .unwrap();
        assert_eq!(timers, vec![1]);
    }

    #[test]
    fn scheduled_crash_takes_effect_at_the_right_time() {
        let mut eng = two_site_engine();
        eng.schedule_crash(SimTime(10_000), SiteId(1));
        assert!(eng.site_is_up(SiteId(1)));
        eng.run_until(SimTime(20_000));
        assert!(!eng.site_is_up(SiteId(1)));
    }

    #[test]
    fn with_site_on_down_or_missing_site_returns_none() {
        let mut eng = Engine::new(1, NetParams::instant(), 0);
        assert!(eng
            .with_site::<Echo, _>(SiteId(0), |_h, _n, _o| ())
            .is_none());
        eng.install_site(SiteId(0), Box::new(Echo::new(SiteId(0))));
        assert!(eng
            .with_site::<Echo, _>(SiteId(0), |_h, _n, _o| ())
            .is_some());
        eng.kill_site(SiteId(0));
        assert!(eng
            .with_site::<Echo, _>(SiteId(0), |_h, _n, _o| ())
            .is_none());
    }

    #[test]
    fn same_site_same_instant_sends_batch_into_one_event() {
        // Instant profile with zero jitter: both packets to site 1 arrive simultaneously
        // and adjacent in the outbox, so they must travel as one batch event but still be
        // delivered individually and in order.
        let mut eng = Engine::new(2, NetParams::instant(), 0);
        eng.install_site(SiteId(0), Box::new(Echo::new(SiteId(0))));
        eng.install_site(SiteId(1), Box::new(Echo::new(SiteId(1))));
        let a = ProcessId::new(SiteId(0), 0);
        let b = ProcessId::new(SiteId(1), 0);
        eng.with_site::<Echo, _>(SiteId(0), |_h, _now, out| {
            for body in ["one", "two", "three"] {
                out.send(Packet::new(
                    a,
                    b,
                    PacketKind::Data,
                    Message::with_body(body),
                ));
            }
        });
        let before = eng.events_processed();
        eng.run_until(SimTime(1_000_000));
        let got: Vec<String> = eng
            .with_site::<Echo, _>(SiteId(1), |h, _now, _out| {
                h.received.iter().map(|(_, s)| s.clone()).collect()
            })
            .unwrap();
        assert_eq!(got, vec!["one", "two", "three"], "order preserved");
        // All three packets arrived as a single queue event (plus the start timers).
        let packet_events = eng.events_processed() - before;
        assert!(
            packet_events < 3 + 2,
            "batching should collapse the three deliveries, processed {packet_events}"
        );
    }

    #[test]
    fn trace_collection_is_opt_in() {
        struct Tracer;
        impl SiteHandler for Tracer {
            fn on_packet(&mut self, _now: SimTime, _pkt: Packet, _out: &mut Outbox) {}
            fn on_timer(&mut self, _now: SimTime, _token: u64, out: &mut Outbox) {
                out.trace("eager line");
                out.trace_with(|| "lazy line".to_owned());
            }
            fn on_start(&mut self, _now: SimTime, out: &mut Outbox) {
                out.set_timer(Duration::from_millis(1), 1);
            }
            fn as_any_mut(&mut self) -> &mut dyn Any {
                self
            }
        }
        // Default: no collection.
        let mut eng = Engine::new(1, NetParams::instant(), 0);
        eng.install_site(SiteId(0), Box::new(Tracer));
        eng.run_until(SimTime(10_000));
        assert!(eng.traces().is_empty(), "traces off by default");
        // Opt in: both eager and lazy lines are kept.
        let mut eng = Engine::new(1, NetParams::instant(), 0);
        eng.set_trace_collection(true);
        eng.install_site(SiteId(0), Box::new(Tracer));
        eng.run_until(SimTime(10_000));
        let lines: Vec<&str> = eng.traces().iter().map(|(_, s)| s.as_str()).collect();
        assert_eq!(lines, vec!["eager line", "lazy line"]);
    }

    #[test]
    fn free_standing_outbox_records_traces_for_unit_tests() {
        let mut out = Outbox::new();
        assert!(out.traces_enabled());
        out.trace("kept");
        assert!(!out.is_empty());
    }

    #[test]
    fn virtual_time_is_monotonic_and_respects_limits() {
        let mut eng = two_site_engine();
        assert_eq!(eng.now(), SimTime::ZERO);
        eng.run_until(SimTime(1_000));
        assert_eq!(eng.now(), SimTime(1_000));
        eng.run_for(Duration::from_millis(2));
        assert_eq!(eng.now(), SimTime(3_000));
    }
}
