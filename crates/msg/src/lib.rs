//! The ISIS message subsystem (paper Section 4.1).
//!
//! "A message is represented as a symbol table containing multiple fields, each having a
//! name, type, and variable length data.  Fields can be inserted and deleted at will, and
//! special system fields carry information such as the address of the sender of a message
//! (this cannot be forged), the session-id number used to match a reply with a pending call,
//! etc.  A field can even contain another message."
//!
//! This crate provides exactly that data structure ([`Message`]), the typed values fields can
//! hold ([`Value`]), the well-known system field names ([`fields`]), and a compact binary
//! codec ([`codec`]) used by the transport layer to compute realistic wire sizes and by the
//! stable-storage tool to persist logged messages.

pub mod codec;
pub mod fields;
pub mod frame;
pub mod message;
pub mod name;
pub mod value;

pub use frame::Frame;
pub use message::{Field, Message};
pub use name::FieldName;
pub use value::Value;
