//! Typed values carried in message fields.

use std::fmt;

use bytes::Bytes;
use serde::{Deserialize, Serialize};
use vsync_util::{Address, GroupId, ProcessId, SiteId};

use crate::message::Message;

/// A typed, variable-length field value.
///
/// The set of types mirrors what the ISIS message subsystem needed: scalars, strings, byte
/// strings, process/group addresses and address lists, unsigned integer vectors (used for
/// vector timestamps), and nested messages.
#[derive(Clone, PartialEq, Serialize, Deserialize)]
pub enum Value {
    /// Boolean flag.
    Bool(bool),
    /// Signed 64-bit integer.
    I64(i64),
    /// Unsigned 64-bit integer.
    U64(u64),
    /// IEEE-754 double.
    F64(f64),
    /// UTF-8 string.
    Str(String),
    /// Raw bytes.  Held as [`Bytes`] so a decode over a shared buffer can alias the input
    /// instead of copying (see `codec::decode_shared`); equality follows contents.
    Bytes(Bytes),
    /// A process or group address.
    Addr(Address),
    /// A list of addresses (destination lists, membership lists, ...).
    AddrList(Vec<Address>),
    /// A vector of unsigned integers (vector timestamps, rank lists, ...).
    U64List(Vec<u64>),
    /// A nested message.
    Msg(Box<Message>),
}

impl Value {
    /// Human-readable name of the value's type (used in error messages).
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Bool(_) => "bool",
            Value::I64(_) => "i64",
            Value::U64(_) => "u64",
            Value::F64(_) => "f64",
            Value::Str(_) => "str",
            Value::Bytes(_) => "bytes",
            Value::Addr(_) => "addr",
            Value::AddrList(_) => "addr-list",
            Value::U64List(_) => "u64-list",
            Value::Msg(_) => "message",
        }
    }

    /// Approximate in-memory / on-wire payload size in bytes, used by the network simulator
    /// to charge serialization and fragmentation costs.
    pub fn payload_len(&self) -> usize {
        match self {
            Value::Bool(_) => 1,
            Value::I64(_) | Value::U64(_) | Value::F64(_) => 8,
            Value::Str(s) => s.len(),
            Value::Bytes(b) => b.len(),
            Value::Addr(_) => 8,
            Value::AddrList(v) => 8 * v.len(),
            Value::U64List(v) => 8 * v.len(),
            Value::Msg(m) => m.encoded_len(),
        }
    }

    /// Returns the boolean if this is a `Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Returns the integer if this is an `I64`.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::I64(v) => Some(*v),
            Value::U64(v) => i64::try_from(*v).ok(),
            _ => None,
        }
    }

    /// Returns the integer if this is a `U64` (or a non-negative `I64`).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::U64(v) => Some(*v),
            Value::I64(v) => u64::try_from(*v).ok(),
            _ => None,
        }
    }

    /// Returns the float if this is an `F64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::F64(v) => Some(*v),
            Value::I64(v) => Some(*v as f64),
            Value::U64(v) => Some(*v as f64),
            _ => None,
        }
    }

    /// Returns the string if this is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the bytes if this is a `Bytes`.
    pub fn as_bytes(&self) -> Option<&[u8]> {
        match self {
            Value::Bytes(b) => Some(b),
            _ => None,
        }
    }

    /// Returns the address if this is an `Addr`.
    pub fn as_addr(&self) -> Option<Address> {
        match self {
            Value::Addr(a) => Some(*a),
            _ => None,
        }
    }

    /// Returns the address list if this is an `AddrList`.
    pub fn as_addr_list(&self) -> Option<&[Address]> {
        match self {
            Value::AddrList(v) => Some(v),
            _ => None,
        }
    }

    /// Returns the integer list if this is a `U64List`.
    pub fn as_u64_list(&self) -> Option<&[u64]> {
        match self {
            Value::U64List(v) => Some(v),
            _ => None,
        }
    }

    /// Returns the nested message if this is a `Msg`.
    pub fn as_msg(&self) -> Option<&Message> {
        match self {
            Value::Msg(m) => Some(m),
            _ => None,
        }
    }
}

impl fmt::Debug for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Bool(v) => write!(f, "{v}"),
            Value::I64(v) => write!(f, "{v}"),
            Value::U64(v) => write!(f, "{v}u"),
            Value::F64(v) => write!(f, "{v}"),
            Value::Str(s) => write!(f, "{s:?}"),
            Value::Bytes(b) => write!(f, "<{} bytes>", b.len()),
            Value::Addr(a) => write!(f, "{a:?}"),
            Value::AddrList(v) => write!(f, "{v:?}"),
            Value::U64List(v) => write!(f, "{v:?}"),
            Value::Msg(m) => write!(f, "msg({} fields)", m.field_count()),
        }
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::I64(v)
    }
}
impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::I64(v as i64)
    }
}
impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::U64(v)
    }
}
impl From<u32> for Value {
    fn from(v: u32) -> Self {
        Value::U64(v as u64)
    }
}
impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::U64(v as u64)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::F64(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_owned())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}
impl From<Vec<u8>> for Value {
    fn from(v: Vec<u8>) -> Self {
        Value::Bytes(Bytes::from(v))
    }
}
impl From<&[u8]> for Value {
    fn from(v: &[u8]) -> Self {
        Value::Bytes(Bytes::copy_from_slice(v))
    }
}
impl From<Bytes> for Value {
    fn from(v: Bytes) -> Self {
        Value::Bytes(v)
    }
}
impl From<Address> for Value {
    fn from(v: Address) -> Self {
        Value::Addr(v)
    }
}
impl From<ProcessId> for Value {
    fn from(v: ProcessId) -> Self {
        Value::Addr(Address::Process(v))
    }
}
impl From<GroupId> for Value {
    fn from(v: GroupId) -> Self {
        Value::Addr(Address::Group(v))
    }
}
impl From<Vec<Address>> for Value {
    fn from(v: Vec<Address>) -> Self {
        Value::AddrList(v)
    }
}
impl From<Vec<u64>> for Value {
    fn from(v: Vec<u64>) -> Self {
        Value::U64List(v)
    }
}
impl From<Message> for Value {
    fn from(v: Message) -> Self {
        Value::Msg(Box::new(v))
    }
}

/// Helper used by codecs: packs an [`Address`] into the paper's 8-byte encoded form.
pub fn encode_address(addr: &Address) -> u64 {
    match addr {
        Address::Process(p) => {
            // Tag bit 0 (MSB clear), then site (16) | local (24) | incarnation (23).
            ((p.site.0 as u64) << 47)
                | (((p.local as u64) & 0xFF_FFFF) << 23)
                | ((p.incarnation as u64) & 0x7F_FFFF)
        }
        Address::Group(g) => (1u64 << 63) | (g.0 & 0x7FFF_FFFF_FFFF_FFFF),
    }
}

/// Unpacks an [`Address`] from its 8-byte encoded form.
pub fn decode_address(raw: u64) -> Address {
    if raw >> 63 == 1 {
        Address::Group(GroupId(raw & 0x7FFF_FFFF_FFFF_FFFF))
    } else {
        Address::Process(ProcessId {
            site: SiteId(((raw >> 47) & 0xFFFF) as u16),
            local: ((raw >> 23) & 0xFF_FFFF) as u32,
            incarnation: (raw & 0x7F_FFFF) as u32,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors_match_variants() {
        assert_eq!(Value::from(true).as_bool(), Some(true));
        assert_eq!(Value::from(-5i64).as_i64(), Some(-5));
        assert_eq!(Value::from(7u64).as_u64(), Some(7));
        assert_eq!(Value::from(7u64).as_i64(), Some(7));
        assert_eq!(Value::from(-1i64).as_u64(), None);
        assert_eq!(Value::from(2.5f64).as_f64(), Some(2.5));
        assert_eq!(Value::from("hi").as_str(), Some("hi"));
        assert_eq!(Value::from(vec![1u8, 2]).as_bytes(), Some(&[1u8, 2][..]));
        assert_eq!(Value::from("hi").as_u64(), None);
    }

    #[test]
    fn address_encoding_roundtrip() {
        let cases = [
            Address::Process(ProcessId::new(SiteId(0), 0)),
            Address::Process(ProcessId::new(SiteId(65535), 12345)),
            Address::Process(ProcessId {
                site: SiteId(7),
                local: 3,
                incarnation: 42,
            }),
            Address::Group(GroupId(0)),
            Address::Group(GroupId(0x7FFF_FFFF_FFFF_FFFF)),
        ];
        for addr in cases {
            assert_eq!(decode_address(encode_address(&addr)), addr, "{addr:?}");
        }
    }

    #[test]
    fn payload_len_reflects_size() {
        assert_eq!(Value::from("abcd").payload_len(), 4);
        assert_eq!(Value::from(vec![0u8; 100]).payload_len(), 100);
        assert_eq!(Value::from(3u64).payload_len(), 8);
        assert_eq!(
            Value::AddrList(vec![Address::Group(GroupId(1)); 3]).payload_len(),
            24
        );
    }

    #[test]
    fn type_names() {
        assert_eq!(Value::from(1u64).type_name(), "u64");
        assert_eq!(Value::from("x").type_name(), "str");
        assert_eq!(Value::Msg(Box::new(Message::new())).type_name(), "message");
    }
}
