//! A compact binary codec for [`Message`].
//!
//! The codec is self-contained (no external schema), length-prefixed, and versioned with a
//! single magic byte.  It is used by the file-backed stable store, by the state-transfer tool
//! when shipping large blocks over the simulated TCP channel, and by tests that need to check
//! the wire size model of [`Message::encoded_len`] is honest.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use vsync_util::{Result, VsError};

use crate::message::{Field, Message};
use crate::value::{decode_address, encode_address, Value};

const MAGIC: u8 = 0xA5;

// Value type tags.
const TAG_BOOL: u8 = 1;
const TAG_I64: u8 = 2;
const TAG_U64: u8 = 3;
const TAG_F64: u8 = 4;
const TAG_STR: u8 = 5;
const TAG_BYTES: u8 = 6;
const TAG_ADDR: u8 = 7;
const TAG_ADDR_LIST: u8 = 8;
const TAG_U64_LIST: u8 = 9;
const TAG_MSG: u8 = 10;

/// Encodes a message to bytes.
pub fn encode(msg: &Message) -> Bytes {
    let mut buf = BytesMut::with_capacity(msg.encoded_len() + 16);
    buf.put_u8(MAGIC);
    encode_into(msg, &mut buf);
    buf.freeze()
}

fn encode_into(msg: &Message, buf: &mut BytesMut) {
    buf.put_u32(msg.field_count() as u32);
    for field in msg.iter() {
        encode_field(field, buf);
    }
}

fn encode_field(field: &Field, buf: &mut BytesMut) {
    buf.put_u16(field.name.len() as u16);
    buf.put_slice(field.name.as_bytes());
    encode_value(&field.value, buf);
}

fn encode_value(value: &Value, buf: &mut BytesMut) {
    match value {
        Value::Bool(b) => {
            buf.put_u8(TAG_BOOL);
            buf.put_u8(u8::from(*b));
        }
        Value::I64(v) => {
            buf.put_u8(TAG_I64);
            buf.put_i64(*v);
        }
        Value::U64(v) => {
            buf.put_u8(TAG_U64);
            buf.put_u64(*v);
        }
        Value::F64(v) => {
            buf.put_u8(TAG_F64);
            buf.put_f64(*v);
        }
        Value::Str(s) => {
            buf.put_u8(TAG_STR);
            buf.put_u32(s.len() as u32);
            buf.put_slice(s.as_bytes());
        }
        Value::Bytes(b) => {
            buf.put_u8(TAG_BYTES);
            buf.put_u32(b.len() as u32);
            buf.put_slice(b);
        }
        Value::Addr(a) => {
            buf.put_u8(TAG_ADDR);
            buf.put_u64(encode_address(a));
        }
        Value::AddrList(v) => {
            buf.put_u8(TAG_ADDR_LIST);
            buf.put_u32(v.len() as u32);
            for a in v {
                buf.put_u64(encode_address(a));
            }
        }
        Value::U64List(v) => {
            buf.put_u8(TAG_U64_LIST);
            buf.put_u32(v.len() as u32);
            for x in v {
                buf.put_u64(*x);
            }
        }
        Value::Msg(m) => {
            buf.put_u8(TAG_MSG);
            encode_into(m, buf);
        }
    }
}

/// Decodes a message from bytes produced by [`encode`].
pub fn decode(bytes: &[u8]) -> Result<Message> {
    let mut buf = bytes;
    if buf.remaining() < 1 {
        return Err(VsError::CodecError("empty buffer".into()));
    }
    let magic = buf.get_u8();
    if magic != MAGIC {
        return Err(VsError::CodecError(format!(
            "bad magic byte 0x{magic:02x}, expected 0x{MAGIC:02x}"
        )));
    }
    let msg = decode_message(&mut buf)?;
    if buf.has_remaining() {
        return Err(VsError::CodecError(format!(
            "{} trailing bytes after message",
            buf.remaining()
        )));
    }
    Ok(msg)
}

fn need(buf: &&[u8], n: usize, what: &str) -> Result<()> {
    if buf.remaining() < n {
        Err(VsError::CodecError(format!(
            "truncated message: need {n} bytes for {what}, have {}",
            buf.remaining()
        )))
    } else {
        Ok(())
    }
}

fn decode_message(buf: &mut &[u8]) -> Result<Message> {
    need(buf, 4, "field count")?;
    let count = buf.get_u32() as usize;
    // Sanity bound: a field needs at least 4 bytes, so `count` cannot exceed what remains.
    if count > buf.remaining() {
        return Err(VsError::CodecError(format!(
            "implausible field count {count} with {} bytes remaining",
            buf.remaining()
        )));
    }
    let mut msg = Message::new();
    for _ in 0..count {
        let (name, value) = decode_field(buf)?;
        msg.set(&name, value);
    }
    Ok(msg)
}

fn decode_field(buf: &mut &[u8]) -> Result<(String, Value)> {
    need(buf, 2, "field name length")?;
    let name_len = buf.get_u16() as usize;
    need(buf, name_len, "field name")?;
    let name = String::from_utf8(buf[..name_len].to_vec())
        .map_err(|e| VsError::CodecError(format!("field name is not UTF-8: {e}")))?;
    buf.advance(name_len);
    let value = decode_value(buf)?;
    Ok((name, value))
}

fn decode_value(buf: &mut &[u8]) -> Result<Value> {
    need(buf, 1, "value tag")?;
    let tag = buf.get_u8();
    let value = match tag {
        TAG_BOOL => {
            need(buf, 1, "bool")?;
            Value::Bool(buf.get_u8() != 0)
        }
        TAG_I64 => {
            need(buf, 8, "i64")?;
            Value::I64(buf.get_i64())
        }
        TAG_U64 => {
            need(buf, 8, "u64")?;
            Value::U64(buf.get_u64())
        }
        TAG_F64 => {
            need(buf, 8, "f64")?;
            Value::F64(buf.get_f64())
        }
        TAG_STR => {
            need(buf, 4, "string length")?;
            let len = buf.get_u32() as usize;
            need(buf, len, "string body")?;
            let s = String::from_utf8(buf[..len].to_vec())
                .map_err(|e| VsError::CodecError(format!("string is not UTF-8: {e}")))?;
            buf.advance(len);
            Value::Str(s)
        }
        TAG_BYTES => {
            need(buf, 4, "bytes length")?;
            let len = buf.get_u32() as usize;
            need(buf, len, "bytes body")?;
            let b = buf[..len].to_vec();
            buf.advance(len);
            Value::Bytes(b)
        }
        TAG_ADDR => {
            need(buf, 8, "address")?;
            Value::Addr(decode_address(buf.get_u64()))
        }
        TAG_ADDR_LIST => {
            need(buf, 4, "address list length")?;
            let len = buf.get_u32() as usize;
            need(buf, len * 8, "address list body")?;
            let mut v = Vec::with_capacity(len);
            for _ in 0..len {
                v.push(decode_address(buf.get_u64()));
            }
            Value::AddrList(v)
        }
        TAG_U64_LIST => {
            need(buf, 4, "u64 list length")?;
            let len = buf.get_u32() as usize;
            need(buf, len * 8, "u64 list body")?;
            let mut v = Vec::with_capacity(len);
            for _ in 0..len {
                v.push(buf.get_u64());
            }
            Value::U64List(v)
        }
        TAG_MSG => Value::Msg(Box::new(decode_message(buf)?)),
        other => {
            return Err(VsError::CodecError(format!("unknown value tag {other}")));
        }
    };
    Ok(value)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vsync_util::{Address, GroupId, ProcessId, SiteId};

    fn sample() -> Message {
        Message::new()
            .with("flag", true)
            .with("count", 42u64)
            .with("delta", -7i64)
            .with("ratio", 2.5f64)
            .with("name", "emulsion-service")
            .with("blob", vec![1u8, 2, 3, 4, 5])
            .with("caller", ProcessId::new(SiteId(3), 9))
            .with(
                "members",
                vec![
                    Address::Process(ProcessId::new(SiteId(0), 1)),
                    Address::Group(GroupId(77)),
                ],
            )
            .with("vt", vec![1u64, 0, 3])
            .with("nested", Message::with_body("inner"))
    }

    #[test]
    fn roundtrip_preserves_all_fields() {
        let msg = sample();
        let bytes = encode(&msg);
        let back = decode(&bytes).expect("decode");
        assert_eq!(back, msg);
    }

    #[test]
    fn empty_message_roundtrip() {
        let msg = Message::new();
        assert_eq!(decode(&encode(&msg)).unwrap(), msg);
    }

    #[test]
    fn encoded_len_is_a_reasonable_size_model() {
        let msg = sample();
        let actual = encode(&msg).len();
        let model = msg.encoded_len();
        // The model need not be exact, but must be within a small constant factor so that
        // fragmentation decisions in the simulator are realistic.
        assert!(model >= actual / 2, "model {model} actual {actual}");
        assert!(model <= actual * 2, "model {model} actual {actual}");
    }

    #[test]
    fn rejects_bad_magic() {
        let mut bytes = encode(&sample()).to_vec();
        bytes[0] = 0x00;
        assert!(matches!(decode(&bytes), Err(VsError::CodecError(_))));
    }

    #[test]
    fn rejects_truncation_everywhere() {
        let bytes = encode(&sample()).to_vec();
        for cut in 1..bytes.len() {
            let res = decode(&bytes[..cut]);
            assert!(res.is_err(), "decode of {cut}-byte prefix should fail");
        }
    }

    #[test]
    fn rejects_trailing_garbage() {
        let mut bytes = encode(&sample()).to_vec();
        bytes.push(0xFF);
        assert!(decode(&bytes).is_err());
    }

    #[test]
    fn rejects_unknown_tag() {
        // Hand-craft: magic, 1 field, name "x", bogus tag 200.
        let mut buf = BytesMut::new();
        buf.put_u8(MAGIC);
        buf.put_u32(1);
        buf.put_u16(1);
        buf.put_slice(b"x");
        buf.put_u8(200);
        assert!(decode(&buf).is_err());
    }
}
