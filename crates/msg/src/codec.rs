//! A compact binary codec for [`Message`].
//!
//! The codec is self-contained (no external schema), length-prefixed, and versioned with a
//! single magic byte.  It is used by the file-backed stable store, by the state-transfer tool
//! when shipping large blocks over the simulated TCP channel, and by tests that need to check
//! the wire size model of [`Message::encoded_len`] is honest.
//!
//! Two decode paths are provided:
//!
//! * [`decode`] — the owned path: allocates a [`Message`] whose strings and byte vectors are
//!   independent of the input buffer.  Strings are allocated exactly once (the field table is
//!   populated by moving the freshly decoded name, not re-cloning it).
//! * [`decode_view`] — the borrowing path: returns a [`MessageView`] whose `Str`/`Bytes`
//!   values are slices of the input and whose list values stay packed in wire form until
//!   iterated.  Use it when a caller only needs to *inspect* a stored message (filter by a
//!   field, count entries) without materialising the whole thing.
//!
//! Encode buffers are pre-sized from [`wire_len`], which is exact by construction, and
//! [`encode_to`] lets hot callers (the file-backed stable store) reuse one `BytesMut`
//! scratch buffer across messages instead of allocating per call.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use vsync_util::{Address, Result, VsError};

use crate::message::{Field, Message};
use crate::name::FieldName;
use crate::value::{decode_address, encode_address, Value};

const MAGIC: u8 = 0xA5;

/// Minimum wire size of one encoded field: a 2-byte name length (empty name) plus the
/// smallest value encoding (1-byte tag + 1-byte `Bool` body).  Bounds how many fields a
/// buffer of a given size can possibly hold.
const MIN_FIELD_WIRE_LEN: usize = 4;

/// Fields reserved eagerly from a decoded count.  Counts beyond this grow the field table
/// as fields actually decode, so a corrupt header cannot amplify a small input into a huge
/// up-front allocation (an in-memory field costs ~18× its minimum wire size).
const MAX_EAGER_FIELDS: usize = 1024;

/// Maximum `Value::Msg` nesting the decoders accept.  Decoding recurses per level, so
/// without a bound a small crafted buffer of nested message headers overflows the stack
/// and aborts; toolkit messages nest at most a handful of levels.
const MAX_NESTING_DEPTH: usize = 32;

// Value type tags.
const TAG_BOOL: u8 = 1;
const TAG_I64: u8 = 2;
const TAG_U64: u8 = 3;
const TAG_F64: u8 = 4;
const TAG_STR: u8 = 5;
const TAG_BYTES: u8 = 6;
const TAG_ADDR: u8 = 7;
const TAG_ADDR_LIST: u8 = 8;
const TAG_U64_LIST: u8 = 9;
const TAG_MSG: u8 = 10;

/// Exact number of bytes [`encode`] produces for `msg` (unlike [`Message::encoded_len`],
/// which is the simulator's *cost model* and only approximate).
pub fn wire_len(msg: &Message) -> usize {
    1 + message_wire_len(msg)
}

fn message_wire_len(msg: &Message) -> usize {
    4 + msg
        .iter()
        .map(|f| 2 + f.name.len() + value_wire_len(&f.value))
        .sum::<usize>()
}

fn value_wire_len(value: &Value) -> usize {
    1 + match value {
        Value::Bool(_) => 1,
        Value::I64(_) | Value::U64(_) | Value::F64(_) | Value::Addr(_) => 8,
        Value::Str(s) => 4 + s.len(),
        Value::Bytes(b) => 4 + b.len(),
        Value::AddrList(v) => 4 + 8 * v.len(),
        Value::U64List(v) => 4 + 8 * v.len(),
        Value::Msg(m) => message_wire_len(m),
    }
}

/// Encodes a message to bytes.  The output buffer is sized exactly, so encoding performs a
/// single allocation and no growth copies.
pub fn encode(msg: &Message) -> Bytes {
    let mut buf = BytesMut::with_capacity(wire_len(msg));
    buf.put_u8(MAGIC);
    encode_into(msg, &mut buf);
    buf.freeze()
}

/// Encodes a message into a caller-owned scratch buffer (cleared first), so repeated encodes
/// — e.g. the stable store appending a log — reuse one allocation instead of one per call.
pub fn encode_to(msg: &Message, buf: &mut BytesMut) {
    buf.clear();
    buf.reserve(wire_len(msg));
    buf.put_u8(MAGIC);
    encode_into(msg, buf);
}

fn encode_into(msg: &Message, buf: &mut BytesMut) {
    buf.put_u32(msg.field_count() as u32);
    for field in msg.iter() {
        encode_field(field, buf);
    }
}

fn encode_field(field: &Field, buf: &mut BytesMut) {
    buf.put_u16(field.name.len() as u16);
    buf.put_slice(field.name.as_bytes());
    encode_value(&field.value, buf);
}

fn encode_value(value: &Value, buf: &mut BytesMut) {
    match value {
        Value::Bool(b) => {
            buf.put_u8(TAG_BOOL);
            buf.put_u8(u8::from(*b));
        }
        Value::I64(v) => {
            buf.put_u8(TAG_I64);
            buf.put_i64(*v);
        }
        Value::U64(v) => {
            buf.put_u8(TAG_U64);
            buf.put_u64(*v);
        }
        Value::F64(v) => {
            buf.put_u8(TAG_F64);
            buf.put_f64(*v);
        }
        Value::Str(s) => {
            buf.put_u8(TAG_STR);
            buf.put_u32(s.len() as u32);
            buf.put_slice(s.as_bytes());
        }
        Value::Bytes(b) => {
            buf.put_u8(TAG_BYTES);
            buf.put_u32(b.len() as u32);
            buf.put_slice(b);
        }
        Value::Addr(a) => {
            buf.put_u8(TAG_ADDR);
            buf.put_u64(encode_address(a));
        }
        Value::AddrList(v) => {
            buf.put_u8(TAG_ADDR_LIST);
            buf.put_u32(v.len() as u32);
            for a in v {
                buf.put_u64(encode_address(a));
            }
        }
        Value::U64List(v) => {
            buf.put_u8(TAG_U64_LIST);
            buf.put_u32(v.len() as u32);
            for x in v {
                buf.put_u64(*x);
            }
        }
        Value::Msg(m) => {
            buf.put_u8(TAG_MSG);
            encode_into(m, buf);
        }
    }
}

/// Decodes a message from bytes produced by [`encode`].  Byte-string values are copied out
/// of the input; see [`decode_shared`] for the zero-copy variant over a shared buffer.
pub fn decode(bytes: &[u8]) -> Result<Message> {
    decode_inner(bytes, None)
}

/// Decodes a message from a shared [`Bytes`] buffer produced by [`encode`].
///
/// Identical validation and result as [`decode`], except `Bytes` *values* alias the input
/// buffer (via [`Bytes::slice`]) instead of being copied, so decoding a checkpoint or a
/// state-transfer block whose payload is one big byte string costs O(fields), not O(bytes).
/// The aliased slices keep the underlying allocation alive for as long as the decoded
/// message does.
pub fn decode_shared(bytes: &Bytes) -> Result<Message> {
    decode_inner(bytes, Some(bytes))
}

/// Validates and strips the envelope's magic byte.  Shared by the owned and borrowing
/// decoders so the two paths cannot diverge on envelope rules.
fn strip_magic(buf: &mut &[u8]) -> Result<()> {
    if buf.remaining() < 1 {
        return Err(VsError::CodecError("empty buffer".into()));
    }
    let magic = buf.get_u8();
    if magic != MAGIC {
        return Err(VsError::CodecError(format!(
            "bad magic byte 0x{magic:02x}, expected 0x{MAGIC:02x}"
        )));
    }
    Ok(())
}

/// Rejects bytes left over after a fully decoded message (shared envelope rule).
fn check_no_trailing(buf: &[u8]) -> Result<()> {
    if buf.has_remaining() {
        return Err(VsError::CodecError(format!(
            "{} trailing bytes after message",
            buf.remaining()
        )));
    }
    Ok(())
}

fn decode_inner(bytes: &[u8], src: Option<&Bytes>) -> Result<Message> {
    let mut buf = bytes;
    strip_magic(&mut buf)?;
    let msg = decode_message(&mut buf, src, 0)?;
    check_no_trailing(buf)?;
    Ok(msg)
}

fn need(buf: &&[u8], n: usize, what: &str) -> Result<()> {
    if buf.remaining() < n {
        Err(VsError::CodecError(format!(
            "truncated message: need {n} bytes for {what}, have {}",
            buf.remaining()
        )))
    } else {
        Ok(())
    }
}

fn decode_message(buf: &mut &[u8], src: Option<&Bytes>, depth: usize) -> Result<Message> {
    if depth > MAX_NESTING_DEPTH {
        return Err(VsError::CodecError(format!(
            "message nesting exceeds {MAX_NESTING_DEPTH} levels"
        )));
    }
    need(buf, 4, "field count")?;
    let count = buf.get_u32() as usize;
    if count > buf.remaining() / MIN_FIELD_WIRE_LEN {
        return Err(VsError::CodecError(format!(
            "implausible field count {count} with {} bytes remaining",
            buf.remaining()
        )));
    }
    let mut msg = Message::new();
    msg.reserve_fields(count.min(MAX_EAGER_FIELDS));
    for _ in 0..count {
        let (name, value) = decode_field(buf, src, depth)?;
        // Moves the just-decoded name into the field table (no second allocation); replaces
        // on duplicate names like `Message::set` would.
        msg.set_owned(name, value);
    }
    Ok(msg)
}

fn decode_field(buf: &mut &[u8], src: Option<&Bytes>, depth: usize) -> Result<(FieldName, Value)> {
    need(buf, 2, "field name length")?;
    let name_len = buf.get_u16() as usize;
    need(buf, name_len, "field name")?;
    let name = std::str::from_utf8(&buf[..name_len])
        .map_err(|e| VsError::CodecError(format!("field name is not UTF-8: {e}")))?;
    // Short names (all system fields and typical application fields) build inline with no
    // heap allocation.
    let name = FieldName::from(name);
    buf.advance(name_len);
    let value = decode_value(buf, src, depth)?;
    Ok((name, value))
}

/// Re-borrows `&buf[..len]` as a zero-copy slice of `src` when decoding over a shared
/// buffer, falling back to a copy otherwise.  `buf` must be a sub-slice of `src`.
fn shared_or_copied(buf: &[u8], len: usize, src: Option<&Bytes>) -> Bytes {
    match src {
        Some(src) => {
            let offset = buf.as_ptr() as usize - src.as_ptr() as usize;
            src.slice(offset..offset + len)
        }
        None => Bytes::copy_from_slice(&buf[..len]),
    }
}

fn decode_value(buf: &mut &[u8], src: Option<&Bytes>, depth: usize) -> Result<Value> {
    need(buf, 1, "value tag")?;
    let tag = buf.get_u8();
    let value = match tag {
        TAG_BOOL => {
            need(buf, 1, "bool")?;
            Value::Bool(buf.get_u8() != 0)
        }
        TAG_I64 => {
            need(buf, 8, "i64")?;
            Value::I64(buf.get_i64())
        }
        TAG_U64 => {
            need(buf, 8, "u64")?;
            Value::U64(buf.get_u64())
        }
        TAG_F64 => {
            need(buf, 8, "f64")?;
            Value::F64(buf.get_f64())
        }
        TAG_STR => {
            need(buf, 4, "string length")?;
            let len = buf.get_u32() as usize;
            need(buf, len, "string body")?;
            let s = std::str::from_utf8(&buf[..len])
                .map_err(|e| VsError::CodecError(format!("string is not UTF-8: {e}")))?
                .to_owned();
            buf.advance(len);
            Value::Str(s)
        }
        TAG_BYTES => {
            need(buf, 4, "bytes length")?;
            let len = buf.get_u32() as usize;
            need(buf, len, "bytes body")?;
            let b = shared_or_copied(buf, len, src);
            buf.advance(len);
            Value::Bytes(b)
        }
        TAG_ADDR => {
            need(buf, 8, "address")?;
            Value::Addr(decode_address(buf.get_u64()))
        }
        TAG_ADDR_LIST => {
            need(buf, 4, "address list length")?;
            let len = buf.get_u32() as usize;
            need(buf, len * 8, "address list body")?;
            // Exact-size collect: one allocation, no per-push capacity checks.
            let v: Vec<_> = buf[..len * 8]
                .chunks_exact(8)
                .map(|c| decode_address(u64::from_be_bytes(c.try_into().expect("8-byte chunk"))))
                .collect();
            buf.advance(len * 8);
            Value::AddrList(v)
        }
        TAG_U64_LIST => {
            need(buf, 4, "u64 list length")?;
            let len = buf.get_u32() as usize;
            need(buf, len * 8, "u64 list body")?;
            let v: Vec<u64> = buf[..len * 8]
                .chunks_exact(8)
                .map(|c| u64::from_be_bytes(c.try_into().expect("8-byte chunk")))
                .collect();
            buf.advance(len * 8);
            Value::U64List(v)
        }
        TAG_MSG => Value::Msg(Box::new(decode_message(buf, src, depth + 1)?)),
        other => {
            return Err(VsError::CodecError(format!("unknown value tag {other}")));
        }
    };
    Ok(value)
}

// --- Borrowing decode --------------------------------------------------------------------

/// A list of `u64`s still packed in big-endian wire form, borrowed from the input buffer.
/// Elements are decoded on access, so a caller that never touches the list pays nothing.
#[derive(Clone, Copy, Debug)]
pub struct U64sView<'a> {
    raw: &'a [u8],
}

impl<'a> U64sView<'a> {
    /// Number of elements.
    pub fn len(&self) -> usize {
        self.raw.len() / 8
    }

    /// True if the list is empty.
    pub fn is_empty(&self) -> bool {
        self.raw.is_empty()
    }

    /// Element `i`, if in bounds.
    pub fn get(&self, i: usize) -> Option<u64> {
        let chunk = self.raw.get(i * 8..i * 8 + 8)?;
        Some(u64::from_be_bytes(chunk.try_into().expect("8-byte slice")))
    }

    /// Iterates the decoded elements.
    pub fn iter(&self) -> impl Iterator<Item = u64> + 'a {
        self.raw
            .chunks_exact(8)
            .map(|c| u64::from_be_bytes(c.try_into().expect("8-byte chunk")))
    }

    /// Copies the list out into an owned vector.
    pub fn to_vec(&self) -> Vec<u64> {
        self.iter().collect()
    }
}

/// A list of addresses still packed in wire form, borrowed from the input buffer.
#[derive(Clone, Copy, Debug)]
pub struct AddrsView<'a> {
    raw: U64sView<'a>,
}

impl<'a> AddrsView<'a> {
    /// Number of addresses.
    pub fn len(&self) -> usize {
        self.raw.len()
    }

    /// True if the list is empty.
    pub fn is_empty(&self) -> bool {
        self.raw.is_empty()
    }

    /// Address `i`, if in bounds.
    pub fn get(&self, i: usize) -> Option<Address> {
        self.raw.get(i).map(decode_address)
    }

    /// Iterates the decoded addresses.
    pub fn iter(&self) -> impl Iterator<Item = Address> + 'a {
        self.raw.iter().map(decode_address)
    }

    /// Copies the list out into an owned vector.
    pub fn to_vec(&self) -> Vec<Address> {
        self.iter().collect()
    }
}

/// A field value borrowed from an encoded buffer: strings and byte strings are slices of the
/// input, lists stay packed until iterated, and only nested structure is heap-allocated.
#[derive(Clone, Debug)]
pub enum ValueView<'a> {
    /// Boolean flag.
    Bool(bool),
    /// Signed 64-bit integer.
    I64(i64),
    /// Unsigned 64-bit integer.
    U64(u64),
    /// IEEE-754 double.
    F64(f64),
    /// UTF-8 string, borrowed.
    Str(&'a str),
    /// Raw bytes, borrowed.
    Bytes(&'a [u8]),
    /// A process or group address.
    Addr(Address),
    /// A list of addresses, packed.
    AddrList(AddrsView<'a>),
    /// A vector of unsigned integers, packed.
    U64List(U64sView<'a>),
    /// A nested message.
    Msg(Box<MessageView<'a>>),
}

impl ValueView<'_> {
    /// Returns the unsigned integer if this is a `U64`.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            ValueView::U64(v) => Some(*v),
            _ => None,
        }
    }

    /// Returns the string slice if this is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            ValueView::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the byte slice if this is a `Bytes`.
    pub fn as_bytes(&self) -> Option<&[u8]> {
        match self {
            ValueView::Bytes(b) => Some(b),
            _ => None,
        }
    }

    /// Copies the view out into an owned [`Value`].
    pub fn to_value(&self) -> Value {
        match self {
            ValueView::Bool(v) => Value::Bool(*v),
            ValueView::I64(v) => Value::I64(*v),
            ValueView::U64(v) => Value::U64(*v),
            ValueView::F64(v) => Value::F64(*v),
            ValueView::Str(s) => Value::Str((*s).to_owned()),
            ValueView::Bytes(b) => Value::Bytes(Bytes::copy_from_slice(b)),
            ValueView::Addr(a) => Value::Addr(*a),
            ValueView::AddrList(v) => Value::AddrList(v.to_vec()),
            ValueView::U64List(v) => Value::U64List(v.to_vec()),
            ValueView::Msg(m) => Value::Msg(Box::new(m.to_message())),
        }
    }
}

/// One decoded field borrowing from the input buffer.
#[derive(Clone, Debug)]
pub struct FieldView<'a> {
    /// Field name, borrowed.
    pub name: &'a str,
    /// Field value, borrowed.
    pub value: ValueView<'a>,
}

/// A message decoded without copying its payload out of the input buffer.
///
/// The view validates exactly as much as [`decode`] does (magic byte, UTF-8, bounds,
/// trailing garbage); [`MessageView::to_message`] is guaranteed to produce the same
/// [`Message`] the owned decoder would.
#[derive(Clone, Debug, Default)]
pub struct MessageView<'a> {
    fields: Vec<FieldView<'a>>,
}

impl<'a> MessageView<'a> {
    /// Number of fields (counting duplicates in the raw encoding separately).
    pub fn field_count(&self) -> usize {
        self.fields.len()
    }

    /// True if the message has no fields.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// Iterates over the fields in wire order.
    pub fn iter(&self) -> impl Iterator<Item = &FieldView<'a>> {
        self.fields.iter()
    }

    /// The value of the *last* field named `name`, mirroring the replace-on-duplicate
    /// semantics of the owned decoder.
    pub fn get(&self, name: &str) -> Option<&ValueView<'a>> {
        self.fields
            .iter()
            .rev()
            .find(|f| f.name == name)
            .map(|f| &f.value)
    }

    /// Typed accessor: u64.
    pub fn get_u64(&self, name: &str) -> Option<u64> {
        self.get(name).and_then(ValueView::as_u64)
    }

    /// Typed accessor: string slice.
    pub fn get_str(&self, name: &str) -> Option<&str> {
        self.get(name).and_then(ValueView::as_str)
    }

    /// Typed accessor: byte slice.
    pub fn get_bytes(&self, name: &str) -> Option<&[u8]> {
        self.get(name).and_then(ValueView::as_bytes)
    }

    /// Copies the view out into an owned [`Message`] (identical to what [`decode`] returns
    /// for the same input).
    pub fn to_message(&self) -> Message {
        let mut msg = Message::new();
        msg.reserve_fields(self.fields.len());
        for f in &self.fields {
            msg.set_owned(FieldName::from(f.name), f.value.to_value());
        }
        msg
    }
}

/// Decodes a message *view* from bytes produced by [`encode`], borrowing string, byte and
/// list payloads from the input instead of copying them.
pub fn decode_view(bytes: &[u8]) -> Result<MessageView<'_>> {
    let mut buf = bytes;
    strip_magic(&mut buf)?;
    let msg = decode_message_view(&mut buf, 0)?;
    check_no_trailing(buf)?;
    Ok(msg)
}

fn decode_message_view<'a>(buf: &mut &'a [u8], depth: usize) -> Result<MessageView<'a>> {
    if depth > MAX_NESTING_DEPTH {
        return Err(VsError::CodecError(format!(
            "message nesting exceeds {MAX_NESTING_DEPTH} levels"
        )));
    }
    need(buf, 4, "field count")?;
    let count = buf.get_u32() as usize;
    if count > buf.remaining() / MIN_FIELD_WIRE_LEN {
        return Err(VsError::CodecError(format!(
            "implausible field count {count} with {} bytes remaining",
            buf.remaining()
        )));
    }
    let mut fields = Vec::with_capacity(count.min(MAX_EAGER_FIELDS));
    for _ in 0..count {
        need(buf, 2, "field name length")?;
        let name_len = buf.get_u16() as usize;
        need(buf, name_len, "field name")?;
        let name = std::str::from_utf8(&buf[..name_len])
            .map_err(|e| VsError::CodecError(format!("field name is not UTF-8: {e}")))?;
        buf.advance(name_len);
        let value = decode_value_view(buf, depth)?;
        fields.push(FieldView { name, value });
    }
    Ok(MessageView { fields })
}

fn decode_value_view<'a>(buf: &mut &'a [u8], depth: usize) -> Result<ValueView<'a>> {
    need(buf, 1, "value tag")?;
    let tag = buf.get_u8();
    let value = match tag {
        TAG_BOOL => {
            need(buf, 1, "bool")?;
            ValueView::Bool(buf.get_u8() != 0)
        }
        TAG_I64 => {
            need(buf, 8, "i64")?;
            ValueView::I64(buf.get_i64())
        }
        TAG_U64 => {
            need(buf, 8, "u64")?;
            ValueView::U64(buf.get_u64())
        }
        TAG_F64 => {
            need(buf, 8, "f64")?;
            ValueView::F64(buf.get_f64())
        }
        TAG_STR => {
            need(buf, 4, "string length")?;
            let len = buf.get_u32() as usize;
            need(buf, len, "string body")?;
            let s = std::str::from_utf8(&buf[..len])
                .map_err(|e| VsError::CodecError(format!("string is not UTF-8: {e}")))?;
            buf.advance(len);
            ValueView::Str(s)
        }
        TAG_BYTES => {
            need(buf, 4, "bytes length")?;
            let len = buf.get_u32() as usize;
            need(buf, len, "bytes body")?;
            let b = &buf[..len];
            buf.advance(len);
            ValueView::Bytes(b)
        }
        TAG_ADDR => {
            need(buf, 8, "address")?;
            ValueView::Addr(decode_address(buf.get_u64()))
        }
        TAG_ADDR_LIST => {
            need(buf, 4, "address list length")?;
            let len = buf.get_u32() as usize;
            need(buf, len * 8, "address list body")?;
            let raw = &buf[..len * 8];
            buf.advance(len * 8);
            ValueView::AddrList(AddrsView {
                raw: U64sView { raw },
            })
        }
        TAG_U64_LIST => {
            need(buf, 4, "u64 list length")?;
            let len = buf.get_u32() as usize;
            need(buf, len * 8, "u64 list body")?;
            let raw = &buf[..len * 8];
            buf.advance(len * 8);
            ValueView::U64List(U64sView { raw })
        }
        TAG_MSG => ValueView::Msg(Box::new(decode_message_view(buf, depth + 1)?)),
        other => {
            return Err(VsError::CodecError(format!("unknown value tag {other}")));
        }
    };
    Ok(value)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vsync_util::{Address, GroupId, ProcessId, SiteId};

    fn sample() -> Message {
        Message::new()
            .with("flag", true)
            .with("count", 42u64)
            .with("delta", -7i64)
            .with("ratio", 2.5f64)
            .with("name", "emulsion-service")
            .with("blob", vec![1u8, 2, 3, 4, 5])
            .with("caller", ProcessId::new(SiteId(3), 9))
            .with(
                "members",
                vec![
                    Address::Process(ProcessId::new(SiteId(0), 1)),
                    Address::Group(GroupId(77)),
                ],
            )
            .with("vt", vec![1u64, 0, 3])
            .with("nested", Message::with_body("inner"))
    }

    #[test]
    fn roundtrip_preserves_all_fields() {
        let msg = sample();
        let bytes = encode(&msg);
        let back = decode(&bytes).expect("decode");
        assert_eq!(back, msg);
    }

    #[test]
    fn empty_message_roundtrip() {
        let msg = Message::new();
        assert_eq!(decode(&encode(&msg)).unwrap(), msg);
    }

    #[test]
    fn encoded_len_is_a_reasonable_size_model() {
        let msg = sample();
        let actual = encode(&msg).len();
        let model = msg.encoded_len();
        // The model need not be exact, but must be within a small constant factor so that
        // fragmentation decisions in the simulator are realistic.
        assert!(model >= actual / 2, "model {model} actual {actual}");
        assert!(model <= actual * 2, "model {model} actual {actual}");
    }

    #[test]
    fn wire_len_is_exact() {
        for msg in [
            Message::new(),
            sample(),
            Message::with_body(vec![0u8; 4096]),
        ] {
            assert_eq!(encode(&msg).len(), wire_len(&msg));
        }
    }

    #[test]
    fn encode_to_reuses_the_scratch_buffer() {
        let mut scratch = BytesMut::with_capacity(0);
        let msg = sample();
        encode_to(&msg, &mut scratch);
        assert_eq!(decode(&scratch).unwrap(), msg);
        // A second, smaller message reuses the buffer and leaves no stale tail behind.
        let small = Message::with_body(1u64);
        encode_to(&small, &mut scratch);
        assert_eq!(scratch.len(), wire_len(&small));
        assert_eq!(decode(&scratch).unwrap(), small);
    }

    #[test]
    fn shared_decode_matches_owned_decode_and_aliases_payloads() {
        let msg = sample();
        let bytes = encode(&msg);
        let shared = decode_shared(&bytes).expect("shared decode");
        assert_eq!(shared, msg, "zero-copy decode is observably identical");
        // The blob value aliases the encoded buffer rather than copying it.
        let blob = shared.get_bytes("blob").expect("blob field");
        let base = bytes.as_ptr() as usize;
        let ptr = blob.as_ptr() as usize;
        assert!(ptr >= base && ptr < base + bytes.len(), "aliases input");
        // The decoded message stays valid after the caller drops its handle.
        drop(bytes);
        assert_eq!(shared.get_bytes("blob"), Some(&[1u8, 2, 3, 4, 5][..]));
    }

    #[test]
    fn shared_decode_rejects_what_owned_decode_rejects() {
        let bytes = encode(&sample());
        for cut in 1..bytes.len() {
            let prefix = Bytes::copy_from_slice(&bytes[..cut]);
            assert!(
                decode_shared(&prefix).is_err(),
                "shared decode of {cut}-byte prefix should fail"
            );
        }
    }

    #[test]
    fn view_decode_matches_owned_decode() {
        let msg = sample();
        let bytes = encode(&msg);
        let view = decode_view(&bytes).expect("view decode");
        assert_eq!(view.to_message(), msg);
        assert_eq!(view.field_count(), msg.field_count());
    }

    #[test]
    fn view_borrows_without_copying_payloads() {
        let msg = sample();
        let bytes = encode(&msg);
        let view = decode_view(&bytes).expect("view decode");
        let blob = view.get_bytes("blob").expect("blob field");
        assert_eq!(blob, &[1u8, 2, 3, 4, 5]);
        // The slice points into the encoded buffer, not a copy.
        let base = bytes.as_ptr() as usize;
        let ptr = blob.as_ptr() as usize;
        assert!(ptr >= base && ptr < base + bytes.len());
        assert_eq!(view.get_str("name"), Some("emulsion-service"));
        assert_eq!(view.get_u64("count"), Some(42));
    }

    #[test]
    fn view_lists_decode_lazily_and_correctly() {
        let msg = sample();
        let bytes = encode(&msg);
        let view = decode_view(&bytes).expect("view decode");
        let Some(ValueView::U64List(vt)) = view.get("vt") else {
            panic!("vt is a u64 list");
        };
        assert_eq!(vt.len(), 3);
        assert_eq!(vt.get(0), Some(1));
        assert_eq!(vt.get(3), None);
        assert_eq!(vt.to_vec(), vec![1, 0, 3]);
        let Some(ValueView::AddrList(members)) = view.get("members") else {
            panic!("members is an addr list");
        };
        assert_eq!(members.len(), 2);
        assert_eq!(
            members.get(1),
            Some(Address::Group(GroupId(77))),
            "addresses unpack on access"
        );
    }

    #[test]
    fn view_rejects_everything_the_owned_decoder_rejects() {
        let bytes = encode(&sample()).to_vec();
        for cut in 1..bytes.len() {
            assert!(
                decode_view(&bytes[..cut]).is_err(),
                "view decode of {cut}-byte prefix should fail"
            );
        }
        let mut bad_magic = bytes.clone();
        bad_magic[0] = 0;
        assert!(decode_view(&bad_magic).is_err());
        let mut trailing = bytes;
        trailing.push(0xFF);
        assert!(decode_view(&trailing).is_err());
    }

    #[test]
    fn duplicate_field_names_replace_in_both_paths() {
        // Hand-craft: magic, 2 fields both named "x" with different u64 values.
        let mut buf = BytesMut::new();
        buf.put_u8(MAGIC);
        buf.put_u32(2);
        for v in [1u64, 2u64] {
            buf.put_u16(1);
            buf.put_slice(b"x");
            buf.put_u8(TAG_U64);
            buf.put_u64(v);
        }
        let owned = decode(&buf).expect("owned decode");
        assert_eq!(owned.field_count(), 1, "duplicate replaces");
        assert_eq!(owned.get_u64("x"), Some(2));
        let view = decode_view(&buf).expect("view decode");
        assert_eq!(view.get_u64("x"), Some(2), "view reads the last duplicate");
        assert_eq!(view.to_message(), owned);
    }

    #[test]
    fn rejects_bad_magic() {
        let mut bytes = encode(&sample()).to_vec();
        bytes[0] = 0x00;
        assert!(matches!(decode(&bytes), Err(VsError::CodecError(_))));
    }

    #[test]
    fn rejects_truncation_everywhere() {
        let bytes = encode(&sample()).to_vec();
        for cut in 1..bytes.len() {
            let res = decode(&bytes[..cut]);
            assert!(res.is_err(), "decode of {cut}-byte prefix should fail");
        }
    }

    #[test]
    fn rejects_trailing_garbage() {
        let mut bytes = encode(&sample()).to_vec();
        bytes.push(0xFF);
        assert!(decode(&bytes).is_err());
    }

    #[test]
    fn rejects_implausible_field_count_without_large_allocation() {
        // Hand-craft: magic + a header claiming u32::MAX fields followed by 8 junk bytes.
        // Both decode paths must reject on the count bound (no field could be 0 bytes), and
        // must do so without reserving count-proportional memory first.
        let mut buf = BytesMut::new();
        buf.put_u8(MAGIC);
        buf.put_u32(u32::MAX);
        buf.put_slice(&[0u8; 8]);
        let err = decode(&buf).expect_err("owned decode rejects");
        assert!(err.to_string().contains("implausible field count"));
        assert!(decode_view(&buf).is_err(), "view decode rejects");
        // A count that fits the remaining bytes only if fields were < MIN_FIELD_WIRE_LEN
        // bytes each is equally implausible.
        let mut buf = BytesMut::new();
        buf.put_u8(MAGIC);
        buf.put_u32(5);
        buf.put_slice(&[0u8; 4 * 5 - 1]);
        assert!(decode(&buf).is_err());
        assert!(decode_view(&buf).is_err());
    }

    #[test]
    fn rejects_excessive_nesting_without_stack_overflow() {
        // A legal message nested to the limit round-trips...
        let mut msg = Message::with_body(0u64);
        for i in 0..MAX_NESTING_DEPTH {
            msg = Message::new().with("inner", msg).with("level", i as u64);
        }
        let bytes = encode(&msg);
        assert_eq!(decode(&bytes).unwrap(), msg);
        assert!(decode_view(&bytes).is_ok());
        // ...one level deeper is rejected with an error, not a stack overflow. Hand-craft
        // the headers so the test does not depend on Message being able to build it:
        // each level is one field (empty name, TAG_MSG) wrapping the next.
        let levels = MAX_NESTING_DEPTH + 2;
        let mut buf = BytesMut::new();
        buf.put_u8(MAGIC);
        for _ in 0..levels {
            buf.put_u32(1); // one field
            buf.put_u16(0); // empty name
            buf.put_u8(TAG_MSG);
        }
        buf.put_u32(0); // innermost message: zero fields
        let err = decode(&buf).expect_err("owned decode rejects deep nesting");
        assert!(err.to_string().contains("nesting"), "{err}");
        assert!(
            decode_view(&buf).is_err(),
            "view decode rejects deep nesting"
        );
    }

    #[test]
    fn rejects_unknown_tag() {
        // Hand-craft: magic, 1 field, name "x", bogus tag 200.
        let mut buf = BytesMut::new();
        buf.put_u8(MAGIC);
        buf.put_u32(1);
        buf.put_u16(1);
        buf.put_slice(b"x");
        buf.put_u8(200);
        assert!(decode(&buf).is_err());
    }
}
