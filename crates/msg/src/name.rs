//! Small-string-optimized field names.
//!
//! Field names in the toolkit are short — system fields (`@sender`, `@vt`, ...) and
//! application fields (`body`, `price`, `xfer-last`) are all well under 22 bytes — yet the
//! original representation heap-allocated a `String` per field on every decode and every
//! `Message::set`.  On the measured hot paths (codec decode, handler message building) those
//! allocations were the single largest cost.  [`FieldName`] stores names up to
//! [`FieldName::INLINE_CAP`] (30) bytes inline and only falls back to a heap `String`
//! beyond that, so the common case allocates nothing.
//!
//! The type dereferences to `str`, compares like a string, and keeps the no-unsafe policy of
//! the workspace: the inline buffer is re-validated as UTF-8 on access, which is a few
//! nanoseconds for these lengths and still far cheaper than an allocation.

use std::fmt;
use std::ops::Deref;

use serde::{Deserialize, Serialize};

/// A field name: inline up to 30 bytes, heap-allocated beyond.
#[derive(Clone, Serialize, Deserialize)]
pub struct FieldName(Repr);

// Derived so the `FieldName` derives keep compiling against real serde (the shim's derives
// are no-ops); the real wire format is `codec`, which never sees this repr.
#[derive(Clone, Serialize, Deserialize)]
enum Repr {
    Inline {
        len: u8,
        buf: [u8; FieldName::INLINE_CAP],
    },
    Heap(String),
}

impl FieldName {
    /// Maximum name length stored without allocating.  The enum rounds up to 32 bytes on
    /// 64-bit targets either way (a `String` variant plus a tag, aligned to 8), so the
    /// inline buffer uses all of it: 1 length byte + 30 payload bytes + 1 discriminant.
    pub const INLINE_CAP: usize = 30;

    /// The name as a string slice.
    pub fn as_str(&self) -> &str {
        match &self.0 {
            Repr::Inline { len, buf } => std::str::from_utf8(&buf[..*len as usize])
                .expect("inline field names are constructed from valid UTF-8"),
            Repr::Heap(s) => s,
        }
    }

    /// The name's bytes.  Unlike going through `Deref<str>`, this skips the inline-buffer
    /// UTF-8 revalidation, which matters to the codec's encode loop and name comparisons.
    pub fn as_bytes(&self) -> &[u8] {
        match &self.0 {
            Repr::Inline { len, buf } => &buf[..*len as usize],
            Repr::Heap(s) => s.as_bytes(),
        }
    }

    /// Byte length of the name (validation-free; shadows `str::len` via `Deref`).
    pub fn len(&self) -> usize {
        match &self.0 {
            Repr::Inline { len, .. } => *len as usize,
            Repr::Heap(s) => s.len(),
        }
    }

    /// True if the name is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Converts to an owned `String` (allocating only if inline).
    #[allow(clippy::inherent_to_string_shadow_display)]
    pub fn to_string(&self) -> String {
        self.as_str().to_owned()
    }
}

impl From<&str> for FieldName {
    fn from(s: &str) -> Self {
        if s.len() <= FieldName::INLINE_CAP {
            let mut buf = [0u8; FieldName::INLINE_CAP];
            buf[..s.len()].copy_from_slice(s.as_bytes());
            FieldName(Repr::Inline {
                len: s.len() as u8,
                buf,
            })
        } else {
            FieldName(Repr::Heap(s.to_owned()))
        }
    }
}

impl From<String> for FieldName {
    fn from(s: String) -> Self {
        if s.len() <= FieldName::INLINE_CAP {
            FieldName::from(s.as_str())
        } else {
            FieldName(Repr::Heap(s))
        }
    }
}

impl Deref for FieldName {
    type Target = str;
    fn deref(&self) -> &str {
        self.as_str()
    }
}

impl AsRef<str> for FieldName {
    fn as_ref(&self) -> &str {
        self.as_str()
    }
}

impl PartialEq for FieldName {
    fn eq(&self, other: &Self) -> bool {
        // Mixed representations (same text, different storage) still compare equal.
        self.as_bytes() == other.as_bytes()
    }
}

impl Eq for FieldName {}

impl PartialEq<str> for FieldName {
    fn eq(&self, other: &str) -> bool {
        // Byte equality coincides with str equality and needs no UTF-8 revalidation.
        self.as_bytes() == other.as_bytes()
    }
}

impl PartialEq<&str> for FieldName {
    fn eq(&self, other: &&str) -> bool {
        self.as_bytes() == other.as_bytes()
    }
}

impl PartialEq<String> for FieldName {
    fn eq(&self, other: &String) -> bool {
        self.as_bytes() == other.as_bytes()
    }
}

impl PartialEq<FieldName> for str {
    fn eq(&self, other: &FieldName) -> bool {
        self == other.as_str()
    }
}

impl fmt::Debug for FieldName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self.as_str(), f)
    }
}

impl fmt::Display for FieldName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn short_names_stay_inline() {
        let n = FieldName::from("@sender");
        assert!(matches!(n.0, Repr::Inline { .. }));
        assert_eq!(n.as_str(), "@sender");
        assert_eq!(n, "@sender");
        assert_eq!(n.len(), 7);
        assert!(n.starts_with('@'));
    }

    #[test]
    fn long_names_go_to_the_heap_and_still_compare() {
        let long = "a".repeat(FieldName::INLINE_CAP + 1);
        let n = FieldName::from(long.as_str());
        assert!(matches!(n.0, Repr::Heap(_)));
        assert_eq!(n, long.as_str());
        assert_eq!(n.to_string(), long);
    }

    #[test]
    fn boundary_length_is_inline() {
        let exact = "b".repeat(FieldName::INLINE_CAP);
        let n = FieldName::from(exact.as_str());
        assert!(matches!(n.0, Repr::Inline { .. }));
        assert_eq!(n.as_str(), exact);
    }

    #[test]
    fn equality_crosses_representations() {
        // Force a heap representation of an inline-sized name via From<String> on a string
        // built at the boundary... From<String> inlines when it fits, so build Heap directly.
        let heap = FieldName(Repr::Heap("body".to_owned()));
        let inline = FieldName::from("body");
        assert_eq!(heap, inline);
        assert_eq!(inline, heap);
    }

    #[test]
    fn utf8_multibyte_names_roundtrip() {
        let n = FieldName::from("prix-\u{20AC}");
        assert_eq!(n.as_str(), "prix-€");
        assert_eq!(FieldName::from("日本語の名前").as_str(), "日本語の名前");
    }

    #[test]
    fn type_stays_within_one_tagged_string_slot() {
        // String (24) + tag, rounded to String's alignment: 32 bytes on 64-bit targets.
        assert!(std::mem::size_of::<FieldName>() <= std::mem::size_of::<String>() + 8);
    }
}
