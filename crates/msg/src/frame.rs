//! Reference-counted wire frames.
//!
//! A [`Frame`] is an immutable, cheaply clonable handle to a [`Message`] that has been
//! prepared for transmission.  Multicasting to N sites used to deep-copy the whole field
//! tree N times (once per destination packet); with frames the sender encodes once and every
//! packet aliases the same allocation, so fan-out costs one pointer clone per destination.
//!
//! Frames also carry a *memo slot*: a one-shot, type-erased cache that receive paths use to
//! remember the result of parsing the frame (e.g. the typed protocol message decoded from
//! the wire form).  Because the slot lives inside the shared allocation, a frame fanned out
//! to N receivers is parsed once, not N times.  The slot is write-once — the first value
//! stored wins — and is deliberately dropped by [`Frame::make_mut`], since mutating the
//! message would invalidate anything derived from it.
//!
//! Symmetrically for the *send* path, [`Frame::wire_bytes`] caches the codec-encoded byte
//! form in the shared allocation: a multicast fanned out to N destination sites over a
//! byte-oriented transport (the threaded backend, or a future socket backend) is encoded
//! once, and each destination clones a refcounted buffer.  Like the memo, the cache is
//! dropped on mutation.
//!
//! Mutation is copy-on-write: [`Frame::make_mut`] hands out `&mut Message`, cloning the
//! underlying message first if (and only if) other handles share it.  This is what keeps
//! deliveries isolated — a receiver that edits its copy can never be observed by another
//! receiver aliasing the same frame.
//!
//! The simulation is single-threaded (see ARCHITECTURE.md), so the handle is an `Rc`; swap
//! for `Arc` + `OnceLock` if frames ever cross threads.

use std::any::Any;
use std::cell::OnceCell;
use std::fmt;
use std::ops::Deref;
use std::rc::Rc;

use bytes::Bytes;

use crate::codec;
use crate::message::Message;

/// Thread-local counter of codec encodes performed by [`Frame::wire_bytes`] (cache misses
/// only — a warm cache costs a pointer clone, not an encode).  Tests use the deltas to pin
/// the fan-out invariant: a frame shipped to N destinations over a byte-oriented transport
/// is encoded once in total.  Thread-local for the same reason as the protocol-level
/// `wire_stats`: nodes encode on their own threads and `cargo test` runs tests in parallel.
pub mod wire_cache {
    use std::cell::Cell;

    thread_local! {
        static ENCODES: Cell<u64> = const { Cell::new(0) };
    }

    /// Wire-byte encodes performed on this thread so far (cache hits excluded).
    pub fn encodes() -> u64 {
        ENCODES.with(|c| c.get())
    }

    pub(super) fn note_encode() {
        ENCODES.with(|c| c.set(c.get() + 1));
    }
}

struct FrameInner {
    msg: Message,
    memo: OnceCell<Box<dyn Any>>,
    /// Codec-encoded wire form of the message, filled lazily by [`Frame::wire_bytes`].
    /// Lives in the shared allocation, so a multicast fan-out that serializes the same
    /// frame once per destination (the threaded backend's per-site `WirePacket`s) pays
    /// for one encode and N buffer clones (`Bytes` is refcounted).
    wire: OnceCell<Bytes>,
}

/// A shared, immutable wire frame: one encoded [`Message`] plus a write-once memo slot for
/// whatever the receive path derives from it.  Cloning is O(1).
pub struct Frame {
    inner: Rc<FrameInner>,
}

impl Frame {
    /// Wraps a message in a fresh frame (empty memo slot).
    pub fn new(msg: Message) -> Self {
        Frame {
            inner: Rc::new(FrameInner {
                msg,
                memo: OnceCell::new(),
                wire: OnceCell::new(),
            }),
        }
    }

    /// The codec-encoded wire form of the framed message, encoded **once per frame**: the
    /// bytes are cached in the shared allocation, so every later call (every further
    /// destination of a fan-out) clones a refcounted buffer instead of re-walking the
    /// field tree.  [`wire_cache`] counts the cache misses.
    pub fn wire_bytes(&self) -> Bytes {
        self.inner
            .wire
            .get_or_init(|| {
                wire_cache::note_encode();
                codec::encode(&self.inner.msg)
            })
            .clone()
    }

    /// The framed message.
    pub fn message(&self) -> &Message {
        &self.inner.msg
    }

    /// Copies the framed message out into an independent [`Message`].
    pub fn to_message(&self) -> Message {
        self.inner.msg.clone()
    }

    /// Mutable access to the message, copy-on-write: if other handles alias this frame the
    /// message is cloned first, so the mutation is invisible to them.  The memo slot is
    /// cleared either way — derived values do not survive mutation.
    pub fn make_mut(&mut self) -> &mut Message {
        if Rc::get_mut(&mut self.inner).is_none() {
            self.inner = Rc::new(FrameInner {
                msg: self.inner.msg.clone(),
                memo: OnceCell::new(),
                wire: OnceCell::new(),
            });
        }
        let inner = Rc::get_mut(&mut self.inner).expect("uniquely owned after copy-on-write");
        inner.memo = OnceCell::new();
        inner.wire = OnceCell::new();
        &mut inner.msg
    }

    /// Number of handles (packets, buffers) currently aliasing this frame.  Diagnostic; used
    /// by tests asserting that fan-out shares rather than copies.
    pub fn handle_count(&self) -> usize {
        Rc::strong_count(&self.inner)
    }

    /// Returns the memoized value of type `T`, if one was stored.
    pub fn memo_get<T: 'static>(&self) -> Option<&T> {
        self.inner.memo.get().and_then(|b| b.downcast_ref::<T>())
    }

    /// Returns the memoized value of type `T`, running `make` to fill the empty slot.  The
    /// slot is write-once and type-erased: if a value of a *different* type already occupies
    /// it, `None` is returned and the caller falls back to uncached work (in practice the
    /// slot has a single user — the protocol decode cache).
    pub fn memo_get_or_init<T: 'static>(&self, make: impl FnOnce() -> T) -> Option<&T> {
        self.inner
            .memo
            .get_or_init(|| Box::new(make()))
            .downcast_ref::<T>()
    }
}

impl Clone for Frame {
    fn clone(&self) -> Self {
        Frame {
            inner: self.inner.clone(),
        }
    }
}

impl Deref for Frame {
    type Target = Message;
    fn deref(&self) -> &Message {
        &self.inner.msg
    }
}

impl From<Message> for Frame {
    fn from(msg: Message) -> Self {
        Frame::new(msg)
    }
}

impl PartialEq for Frame {
    fn eq(&self, other: &Self) -> bool {
        Rc::ptr_eq(&self.inner, &other.inner) || self.inner.msg == other.inner.msg
    }
}

// A frame renders as its message: the sharing is an implementation detail and traces/tests
// compare payload content, not identity.
impl fmt::Debug for Frame {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&self.inner.msg, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clone_aliases_instead_of_copying() {
        let frame = Frame::new(Message::with_body("shared"));
        assert_eq!(frame.handle_count(), 1);
        let copies: Vec<Frame> = (0..8).map(|_| frame.clone()).collect();
        assert_eq!(frame.handle_count(), 9);
        for c in &copies {
            assert_eq!(c.get_str("body"), Some("shared"));
        }
        drop(copies);
        assert_eq!(frame.handle_count(), 1);
    }

    #[test]
    fn make_mut_is_copy_on_write() {
        let mut a = Frame::new(Message::with_body(1u64));
        let b = a.clone();
        a.make_mut().set("body", 2u64);
        assert_eq!(a.get_u64("body"), Some(2));
        assert_eq!(b.get_u64("body"), Some(1), "aliasing handle is untouched");
        // Uniquely owned: mutation happens in place, no second allocation.
        let mut c = Frame::new(Message::with_body(3u64));
        c.make_mut().set("body", 4u64);
        assert_eq!(c.get_u64("body"), Some(4));
        assert_eq!(c.handle_count(), 1);
    }

    #[test]
    fn memo_slot_is_write_once_and_shared_across_handles() {
        let a = Frame::new(Message::with_body(1u64));
        let b = a.clone();
        assert!(a.memo_get::<u64>().is_none());
        assert_eq!(a.memo_get_or_init(|| 42u64), Some(&42));
        // The clone sees the memo without re-running the initializer.
        let mut ran = false;
        assert_eq!(
            b.memo_get_or_init(|| {
                ran = true;
                7u64
            }),
            Some(&42)
        );
        assert!(!ran, "initializer must not run on a warm slot");
        // A different type cannot displace the stored value.
        assert!(b.memo_get_or_init(|| "other").is_none());
        assert_eq!(b.memo_get::<u64>(), Some(&42));
    }

    #[test]
    fn make_mut_clears_the_memo() {
        let mut a = Frame::new(Message::with_body(1u64));
        a.memo_get_or_init(|| 1u64);
        a.make_mut().set("body", 2u64);
        assert!(a.memo_get::<u64>().is_none(), "memo dropped on mutation");
        // And on the copy-on-write path the *other* handle keeps its memo.
        let mut b = a.clone();
        a.memo_get_or_init(|| 9u64);
        b.make_mut().set("body", 3u64);
        assert_eq!(a.memo_get::<u64>(), Some(&9));
        assert!(b.memo_get::<u64>().is_none());
    }

    #[test]
    fn wire_bytes_encode_once_per_frame_across_handles() {
        let frame = Frame::new(Message::with_body("fan-out").with("seq", 9u64));
        let before = wire_cache::encodes();
        // N destinations serialize the same frame; only the first pays for the encode.
        let copies: Vec<Frame> = (0..4).map(|_| frame.clone()).collect();
        let first = frame.wire_bytes();
        for c in &copies {
            assert_eq!(c.wire_bytes(), first);
        }
        assert_eq!(
            wire_cache::encodes() - before,
            1,
            "one encode per frame, not per destination"
        );
        // The cached bytes are the real codec form.
        assert_eq!(codec::decode(&first).expect("decode"), *frame.message());
    }

    #[test]
    fn make_mut_invalidates_the_wire_cache() {
        let mut a = Frame::new(Message::with_body(1u64));
        let stale = a.wire_bytes();
        a.make_mut().set("body", 2u64);
        let before = wire_cache::encodes();
        let fresh = a.wire_bytes();
        assert_eq!(
            wire_cache::encodes() - before,
            1,
            "cache dropped on mutation"
        );
        assert_ne!(stale, fresh);
        assert_eq!(
            codec::decode(&fresh).expect("decode").get_u64("body"),
            Some(2)
        );
        // Copy-on-write keeps the aliasing handle's cache intact.
        let b = a.clone();
        let cached = a.wire_bytes();
        let mut c = b.clone();
        c.make_mut().set("body", 3u64);
        let before = wire_cache::encodes();
        assert_eq!(a.wire_bytes(), cached, "original handle keeps its cache");
        assert_eq!(wire_cache::encodes() - before, 0);
    }

    #[test]
    fn equality_compares_content() {
        let a = Frame::new(Message::with_body(5u64));
        let b = Frame::new(Message::with_body(5u64));
        let c = Frame::new(Message::with_body(6u64));
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a, a.clone());
    }
}
