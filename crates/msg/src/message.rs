//! The field-structured message type.

use std::fmt;

use serde::{Deserialize, Serialize};
use vsync_util::{Address, EntryId, GroupId, ProcessId, VectorClock, VsError};

use crate::fields;
use crate::name::FieldName;
use crate::value::Value;

/// One named, typed field of a message.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Field {
    /// Field name.  Names beginning with `'@'` are reserved for the toolkit.  Short names
    /// (the overwhelmingly common case) are stored inline without heap allocation.
    pub name: FieldName,
    /// Field value.
    pub value: Value,
}

/// A message: an ordered symbol table of named, typed fields.
///
/// Fields can be inserted and deleted at will; setting an existing name replaces its value.
/// System fields (names starting with `'@'`) carry toolkit metadata such as the sender
/// address and the session id; they are managed by the protocol stack and are stripped from
/// user-supplied messages before transmission so they cannot be forged.
#[derive(Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Message {
    fields: Vec<Field>,
}

impl Message {
    /// Creates an empty message.
    pub fn new() -> Self {
        Message { fields: Vec::new() }
    }

    /// Creates an empty message whose field table is pre-sized for `fields` inserts.  Hot
    /// encoders (the protocol wire format) know their field count up front; pre-sizing
    /// turns the O(log n) growth reallocations of repeated `set` calls into one allocation.
    pub fn with_field_capacity(fields: usize) -> Self {
        Message {
            fields: Vec::with_capacity(fields),
        }
    }

    /// Creates a message with a single `body` field, a common pattern in examples and tests.
    pub fn with_body(value: impl Into<Value>) -> Self {
        let mut m = Message::new();
        m.set(fields::BODY, value);
        m
    }

    /// Number of fields currently in the message.
    pub fn field_count(&self) -> usize {
        self.fields.len()
    }

    /// Returns true if the message has no fields.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// Iterates over all fields in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &Field> {
        self.fields.iter()
    }

    /// Sets (inserting or replacing) a field.
    pub fn set(&mut self, name: &str, value: impl Into<Value>) -> &mut Self {
        let value = value.into();
        if let Some(f) = self.fields.iter_mut().find(|f| f.name == name) {
            f.value = value;
        } else {
            self.fields.push(Field {
                name: FieldName::from(name),
                value,
            });
        }
        self
    }

    /// Builder-style `set`.
    pub fn with(mut self, name: &str, value: impl Into<Value>) -> Self {
        self.set(name, value);
        self
    }

    /// `set` that takes an already-built [`FieldName`], avoiding the conversion
    /// [`Message::set`] performs on insert.  Used by the codec's decode path.
    pub(crate) fn set_owned(&mut self, name: FieldName, value: Value) {
        if let Some(f) = self.fields.iter_mut().find(|f| f.name == name) {
            f.value = value;
        } else {
            self.fields.push(Field { name, value });
        }
    }

    /// Pre-sizes the field table for `additional` upcoming inserts.  Used by the codec's
    /// decode path and by hot senders that stamp a known set of system fields onto a
    /// message before transmission.
    pub fn reserve_fields(&mut self, additional: usize) {
        self.fields.reserve(additional);
    }

    /// Removes a field, returning its value if it was present.
    pub fn remove(&mut self, name: &str) -> Option<Value> {
        let idx = self.fields.iter().position(|f| f.name == name)?;
        Some(self.fields.remove(idx).value)
    }

    /// Returns a reference to a field's value.
    pub fn get(&self, name: &str) -> Option<&Value> {
        self.fields
            .iter()
            .find(|f| f.name == name)
            .map(|f| &f.value)
    }

    /// Returns true if the field exists.
    pub fn contains(&self, name: &str) -> bool {
        self.get(name).is_some()
    }

    /// Typed accessor: u64.
    pub fn get_u64(&self, name: &str) -> Option<u64> {
        self.get(name).and_then(Value::as_u64)
    }

    /// Typed accessor: i64.
    pub fn get_i64(&self, name: &str) -> Option<i64> {
        self.get(name).and_then(Value::as_i64)
    }

    /// Typed accessor: f64.
    pub fn get_f64(&self, name: &str) -> Option<f64> {
        self.get(name).and_then(Value::as_f64)
    }

    /// Typed accessor: bool.
    pub fn get_bool(&self, name: &str) -> Option<bool> {
        self.get(name).and_then(Value::as_bool)
    }

    /// Typed accessor: string slice.
    pub fn get_str(&self, name: &str) -> Option<&str> {
        self.get(name).and_then(Value::as_str)
    }

    /// Typed accessor: byte slice.
    pub fn get_bytes(&self, name: &str) -> Option<&[u8]> {
        self.get(name).and_then(Value::as_bytes)
    }

    /// Typed accessor: address.
    pub fn get_addr(&self, name: &str) -> Option<Address> {
        self.get(name).and_then(Value::as_addr)
    }

    /// Typed accessor: address list.
    pub fn get_addr_list(&self, name: &str) -> Option<&[Address]> {
        self.get(name).and_then(Value::as_addr_list)
    }

    /// Typed accessor: u64 list.
    pub fn get_u64_list(&self, name: &str) -> Option<&[u64]> {
        self.get(name).and_then(Value::as_u64_list)
    }

    /// Typed accessor: nested message.
    pub fn get_msg(&self, name: &str) -> Option<&Message> {
        self.get(name).and_then(Value::as_msg)
    }

    /// Like [`Message::get_u64`] but returns a codec error naming the missing field,
    /// which is convenient inside protocol handlers.
    pub fn require_u64(&self, name: &str) -> Result<u64, VsError> {
        self.get_u64(name)
            .ok_or_else(|| VsError::CodecError(format!("missing u64 field {name:?}")))
    }

    /// Required string accessor.
    pub fn require_str(&self, name: &str) -> Result<&str, VsError> {
        self.get_str(name)
            .ok_or_else(|| VsError::CodecError(format!("missing str field {name:?}")))
    }

    /// Required address accessor.
    pub fn require_addr(&self, name: &str) -> Result<Address, VsError> {
        self.get_addr(name)
            .ok_or_else(|| VsError::CodecError(format!("missing addr field {name:?}")))
    }

    // --- System field helpers -------------------------------------------------------------

    /// Removes every system (`@`-prefixed) field.  The protocol stack calls this on
    /// user-supplied messages before adding its own metadata, which is what makes the sender
    /// address unforgeable.
    pub fn strip_system_fields(&mut self) {
        self.fields.retain(|f| !fields::is_system_field(&f.name));
    }

    /// Sets the (unforgeable) sender address.
    pub fn set_sender(&mut self, sender: ProcessId) {
        self.set(fields::SENDER, sender);
    }

    /// Returns the sender address, if the message has been through the protocol stack.
    pub fn sender(&self) -> Option<ProcessId> {
        self.get_addr(fields::SENDER).and_then(|a| a.as_process())
    }

    /// Sets the destination entry point.
    pub fn set_entry(&mut self, entry: EntryId) {
        self.set(fields::ENTRY, entry.0 as u64);
    }

    /// Returns the destination entry point.
    pub fn entry(&self) -> Option<EntryId> {
        self.get_u64(fields::ENTRY).map(|e| EntryId(e as u8))
    }

    /// Sets the session id used to match replies with pending calls.
    pub fn set_session(&mut self, session: u64) {
        self.set(fields::SESSION, session);
    }

    /// Returns the session id.
    pub fn session(&self) -> Option<u64> {
        self.get_u64(fields::SESSION)
    }

    /// Sets the group the message was addressed to.
    pub fn set_group(&mut self, group: GroupId) {
        self.set(fields::GROUP, group);
    }

    /// Returns the group the message was addressed to.
    pub fn group(&self) -> Option<GroupId> {
        self.get_addr(fields::GROUP).and_then(|a| a.as_group())
    }

    /// Marks the message as a reply (optionally a null reply).
    pub fn mark_reply(&mut self, null: bool) {
        self.set(fields::IS_REPLY, true);
        if null {
            self.set(fields::NULL_REPLY, true);
        }
    }

    /// Returns true if this is a reply message.
    pub fn is_reply(&self) -> bool {
        self.get_bool(fields::IS_REPLY).unwrap_or(false)
    }

    /// Returns true if this is a null reply.
    pub fn is_null_reply(&self) -> bool {
        self.get_bool(fields::NULL_REPLY).unwrap_or(false)
    }

    /// Attaches a vector timestamp (CBCAST metadata).
    pub fn set_vector_time(&mut self, vt: &VectorClock) {
        self.set(fields::VECTOR_TIME, vt.entries().to_vec());
    }

    /// Reads the attached vector timestamp, if any.
    pub fn vector_time(&self) -> Option<VectorClock> {
        self.get_u64_list(fields::VECTOR_TIME)
            .map(|v| VectorClock::from_entries(v.to_vec()))
    }

    /// Approximate encoded size in bytes.  Used by the transport to charge fragmentation and
    /// serialization costs without actually serializing on every hop.
    pub fn encoded_len(&self) -> usize {
        // Header: field count (4 bytes).
        4 + self
            .fields
            .iter()
            .map(|f| 1 + 2 + f.name.len() + 4 + f.value.payload_len())
            .sum::<usize>()
    }
}

impl fmt::Debug for Message {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut s = f.debug_struct("Message");
        for field in &self.fields {
            s.field(&field.name, &field.value);
        }
        s.finish()
    }
}

impl FromIterator<(String, Value)> for Message {
    fn from_iter<T: IntoIterator<Item = (String, Value)>>(iter: T) -> Self {
        let mut m = Message::new();
        for (name, value) in iter {
            m.set(&name, value);
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vsync_util::SiteId;

    #[test]
    fn set_get_remove() {
        let mut m = Message::new();
        m.set("price", 9000u64);
        m.set("color", "red");
        assert_eq!(m.field_count(), 2);
        assert_eq!(m.get_u64("price"), Some(9000));
        assert_eq!(m.get_str("color"), Some("red"));
        m.set("price", 500u64);
        assert_eq!(m.field_count(), 2, "set replaces, not duplicates");
        assert_eq!(m.get_u64("price"), Some(500));
        assert_eq!(m.remove("price"), Some(Value::U64(500)));
        assert!(!m.contains("price"));
        assert_eq!(m.remove("price"), None);
    }

    #[test]
    fn builder_style() {
        let m = Message::new().with("a", 1u64).with("b", "two");
        assert_eq!(m.get_u64("a"), Some(1));
        assert_eq!(m.get_str("b"), Some("two"));
        let m2 = Message::with_body("hello");
        assert_eq!(m2.get_str(fields::BODY), Some("hello"));
    }

    #[test]
    fn system_field_helpers() {
        let mut m = Message::with_body(1u64);
        let sender = ProcessId::new(SiteId(1), 2);
        m.set_sender(sender);
        m.set_entry(EntryId(7));
        m.set_session(99);
        m.set_group(GroupId(5));
        m.mark_reply(true);
        assert_eq!(m.sender(), Some(sender));
        assert_eq!(m.entry(), Some(EntryId(7)));
        assert_eq!(m.session(), Some(99));
        assert_eq!(m.group(), Some(GroupId(5)));
        assert!(m.is_reply());
        assert!(m.is_null_reply());

        m.strip_system_fields();
        assert!(m.sender().is_none());
        assert!(m.entry().is_none());
        assert!(!m.is_reply());
        assert_eq!(
            m.get_u64(fields::BODY),
            Some(1),
            "user fields survive stripping"
        );
    }

    #[test]
    fn vector_time_roundtrip() {
        let mut m = Message::new();
        let vt = VectorClock::from_entries(vec![3, 1, 4, 1, 5]);
        m.set_vector_time(&vt);
        assert_eq!(m.vector_time(), Some(vt));
    }

    #[test]
    fn nested_messages() {
        let inner = Message::with_body("inner");
        let mut outer = Message::new();
        outer.set("wrapped", inner.clone());
        assert_eq!(outer.get_msg("wrapped"), Some(&inner));
    }

    #[test]
    fn encoded_len_grows_with_content() {
        let empty = Message::new();
        let small = Message::with_body("x");
        let big = Message::with_body(vec![0u8; 10_000]);
        assert!(empty.encoded_len() < small.encoded_len());
        assert!(small.encoded_len() < big.encoded_len());
        assert!(big.encoded_len() >= 10_000);
    }

    #[test]
    fn require_accessors_error_on_missing() {
        let m = Message::new();
        assert!(m.require_u64("nope").is_err());
        assert!(m.require_str("nope").is_err());
        assert!(m.require_addr("nope").is_err());
    }
}
