//! Well-known system field names.
//!
//! System fields carry toolkit metadata inside the same symbol table that holds application
//! data (paper Section 4.1).  Their names start with `'@'`, a character application field
//! names may not use, which is how the toolkit guarantees that "the address of the sender
//! of a message ... cannot be forged": the protocol stack strips and re-writes every `@`
//! field on transmission.

/// Address of the sending process; written by the protocol stack, unforgeable.
pub const SENDER: &str = "@sender";
/// Destination list of the multicast that carried the message.
pub const DESTS: &str = "@dests";
/// Entry point at which the message should be delivered.
pub const ENTRY: &str = "@entry";
/// Session identifier used to match replies with pending calls.
pub const SESSION: &str = "@session";
/// Marks a reply message (value: bool). Null replies also carry [`NULL_REPLY`].
pub const IS_REPLY: &str = "@is-reply";
/// Marks a null reply: the sender declines to produce a real reply (paper Section 3.2).
pub const NULL_REPLY: &str = "@null-reply";
/// The broadcast primitive used to transmit the message ("cbcast", "abcast", "gbcast").
pub const PROTOCOL: &str = "@protocol";
/// Vector timestamp attached by the CBCAST protocol.
pub const VECTOR_TIME: &str = "@vt";
/// Rank of the sender in the view under which the message was sent.
pub const SENDER_RANK: &str = "@sender-rank";
/// View sequence number under which the message was sent.
pub const VIEW_SEQ: &str = "@view-seq";
/// Unique message id assigned by the sender's protocol stack.
pub const MSG_ID: &str = "@msg-id";
/// Group id the message was addressed to (when the destination is a group).
pub const GROUP: &str = "@group";
/// Reply destination(s) for a group RPC (the caller plus optional co-destinations).
pub const REPLY_TO: &str = "@reply-to";
/// Credentials presented on a join request (checked by the protection tool).
pub const CREDENTIALS: &str = "@credentials";
/// Application payload field conventionally used by simple tools and examples.
pub const BODY: &str = "body";

/// Returns true if `name` is reserved for system use.
pub fn is_system_field(name: &str) -> bool {
    name.starts_with('@')
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn system_fields_are_flagged() {
        for f in [
            SENDER,
            DESTS,
            ENTRY,
            SESSION,
            IS_REPLY,
            NULL_REPLY,
            PROTOCOL,
            VECTOR_TIME,
        ] {
            assert!(is_system_field(f), "{f} should be a system field");
        }
        assert!(!is_system_field(BODY));
        assert!(!is_system_field("price"));
    }
}
