//! Property tests for the message codec: arbitrary messages survive an encode/decode
//! round-trip, and the size model stays within a constant factor of the real encoding.

use proptest::prelude::*;
use vsync_msg::{codec, Message, Value};
use vsync_util::{Address, GroupId, ProcessId, SiteId};

fn arb_address() -> impl Strategy<Value = Address> {
    prop_oneof![
        (any::<u16>(), 0u32..1_000_000, 0u32..1000).prop_map(|(s, l, inc)| {
            Address::Process(ProcessId {
                site: SiteId(s),
                local: l,
                incarnation: inc,
            })
        }),
        (0u64..0x7FFF_FFFF_FFFF_FFFF).prop_map(|g| Address::Group(GroupId(g))),
    ]
}

fn arb_leaf_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        any::<bool>().prop_map(Value::Bool),
        any::<i64>().prop_map(Value::I64),
        any::<u64>().prop_map(Value::U64),
        // NaN does not compare equal to itself, so restrict to finite values.
        (-1e15f64..1e15).prop_map(Value::F64),
        ".{0,64}".prop_map(Value::Str),
        proptest::collection::vec(any::<u8>(), 0..256).prop_map(|v| Value::Bytes(v.into())),
        arb_address().prop_map(Value::Addr),
        proptest::collection::vec(arb_address(), 0..8).prop_map(Value::AddrList),
        proptest::collection::vec(any::<u64>(), 0..16).prop_map(Value::U64List),
    ]
}

fn arb_value() -> impl Strategy<Value = Value> {
    arb_leaf_value().prop_recursive(3, 32, 4, |inner| {
        proptest::collection::vec(("[a-z]{1,12}", inner), 0..4).prop_map(|fields| {
            let mut m = Message::new();
            for (name, value) in fields {
                m.set(&name, value);
            }
            Value::Msg(Box::new(m))
        })
    })
}

fn arb_message() -> impl Strategy<Value = Message> {
    proptest::collection::vec(("[a-zA-Z_][a-zA-Z0-9_-]{0,15}", arb_value()), 0..12).prop_map(
        |fields| {
            let mut m = Message::new();
            for (name, value) in fields {
                m.set(&name, value);
            }
            m
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn encode_decode_roundtrip(msg in arb_message()) {
        let bytes = codec::encode(&msg);
        let back = codec::decode(&bytes).expect("decode must succeed");
        prop_assert_eq!(back, msg);
    }

    #[test]
    fn size_model_tracks_real_encoding(msg in arb_message()) {
        let bytes = codec::encode(&msg);
        let model = msg.encoded_len();
        prop_assert!(model + 64 >= bytes.len() / 2);
        prop_assert!(model <= bytes.len() * 2 + 64);
    }

    #[test]
    fn decode_never_panics_on_arbitrary_bytes(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        // Decoding garbage may fail, but must never panic.
        let _ = codec::decode(&bytes);
    }

    #[test]
    fn decode_never_panics_on_truncated_valid_messages(msg in arb_message(), cut in 0usize..4096) {
        let bytes = codec::encode(&msg);
        let cut = cut.min(bytes.len());
        let _ = codec::decode(&bytes[..cut]);
    }
}
