//! Foundation types for the vsync reproduction of the ISIS virtual synchrony toolkit
//! (Birman & Joseph, "Exploiting Virtual Synchrony in Distributed Systems", SOSP 1987).
//!
//! This crate holds the vocabulary shared by every other crate in the workspace:
//!
//! * [`ids`] — compact identifiers for sites, processes, groups, views and entry points,
//!   mirroring the paper's 8-byte encoded addressing scheme (Section 4.1).
//! * [`time`] — the virtual time base used by the discrete-event simulator and by the
//!   sans-io protocol state machines.
//! * [`clock`] — Lamport and vector logical clocks used by the CBCAST/ABCAST protocols.
//! * [`error`] — the common error type.
//! * [`config`] — latency/bandwidth profiles, including the 1987 profile used to reproduce
//!   the paper's Figures 2 and 3.
//! * [`rng`] — a small deterministic RNG so simulations are reproducible from a seed.
//! * [`hash`] — a fast non-cryptographic hasher for hot-path maps keyed by toolkit ids.

pub mod clock;
pub mod config;
pub mod error;
pub mod hash;
pub mod ids;
pub mod rng;
pub mod time;

pub use clock::{LamportClock, VectorClock};
pub use config::{LatencyProfile, NetParams};
pub use error::{Result, VsError};
pub use hash::{FastHashMap, FastHashSet, IdBuildHasher, IdHasher};
pub use ids::{Address, EntryId, GroupId, Incarnation, ProcessId, Rank, SiteId, ViewId};
pub use rng::DetRng;
pub use time::{Duration, SimTime};
