//! Network latency / bandwidth profiles.
//!
//! The paper's performance figures (Section 7, Figures 2 and 3) were measured on four SUN
//! 3/50 workstations connected by a 10 Mbit Ethernet, with a measured cost of roughly 10 ms
//! to traverse a link within a site and 16 ms to send an inter-site packet, and with
//! inter-site messages fragmented into 4 KiB packets.  [`LatencyProfile::Paper1987`]
//! reproduces exactly that model so the benchmark harness can regenerate the figures'
//! shapes; [`LatencyProfile::Modern`] is a faster profile used by the examples and most
//! tests so they run quickly.

use serde::{Deserialize, Serialize};

use crate::time::Duration;

/// Named latency profiles.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum LatencyProfile {
    /// The SOSP'87 measurement environment: 10 ms intra-site hop, 16 ms inter-site packet,
    /// 4 KiB fragmentation, 10 Mbit/s shared Ethernet.
    Paper1987,
    /// A modern datacenter-like profile: 5 µs intra-site hop, 50 µs inter-site packet,
    /// 64 KiB fragmentation, 10 Gbit/s links.
    Modern,
    /// Zero-latency profile for pure logic tests (delivery still goes through the event
    /// queue, so ordering properties are preserved).
    Instant,
}

/// Concrete network parameters consumed by the simulator and the transport layer.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct NetParams {
    /// One-way delay for a message between two processes on the same site.
    pub intra_site_delay: Duration,
    /// One-way delay for a single packet between two sites.
    pub inter_site_delay: Duration,
    /// Maximum packet payload before a message is fragmented (paper: 4 KiB).
    pub fragment_size: usize,
    /// Link bandwidth in bytes per second (per-packet serialization delay = size/bandwidth).
    pub bandwidth_bytes_per_sec: u64,
    /// Probability that a packet is dropped on an inter-site link (retransmission recovers
    /// it; the paper's system tolerates message loss but not partitions).
    pub loss_probability: f64,
    /// Retransmission timeout used by the reliable inter-site channel.
    pub retransmit_timeout: Duration,
    /// Interval between failure-detector heartbeats.
    pub heartbeat_interval: Duration,
    /// Initial failure-detection timeout (the detector adapts it upward under load).
    pub failure_timeout: Duration,
    /// Fixed CPU cost charged for processing one protocol packet at a site.
    pub cpu_per_packet: Duration,
}

impl NetParams {
    /// Returns the parameters for a named profile.
    pub fn for_profile(profile: LatencyProfile) -> Self {
        match profile {
            LatencyProfile::Paper1987 => NetParams {
                intra_site_delay: Duration::from_millis(10),
                inter_site_delay: Duration::from_millis(16),
                fragment_size: 4 * 1024,
                bandwidth_bytes_per_sec: 10_000_000 / 8,
                loss_probability: 0.0,
                retransmit_timeout: Duration::from_millis(200),
                heartbeat_interval: Duration::from_millis(500),
                failure_timeout: Duration::from_millis(2_000),
                cpu_per_packet: Duration::from_millis(1),
            },
            LatencyProfile::Modern => NetParams {
                intra_site_delay: Duration::from_micros(5),
                inter_site_delay: Duration::from_micros(50),
                fragment_size: 64 * 1024,
                bandwidth_bytes_per_sec: 1_250_000_000,
                loss_probability: 0.0,
                retransmit_timeout: Duration::from_millis(5),
                heartbeat_interval: Duration::from_millis(10),
                failure_timeout: Duration::from_millis(50),
                cpu_per_packet: Duration::from_micros(1),
            },
            LatencyProfile::Instant => NetParams {
                intra_site_delay: Duration::ZERO,
                inter_site_delay: Duration::ZERO,
                fragment_size: usize::MAX,
                bandwidth_bytes_per_sec: u64::MAX,
                loss_probability: 0.0,
                retransmit_timeout: Duration::from_millis(1),
                heartbeat_interval: Duration::from_millis(10),
                failure_timeout: Duration::from_millis(50),
                cpu_per_packet: Duration::ZERO,
            },
        }
    }

    /// Builds the 1987 profile.
    pub fn paper1987() -> Self {
        Self::for_profile(LatencyProfile::Paper1987)
    }

    /// Builds the modern profile.
    pub fn modern() -> Self {
        Self::for_profile(LatencyProfile::Modern)
    }

    /// Builds the instant profile.
    pub fn instant() -> Self {
        Self::for_profile(LatencyProfile::Instant)
    }

    /// Sets the packet loss probability (clamped to `[0, 1)`).
    pub fn with_loss(mut self, p: f64) -> Self {
        self.loss_probability = p.clamp(0.0, 0.999);
        self
    }

    /// Sets the intra-site delay.
    pub fn with_intra_site_delay(mut self, d: Duration) -> Self {
        self.intra_site_delay = d;
        self
    }

    /// Sets the inter-site delay.
    pub fn with_inter_site_delay(mut self, d: Duration) -> Self {
        self.inter_site_delay = d;
        self
    }

    /// Number of fragments a message of `len` bytes is split into.
    pub fn fragments_for(&self, len: usize) -> usize {
        if len == 0 || self.fragment_size == usize::MAX {
            1
        } else {
            len.div_ceil(self.fragment_size).max(1)
        }
    }

    /// Serialization delay for a packet of `len` bytes at the configured bandwidth.
    pub fn serialization_delay(&self, len: usize) -> Duration {
        if self.bandwidth_bytes_per_sec == u64::MAX || self.bandwidth_bytes_per_sec == 0 {
            Duration::ZERO
        } else {
            Duration::from_secs_f64(len as f64 / self.bandwidth_bytes_per_sec as f64)
        }
    }
}

impl Default for NetParams {
    fn default() -> Self {
        NetParams::modern()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_profile_matches_reported_constants() {
        let p = NetParams::paper1987();
        assert_eq!(p.intra_site_delay, Duration::from_millis(10));
        assert_eq!(p.inter_site_delay, Duration::from_millis(16));
        assert_eq!(p.fragment_size, 4096);
    }

    #[test]
    fn fragmentation_counts() {
        let p = NetParams::paper1987();
        assert_eq!(p.fragments_for(0), 1);
        assert_eq!(p.fragments_for(100), 1);
        assert_eq!(p.fragments_for(4096), 1);
        assert_eq!(p.fragments_for(4097), 2);
        assert_eq!(p.fragments_for(10_000), 3);
        let inst = NetParams::instant();
        assert_eq!(inst.fragments_for(1_000_000), 1);
    }

    #[test]
    fn serialization_delay_scales_with_size() {
        let p = NetParams::paper1987();
        let d1 = p.serialization_delay(1_250_000); // one second at 10 Mbit/s
        assert!((d1.as_secs_f64() - 1.0).abs() < 1e-6);
        assert_eq!(
            NetParams::instant().serialization_delay(1 << 20),
            Duration::ZERO
        );
    }

    #[test]
    fn loss_is_clamped() {
        let p = NetParams::modern().with_loss(5.0);
        assert!(p.loss_probability < 1.0);
        let p = NetParams::modern().with_loss(-1.0);
        assert_eq!(p.loss_probability, 0.0);
    }
}
