//! A fast, non-cryptographic hasher for hot-path maps keyed by small ids.
//!
//! The protocol state machines keep holdback queues and delivery indexes keyed by compact
//! identifiers ([`crate::ids`], `MsgId`).  The standard library's default SipHash is
//! DoS-resistant but costs tens of nanoseconds per lookup, which is measurable when a drain
//! touches every pending message.  Keys here are trusted, fixed-size ids produced by the
//! toolkit itself, so a Fibonacci/FNV-style mixer is safe and several times faster.
//!
//! Use [`FastHashMap`] / [`FastHashSet`] instead of `HashMap`/`HashSet` for maps whose keys
//! are toolkit ids on a measured hot path; keep the default hasher anywhere keys can be
//! influenced by untrusted input.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Multiply-xor hasher: one wrapping multiply per fixed-width write.
///
/// The odd 64-bit constant is the golden-ratio multiplier used by Fibonacci hashing; the
/// final rotate spreads entropy into the low bits that hash maps actually index with.
#[derive(Clone, Copy, Debug, Default)]
pub struct IdHasher(u64);

const GOLDEN: u64 = 0x9E37_79B9_7F4A_7C15;

impl IdHasher {
    #[inline]
    fn mix(&mut self, v: u64) {
        self.0 = (self.0 ^ v).wrapping_mul(GOLDEN).rotate_left(26);
    }
}

impl Hasher for IdHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        // Generic fallback (e.g. string keys): FNV-1a, still allocation-free.
        let mut h = self.0 ^ 0xCBF2_9CE4_8422_2325;
        for &b in bytes {
            h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01B3);
        }
        self.0 = h;
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.mix(v as u64);
    }

    #[inline]
    fn write_u16(&mut self, v: u16) {
        self.mix(v as u64);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.mix(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.mix(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.mix(v as u64);
    }
}

/// `BuildHasher` for [`IdHasher`].
pub type IdBuildHasher = BuildHasherDefault<IdHasher>;

/// A `HashMap` using the fast id hasher.
pub type FastHashMap<K, V> = HashMap<K, V, IdBuildHasher>;

/// A `HashSet` using the fast id hasher.
pub type FastHashSet<T> = HashSet<T, IdBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distinct_ids_hash_distinctly() {
        // Not a collision-resistance proof, just a sanity check that the mixer does not
        // collapse nearby ids (the common access pattern: sequential seq numbers).
        let mut seen = std::collections::HashSet::new();
        for site in 0..8u16 {
            for seq in 0..1000u64 {
                let mut h = IdHasher::default();
                h.write_u16(site);
                h.write_u64(seq);
                seen.insert(h.finish());
            }
        }
        assert_eq!(seen.len(), 8 * 1000, "no collisions on 8k sequential ids");
    }

    #[test]
    fn map_and_set_aliases_work() {
        let mut m: FastHashMap<u64, &str> = FastHashMap::default();
        m.insert(7, "seven");
        assert_eq!(m.get(&7), Some(&"seven"));
        let mut s: FastHashSet<u64> = FastHashSet::default();
        assert!(s.insert(7));
        assert!(!s.insert(7));
    }

    #[test]
    fn string_keys_use_the_byte_fallback() {
        let mut a = IdHasher::default();
        a.write(b"alpha");
        let mut b = IdHasher::default();
        b.write(b"beta");
        assert_ne!(a.finish(), b.finish());
    }
}
