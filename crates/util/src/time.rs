//! Virtual time for the discrete-event simulator and the sans-io protocol state machines.
//!
//! All protocol code is written against [`SimTime`] rather than `std::time::Instant` so that
//! the same state machines can be driven by the deterministic simulator (virtual time) and by
//! the threaded runtime (wall-clock time mapped onto microseconds since start).

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

use serde::{Deserialize, Serialize};

/// A point in simulated time, measured in microseconds since the start of the run.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct SimTime(pub u64);

/// A span of simulated time, in microseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct Duration(pub u64);

impl SimTime {
    /// The origin of time.
    pub const ZERO: SimTime = SimTime(0);

    /// Returns the number of whole microseconds since the origin.
    pub fn as_micros(self) -> u64 {
        self.0
    }

    /// Returns the time as fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Returns the time as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Saturating difference between two times.
    pub fn saturating_since(self, earlier: SimTime) -> Duration {
        Duration(self.0.saturating_sub(earlier.0))
    }
}

impl Duration {
    /// Zero-length duration.
    pub const ZERO: Duration = Duration(0);

    /// Builds a duration from microseconds.
    pub fn from_micros(us: u64) -> Self {
        Duration(us)
    }

    /// Builds a duration from milliseconds.
    pub fn from_millis(ms: u64) -> Self {
        Duration(ms * 1_000)
    }

    /// Builds a duration from seconds.
    pub fn from_secs(s: u64) -> Self {
        Duration(s * 1_000_000)
    }

    /// Builds a duration from fractional seconds, rounding to the nearest microsecond.
    pub fn from_secs_f64(s: f64) -> Self {
        Duration((s * 1_000_000.0).round().max(0.0) as u64)
    }

    /// Returns the number of whole microseconds.
    pub fn as_micros(self) -> u64 {
        self.0
    }

    /// Returns the duration as fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Returns the duration as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Multiplies the duration by an integer factor, saturating on overflow.
    pub fn saturating_mul(self, k: u64) -> Duration {
        Duration(self.0.saturating_mul(k))
    }

    /// Scales the duration by a floating-point factor.
    pub fn mul_f64(self, k: f64) -> Duration {
        Duration((self.0 as f64 * k).round().max(0.0) as u64)
    }
}

impl Add<Duration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: Duration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<Duration> for SimTime {
    fn add_assign(&mut self, rhs: Duration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub<SimTime> for SimTime {
    type Output = Duration;
    fn sub(self, rhs: SimTime) -> Duration {
        Duration(self.0.saturating_sub(rhs.0))
    }
}

impl Add<Duration> for Duration {
    type Output = Duration;
    fn add(self, rhs: Duration) -> Duration {
        Duration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<Duration> for Duration {
    fn add_assign(&mut self, rhs: Duration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub<Duration> for Duration {
    type Output = Duration;
    fn sub(self, rhs: Duration) -> Duration {
        Duration(self.0.saturating_sub(rhs.0))
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.3}ms", self.as_millis_f64())
    }
}

impl fmt::Debug for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.as_millis_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_roundtrips() {
        let t = SimTime::ZERO + Duration::from_millis(5);
        assert_eq!(t.as_micros(), 5_000);
        let t2 = t + Duration::from_secs(1);
        assert_eq!((t2 - t).as_millis_f64(), 1_000.0);
        assert_eq!(t2.saturating_since(t), Duration::from_secs(1));
        assert_eq!(t.saturating_since(t2), Duration::ZERO);
    }

    #[test]
    fn duration_constructors_agree() {
        assert_eq!(Duration::from_millis(2), Duration::from_micros(2_000));
        assert_eq!(Duration::from_secs(1), Duration::from_millis(1_000));
        assert_eq!(Duration::from_secs_f64(0.5), Duration::from_millis(500));
    }

    #[test]
    fn scaling() {
        assert_eq!(
            Duration::from_millis(10).saturating_mul(3),
            Duration::from_millis(30)
        );
        assert_eq!(
            Duration::from_millis(10).mul_f64(0.5),
            Duration::from_millis(5)
        );
    }

    #[test]
    fn conversions_to_float() {
        let d = Duration::from_micros(1_500);
        assert!((d.as_millis_f64() - 1.5).abs() < 1e-9);
        assert!((d.as_secs_f64() - 0.0015).abs() < 1e-12);
    }
}
