//! A small deterministic random number generator.
//!
//! The simulator needs reproducible randomness (message-loss decisions, load-balancing
//! choices, workload generation) that is stable across platforms and `rand` versions, so we
//! implement the well-known SplitMix64/xoshiro256++ pair directly rather than depending on a
//! particular external algorithm remaining stable.  The `rand` crate is still used by
//! application-level workload generators where reproducibility across versions is not a
//! correctness requirement.

use serde::{Deserialize, Serialize};

/// Deterministic RNG (xoshiro256++ seeded via SplitMix64).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct DetRng {
    state: [u64; 4],
}

fn splitmix64(seed: &mut u64) -> u64 {
    *seed = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *seed;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl DetRng {
    /// Creates a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        let mut s = seed;
        let state = [
            splitmix64(&mut s),
            splitmix64(&mut s),
            splitmix64(&mut s),
            splitmix64(&mut s),
        ];
        DetRng { state }
    }

    /// Returns the next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.state[0]
            .wrapping_add(self.state[3])
            .rotate_left(23)
            .wrapping_add(self.state[0]);
        let t = self.state[1] << 17;
        self.state[2] ^= self.state[0];
        self.state[3] ^= self.state[1];
        self.state[1] ^= self.state[2];
        self.state[0] ^= self.state[3];
        self.state[2] ^= t;
        self.state[3] = self.state[3].rotate_left(45);
        result
    }

    /// Returns a uniformly distributed value in `[0, bound)`.  Returns 0 when `bound == 0`.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            return 0;
        }
        // Lemire-style rejection to avoid modulo bias.
        let threshold = bound.wrapping_neg() % bound;
        loop {
            let r = self.next_u64();
            if r >= threshold {
                return r % bound;
            }
        }
    }

    /// Returns a uniformly distributed `usize` in `[0, bound)`.
    pub fn next_index(&mut self, bound: usize) -> usize {
        self.next_below(bound as u64) as usize
    }

    /// Returns a float uniformly distributed in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns true with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.next_f64() < p
        }
    }

    /// Fisher-Yates shuffles a slice in place.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.next_index(i + 1);
            items.swap(i, j);
        }
    }

    /// Picks a reference to a uniformly random element, or `None` if the slice is empty.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> Option<&'a T> {
        if items.is_empty() {
            None
        } else {
            Some(&items[self.next_index(items.len())])
        }
    }

    /// Derives an independent child generator; useful to give each site its own stream.
    pub fn fork(&mut self) -> DetRng {
        DetRng::new(self.next_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = DetRng::new(12345);
        let mut b = DetRng::new(12345);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = DetRng::new(1);
        let mut b = DetRng::new(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn bounded_values_stay_in_range() {
        let mut r = DetRng::new(7);
        for _ in 0..1000 {
            assert!(r.next_below(10) < 10);
            let f = r.next_f64();
            assert!((0.0..1.0).contains(&f));
        }
        assert_eq!(r.next_below(0), 0);
        assert_eq!(r.next_below(1), 0);
    }

    #[test]
    fn chance_extremes() {
        let mut r = DetRng::new(9);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        let hits = (0..10_000).filter(|_| r.chance(0.25)).count();
        assert!((1_500..3_500).contains(&hits), "hits={hits}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = DetRng::new(3);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn choose_handles_empty() {
        let mut r = DetRng::new(4);
        let empty: [u8; 0] = [];
        assert!(r.choose(&empty).is_none());
        assert!(r.choose(&[1, 2, 3]).is_some());
    }

    #[test]
    fn fork_produces_independent_streams() {
        let mut parent = DetRng::new(5);
        let mut c1 = parent.fork();
        let mut c2 = parent.fork();
        assert_ne!(c1.next_u64(), c2.next_u64());
    }
}
