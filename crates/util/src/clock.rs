//! Logical clocks: Lamport scalar clocks and per-view vector clocks.
//!
//! The CBCAST protocol orders potentially causally related multicasts (paper Section 3.1)
//! using vector timestamps indexed by the sender's rank in the current group view.  ABCAST
//! uses Lamport-style scalar priorities for its two-phase ordering.  Both clock types live
//! here so they can be property-tested in isolation.

use std::cmp::Ordering;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::ids::Rank;

/// A Lamport scalar clock.
///
/// `tick` advances local time; `observe` merges a remote timestamp, ensuring the clock never
/// runs behind any event it has heard about.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LamportClock {
    value: u64,
}

impl LamportClock {
    /// Creates a clock at zero.
    pub fn new() -> Self {
        LamportClock { value: 0 }
    }

    /// Returns the current value without advancing.
    pub fn current(&self) -> u64 {
        self.value
    }

    /// Advances the clock for a local event and returns the new value.
    pub fn tick(&mut self) -> u64 {
        self.value += 1;
        self.value
    }

    /// Merges a remote timestamp and advances past it.
    pub fn observe(&mut self, remote: u64) -> u64 {
        self.value = self.value.max(remote) + 1;
        self.value
    }
}

/// Result of comparing two vector timestamps.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CausalOrder {
    /// The left timestamp happened strictly before the right one.
    Before,
    /// The left timestamp happened strictly after the right one.
    After,
    /// The timestamps are identical.
    Equal,
    /// The timestamps are concurrent (neither happened before the other).
    Concurrent,
}

/// A fixed-width vector clock indexed by member rank within a group view.
///
/// The width equals the number of members in the view.  Because every view change flushes
/// all messages sent in the previous view (the virtual synchrony cut), vector clocks are
/// reset whenever a new view is installed, so ranks never refer to stale memberships.
#[derive(Clone, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct VectorClock {
    entries: Vec<u64>,
}

impl VectorClock {
    /// Creates an all-zero clock of the given width.
    pub fn zero(width: usize) -> Self {
        VectorClock {
            entries: vec![0; width],
        }
    }

    /// Creates a clock directly from entries (used by codecs and tests).
    pub fn from_entries(entries: Vec<u64>) -> Self {
        VectorClock { entries }
    }

    /// Number of components (group members) this clock covers.
    pub fn width(&self) -> usize {
        self.entries.len()
    }

    /// Returns the component for `rank`, or 0 if the clock is narrower than `rank`.
    pub fn get(&self, rank: Rank) -> u64 {
        self.entries.get(rank).copied().unwrap_or(0)
    }

    /// Sets the component for `rank`, growing the clock if necessary.
    pub fn set(&mut self, rank: Rank, value: u64) {
        if rank >= self.entries.len() {
            self.entries.resize(rank + 1, 0);
        }
        self.entries[rank] = value;
    }

    /// Increments the component for `rank` and returns the new value.
    pub fn increment(&mut self, rank: Rank) -> u64 {
        let v = self.get(rank) + 1;
        self.set(rank, v);
        v
    }

    /// Component-wise maximum with another clock (the classic merge operation).
    pub fn merge(&mut self, other: &VectorClock) {
        if other.entries.len() > self.entries.len() {
            self.entries.resize(other.entries.len(), 0);
        }
        for (i, v) in other.entries.iter().enumerate() {
            if *v > self.entries[i] {
                self.entries[i] = *v;
            }
        }
    }

    /// Returns true if `self <= other` component-wise.
    pub fn dominated_by(&self, other: &VectorClock) -> bool {
        let width = self.entries.len().max(other.entries.len());
        (0..width).all(|i| self.get(i) <= other.get(i))
    }

    /// Compares two vector timestamps under the causal (happened-before) partial order.
    pub fn causal_cmp(&self, other: &VectorClock) -> CausalOrder {
        let le = self.dominated_by(other);
        let ge = other.dominated_by(self);
        match (le, ge) {
            (true, true) => CausalOrder::Equal,
            (true, false) => CausalOrder::Before,
            (false, true) => CausalOrder::After,
            (false, false) => CausalOrder::Concurrent,
        }
    }

    /// Returns the raw entries.
    pub fn entries(&self) -> &[u64] {
        &self.entries
    }

    /// CBCAST delivery condition: a message stamped `msg_vt` from the member at `sender`
    /// is deliverable at a process whose delivered-clock is `self` when
    /// `msg_vt[sender] == self[sender] + 1` and `msg_vt[k] <= self[k]` for every `k != sender`.
    pub fn deliverable_from(&self, sender: Rank, msg_vt: &VectorClock) -> bool {
        let width = self.entries.len().max(msg_vt.entries.len());
        for k in 0..width {
            if k == sender {
                if msg_vt.get(k) != self.get(k) + 1 {
                    return false;
                }
            } else if msg_vt.get(k) > self.get(k) {
                return false;
            }
        }
        true
    }
}

impl fmt::Debug for VectorClock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "VT{:?}", self.entries)
    }
}

impl PartialOrd for VectorClock {
    /// Partial order induced by causality; concurrent clocks are incomparable.
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        match self.causal_cmp(other) {
            CausalOrder::Before => Some(Ordering::Less),
            CausalOrder::After => Some(Ordering::Greater),
            CausalOrder::Equal => Some(Ordering::Equal),
            CausalOrder::Concurrent => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lamport_tick_and_observe() {
        let mut c = LamportClock::new();
        assert_eq!(c.tick(), 1);
        assert_eq!(c.tick(), 2);
        assert_eq!(c.observe(10), 11);
        assert_eq!(c.observe(3), 12);
        assert_eq!(c.current(), 12);
    }

    #[test]
    fn vector_clock_basic_ops() {
        let mut a = VectorClock::zero(3);
        a.increment(0);
        a.increment(0);
        a.increment(2);
        assert_eq!(a.entries(), &[2, 0, 1]);
        assert_eq!(a.get(5), 0);
        a.set(4, 7);
        assert_eq!(a.width(), 5);
        assert_eq!(a.get(4), 7);
    }

    #[test]
    fn causal_comparison() {
        let a = VectorClock::from_entries(vec![1, 0]);
        let b = VectorClock::from_entries(vec![1, 1]);
        let c = VectorClock::from_entries(vec![0, 2]);
        assert_eq!(a.causal_cmp(&b), CausalOrder::Before);
        assert_eq!(b.causal_cmp(&a), CausalOrder::After);
        assert_eq!(a.causal_cmp(&a), CausalOrder::Equal);
        assert_eq!(a.causal_cmp(&c), CausalOrder::Concurrent);
        assert!(a < b);
        assert!(a.partial_cmp(&c).is_none());
    }

    #[test]
    fn merge_takes_componentwise_max() {
        let mut a = VectorClock::from_entries(vec![3, 0, 5]);
        let b = VectorClock::from_entries(vec![1, 4, 2, 9]);
        a.merge(&b);
        assert_eq!(a.entries(), &[3, 4, 5, 9]);
    }

    #[test]
    fn cbcast_delivery_condition() {
        // Receiver has delivered one message from rank 0 and none from rank 1.
        let delivered = VectorClock::from_entries(vec![1, 0, 0]);
        // Next message from rank 0 is deliverable.
        let m = VectorClock::from_entries(vec![2, 0, 0]);
        assert!(delivered.deliverable_from(0, &m));
        // A message from rank 1 that depends on an undelivered rank-0 message is not.
        let m2 = VectorClock::from_entries(vec![3, 1, 0]);
        assert!(!delivered.deliverable_from(1, &m2));
        // A message from rank 1 depending only on what we have is deliverable.
        let m3 = VectorClock::from_entries(vec![1, 1, 0]);
        assert!(delivered.deliverable_from(1, &m3));
        // Gaps in the sender's own sequence are not deliverable.
        let m4 = VectorClock::from_entries(vec![3, 0, 0]);
        assert!(!delivered.deliverable_from(0, &m4));
    }

    #[test]
    fn widths_are_handled_leniently() {
        let narrow = VectorClock::from_entries(vec![1]);
        let wide = VectorClock::from_entries(vec![1, 0, 0]);
        assert_eq!(narrow.causal_cmp(&wide), CausalOrder::Equal);
    }
}
