//! Identifiers for sites, processes, groups, views and entry points.
//!
//! ISIS represents process and group addresses with a compact 8-byte identifier
//! (paper Section 4.1, "Addresses").  We keep the same spirit: every identifier here is a
//! small `Copy` value that fits in a machine word or two, is cheap to compare and hash, and
//! can be used interchangeably wherever an address is expected (a [`GroupId`] can appear in
//! any destination list, exactly as in the paper).

use std::fmt;

use serde::{Deserialize, Serialize};

/// Identifier of a computing *site* (a machine on the LAN).
///
/// Sites are the unit of inter-host communication and of total failure: when a site crashes,
/// every process it hosts crashes with it (paper Section 2.1).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct SiteId(pub u16);

impl SiteId {
    /// Returns the numeric index of the site.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for SiteId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "S{}", self.0)
    }
}

impl fmt::Display for SiteId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "site{}", self.0)
    }
}

/// Incarnation number of a process.
///
/// ISIS converts timeouts into fail-stop behaviour: once a process has been declared failed
/// it must rejoin under a new incarnation even if it was merely slow (paper Section 3.7).
/// The incarnation number is what distinguishes the "old" identity from the recovered one.
pub type Incarnation = u32;

/// Identifier of a single process.
///
/// A process lives at a fixed [`SiteId`], has a site-local index, and an [`Incarnation`]
/// that is bumped each time the recovery manager restarts it.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ProcessId {
    /// Site hosting the process.
    pub site: SiteId,
    /// Index of the process at its site.
    pub local: u32,
    /// Incarnation number (0 for the first incarnation).
    pub incarnation: Incarnation,
}

impl ProcessId {
    /// Creates a first-incarnation process id.
    pub fn new(site: SiteId, local: u32) -> Self {
        ProcessId {
            site,
            local,
            incarnation: 0,
        }
    }

    /// Returns the same process identity with the incarnation bumped by one.
    pub fn next_incarnation(self) -> Self {
        ProcessId {
            incarnation: self.incarnation + 1,
            ..self
        }
    }

    /// Returns true if `other` is an earlier or equal incarnation of the same process slot.
    pub fn same_slot(&self, other: &ProcessId) -> bool {
        self.site == other.site && self.local == other.local
    }
}

impl fmt::Debug for ProcessId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.incarnation == 0 {
            write!(f, "P{}.{}", self.site.0, self.local)
        } else {
            write!(f, "P{}.{}#{}", self.site.0, self.local, self.incarnation)
        }
    }
}

impl fmt::Display for ProcessId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// Identifier of a process group.
///
/// Group ids are allocated by the namespace service; a symbolic name such as `"twenty"` maps
/// to a `GroupId` through `pg_lookup` (paper Section 5, Step 2).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct GroupId(pub u64);

impl GroupId {
    /// Returns the raw value.
    pub fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Debug for GroupId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "G{}", self.0)
    }
}

impl fmt::Display for GroupId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// Identifier of a group membership view.
///
/// Views are numbered sequentially within a group; every member observes the same sequence
/// of views, and every multicast is delivered in a well-defined view (virtual synchrony).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ViewId {
    /// The group this view belongs to.
    pub group: GroupId,
    /// Sequence number of the view within the group, starting at 1 for the founding view.
    pub seq: u64,
}

impl ViewId {
    /// The founding view of a group.
    pub fn initial(group: GroupId) -> Self {
        ViewId { group, seq: 1 }
    }

    /// Returns the next view id in sequence.
    pub fn next(self) -> Self {
        ViewId {
            group: self.group,
            seq: self.seq + 1,
        }
    }
}

impl fmt::Debug for ViewId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}/v{}", self.group, self.seq)
    }
}

impl fmt::Display for ViewId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// Rank of a member within a view.
///
/// Views list members in order of decreasing age (paper Section 3.2), so rank 0 is the
/// oldest member.  Ranks are the basis of the "deterministic rule" coordination style used
/// throughout the toolkit (coordinator selection, work partitioning in twenty questions).
pub type Rank = usize;

/// One-byte entry-point identifier (paper Section 4.1, "Entries").
///
/// Every process binds handler routines to entry points; a message names the entry point it
/// should be dispatched to.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct EntryId(pub u8);

impl EntryId {
    /// Generic entry used by the toolkit to deliver group membership change notifications.
    pub const GENERIC_VIEW_CHANGE: EntryId = EntryId(250);
    /// Generic entry used by the coordinator-cohort tool to deliver reply copies to cohorts.
    pub const GENERIC_CC_REPLY: EntryId = EntryId(251);
    /// Generic entry used by the state-transfer tool.
    pub const GENERIC_XFER: EntryId = EntryId(252);
    /// Generic entry used by the join protocol.
    pub const GENERIC_JOIN: EntryId = EntryId(253);
    /// Generic entry used for tool-internal control traffic.
    pub const GENERIC_TOOL: EntryId = EntryId(254);
    /// Reserved entry used for replies; never bound by users.
    pub const REPLY: EntryId = EntryId(255);

    /// Returns true if this entry id is reserved for toolkit use.
    pub fn is_generic(self) -> bool {
        self.0 >= 250
    }
}

impl fmt::Debug for EntryId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "E{}", self.0)
    }
}

/// A destination address: either a single process or a whole process group.
///
/// Group addresses can be used in any context where a process address is acceptable
/// (paper Section 4.1), so destination lists are lists of `Address`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Address {
    /// A single process.
    Process(ProcessId),
    /// All current members of a process group.
    Group(GroupId),
}

impl Address {
    /// Returns the process id if this is a process address.
    pub fn as_process(&self) -> Option<ProcessId> {
        match self {
            Address::Process(p) => Some(*p),
            Address::Group(_) => None,
        }
    }

    /// Returns the group id if this is a group address.
    pub fn as_group(&self) -> Option<GroupId> {
        match self {
            Address::Group(g) => Some(*g),
            Address::Process(_) => None,
        }
    }

    /// Returns true if this address names a group.
    pub fn is_group(&self) -> bool {
        matches!(self, Address::Group(_))
    }
}

impl From<ProcessId> for Address {
    fn from(p: ProcessId) -> Self {
        Address::Process(p)
    }
}

impl From<GroupId> for Address {
    fn from(g: GroupId) -> Self {
        Address::Group(g)
    }
}

impl fmt::Debug for Address {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Address::Process(p) => write!(f, "{p:?}"),
            Address::Group(g) => write!(f, "{g:?}"),
        }
    }
}

impl fmt::Display for Address {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn process_id_incarnation_bump_keeps_slot() {
        let p = ProcessId::new(SiteId(3), 7);
        let q = p.next_incarnation();
        assert!(p.same_slot(&q));
        assert_ne!(p, q);
        assert_eq!(q.incarnation, 1);
    }

    #[test]
    fn view_id_sequence() {
        let g = GroupId(42);
        let v1 = ViewId::initial(g);
        let v2 = v1.next();
        assert_eq!(v1.seq, 1);
        assert_eq!(v2.seq, 2);
        assert!(v1 < v2);
        assert_eq!(v1.group, v2.group);
    }

    #[test]
    fn address_conversions() {
        let p = ProcessId::new(SiteId(0), 1);
        let g = GroupId(9);
        let ap: Address = p.into();
        let ag: Address = g.into();
        assert_eq!(ap.as_process(), Some(p));
        assert_eq!(ap.as_group(), None);
        assert_eq!(ag.as_group(), Some(g));
        assert!(ag.is_group());
        assert!(!ap.is_group());
    }

    #[test]
    fn entry_id_generic_range() {
        assert!(EntryId::GENERIC_CC_REPLY.is_generic());
        assert!(EntryId::REPLY.is_generic());
        assert!(!EntryId(0).is_generic());
        assert!(!EntryId(249).is_generic());
    }

    #[test]
    fn debug_formats_are_compact() {
        let p = ProcessId::new(SiteId(2), 4);
        assert_eq!(format!("{p:?}"), "P2.4");
        assert_eq!(format!("{:?}", p.next_incarnation()), "P2.4#1");
        assert_eq!(format!("{:?}", GroupId(7)), "G7");
        assert_eq!(format!("{:?}", SiteId(1)), "S1");
        assert_eq!(
            format!(
                "{:?}",
                ViewId {
                    group: GroupId(7),
                    seq: 3
                }
            ),
            "G7/v3"
        );
    }

    #[test]
    fn ordering_is_total_on_process_ids() {
        let a = ProcessId::new(SiteId(0), 0);
        let b = ProcessId::new(SiteId(0), 1);
        let c = ProcessId::new(SiteId(1), 0);
        assert!(a < b);
        assert!(b < c);
        assert!(a < c);
    }
}
