//! The common error type for the vsync workspace.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::ids::{Address, GroupId, ProcessId};

/// Errors surfaced by the toolkit to application code.
///
/// The paper's toolkit reports failures to callers as error codes from the multicast used to
/// issue a request (Section 5, Step 2: "the caller will now obtain an error code from the
/// multicast it used to issue the query").  `VsError` plays that role here.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum VsError {
    /// The named group does not exist (or no longer exists).
    NoSuchGroup(GroupId),
    /// No group is registered under the given symbolic name.
    UnknownGroupName(String),
    /// The destination process does not exist or has failed.
    NoSuchProcess(ProcessId),
    /// All destinations of a multicast failed before enough replies were collected.
    AllDestinationsFailed { wanted: usize, got: usize },
    /// The request was rejected by the protection tool.
    PermissionDenied(String),
    /// A join request was refused (bad credentials, group restarting, ...).
    JoinRefused(String),
    /// The caller is not a member of the group it tried to operate on.
    NotAMember(GroupId),
    /// The operation requires an operational group coordinator but none is available.
    NoCoordinator(GroupId),
    /// A semaphore/lock operation failed.
    SemaphoreError(String),
    /// The state transfer was interrupted and could not be restarted.
    TransferFailed(String),
    /// Stable storage (checkpoint/log) error.
    StorageError(String),
    /// A message could not be encoded or decoded.
    CodecError(String),
    /// A message was addressed to an entry that is not bound at the destination.
    NoSuchEntry(Address, u8),
    /// Recovery manager determined the process should wait for the group to restart
    /// elsewhere instead of restarting it.
    MustWaitForRestart(GroupId),
    /// An operation timed out.
    Timeout(String),
    /// The simulated run ended (quiesced or reached its horizon) before the operation
    /// completed.
    SimulationEnded(String),
    /// Internal invariant violation; indicates a bug in the toolkit itself.
    Internal(String),
}

impl fmt::Display for VsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VsError::NoSuchGroup(g) => write!(f, "no such group: {g}"),
            VsError::UnknownGroupName(n) => write!(f, "no group registered under name {n:?}"),
            VsError::NoSuchProcess(p) => write!(f, "no such process: {p}"),
            VsError::AllDestinationsFailed { wanted, got } => write!(
                f,
                "all destinations failed before enough replies were collected (wanted {wanted}, got {got})"
            ),
            VsError::PermissionDenied(why) => write!(f, "permission denied: {why}"),
            VsError::JoinRefused(why) => write!(f, "join refused: {why}"),
            VsError::NotAMember(g) => write!(f, "caller is not a member of {g}"),
            VsError::NoCoordinator(g) => write!(f, "no operational coordinator for {g}"),
            VsError::SemaphoreError(why) => write!(f, "semaphore error: {why}"),
            VsError::TransferFailed(why) => write!(f, "state transfer failed: {why}"),
            VsError::StorageError(why) => write!(f, "stable storage error: {why}"),
            VsError::CodecError(why) => write!(f, "message codec error: {why}"),
            VsError::NoSuchEntry(addr, e) => write!(f, "no entry {e} bound at {addr}"),
            VsError::MustWaitForRestart(g) => {
                write!(f, "recovery manager: wait for {g} to restart elsewhere")
            }
            VsError::Timeout(what) => write!(f, "timed out: {what}"),
            VsError::SimulationEnded(what) => write!(f, "simulation ended: {what}"),
            VsError::Internal(why) => write!(f, "internal toolkit error: {why}"),
        }
    }
}

impl std::error::Error for VsError {}

/// Convenience alias used throughout the workspace.
pub type Result<T> = std::result::Result<T, VsError>;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::SiteId;

    #[test]
    fn display_messages_are_informative() {
        let e = VsError::AllDestinationsFailed { wanted: 3, got: 1 };
        let s = e.to_string();
        assert!(s.contains("wanted 3"));
        assert!(s.contains("got 1"));

        let e = VsError::NoSuchProcess(ProcessId::new(SiteId(1), 2));
        assert!(e.to_string().contains("P1.2"));
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err(_e: &dyn std::error::Error) {}
        takes_err(&VsError::Timeout("join".into()));
    }
}
