//! Shared bulletin boards (paper Section 3.11, one of the "additional tools" that ISIS had
//! designed but not yet shipped; implemented here as an extension).
//!
//! "Unlike the news service, the bulletin board facility is linked directly into its clients
//! and does not exist as a separate entity; it is intended for high performance shared data
//! management.  Processes can read and post messages on one or more shared bulletin boards,
//! and these operations are implemented using the multicast primitives."
//!
//! Each bulletin board is a named, append-only sequence of postings replicated across the
//! members of a group.  Posts travel by ABCAST so all members see every board in the same
//! order; reads are local.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

use vsync_core::{EntryId, GroupId, Message, ProcessBuilder, ProtocolKind, ToolCtx};

struct Inner {
    group: GroupId,
    entry: EntryId,
    boards: BTreeMap<String, Vec<Message>>,
}

/// A set of shared bulletin boards replicated over a process group.
#[derive(Clone)]
pub struct BulletinBoard {
    inner: Rc<RefCell<Inner>>,
}

impl BulletinBoard {
    /// Creates the bulletin-board tool for `group`, receiving postings on `entry`.
    pub fn new(group: GroupId, entry: EntryId) -> Self {
        BulletinBoard {
            inner: Rc::new(RefCell::new(Inner {
                group,
                entry,
                boards: BTreeMap::new(),
            })),
        }
    }

    /// Binds the posting-application handler.
    pub fn attach(&self, builder: &mut ProcessBuilder) {
        let inner = self.inner.clone();
        let entry = self.inner.borrow().entry;
        builder.on_entry(entry, move |_ctx, msg| {
            let Some(board) = msg.get_str("bb-board").map(str::to_owned) else {
                return;
            };
            inner
                .borrow_mut()
                .boards
                .entry(board)
                .or_default()
                .push(msg.clone());
        });
    }

    /// Posts a message on a board; every member appends it in the same position.
    pub fn post(&self, ctx: &mut ToolCtx<'_>, board: &str, mut body: Message) {
        let (group, entry) = {
            let state = self.inner.borrow();
            (state.group, state.entry)
        };
        body.set("bb-board", board);
        ctx.send(group, entry, body, ProtocolKind::Abcast);
    }

    /// Reads every posting on a board, in posting order (local, no communication).
    pub fn read(&self, board: &str) -> Vec<Message> {
        self.inner
            .borrow()
            .boards
            .get(board)
            .cloned()
            .unwrap_or_default()
    }

    /// Number of postings on a board.
    pub fn len(&self, board: &str) -> usize {
        self.inner
            .borrow()
            .boards
            .get(board)
            .map(Vec::len)
            .unwrap_or(0)
    }

    /// True if the board has no postings.
    pub fn is_empty(&self, board: &str) -> bool {
        self.len(board) == 0
    }

    /// Names of boards that have at least one posting.
    pub fn boards(&self) -> Vec<String> {
        self.inner.borrow().boards.keys().cloned().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn boards_start_empty_and_are_independent() {
        let bb = BulletinBoard::new(GroupId(1), EntryId(40));
        assert!(bb.is_empty("sensor-readings"));
        bb.inner
            .borrow_mut()
            .boards
            .entry("sensor-readings".into())
            .or_default()
            .push(Message::with_body(1u64));
        assert_eq!(bb.len("sensor-readings"), 1);
        assert!(bb.is_empty("other"));
        assert_eq!(bb.boards(), vec!["sensor-readings".to_owned()]);
        assert_eq!(bb.read("sensor-readings")[0].get_u64("body"), Some(1));
    }
}
