//! The news service (paper Section 3.9).
//!
//! "This service allows processes to enroll in a system-wide news facility.  Each subscriber
//! receives a copy of any messages having a 'subject' for which it has enrolled in the order
//! they were posted.  Although modeled after net-news, the news service is an active entity
//! that informs processes immediately on learning of an event about which they have expressed
//! interest."
//!
//! Subscribers are members of a news process group; postings travel by ABCAST so every
//! subscriber sees postings for a subject in the same (posting) order.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

use vsync_core::{EntryId, GroupId, Message, ProcessBuilder, ProtocolKind, ToolCtx};

/// Callback invoked when a posting for a subscribed subject arrives.
pub type NewsHandler = Box<dyn FnMut(&mut ToolCtx<'_>, &Message)>;

struct Inner {
    group: GroupId,
    entry: EntryId,
    subscriptions: BTreeMap<String, Vec<NewsHandler>>,
    history: BTreeMap<String, Vec<Message>>,
    posts_seen: u64,
}

/// The news service handle for one subscriber process.
#[derive(Clone)]
pub struct NewsService {
    inner: Rc<RefCell<Inner>>,
}

impl NewsService {
    /// Creates the news tool bound to the news group.
    pub fn new(group: GroupId, entry: EntryId) -> Self {
        NewsService {
            inner: Rc::new(RefCell::new(Inner {
                group,
                entry,
                subscriptions: BTreeMap::new(),
                history: BTreeMap::new(),
                posts_seen: 0,
            })),
        }
    }

    /// Binds the posting-delivery handler.
    pub fn attach(&self, builder: &mut ProcessBuilder) {
        let inner = self.inner.clone();
        let entry = self.inner.borrow().entry;
        builder.on_entry(entry, move |ctx, msg| {
            let Some(subject) = msg.get_str("news-subject").map(str::to_owned) else {
                return;
            };
            {
                let mut state = inner.borrow_mut();
                state.posts_seen += 1;
                state
                    .history
                    .entry(subject.clone())
                    .or_default()
                    .push(msg.clone());
            }
            // Run handlers outside the borrow so they can use the context freely.
            let mut handlers = inner.borrow_mut().subscriptions.remove(&subject);
            if let Some(hs) = handlers.as_mut() {
                for h in hs.iter_mut() {
                    h(ctx, msg);
                }
            }
            if let Some(hs) = handlers {
                inner
                    .borrow_mut()
                    .subscriptions
                    .entry(subject)
                    .or_default()
                    .extend(hs);
            }
        });
    }

    /// Enrolls for a subject.
    pub fn subscribe(
        &self,
        subject: &str,
        handler: impl FnMut(&mut ToolCtx<'_>, &Message) + 'static,
    ) {
        self.inner
            .borrow_mut()
            .subscriptions
            .entry(subject.to_owned())
            .or_default()
            .push(Box::new(handler));
    }

    /// Posts a message under a subject (Table 1: "1 async CBCAST or ABCAST"; ABCAST here so
    /// all subscribers observe the same posting order).
    pub fn post(&self, ctx: &mut ToolCtx<'_>, subject: &str, mut body: Message) {
        let (group, entry) = {
            let state = self.inner.borrow();
            (state.group, state.entry)
        };
        body.set("news-subject", subject);
        ctx.send(group, entry, body, ProtocolKind::Abcast);
    }

    /// Postings seen so far for a subject, in posting order.
    pub fn history(&self, subject: &str) -> Vec<Message> {
        self.inner
            .borrow()
            .history
            .get(subject)
            .cloned()
            .unwrap_or_default()
    }

    /// Total postings observed by this subscriber (any subject).
    pub fn posts_seen(&self) -> u64 {
        self.inner.borrow().posts_seen
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn subscriptions_are_per_subject() {
        let news = NewsService::new(GroupId(1), EntryId(30));
        news.subscribe("alarms", |_ctx, _m| {});
        news.subscribe("alarms", |_ctx, _m| {});
        news.subscribe("status", |_ctx, _m| {});
        let inner = news.inner.borrow();
        assert_eq!(inner.subscriptions.get("alarms").map(Vec::len), Some(2));
        assert_eq!(inner.subscriptions.get("status").map(Vec::len), Some(1));
        assert!(!inner.subscriptions.contains_key("other"));
    }

    #[test]
    fn history_starts_empty() {
        let news = NewsService::new(GroupId(1), EntryId(30));
        assert!(news.history("alarms").is_empty());
        assert_eq!(news.posts_seen(), 0);
    }
}
