//! The site/process monitoring tool (paper Section 3.7).
//!
//! "ISIS provides a site-monitoring facility that can trigger actions when a site or process
//! fails or a site recovers.  Site and process failures are clean events in ISIS: once a
//! failure is signaled, all interested processes will observe it, and all see the same
//! sequence of failures and recoveries."
//!
//! The clean-event property comes from the group view mechanism: this tool simply translates
//! view changes into per-member join/departure callbacks, so application code never has to
//! diff membership lists by hand.

use std::cell::RefCell;
use std::rc::Rc;

use vsync_core::{GroupId, ProcessBuilder, ProcessId, ToolCtx};

/// A membership event derived from a view change.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MemberEvent {
    /// A process joined the group (or recovered and re-joined under a new incarnation).
    Joined(ProcessId),
    /// A process left or failed; all members observe this in the same view.
    Departed(ProcessId),
}

/// Callback invoked for every membership event.
pub type WatchFn = Box<dyn FnMut(&mut ToolCtx<'_>, &MemberEvent)>;

struct Inner {
    watchers: Vec<WatchFn>,
    events: Vec<MemberEvent>,
}

/// The monitoring tool attached to one group member.
#[derive(Clone)]
pub struct SiteMonitor {
    group: GroupId,
    inner: Rc<RefCell<Inner>>,
}

impl SiteMonitor {
    /// Creates a monitor for `group`.
    pub fn new(group: GroupId) -> Self {
        SiteMonitor {
            group,
            inner: Rc::new(RefCell::new(Inner {
                watchers: Vec::new(),
                events: Vec::new(),
            })),
        }
    }

    /// Registers a callback for membership events.
    pub fn watch(&self, f: impl FnMut(&mut ToolCtx<'_>, &MemberEvent) + 'static) {
        self.inner.borrow_mut().watchers.push(Box::new(f));
    }

    /// Binds the view monitor.
    pub fn attach(&self, builder: &mut ProcessBuilder) {
        let inner = self.inner.clone();
        builder.on_view_change(self.group, move |ctx, ev| {
            let mut events = Vec::new();
            for j in &ev.view.joined {
                events.push(MemberEvent::Joined(*j));
            }
            for d in &ev.view.departed {
                events.push(MemberEvent::Departed(*d));
            }
            inner.borrow_mut().events.extend(events.iter().cloned());
            // Invoke watchers with the borrow released so they can use the tool themselves.
            let mut watchers = std::mem::take(&mut inner.borrow_mut().watchers);
            for e in &events {
                for w in watchers.iter_mut() {
                    w(ctx, e);
                }
            }
            inner.borrow_mut().watchers.extend(watchers);
        });
    }

    /// Every membership event observed so far, in order.
    pub fn events(&self) -> Vec<MemberEvent> {
        self.inner.borrow().events.clone()
    }

    /// Number of departures (failures and voluntary leaves) observed.
    pub fn departures(&self) -> usize {
        self.inner
            .borrow()
            .events
            .iter()
            .filter(|e| matches!(e, MemberEvent::Departed(_)))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vsync_util::SiteId;

    #[test]
    fn starts_empty() {
        let m = SiteMonitor::new(GroupId(1));
        assert!(m.events().is_empty());
        assert_eq!(m.departures(), 0);
    }

    #[test]
    fn event_classification() {
        let m = SiteMonitor::new(GroupId(1));
        m.inner
            .borrow_mut()
            .events
            .push(MemberEvent::Joined(ProcessId::new(SiteId(0), 1)));
        m.inner
            .borrow_mut()
            .events
            .push(MemberEvent::Departed(ProcessId::new(SiteId(1), 1)));
        assert_eq!(m.events().len(), 2);
        assert_eq!(m.departures(), 1);
    }
}
