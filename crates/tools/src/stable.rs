//! Stable storage: checkpoints and replayable logs (paper Section 2.2, "Stable storage").
//!
//! "If processes need to recover their state after a failure, a mechanism is needed for
//! creating periodic checkpoints or logs that can be replayed on recovery."  The replicated
//! data tool and the recovery manager both build on this trait.  Two implementations are
//! provided: an in-memory store (used by the simulator, where "stable" means "survives the
//! process object being rebuilt") and a file-backed store using the message codec plus JSON
//! index files.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::rc::Rc;

use vsync_msg::{codec, Message};
use vsync_util::{Result, VsError};

/// A store for named checkpoints and append-only logs of messages.
pub trait StableStore {
    /// Replaces the checkpoint stored under `key`.
    fn write_checkpoint(&self, key: &str, state: &Message) -> Result<()>;
    /// Reads the checkpoint stored under `key`.
    fn read_checkpoint(&self, key: &str) -> Result<Option<Message>>;
    /// Appends an entry to the log stored under `key`.
    fn append_log(&self, key: &str, entry: &Message) -> Result<()>;
    /// Reads the whole log stored under `key` in append order.
    fn read_log(&self, key: &str) -> Result<Vec<Message>>;
    /// Truncates the log stored under `key` (typically right after a checkpoint).
    fn truncate_log(&self, key: &str) -> Result<()>;
}

/// An in-memory stable store, shareable between the tool instances of one simulated node and
/// the recovery code that rebuilds it.
#[derive(Clone, Default)]
pub struct MemoryStore {
    inner: Rc<RefCell<MemoryInner>>,
}

#[derive(Default)]
struct MemoryInner {
    checkpoints: BTreeMap<String, Message>,
    logs: BTreeMap<String, Vec<Message>>,
}

impl MemoryStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        MemoryStore::default()
    }

    /// Number of entries currently in the named log.
    pub fn log_len(&self, key: &str) -> usize {
        self.inner.borrow().logs.get(key).map(Vec::len).unwrap_or(0)
    }
}

impl StableStore for MemoryStore {
    fn write_checkpoint(&self, key: &str, state: &Message) -> Result<()> {
        self.inner
            .borrow_mut()
            .checkpoints
            .insert(key.to_owned(), state.clone());
        Ok(())
    }

    fn read_checkpoint(&self, key: &str) -> Result<Option<Message>> {
        Ok(self.inner.borrow().checkpoints.get(key).cloned())
    }

    fn append_log(&self, key: &str, entry: &Message) -> Result<()> {
        self.inner
            .borrow_mut()
            .logs
            .entry(key.to_owned())
            .or_default()
            .push(entry.clone());
        Ok(())
    }

    fn read_log(&self, key: &str) -> Result<Vec<Message>> {
        Ok(self
            .inner
            .borrow()
            .logs
            .get(key)
            .cloned()
            .unwrap_or_default())
    }

    fn truncate_log(&self, key: &str) -> Result<()> {
        self.inner.borrow_mut().logs.remove(key);
        Ok(())
    }
}

/// A file-backed stable store: each checkpoint is one encoded message file, each log is a
/// directory of numbered encoded message files, with a JSON index for quick inspection.
///
/// A `FileStore` assumes it is the only writer of its root directory while open (the same
/// assumption the sequential numbering scheme always made); the next log-entry index is
/// counted from disk once per key and cached across appends.
pub struct FileStore {
    root: PathBuf,
    /// Encode scratch reused across writes, so checkpoint/log churn does not allocate a
    /// fresh buffer per message (see `codec::encode_to`).
    scratch: RefCell<bytes::BytesMut>,
    /// Next entry index per (sanitized) log key, so N appends cost one directory listing
    /// instead of N (a per-append `read_dir().count()` made long logs O(N²)).
    next_index: RefCell<std::collections::HashMap<String, usize>>,
    /// Fsync log appends every this-many writes (0 = never fsync).  Durability knob for
    /// recovery logs: `1` survives a machine crash at every record, larger intervals trade
    /// a bounded tail of lost records for throughput, `0` trusts the OS page cache.
    fsync_interval: usize,
    /// Appends since the last fsync, across all log keys.
    appends_since_sync: RefCell<usize>,
}

impl FileStore {
    /// Creates (or opens) a store rooted at `root`.
    pub fn new(root: impl Into<PathBuf>) -> Result<Self> {
        let root = root.into();
        std::fs::create_dir_all(&root)
            .map_err(|e| VsError::StorageError(format!("create {root:?}: {e}")))?;
        Ok(FileStore {
            root,
            scratch: RefCell::new(bytes::BytesMut::new()),
            next_index: RefCell::new(std::collections::HashMap::new()),
            fsync_interval: 0,
            appends_since_sync: RefCell::new(0),
        })
    }

    /// Fsyncs log appends every `interval` writes (`0` disables fsync, `1` syncs every
    /// append).  The sync covers the entry file's *data*; the durability unit is the log
    /// record, matching the recovery manager's replay granularity.
    pub fn with_fsync_interval(mut self, interval: usize) -> Self {
        self.fsync_interval = interval;
        self
    }

    fn sanitize(key: &str) -> String {
        key.chars()
            .map(|c| {
                if c.is_ascii_alphanumeric() || c == '-' || c == '_' {
                    c
                } else {
                    '_'
                }
            })
            .collect()
    }

    fn checkpoint_path(&self, key: &str) -> PathBuf {
        self.root.join(format!("{}.ckpt", Self::sanitize(key)))
    }

    fn log_dir(&self, key: &str) -> PathBuf {
        self.root.join(format!("{}.log", Self::sanitize(key)))
    }

    /// Reads each entry file of `key`'s log in append order and yields its raw bytes (plus
    /// its path and whether it is the final entry) to `each`, which returns `false` to stop
    /// early.  The single source of truth for entry naming, ordering, and error wrapping —
    /// `read_log` and `scan_log` both go through it.  Returns the number of entries yielded.
    fn for_each_log_entry(
        &self,
        key: &str,
        mut each: impl FnMut(&std::path::Path, Vec<u8>, bool) -> Result<bool>,
    ) -> Result<usize> {
        let dir = self.log_dir(key);
        if !dir.exists() {
            return Ok(0);
        }
        let mut names: Vec<PathBuf> = std::fs::read_dir(&dir)
            .map_err(|e| VsError::StorageError(format!("list log {key}: {e}")))?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .collect();
        names.sort();
        let mut visited = 0;
        let last = names.len();
        for (i, p) in names.into_iter().enumerate() {
            let bytes = std::fs::read(&p)
                .map_err(|e| VsError::StorageError(format!("read log entry {p:?}: {e}")))?;
            visited += 1;
            if !each(&p, bytes, i + 1 == last)? {
                break;
            }
        }
        Ok(visited)
    }

    /// Handles a decode failure at position `path`: a **final** entry that fails to decode
    /// is a torn tail — the machine died mid-append, exactly the case the fsync'd record
    /// before it was built for — so it is repaired (deleted, best-effort) and iteration
    /// stops cleanly.  An undecodable entry *before* the tail is genuine corruption the
    /// caller must hear about: replaying around a mid-log hole would silently drop
    /// history.
    fn tolerate_torn_tail(path: &std::path::Path, is_last: bool, err: VsError) -> Result<bool> {
        if is_last {
            let _ = std::fs::remove_file(path);
            Ok(false)
        } else {
            Err(VsError::StorageError(format!(
                "undecodable log entry {path:?} before the tail: {err}"
            )))
        }
    }

    /// Streams the entries of a log through `visit` as *borrowed* decoded views
    /// ([`codec::decode_view`]), in append order, without materialising owned messages.
    /// `visit` returns `false` to stop early.  Returns the number of entries visited
    /// (a repaired torn tail counts as visited but is not shown to `visit`).
    ///
    /// This is the cheap way to inspect a log — count entries, find a sequence number,
    /// filter by a field — when a full [`StableStore::read_log`] replay is not needed.
    pub fn scan_log(
        &self,
        key: &str,
        mut visit: impl FnMut(&codec::MessageView<'_>) -> bool,
    ) -> Result<usize> {
        self.for_each_log_entry(key, |path, bytes, is_last| {
            match codec::decode_view(&bytes) {
                Ok(view) => Ok(visit(&view)),
                Err(e) => Self::tolerate_torn_tail(path, is_last, e),
            }
        })
    }
}

impl StableStore for FileStore {
    fn write_checkpoint(&self, key: &str, state: &Message) -> Result<()> {
        let mut scratch = self.scratch.borrow_mut();
        codec::encode_to(state, &mut scratch);
        std::fs::write(self.checkpoint_path(key), &scratch[..])
            .map_err(|e| VsError::StorageError(format!("write checkpoint {key}: {e}")))
    }

    fn read_checkpoint(&self, key: &str) -> Result<Option<Message>> {
        let path = self.checkpoint_path(key);
        if !path.exists() {
            return Ok(None);
        }
        let bytes = std::fs::read(&path)
            .map_err(|e| VsError::StorageError(format!("read checkpoint {key}: {e}")))?;
        // Zero-copy decode: byte-string payloads alias the freshly read buffer.
        Ok(Some(codec::decode_shared(&bytes.into())?))
    }

    fn append_log(&self, key: &str, entry: &Message) -> Result<()> {
        let dir = self.log_dir(key);
        std::fs::create_dir_all(&dir)
            .map_err(|e| VsError::StorageError(format!("create log dir {key}: {e}")))?;
        let cache_key = Self::sanitize(key);
        let mut next_index = self.next_index.borrow_mut();
        let next = match next_index.get(&cache_key) {
            Some(&n) => n,
            None => std::fs::read_dir(&dir)
                .map_err(|e| VsError::StorageError(format!("list log {key}: {e}")))?
                .count(),
        };
        let mut scratch = self.scratch.borrow_mut();
        codec::encode_to(entry, &mut scratch);
        let path = dir.join(format!("{next:08}.msg"));
        let wrapped = |e: std::io::Error| VsError::StorageError(format!("append log {key}: {e}"));
        {
            use std::io::Write;
            let mut f = std::fs::File::create(&path).map_err(wrapped)?;
            f.write_all(&scratch[..]).map_err(wrapped)?;
            if self.fsync_interval > 0 {
                let mut since = self.appends_since_sync.borrow_mut();
                *since += 1;
                if *since >= self.fsync_interval {
                    f.sync_data().map_err(wrapped)?;
                    *since = 0;
                }
            }
        }
        next_index.insert(cache_key, next + 1);
        Ok(())
    }

    fn read_log(&self, key: &str) -> Result<Vec<Message>> {
        let mut out = Vec::new();
        self.for_each_log_entry(key, |path, bytes, is_last| {
            match codec::decode_shared(&bytes.into()) {
                Ok(msg) => {
                    out.push(msg);
                    Ok(true)
                }
                Err(e) => Self::tolerate_torn_tail(path, is_last, e),
            }
        })?;
        Ok(out)
    }

    fn truncate_log(&self, key: &str) -> Result<()> {
        let dir = self.log_dir(key);
        if dir.exists() {
            std::fs::remove_dir_all(&dir)
                .map_err(|e| VsError::StorageError(format!("truncate log {key}: {e}")))?;
        }
        self.next_index.borrow_mut().remove(&Self::sanitize(key));
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exercise(store: &dyn StableStore) {
        assert_eq!(store.read_checkpoint("svc").unwrap(), None);
        assert!(store.read_log("svc").unwrap().is_empty());

        store
            .write_checkpoint("svc", &Message::with_body(1u64))
            .unwrap();
        store.append_log("svc", &Message::with_body(2u64)).unwrap();
        store.append_log("svc", &Message::with_body(3u64)).unwrap();

        let ckpt = store.read_checkpoint("svc").unwrap().unwrap();
        assert_eq!(ckpt.get_u64("body"), Some(1));
        let log = store.read_log("svc").unwrap();
        assert_eq!(log.len(), 2);
        assert_eq!(log[0].get_u64("body"), Some(2));
        assert_eq!(log[1].get_u64("body"), Some(3));

        store
            .write_checkpoint("svc", &Message::with_body(9u64))
            .unwrap();
        store.truncate_log("svc").unwrap();
        assert!(store.read_log("svc").unwrap().is_empty());
        assert_eq!(
            store
                .read_checkpoint("svc")
                .unwrap()
                .unwrap()
                .get_u64("body"),
            Some(9)
        );
    }

    #[test]
    fn memory_store_roundtrip() {
        let store = MemoryStore::new();
        exercise(&store);
        assert_eq!(store.log_len("svc"), 0);
    }

    #[test]
    fn memory_store_is_shared_between_clones() {
        let a = MemoryStore::new();
        let b = a.clone();
        a.append_log("x", &Message::with_body(1u64)).unwrap();
        assert_eq!(b.log_len("x"), 1);
    }

    #[test]
    fn file_store_scan_log_visits_views_in_order() {
        let dir = std::env::temp_dir().join(format!("vsync-scan-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = FileStore::new(&dir).unwrap();
        for i in 0..4u64 {
            store.append_log("seq", &Message::with_body(i)).unwrap();
        }
        let mut seen = Vec::new();
        let visited = store
            .scan_log("seq", |view| {
                seen.push(view.get_u64("body").unwrap());
                true
            })
            .unwrap();
        assert_eq!(visited, 4);
        assert_eq!(seen, vec![0, 1, 2, 3]);
        // Early stop.
        let visited = store.scan_log("seq", |_| false).unwrap();
        assert_eq!(visited, 1);
        assert_eq!(store.scan_log("absent", |_| true).unwrap(), 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn file_store_append_index_survives_truncate_and_reopen() {
        let dir = std::env::temp_dir().join(format!("vsync-idx-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = FileStore::new(&dir).unwrap();
        store.append_log("k", &Message::with_body(1u64)).unwrap();
        store.append_log("k", &Message::with_body(2u64)).unwrap();
        // Truncation resets the cached index along with the directory.
        store.truncate_log("k").unwrap();
        store.append_log("k", &Message::with_body(3u64)).unwrap();
        let log = store.read_log("k").unwrap();
        assert_eq!(log.len(), 1);
        assert_eq!(log[0].get_u64("body"), Some(3));
        // A fresh store over the same root recounts from disk and appends after, not over,
        // the existing entries.
        let reopened = FileStore::new(&dir).unwrap();
        reopened.append_log("k", &Message::with_body(4u64)).unwrap();
        let bodies: Vec<u64> = reopened
            .read_log("k")
            .unwrap()
            .iter()
            .map(|m| m.get_u64("body").unwrap())
            .collect();
        assert_eq!(bodies, vec![3, 4]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_final_entry_is_repaired_and_earlier_corruption_errors() {
        let dir = std::env::temp_dir().join(format!("vsync-torn-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = FileStore::new(&dir).unwrap();
        for i in 0..3u64 {
            store.append_log("wal", &Message::with_body(i)).unwrap();
        }
        // Tear the final entry: keep only the first byte, as a crash mid-append would.
        let tail = dir.join("wal.log").join("00000002.msg");
        let full = std::fs::read(&tail).unwrap();
        std::fs::write(&tail, &full[..1]).unwrap();
        let log = store.read_log("wal").unwrap();
        assert_eq!(log.len(), 2, "complete records survive, torn tail dropped");
        assert_eq!(log[1].get_u64("body"), Some(1));
        assert!(!tail.exists(), "the torn tail is repaired on read");
        // Appends after the repair take the tail's slot and replay cleanly.
        store.append_log("wal", &Message::with_body(9u64)).unwrap();
        let bodies: Vec<u64> = store
            .read_log("wal")
            .unwrap()
            .iter()
            .map(|m| m.get_u64("body").unwrap())
            .collect();
        assert_eq!(bodies, vec![0, 1, 9]);
        // Corruption *before* the tail is not a crash artefact and must error loudly.
        let mid = dir.join("wal.log").join("00000000.msg");
        std::fs::write(&mid, b"x").unwrap();
        assert!(store.read_log("wal").is_err());
        assert!(store.scan_log("wal", |_| true).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn file_store_roundtrip() {
        let dir = std::env::temp_dir().join(format!("vsync-stable-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = FileStore::new(&dir).unwrap();
        exercise(&store);
        // Keys with awkward characters are sanitised rather than rejected.
        store
            .write_checkpoint("group/with:odd chars", &Message::with_body(5u64))
            .unwrap();
        assert!(store
            .read_checkpoint("group/with:odd chars")
            .unwrap()
            .is_some());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
