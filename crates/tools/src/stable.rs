//! Stable storage: checkpoints and replayable logs (paper Section 2.2, "Stable storage").
//!
//! "If processes need to recover their state after a failure, a mechanism is needed for
//! creating periodic checkpoints or logs that can be replayed on recovery."  The replicated
//! data tool and the recovery manager both build on this trait.  Two implementations are
//! provided: an in-memory store (used by the simulator, where "stable" means "survives the
//! process object being rebuilt") and a file-backed store using the message codec plus JSON
//! index files.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::rc::Rc;

use vsync_msg::{codec, Message};
use vsync_util::{Result, VsError};

/// A store for named checkpoints and append-only logs of messages.
pub trait StableStore {
    /// Replaces the checkpoint stored under `key`.
    fn write_checkpoint(&self, key: &str, state: &Message) -> Result<()>;
    /// Reads the checkpoint stored under `key`.
    fn read_checkpoint(&self, key: &str) -> Result<Option<Message>>;
    /// Appends an entry to the log stored under `key`.
    fn append_log(&self, key: &str, entry: &Message) -> Result<()>;
    /// Reads the whole log stored under `key` in append order.
    fn read_log(&self, key: &str) -> Result<Vec<Message>>;
    /// Truncates the log stored under `key` (typically right after a checkpoint).
    fn truncate_log(&self, key: &str) -> Result<()>;
}

/// An in-memory stable store, shareable between the tool instances of one simulated node and
/// the recovery code that rebuilds it.
#[derive(Clone, Default)]
pub struct MemoryStore {
    inner: Rc<RefCell<MemoryInner>>,
}

#[derive(Default)]
struct MemoryInner {
    checkpoints: BTreeMap<String, Message>,
    logs: BTreeMap<String, Vec<Message>>,
}

impl MemoryStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        MemoryStore::default()
    }

    /// Number of entries currently in the named log.
    pub fn log_len(&self, key: &str) -> usize {
        self.inner.borrow().logs.get(key).map(Vec::len).unwrap_or(0)
    }
}

impl StableStore for MemoryStore {
    fn write_checkpoint(&self, key: &str, state: &Message) -> Result<()> {
        self.inner
            .borrow_mut()
            .checkpoints
            .insert(key.to_owned(), state.clone());
        Ok(())
    }

    fn read_checkpoint(&self, key: &str) -> Result<Option<Message>> {
        Ok(self.inner.borrow().checkpoints.get(key).cloned())
    }

    fn append_log(&self, key: &str, entry: &Message) -> Result<()> {
        self.inner
            .borrow_mut()
            .logs
            .entry(key.to_owned())
            .or_default()
            .push(entry.clone());
        Ok(())
    }

    fn read_log(&self, key: &str) -> Result<Vec<Message>> {
        Ok(self
            .inner
            .borrow()
            .logs
            .get(key)
            .cloned()
            .unwrap_or_default())
    }

    fn truncate_log(&self, key: &str) -> Result<()> {
        self.inner.borrow_mut().logs.remove(key);
        Ok(())
    }
}

/// A file-backed stable store: each checkpoint is one encoded message file, each log is a
/// directory of numbered encoded message files, with a JSON index for quick inspection.
pub struct FileStore {
    root: PathBuf,
}

impl FileStore {
    /// Creates (or opens) a store rooted at `root`.
    pub fn new(root: impl Into<PathBuf>) -> Result<Self> {
        let root = root.into();
        std::fs::create_dir_all(&root)
            .map_err(|e| VsError::StorageError(format!("create {root:?}: {e}")))?;
        Ok(FileStore { root })
    }

    fn sanitize(key: &str) -> String {
        key.chars()
            .map(|c| {
                if c.is_ascii_alphanumeric() || c == '-' || c == '_' {
                    c
                } else {
                    '_'
                }
            })
            .collect()
    }

    fn checkpoint_path(&self, key: &str) -> PathBuf {
        self.root.join(format!("{}.ckpt", Self::sanitize(key)))
    }

    fn log_dir(&self, key: &str) -> PathBuf {
        self.root.join(format!("{}.log", Self::sanitize(key)))
    }
}

impl StableStore for FileStore {
    fn write_checkpoint(&self, key: &str, state: &Message) -> Result<()> {
        let bytes = codec::encode(state);
        std::fs::write(self.checkpoint_path(key), &bytes)
            .map_err(|e| VsError::StorageError(format!("write checkpoint {key}: {e}")))
    }

    fn read_checkpoint(&self, key: &str) -> Result<Option<Message>> {
        let path = self.checkpoint_path(key);
        if !path.exists() {
            return Ok(None);
        }
        let bytes = std::fs::read(&path)
            .map_err(|e| VsError::StorageError(format!("read checkpoint {key}: {e}")))?;
        Ok(Some(codec::decode(&bytes)?))
    }

    fn append_log(&self, key: &str, entry: &Message) -> Result<()> {
        let dir = self.log_dir(key);
        std::fs::create_dir_all(&dir)
            .map_err(|e| VsError::StorageError(format!("create log dir {key}: {e}")))?;
        let next = std::fs::read_dir(&dir)
            .map_err(|e| VsError::StorageError(format!("list log {key}: {e}")))?
            .count();
        let bytes = codec::encode(entry);
        std::fs::write(dir.join(format!("{next:08}.msg")), &bytes)
            .map_err(|e| VsError::StorageError(format!("append log {key}: {e}")))
    }

    fn read_log(&self, key: &str) -> Result<Vec<Message>> {
        let dir = self.log_dir(key);
        if !dir.exists() {
            return Ok(Vec::new());
        }
        let mut names: Vec<PathBuf> = std::fs::read_dir(&dir)
            .map_err(|e| VsError::StorageError(format!("list log {key}: {e}")))?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .collect();
        names.sort();
        let mut out = Vec::with_capacity(names.len());
        for p in names {
            let bytes = std::fs::read(&p)
                .map_err(|e| VsError::StorageError(format!("read log entry {p:?}: {e}")))?;
            out.push(codec::decode(&bytes)?);
        }
        Ok(out)
    }

    fn truncate_log(&self, key: &str) -> Result<()> {
        let dir = self.log_dir(key);
        if dir.exists() {
            std::fs::remove_dir_all(&dir)
                .map_err(|e| VsError::StorageError(format!("truncate log {key}: {e}")))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exercise(store: &dyn StableStore) {
        assert_eq!(store.read_checkpoint("svc").unwrap(), None);
        assert!(store.read_log("svc").unwrap().is_empty());

        store
            .write_checkpoint("svc", &Message::with_body(1u64))
            .unwrap();
        store.append_log("svc", &Message::with_body(2u64)).unwrap();
        store.append_log("svc", &Message::with_body(3u64)).unwrap();

        let ckpt = store.read_checkpoint("svc").unwrap().unwrap();
        assert_eq!(ckpt.get_u64("body"), Some(1));
        let log = store.read_log("svc").unwrap();
        assert_eq!(log.len(), 2);
        assert_eq!(log[0].get_u64("body"), Some(2));
        assert_eq!(log[1].get_u64("body"), Some(3));

        store
            .write_checkpoint("svc", &Message::with_body(9u64))
            .unwrap();
        store.truncate_log("svc").unwrap();
        assert!(store.read_log("svc").unwrap().is_empty());
        assert_eq!(
            store
                .read_checkpoint("svc")
                .unwrap()
                .unwrap()
                .get_u64("body"),
            Some(9)
        );
    }

    #[test]
    fn memory_store_roundtrip() {
        let store = MemoryStore::new();
        exercise(&store);
        assert_eq!(store.log_len("svc"), 0);
    }

    #[test]
    fn memory_store_is_shared_between_clones() {
        let a = MemoryStore::new();
        let b = a.clone();
        a.append_log("x", &Message::with_body(1u64)).unwrap();
        assert_eq!(b.log_len("x"), 1);
    }

    #[test]
    fn file_store_roundtrip() {
        let dir = std::env::temp_dir().join(format!("vsync-stable-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = FileStore::new(&dir).unwrap();
        exercise(&store);
        // Keys with awkward characters are sanitised rather than rejected.
        store
            .write_checkpoint("group/with:odd chars", &Message::with_body(5u64))
            .unwrap();
        assert!(store
            .read_checkpoint("group/with:odd chars")
            .unwrap()
            .is_some());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
