//! The ISIS toolkit (paper Sections 3.3 – 3.10).
//!
//! Each module implements one of the tools the paper describes, on top of the virtually
//! synchronous process groups of `vsync-core`.  All tools follow the same pattern: a struct
//! holding `Rc<RefCell<..>>` state is created by the application, *attached* to a
//! [`vsync_core::ProcessBuilder`] (binding the generic entry points and monitors the tool
//! needs), and then used from inside the application's own entry handlers through plain
//! method calls — exactly the "set of subroutines callable from application software" the
//! paper promises.
//!
//! | Paper section | Tool | Module |
//! |---|---|---|
//! | 3.3 | configuration tool | [`config_tool`] |
//! | 3.3 | quorum / full replication calls | [`quorum`] |
//! | 3.3, 6 | coordinator–cohort | [`coordinator`] |
//! | 3.5 | replicated semaphores | [`semaphore`] |
//! | 3.6 | replicated data (with optional logging) | [`replicated`] |
//! | 3.7 | site / process monitoring | [`monitor`] |
//! | 3.8 | recovery manager + stable storage | [`recovery`], [`stable`] |
//! | 3.8 | state transfer | [`transfer`] |
//! | 3.9 | news service | [`news`] |
//! | 3.11 | bulletin board (designed-but-future in the paper; implemented here) | [`bboard`] |

pub mod bboard;
pub mod config_tool;
pub mod coordinator;
pub mod monitor;
pub mod news;
pub mod quorum;
pub mod recovery;
pub mod replicated;
pub mod semaphore;
pub mod stable;
pub mod transfer;

pub use bboard::BulletinBoard;
pub use config_tool::ConfigTool;
pub use coordinator::CoordCohort;
pub use monitor::SiteMonitor;
pub use news::NewsService;
pub use recovery::{RecoveryAdvice, RecoveryManager, ReplaySummary};
pub use replicated::{ReplicatedData, UpdateOrdering};
pub use semaphore::SemaphoreTool;
pub use stable::{FileStore, MemoryStore, StableStore};
pub use transfer::StateTransfer;
