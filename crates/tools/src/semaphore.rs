//! Replicated semaphores (paper Section 3.5).
//!
//! "ISIS provides replicated semaphores, using a fair (FIFO) request queueing method.  If
//! desired, a semaphore will automatically be released when the holder fails."
//!
//! P and V operations travel by ABCAST, so every member applies them in the same total order
//! and the replicated queue state never diverges.  The automatic release on failure is driven
//! by the group view: when a holder appears in `departed`, every member releases its
//! semaphores in the same (virtually synchronous) step.

use std::cell::RefCell;
use std::collections::{BTreeMap, VecDeque};
use std::rc::Rc;

use vsync_core::{EntryId, GroupId, Message, ProcessBuilder, ProcessId, ProtocolKind, ToolCtx};

/// Callback invoked at the requester when its P operation is granted.
pub type AcquiredFn = Box<dyn FnMut(&mut ToolCtx<'_>)>;

#[derive(Default)]
struct SemState {
    count: i64,
    holders: Vec<ProcessId>,
    queue: VecDeque<ProcessId>,
}

struct Inner {
    group: GroupId,
    entry: EntryId,
    me: Option<ProcessId>,
    sems: BTreeMap<String, SemState>,
    waiting_callbacks: BTreeMap<String, VecDeque<AcquiredFn>>,
    grants: u64,
    auto_releases: u64,
}

/// The replicated semaphore tool attached to one group member.
#[derive(Clone)]
pub struct SemaphoreTool {
    inner: Rc<RefCell<Inner>>,
}

impl SemaphoreTool {
    /// Creates the tool for `group`, with semaphore operations delivered on `entry`.
    pub fn new(group: GroupId, entry: EntryId) -> Self {
        SemaphoreTool {
            inner: Rc::new(RefCell::new(Inner {
                group,
                entry,
                me: None,
                sems: BTreeMap::new(),
                waiting_callbacks: BTreeMap::new(),
                grants: 0,
                auto_releases: 0,
            })),
        }
    }

    /// Defines a semaphore with an initial count.  Every member must define the same
    /// semaphores with the same counts (typically at start-up, before any P/V traffic).
    pub fn define(&self, name: &str, initial: i64) {
        self.inner
            .borrow_mut()
            .sems
            .entry(name.to_owned())
            .or_insert(SemState {
                count: initial,
                holders: Vec::new(),
                queue: VecDeque::new(),
            });
    }

    /// Binds the operation-application handler and the failure monitor.
    pub fn attach(&self, builder: &mut ProcessBuilder) {
        self.inner.borrow_mut().me = Some(builder.id());
        let group = self.inner.borrow().group;
        let entry = self.inner.borrow().entry;

        let inner = self.inner.clone();
        builder.on_entry(entry, move |ctx, msg| {
            let granted_to_me = {
                let mut state = inner.borrow_mut();
                state.apply(msg)
            };
            if granted_to_me {
                Inner::fire_callback(&inner, ctx, msg.get_str("sem-name").unwrap_or(""));
            }
        });

        let inner = self.inner.clone();
        builder.on_view_change(group, move |ctx, ev| {
            if ev.view.departed.is_empty() {
                return;
            }
            let granted: Vec<String> = {
                let mut state = inner.borrow_mut();
                state.release_failed(&ev.view.departed)
            };
            for name in granted {
                Inner::fire_callback(&inner, ctx, &name);
            }
        });
    }

    /// `P(name)`: requests the semaphore; `on_acquired` runs (at this member only) when the
    /// request reaches the head of the FIFO queue and a unit is available.
    pub fn p(
        &self,
        ctx: &mut ToolCtx<'_>,
        name: &str,
        on_acquired: impl FnMut(&mut ToolCtx<'_>) + 'static,
    ) {
        let (group, entry) = {
            let mut state = self.inner.borrow_mut();
            state
                .waiting_callbacks
                .entry(name.to_owned())
                .or_default()
                .push_back(Box::new(on_acquired));
            (state.group, state.entry)
        };
        let msg = Message::new()
            .with("sem-name", name)
            .with("sem-op", "P")
            .with("sem-proc", ctx.me());
        ctx.send(group, entry, msg, ProtocolKind::Abcast);
    }

    /// `V(name)`: releases the semaphore.
    pub fn v(&self, ctx: &mut ToolCtx<'_>, name: &str) {
        let (group, entry) = {
            let state = self.inner.borrow();
            (state.group, state.entry)
        };
        let msg = Message::new()
            .with("sem-name", name)
            .with("sem-op", "V")
            .with("sem-proc", ctx.me());
        ctx.send(group, entry, msg, ProtocolKind::Abcast);
    }

    /// True if this member currently holds the semaphore.
    pub fn holds(&self, name: &str) -> bool {
        let state = self.inner.borrow();
        let me = state.me;
        state
            .sems
            .get(name)
            .map(|s| me.map(|m| s.holders.contains(&m)).unwrap_or(false))
            .unwrap_or(false)
    }

    /// Current holders of the semaphore (identical at every member).
    pub fn holders(&self, name: &str) -> Vec<ProcessId> {
        self.inner
            .borrow()
            .sems
            .get(name)
            .map(|s| s.holders.clone())
            .unwrap_or_default()
    }

    /// Length of the FIFO wait queue.
    pub fn queue_len(&self, name: &str) -> usize {
        self.inner
            .borrow()
            .sems
            .get(name)
            .map(|s| s.queue.len())
            .unwrap_or(0)
    }

    /// Number of grants observed at this member (including grants to other members).
    pub fn grants(&self) -> u64 {
        self.inner.borrow().grants
    }

    /// Number of automatic releases performed because a holder failed.
    pub fn auto_releases(&self) -> u64 {
        self.inner.borrow().auto_releases
    }
}

impl Inner {
    /// Applies one P/V operation.  Returns true when the operation results in a grant to the
    /// local member (so its callback must fire).
    fn apply(&mut self, msg: &Message) -> bool {
        let Some(name) = msg.get_str("sem-name").map(str::to_owned) else {
            return false;
        };
        let Some(proc_) = msg.get_addr("sem-proc").and_then(|a| a.as_process()) else {
            return false;
        };
        let op = msg.get_str("sem-op").unwrap_or("");
        let me = self.me;
        let sem = self.sems.entry(name).or_default();
        match op {
            "P" => {
                if sem.count > 0 {
                    sem.count -= 1;
                    sem.holders.push(proc_);
                    self.grants += 1;
                    Some(proc_) == me
                } else {
                    sem.queue.push_back(proc_);
                    false
                }
            }
            "V" => {
                if let Some(pos) = sem.holders.iter().position(|h| *h == proc_) {
                    sem.holders.remove(pos);
                    if let Some(next) = sem.queue.pop_front() {
                        sem.holders.push(next);
                        self.grants += 1;
                        return Some(next) == me;
                    }
                    sem.count += 1;
                }
                false
            }
            _ => false,
        }
    }

    /// Releases semaphores held (or queued for) by failed members; returns the names of
    /// semaphores newly granted to the local member as a result.
    fn release_failed(&mut self, failed: &[ProcessId]) -> Vec<String> {
        let me = self.me;
        let mut granted_to_me = Vec::new();
        for (name, sem) in self.sems.iter_mut() {
            sem.queue.retain(|p| !failed.contains(p));
            let held_by_failed: Vec<ProcessId> = sem
                .holders
                .iter()
                .copied()
                .filter(|h| failed.contains(h))
                .collect();
            for h in held_by_failed {
                sem.holders.retain(|x| *x != h);
                self.auto_releases += 1;
                if let Some(next) = sem.queue.pop_front() {
                    sem.holders.push(next);
                    self.grants += 1;
                    if Some(next) == me {
                        granted_to_me.push(name.clone());
                    }
                } else {
                    sem.count += 1;
                }
            }
        }
        granted_to_me
    }

    fn fire_callback(inner: &Rc<RefCell<Inner>>, ctx: &mut ToolCtx<'_>, name: &str) {
        let cb = inner
            .borrow_mut()
            .waiting_callbacks
            .get_mut(name)
            .and_then(|q| q.pop_front());
        if let Some(mut cb) = cb {
            cb(ctx);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vsync_util::SiteId;

    fn p(site: u16) -> ProcessId {
        ProcessId::new(SiteId(site), 1)
    }

    fn op(name: &str, op: &str, who: ProcessId) -> Message {
        Message::new()
            .with("sem-name", name)
            .with("sem-op", op)
            .with("sem-proc", who)
    }

    fn tool_for(me: ProcessId) -> SemaphoreTool {
        let t = SemaphoreTool::new(GroupId(1), EntryId(20));
        t.inner.borrow_mut().me = Some(me);
        t.define("mutex", 1);
        t
    }

    #[test]
    fn fifo_grant_order() {
        let t = tool_for(p(0));
        let grant0 = t.inner.borrow_mut().apply(&op("mutex", "P", p(0)));
        assert!(grant0, "first P is granted immediately to the local member");
        assert!(t.holds("mutex"));
        let grant1 = t.inner.borrow_mut().apply(&op("mutex", "P", p(1)));
        assert!(!grant1);
        assert_eq!(t.queue_len("mutex"), 1);
        // Release by the holder: the queued requester is granted, FIFO.
        let grant2 = t.inner.borrow_mut().apply(&op("mutex", "V", p(0)));
        assert!(!grant2, "the grant goes to p(1), not to the local member");
        assert_eq!(t.holders("mutex"), vec![p(1)]);
        assert!(!t.holds("mutex"));
        assert_eq!(t.grants(), 2);
    }

    #[test]
    fn counting_semaphores_allow_multiple_holders() {
        let t = tool_for(p(0));
        t.define("pool", 2);
        assert!(t.inner.borrow_mut().apply(&op("pool", "P", p(0))));
        assert!(!t.inner.borrow_mut().apply(&op("pool", "P", p(1))));
        assert_eq!(t.holders("pool").len(), 2);
        assert!(!t.inner.borrow_mut().apply(&op("pool", "P", p(2))));
        assert_eq!(t.queue_len("pool"), 1);
    }

    #[test]
    fn failed_holder_is_released_automatically() {
        let t = tool_for(p(1));
        t.inner.borrow_mut().apply(&op("mutex", "P", p(0)));
        t.inner.borrow_mut().apply(&op("mutex", "P", p(1)));
        assert_eq!(t.holders("mutex"), vec![p(0)]);
        // The holder fails: the local member (queued next) is granted.
        let granted = t.inner.borrow_mut().release_failed(&[p(0)]);
        assert_eq!(granted, vec!["mutex".to_owned()]);
        assert_eq!(t.holders("mutex"), vec![p(1)]);
        assert!(t.holds("mutex"));
        assert_eq!(t.auto_releases(), 1);
    }

    #[test]
    fn failed_waiters_are_dropped_from_the_queue() {
        let t = tool_for(p(0));
        t.inner.borrow_mut().apply(&op("mutex", "P", p(0)));
        t.inner.borrow_mut().apply(&op("mutex", "P", p(1)));
        t.inner.borrow_mut().apply(&op("mutex", "P", p(2)));
        assert_eq!(t.queue_len("mutex"), 2);
        t.inner.borrow_mut().release_failed(&[p(1)]);
        assert_eq!(t.queue_len("mutex"), 1);
        // The remaining waiter is granted when the holder releases.
        t.inner.borrow_mut().apply(&op("mutex", "V", p(0)));
        assert_eq!(t.holders("mutex"), vec![p(2)]);
    }

    #[test]
    fn v_without_holding_is_a_no_op() {
        let t = tool_for(p(0));
        t.inner.borrow_mut().apply(&op("mutex", "V", p(5)));
        assert_eq!(t.holders("mutex"), Vec::<ProcessId>::new());
        // Count did not grow beyond its definition.
        assert!(t.inner.borrow_mut().apply(&op("mutex", "P", p(0))));
        assert!(!t.inner.borrow_mut().apply(&op("mutex", "P", p(1))));
    }
}
