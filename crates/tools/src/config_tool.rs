//! The configuration tool (paper Section 3.3).
//!
//! "This tool allows a process group to maintain a configuration data structure, much like
//! the one that lists membership for a process group.  The data structure is stored directly
//! in the process group members, hence there is minimal overhead associated with accessing
//! it.  As with a group membership change, it will appear that configuration changes occur
//! when no multicasts to the group are pending, hence all recipients of a message will see
//! the same group configuration when a message arrives."
//!
//! That "appears to occur when nothing is pending" property is exactly what GBCAST provides,
//! so configuration updates travel by GBCAST and are applied at the virtual-synchrony cut.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

use vsync_core::{EntryId, GroupId, Message, ProcessBuilder, ProtocolKind, ToolCtx, Value};

struct Inner {
    group: GroupId,
    entry: EntryId,
    values: BTreeMap<String, Value>,
    version: u64,
}

/// A replicated configuration structure updated through GBCAST.
#[derive(Clone)]
pub struct ConfigTool {
    inner: Rc<RefCell<Inner>>,
}

impl ConfigTool {
    /// Creates a configuration tool for `group`, receiving updates on `entry`.
    pub fn new(group: GroupId, entry: EntryId) -> Self {
        ConfigTool {
            inner: Rc::new(RefCell::new(Inner {
                group,
                entry,
                values: BTreeMap::new(),
                version: 0,
            })),
        }
    }

    /// Binds the update-application handler on a member process.
    pub fn attach(&self, builder: &mut ProcessBuilder) {
        let inner = self.inner.clone();
        let entry = self.inner.borrow().entry;
        builder.on_entry(entry, move |_ctx, msg| {
            let mut state = inner.borrow_mut();
            if let (Some(item), Some(value)) = (msg.get_str("cfg-item"), msg.get("cfg-value")) {
                state.values.insert(item.to_owned(), value.clone());
                state.version += 1;
            }
        });
    }

    /// `conf_update`: publishes a configuration change to the whole group (Table 1: 1 GBCAST).
    pub fn update(&self, ctx: &mut ToolCtx<'_>, item: &str, value: impl Into<Value>) {
        let (group, entry) = {
            let state = self.inner.borrow();
            (state.group, state.entry)
        };
        let msg = Message::new()
            .with("cfg-item", item)
            .with("cfg-value", value.into());
        ctx.send(group, entry, msg, ProtocolKind::Gbcast);
    }

    /// `conf_read`: local read, no communication (Table 1: "no cost").
    pub fn read(&self, item: &str) -> Option<Value> {
        self.inner.borrow().values.get(item).cloned()
    }

    /// Reads a configuration item as an unsigned integer.
    pub fn read_u64(&self, item: &str) -> Option<u64> {
        self.read(item).and_then(|v| v.as_u64())
    }

    /// Sets a value locally without communication (initial configuration at group creation,
    /// or application of transferred state).
    pub fn load_local(&self, item: &str, value: impl Into<Value>) {
        let mut state = self.inner.borrow_mut();
        state.values.insert(item.to_owned(), value.into());
    }

    /// Number of configuration changes applied at this member.
    pub fn version(&self) -> u64 {
        self.inner.borrow().version
    }

    /// Encodes the configuration for state transfer.
    pub fn snapshot(&self) -> Message {
        let state = self.inner.borrow();
        let mut m = Message::new();
        for (k, v) in &state.values {
            m.set(k, v.clone());
        }
        m
    }

    /// Replaces the local configuration with a snapshot.
    pub fn apply_snapshot(&self, snapshot: &Message) {
        let mut state = self.inner.borrow_mut();
        state.values.clear();
        for field in snapshot.iter() {
            if !field.name.starts_with('@') {
                state
                    .values
                    .insert(field.name.to_string(), field.value.clone());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn local_reads_and_loads() {
        let cfg = ConfigTool::new(GroupId(1), EntryId(9));
        assert_eq!(cfg.read("workers"), None);
        cfg.load_local("workers", 5u64);
        assert_eq!(cfg.read_u64("workers"), Some(5));
        assert_eq!(
            cfg.version(),
            0,
            "local loads do not bump the replicated version"
        );
    }

    #[test]
    fn snapshot_roundtrip() {
        let cfg = ConfigTool::new(GroupId(1), EntryId(9));
        cfg.load_local("workers", 5u64);
        cfg.load_local("mode", "horizontal");
        let other = ConfigTool::new(GroupId(1), EntryId(9));
        other.apply_snapshot(&cfg.snapshot());
        assert_eq!(other.read_u64("workers"), Some(5));
        assert_eq!(
            other
                .read("mode")
                .and_then(|v| v.as_str().map(str::to_owned)),
            Some("horizontal".to_owned())
        );
    }
}
