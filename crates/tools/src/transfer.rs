//! The state-transfer tool (paper Section 3.8).
//!
//! "This tool provides a way to join a pre-existing group of processes, transferring state
//! from the operational processes to the one that wants to join. ...  Up to the instant
//! before the join occurs, the old set of members continue to receive requests and the new
//! one does not.  Then, the join takes place and the next request is received by the new
//! member too, and only after it has received the state that was current at the time of the
//! join."
//!
//! Implementation: the tool watches the group view.  When a view that adds members installs,
//! the *oldest* member encodes its state (via the application-supplied callback) at that cut
//! point and sends it to each joiner in blocks.  On the joiner's side, application messages
//! that arrive before the state are buffered by the application using [`StateTransfer::is_ready`],
//! which becomes true once the final block has been applied.  Because the snapshot is taken
//! at the view-change cut, the combination (snapshot + messages delivered in the new view) is
//! exactly the state the old members have.

use std::cell::RefCell;
use std::rc::Rc;

use vsync_core::{Address, EntryId, GroupId, Message, ProcessBuilder, ProtocolKind, ToolCtx};

/// Produces the state to transfer, as a series of variable-sized blocks (paper: "the
/// application must be able to encode its state into a series of variable sized blocks").
pub type EncodeFn = Box<dyn FnMut() -> Vec<Message>>;

/// Applies one received state block.
pub type ApplyFn = Box<dyn FnMut(&mut ToolCtx<'_>, &Message)>;

struct Inner {
    group: GroupId,
    encode: EncodeFn,
    apply: ApplyFn,
    ready: bool,
    blocks_sent: u64,
    blocks_received: u64,
    transfers_served: u64,
}

/// The state-transfer tool attached to one group member (or joiner).
#[derive(Clone)]
pub struct StateTransfer {
    inner: Rc<RefCell<Inner>>,
}

impl StateTransfer {
    /// Creates the tool: `encode` produces the state blocks at a transfer source, `apply`
    /// consumes them at a joiner.
    pub fn new(
        group: GroupId,
        encode: impl FnMut() -> Vec<Message> + 'static,
        apply: impl FnMut(&mut ToolCtx<'_>, &Message) + 'static,
    ) -> Self {
        StateTransfer {
            inner: Rc::new(RefCell::new(Inner {
                group,
                encode: Box::new(encode),
                apply: Box::new(apply),
                ready: false,
                blocks_sent: 0,
                blocks_received: 0,
                transfers_served: 0,
            })),
        }
    }

    /// Binds the transfer entry and the view monitor.
    pub fn attach(&self, builder: &mut ProcessBuilder) {
        let group = self.inner.borrow().group;

        // Receiving side: apply blocks; the block flagged `xfer-last` completes the transfer.
        let inner = self.inner.clone();
        builder.on_entry(EntryId::GENERIC_XFER, move |ctx, msg| {
            {
                let mut state = inner.borrow_mut();
                state.blocks_received += 1;
            }
            // Run the application callback outside the borrow.
            let apply_ptr = inner.clone();
            let mut taken = {
                let mut state = apply_ptr.borrow_mut();
                std::mem::replace(&mut state.apply, Box::new(|_ctx, _m| {}))
            };
            taken(ctx, msg);
            {
                let mut state = apply_ptr.borrow_mut();
                state.apply = taken;
                if msg.get_bool("xfer-last").unwrap_or(false) {
                    state.ready = true;
                }
            }
        });

        // Sending side: when a view adds members and we are the oldest operational member,
        // push our state (captured at this cut) to every joiner.
        let inner = self.inner.clone();
        builder.on_view_change(group, move |ctx, ev| {
            let me = ctx.me();
            // The founding member is "ready" by definition: there is nobody to transfer from.
            if ev.view.len() == 1 && ev.view.contains(me) {
                inner.borrow_mut().ready = true;
            }
            if ev.view.joined.is_empty() || ev.view.joined.contains(&me) {
                return;
            }
            if ev.view.rank_of(me) != Some(0) {
                return;
            }
            if !inner.borrow().ready {
                return;
            }
            let blocks = {
                let mut state = inner.borrow_mut();
                let mut encode = std::mem::replace(&mut state.encode, Box::new(Vec::new));
                drop(state);
                let blocks = encode();
                let mut state = inner.borrow_mut();
                state.encode = encode;
                state.transfers_served += 1;
                blocks
            };
            for joiner in &ev.view.joined {
                let total = blocks.len().max(1);
                if blocks.is_empty() {
                    // Even an empty state sends one terminating block so the joiner knows it
                    // is up to date.
                    let mut m = Message::new();
                    m.set("xfer-last", true);
                    ctx.send(
                        Address::Process(*joiner),
                        EntryId::GENERIC_XFER,
                        m,
                        ProtocolKind::Cbcast,
                    );
                    inner.borrow_mut().blocks_sent += 1;
                    continue;
                }
                for (i, block) in blocks.iter().enumerate() {
                    let mut m = block.clone();
                    m.set("xfer-block", i as u64);
                    m.set("xfer-last", i + 1 == total);
                    ctx.send(
                        Address::Process(*joiner),
                        EntryId::GENERIC_XFER,
                        m,
                        ProtocolKind::Cbcast,
                    );
                    inner.borrow_mut().blocks_sent += 1;
                }
            }
        });
    }

    /// Marks this member as already holding the authoritative state (the group creator calls
    /// this; joiners become ready when their transfer completes).
    pub fn mark_ready(&self) {
        self.inner.borrow_mut().ready = true;
    }

    /// True once this member holds the full state (creator, or joiner after transfer).
    pub fn is_ready(&self) -> bool {
        self.inner.borrow().ready
    }

    /// Number of state blocks sent to joiners by this member.
    pub fn blocks_sent(&self) -> u64 {
        self.inner.borrow().blocks_sent
    }

    /// Number of state blocks received by this member.
    pub fn blocks_received(&self) -> u64 {
        self.inner.borrow().blocks_received
    }

    /// Number of joins this member served as the transfer source.
    pub fn transfers_served(&self) -> u64 {
        self.inner.borrow().transfers_served
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn readiness_flags() {
        let t = StateTransfer::new(GroupId(1), Vec::new, |_ctx, _m| {});
        assert!(!t.is_ready());
        t.mark_ready();
        assert!(t.is_ready());
        assert_eq!(t.blocks_sent(), 0);
        assert_eq!(t.blocks_received(), 0);
        assert_eq!(t.transfers_served(), 0);
    }
}
